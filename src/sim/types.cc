#include "types.hh"

namespace swsm
{

const char *
timeBucketName(TimeBucket b)
{
    switch (b) {
      case TimeBucket::Busy:
        return "busy";
      case TimeBucket::StallLocal:
        return "local_stall";
      case TimeBucket::DataWait:
        return "data_wait";
      case TimeBucket::LockWait:
        return "lock_wait";
      case TimeBucket::BarrierWait:
        return "barrier_wait";
      case TimeBucket::ProtoHandler:
        return "proto_handler";
      case TimeBucket::ProtoDiff:
        return "proto_diff";
      case TimeBucket::ProtoTwin:
        return "proto_twin";
      case TimeBucket::ProtoProtect:
        return "proto_protect";
      case TimeBucket::ProtoOther:
        return "proto_other";
      default:
        return "unknown";
    }
}

} // namespace swsm
