/**
 * @file
 * Undo-log interface for machine-level speculation.
 *
 * Bounded-optimism speculation (sim/pdes.hh) needs every side effect
 * of a speculated event to be reversible. Most state is cheap to
 * snapshot wholesale at speculation start (counters, small per-node
 * fields), but two classes are not:
 *
 *   - large byte arrays written sparsely (home page frames under a
 *     diff apply, home blocks under a writeback) want copy-on-write
 *     pre-images of just the spans actually touched;
 *   - objects mutated only on rare paths (directory entries, lock
 *     queues, the cache model's tag arrays) want a lazy first-touch
 *     copy rather than an eager one per checkpoint.
 *
 * SpecWriteLog is the narrow interface the mutation sites see. The
 * machine layer's MachineStateSaver (machine/pdes_saver.hh) implements
 * it per partition; layers hold a nullable pointer and call the hooks
 * only when a speculation is active, so the conservative path pays one
 * branch per site. All calls happen on the owning partition's worker
 * thread (speculated events execute only on their partition).
 */

#ifndef SWSM_SIM_SPEC_LOG_HH
#define SWSM_SIM_SPEC_LOG_HH

#include <cstddef>
#include <functional>

namespace swsm
{

/** Per-partition undo log active during a machine-level speculation. */
class SpecWriteLog
{
  public:
    virtual ~SpecWriteLog() = default;

    /** True while the calling thread's partition is speculating. */
    virtual bool active() const = 0;

    /**
     * First-touch filter: true exactly once per (speculation, key).
     * Call before pushUndo to snapshot an object at most once no
     * matter how many speculated events mutate it.
     */
    virtual bool needsUndo(const void *key) = 0;

    /**
     * Record a pre-image of [dst, dst + bytes) to be copied back on
     * rollback. Deduplicated by dst: repeat calls for the same span
     * are free. Spans recorded within one speculation must be
     * identical or disjoint (page- or block-granular callers satisfy
     * this by construction).
     */
    virtual void willWriteBytes(void *dst, std::size_t bytes) = 0;

    /**
     * Record an arbitrary undo closure, run in reverse order on
     * rollback. Each closure must restore its object to the exact
     * pre-speculation value (pair with needsUndo so the captured copy
     * is the pre-speculation one).
     */
    virtual void pushUndo(std::function<void()> undo) = 0;
};

/**
 * Snapshot @p obj by value the first time it is touched in the
 * current speculation; a no-op when @p log is null or inactive.
 * The object must outlive the speculation (stable address).
 */
template <typename T>
inline void
specSnapshot(SpecWriteLog *log, T &obj)
{
    if (log && log->active() && log->needsUndo(&obj))
        log->pushUndo([&obj, copy = obj]() mutable { obj = std::move(copy); });
}

} // namespace swsm

#endif // SWSM_SIM_SPEC_LOG_HH
