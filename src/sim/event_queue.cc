#include "event_queue.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/log.hh"
#include "sim/pdes.hh"

namespace swsm
{

namespace
{
/**
 * Initial heap capacity. Even tiny runs schedule thousands of events;
 * pre-sizing skips the first dozen geometric regrowths on the hot path.
 * (The steady-state pending count is bounded by in-flight packets and
 * blocked processors, far below the total events fired.)
 */
constexpr std::size_t initialCapacity = 4096;
} // namespace

EventQueue::EventQueue()
{
    heap.reserve(initialCapacity);
    slotSeq_.resize(1);
}

void
EventQueue::setNumSlots(std::uint32_t slots)
{
    if (slots == 0)
        slots = 1;
    if (slots > (1u << 16))
        SWSM_PANIC("EventQueue supports at most %u slots, asked for %u",
                   1u << 16, slots);
    if (slots > slotSeq_.size())
        slotSeq_.resize(slots);
}

void
EventQueue::pastPanic(Cycles when, Cycles now) const
{
    SWSM_PANIC("event scheduled in the past: when=%llu now=%llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now));
}

void
EventQueue::push(Cycles when, std::uint64_t stamp, std::uint32_t exec_slot,
                 EventFn fn)
{
    heap.push_back(Entry{when, stamp, exec_slot, std::move(fn)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++scheduled_;
    if (heap.size() > maxPending_)
        maxPending_ = heap.size();
}

void
EventQueue::schedule(Cycles when, EventFn fn)
{
    if (pdes_ != nullptr) [[unlikely]] {
        pdes_->parallelSchedule(PdesEngine::sameSlot, when, std::move(fn));
        return;
    }
    if (when < now_)
        pastPanic(when, now_);
    push(when, makeStamp(curSlot_), curSlot_, std::move(fn));
}

void
EventQueue::scheduleTo(std::uint32_t slot, Cycles when, EventFn fn)
{
    if (pdes_ != nullptr) [[unlikely]] {
        pdes_->parallelSchedule(slot, when, std::move(fn));
        return;
    }
    if (when < now_)
        pastPanic(when, now_);
    if (slot >= numSlots())
        SWSM_PANIC("scheduleTo slot %u, only %u declared (setNumSlots)",
                   slot, numSlots());
    push(when, makeStamp(curSlot_), slot, std::move(fn));
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry entry = std::move(heap.back());
    heap.pop_back();
    now_ = entry.when;
    curSlot_ = entry.execSlot;
    ++executed_;
    entry.fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t count = 0;
    while (step())
        ++count;
    return count;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t count = 0;
    while (count < limit && step())
        ++count;
    return count;
}

void
EventQueue::registerMetrics(MetricsRegistry &registry) const
{
    registry.addCounter("sim.events_scheduled",
                        [this] { return scheduled_; });
    registry.addCounter("sim.events_run", [this] { return executed_; });
    registry.addCounter("sim.max_pending_events",
                        [this] { return maxPending_; });
}

} // namespace swsm
