#include "event_queue.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{
/**
 * Initial heap capacity. Even tiny runs schedule thousands of events;
 * pre-sizing skips the first dozen geometric regrowths on the hot path.
 * (The steady-state pending count is bounded by in-flight packets and
 * blocked processors, far below the total events fired.)
 */
constexpr std::size_t initialCapacity = 4096;
} // namespace

EventQueue::EventQueue()
{
    heap.reserve(initialCapacity);
}

void
EventQueue::schedule(Cycles when, EventFn fn)
{
    if (when < now_) {
        SWSM_PANIC("event scheduled in the past: when=%llu now=%llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
    }
    heap.push_back(Entry{when, nextSeq++, std::move(fn)});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++scheduled_;
    if (heap.size() > maxPending_)
        maxPending_ = heap.size();
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Entry entry = std::move(heap.back());
    heap.pop_back();
    now_ = entry.when;
    ++executed_;
    entry.fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t count = 0;
    while (step())
        ++count;
    return count;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t count = 0;
    while (count < limit && step())
        ++count;
    return count;
}

void
EventQueue::registerMetrics(MetricsRegistry &registry) const
{
    registry.addCounter("sim.events_scheduled",
                        [this] { return scheduled_; });
    registry.addCounter("sim.events_run", [this] { return executed_; });
    registry.addCounter("sim.max_pending_events",
                        [this] { return maxPending_; });
}

} // namespace swsm
