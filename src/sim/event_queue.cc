#include "event_queue.hh"

#include "sim/log.hh"

namespace swsm
{

void
EventQueue::schedule(Cycles when, EventFn fn)
{
    if (when < now_) {
        SWSM_PANIC("event scheduled in the past: when=%llu now=%llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
    }
    heap.push(Entry{when, nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // std::priority_queue::top() returns const&; moving the callback out
    // requires this const_cast, which is safe because pop() follows
    // immediately and never inspects fn.
    Entry entry = std::move(const_cast<Entry &>(heap.top()));
    heap.pop();
    now_ = entry.when;
    entry.fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t count = 0;
    while (step())
        ++count;
    return count;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t count = 0;
    while (count < limit && step())
        ++count;
    return count;
}

} // namespace swsm
