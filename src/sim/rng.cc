#include "rng.hh"

#include "sim/log.hh"

namespace swsm
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        SWSM_PANIC("Rng::nextBounded called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

} // namespace swsm
