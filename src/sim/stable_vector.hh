/**
 * @file
 * Append-only sequence with stable element addresses, safe to read
 * concurrently with appends by its single writer.
 *
 * Built for cross-partition state in the parallel event engine
 * (sim/pdes.hh): one partition appends records (e.g. a node's coherence
 * intervals) while others read entries they learned about through
 * simulated messages. A plain std::vector cannot serve here — regrowth
 * moves the elements and rewrites the data pointer under concurrent
 * readers. StableVector stores elements in fixed-size chunks that never
 * move, behind a preallocated spine of atomic chunk pointers, and
 * publishes the size with release/acquire so size() is always safe to
 * read.
 *
 * Element contents are deliberately plain (no per-element atomics): a
 * reader may only access elements whose existence it learned through a
 * happens-before edge (a simulated message carried across a window
 * barrier), which also publishes the element's bytes. size() can be
 * read from anywhere, but callers that iterate must bound themselves by
 * message-derived counts, not the live size, to stay deterministic.
 */

#ifndef SWSM_SIM_STABLE_VECTOR_HH
#define SWSM_SIM_STABLE_VECTOR_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "sim/log.hh"

namespace swsm
{

template <typename T>
class StableVector
{
  public:
    static constexpr std::size_t chunkSize = 256;
    static constexpr std::size_t maxChunks = 1u << 12; // 1M elements

    StableVector()
        : spine_(std::make_unique<std::atomic<Chunk *>[]>(maxChunks))
    {}

    ~StableVector()
    {
        for (std::size_t i = 0; i < maxChunks; ++i)
            delete spine_[i].load(std::memory_order_relaxed);
    }

    StableVector(const StableVector &) = delete;
    StableVector &operator=(const StableVector &) = delete;

    StableVector(StableVector &&other) noexcept
        : spine_(std::move(other.spine_)),
          size_(other.size_.load(std::memory_order_relaxed))
    {
        other.spine_ =
            std::make_unique<std::atomic<Chunk *>[]>(maxChunks);
        other.size_.store(0, std::memory_order_relaxed);
    }

    /** Live element count; safe from any thread. */
    std::size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

    /** Append (single writer only). */
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        const std::size_t n = size_.load(std::memory_order_relaxed);
        const std::size_t ci = n / chunkSize;
        if (ci >= maxChunks)
            SWSM_PANIC("StableVector overflow (%zu elements)", n);
        Chunk *chunk = spine_[ci].load(std::memory_order_relaxed);
        if (chunk == nullptr) {
            chunk = new Chunk;
            spine_[ci].store(chunk, std::memory_order_release);
        }
        T &slot = chunk->items[n % chunkSize];
        slot = T(std::forward<Args>(args)...);
        size_.store(n + 1, std::memory_order_release);
        return slot;
    }

    void push_back(T value) { emplace_back(std::move(value)); }

    /** Element access; @p i must be < a count the caller learned of. */
    T &
    operator[](std::size_t i)
    {
        return spine_[i / chunkSize].load(std::memory_order_acquire)
            ->items[i % chunkSize];
    }

    const T &
    operator[](std::size_t i) const
    {
        return spine_[i / chunkSize].load(std::memory_order_acquire)
            ->items[i % chunkSize];
    }

    T &back() { return (*this)[size() - 1]; }
    const T &back() const { return (*this)[size() - 1]; }

  private:
    struct Chunk
    {
        T items[chunkSize];
    };

    std::unique_ptr<std::atomic<Chunk *>[]> spine_;
    std::atomic<std::size_t> size_{0};
};

} // namespace swsm

#endif // SWSM_SIM_STABLE_VECTOR_HH
