/**
 * @file
 * Time-windowed parallel discrete-event engine with per-destination
 * lookahead and optional bounded-optimism speculation.
 *
 * A PdesEngine partitions an EventQueue's execution slots (cluster
 * nodes) across worker threads and advances all partitions in bounded
 * time windows. The window bound comes from a partition-to-partition
 * lookahead matrix L[q][p]: the minimum latency between an event
 * executing in partition q and the earliest cross-partition event it
 * can schedule into partition p (in the machine layer, computed once
 * per run from CommParams by Network::crossLookahead(from, to) and
 * minimized over the node pairs of each partition pair).
 *
 * Each window round:
 *
 *   1. every worker drains the mailboxes addressed to its partition
 *      (messages produced in the previous window) into its local heap,
 *   2. publishes the timestamp of its earliest pending event and waits
 *      at a barrier,
 *   3. every worker independently computes the same per-partition
 *      window bound (below) and executes its local events with
 *      timestamp below its bound; cross-partition schedules are
 *      appended to single-producer mailbox vectors,
 *   4. all workers wait at a second barrier and loop.
 *
 * Window bound (per-destination mode). From the published heads the
 * workers compute the least fixpoint of
 *
 *     E[q] = min(published[q], min over r != q of E[r] + L[r][q])
 *
 * — E[q] is a lower bound on the earliest event partition q can ever
 * execute from this round on, over all transitive cross-partition
 * chains — and then bound each partition by its actual incoming edges:
 *
 *     bound[p] = min over q != p of E[q] + L[q][p].
 *
 * Soundness: by induction on chain length, any event q executes now or
 * later happens at time >= E[q] (it is either pending, at
 * >= published[q], or descends from mail from some r, at
 * >= E[r] + L[r][q]); therefore every message that can still reach p
 * arrives at >= bound[p], and executing p's events strictly below
 * bound[p] can never run past an undelivered message. This strictly
 * subsumes the old global-minimum bound min(published) + min(L): a
 * partition's *own* published head never bounds it (only round trips
 * through peers do), and asymmetric topologies widen the bound
 * further. It also retires the unsound "min over others" widening that
 * used to hide behind SWSM_PDES_UNSOUND_WIDEN — the fixpoint is the
 * sound version of that widening. The legacy global-minimum bound is
 * kept as WindowPolicy::GlobalMin for A/B measurement.
 *
 * Bounded optimism (optional, off by default). With optimism = K > 0
 * and a PdesStateSaver, a partition that has exhausted its sound
 * window may execute up to K more events speculatively:
 *
 *   - the saver checkpoints the partition's simulation state, and the
 *     engine checkpoints its own (clock, slot, counters, and the
 *     per-slot stamp counters, so re-execution reproduces identical
 *     stamps);
 *   - each event is cloned *before* it runs (EventFn::clone) so a
 *     rollback can re-insert a pristine copy — an executed closure may
 *     have moved out of its captures. A non-clonable event stops
 *     speculation;
 *   - outgoing cross-partition mail is held back, and the partition
 *     publishes the minimum of its pre-speculation head and any held
 *     incoming mail, so peers' bounds never depend on speculative
 *     state — nor overlook an in-flight straggler a rollback would
 *     re-execute;
 *   - on a later round the speculation resolves: a *straggler* (held
 *     incoming mail ordered (when, stamp)-before the largest key among
 *     the speculated events — a same-cycle child of a speculated event
 *     carries a smaller stamp than its parent, so the largest key is
 *     tracked as a running maximum, not the last pop) forces a rollback — saver restore, engine state restore,
 *     speculative heap entries purged, clones re-inserted — and the
 *     events re-execute through normal windows; if instead the sound
 *     bound passes the speculated horizon, the speculation *commits*
 *     and the held mail is released (every peer's bound is below any
 *     held arrival, so delivery is still conservative);
 *   - liveness: the committable horizon is capped by the minimum
 *     round trip through a peer (with the partition's head frozen,
 *     its bound can never exceed head + min round trip), so
 *     speculation never starts beyond the cap, and a speculation
 *     whose bound stops advancing is force-rolled-back rather than
 *     waited on forever.
 *
 * Determinism: events carry (when, stamp) with stamp =
 * (scheduling slot << 48 | per-slot seq) assigned by the EventQueue.
 * Per-slot event sequences are identical to the serial kernel's by
 * induction, so each partition executes the serial order restricted to
 * its slots — speculation included, because rollback restores the
 * stamp counters — and every simulated time, counter and emitted byte
 * is bit-identical to a serial run. The mailboxes need no locks: each
 * (src, dst) vector has exactly one producer per window and is
 * consumed only after the barrier, whose acquire/release ordering
 * publishes the entries.
 */

#ifndef SWSM_SIM_PDES_HH
#define SWSM_SIM_PDES_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace swsm
{

/** Deterministic end-of-run statistics of one parallel run. */
struct PdesRunStats
{
    std::uint64_t partitions = 0;
    /** Window rounds executed (barrier pairs). */
    std::uint64_t windows = 0;
    /**
     * Partition-rounds whose per-destination bound strictly exceeded
     * the legacy global-minimum bound (deterministic for a given
     * partition count and window policy).
     */
    std::uint64_t widenedWindows = 0;
    /** Cross-partition events routed through mailboxes. */
    std::uint64_t mailboxEvents = 0;
    /** Events executed by the busiest partition. */
    std::uint64_t maxPartitionEvents = 0;
    /** Events executed speculatively past the sound window bound. */
    std::uint64_t speculated = 0;
    /** Speculations rolled back (straggler or stalled commit bound). */
    std::uint64_t rollbacks = 0;
    /** Speculations committed. */
    std::uint64_t commits = 0;
    /** Events executed per partition (index = partition). */
    std::vector<std::uint64_t> partitionEvents;
};

/**
 * Checkpoint interface for bounded-optimism speculation.
 *
 * The engine owns *its* speculative state (partition clock, stamp
 * counters, pending-event heaps); everything the *events* mutate is
 * the embedder's to save. save(p) overwrites partition p's checkpoint
 * with the current state of everything events executing in p can
 * touch, restore(p) rolls that state back, discard(p) drops the
 * checkpoint on commit. Calls for partition p are made only from p's
 * worker thread. Embedders whose event state cannot be checkpointed
 * (e.g. the full machine layer, with fiber stacks and pooled protocol
 * buffers) simply run without a saver, which disables speculation.
 */
class PdesStateSaver
{
  public:
    virtual ~PdesStateSaver() = default;
    virtual void save(int partition) = 0;
    virtual void restore(int partition) = 0;
    virtual void discard(int partition) = 0;
};

/** How the per-round window bound is computed. */
enum class PdesWindowPolicy
{
    /** Legacy: global minimum published head + global minimum L. */
    GlobalMin,
    /** Per-destination fixpoint bound (sound, wider; the default). */
    PerDest,
};

/** Construction-time configuration of a PdesEngine. */
struct PdesConfig
{
    /**
     * Partition-to-partition minimum scheduling latency, row-major
     * [from * P + to]. Off-diagonal entries must be positive
     * (PdesEngine::noEvent means "no edge"); the diagonal is ignored.
     */
    std::vector<Cycles> lookahead;
    PdesWindowPolicy policy = PdesWindowPolicy::PerDest;
    /** Max events to execute past the sound bound (0 = conservative). */
    int optimism = 0;
    /** Checkpointing hooks; speculation is disabled when null. */
    PdesStateSaver *saver = nullptr;

    /** Uniform matrix helper for scalar-lookahead embedders. */
    static PdesConfig uniform(int num_partitions, Cycles lookahead);
};

/**
 * Runs one EventQueue to completion on several worker threads.
 *
 * The engine is built per run: construct with a slot-to-partition map
 * and a PdesConfig, call run(), read stats(). While run() is live the
 * queue routes schedule()/now() to the engine; afterwards the queue is
 * back in serial mode with its counters merged (events scheduled/run
 * sum over partitions; max pending is the max over partitions).
 */
class PdesEngine
{
  public:
    /** Upper bound on worker threads (and stat shards, see stats.hh). */
    static constexpr int maxPartitions = 16;

    /** Sentinel for parallelSchedule: keep the scheduling slot. */
    static constexpr std::uint32_t sameSlot = ~0u;

    /** "No pending event" / "no edge" time sentinel. */
    static constexpr Cycles noEvent = ~static_cast<Cycles>(0);

    /**
     * @param eq queue to drain (its pending events seed the partitions)
     * @param partition_of slot -> partition, one entry per queue slot;
     *        values in [0, num_partitions)
     * @param num_partitions worker count, in [2, maxPartitions]
     * @param config lookahead matrix, window policy and speculation
     */
    PdesEngine(EventQueue &eq, std::vector<int> partition_of,
               int num_partitions, PdesConfig config);

    /** Convenience: uniform scalar lookahead, defaults otherwise. */
    PdesEngine(EventQueue &eq, std::vector<int> partition_of,
               int num_partitions, Cycles lookahead);

    ~PdesEngine();

    PdesEngine(const PdesEngine &) = delete;
    PdesEngine &operator=(const PdesEngine &) = delete;

    /**
     * Run until every partition drains. Rethrows the first (by
     * partition index) exception thrown by an event. Returns the number
     * of events executed.
     */
    std::uint64_t run();

    /** Deterministic run statistics (valid after run()). */
    const PdesRunStats &stats() const { return stats_; }

    /**
     * Verify every mailbox and speculation buffer was drained
     * (SWSM_CHECK). A clean run always drains them — an entry left
     * behind means a window advanced past an undelivered message,
     * which breaks the conservative contract.
     */
    void checkDrained() const;

    /** Partition index of the calling worker thread (-1 off-engine). */
    static int currentPartition();

  private:
    friend class EventQueue;

    using Entry = EventQueue::Entry;

    /** Sense-reversing spin barrier for the window rounds. */
    class Barrier
    {
      public:
        explicit Barrier(int parties) : parties_(parties) {}
        void wait();

      private:
        const int parties_;
        std::atomic<int> arrived_{0};
        std::atomic<int> sense_{0};
    };

    /** Pristine pre-execution copy of a speculated event. */
    struct SpecEvent
    {
        Cycles when;
        std::uint64_t stamp;
        std::uint32_t execSlot;
        EventFn fn;
    };

    /** Live speculation of one partition (engine-side checkpoint). */
    struct Speculation
    {
        bool pending = false;
        /** Set while speculated events are executing (mail routing). */
        bool executing = false;
        /** Blocks re-speculation until conservative progress is made. */
        bool blocked = false;
        /** Engine checkpoint taken at speculation start. */
        Cycles baseNow = 0;
        std::uint32_t baseSlot = 0;
        std::uint64_t baseExecuted = 0;
        std::uint64_t baseScheduled = 0;
        std::uint64_t baseMailed = 0;
        std::size_t baseMaxPending = 0;
        /** Head frozen into published while the speculation lives. */
        Cycles basePublish = 0;
        /**
         * Maximum (when, stamp) key over the episode's speculated
         * events. Not simply the last one executed: a same-cycle child
         * carries its own slot's (smaller) stamp, so the maximum can
         * belong to an earlier pop.
         */
        Cycles lastWhen = 0;
        std::uint64_t lastStamp = 0;
        /** Bound seen last round; a non-advancing bound forces rollback. */
        Cycles prevBound = 0;
        /** Pre-execution clones in execution order. */
        std::vector<SpecEvent> log;
        /** Held-back outgoing mail, one vector per destination. */
        std::vector<std::vector<Entry>> heldOut;
        /** Mail drained while the speculation was pending. */
        std::vector<Entry> heldIn;
        /** Stamp-counter watermarks, indexed by slot (owned slots). */
        std::vector<std::uint64_t> baseSeq;
    };

    struct alignas(64) Partition
    {
        std::vector<Entry> heap;
        Cycles now = 0;
        std::uint32_t slot = 0;
        std::uint64_t executed = 0;
        std::uint64_t scheduled = 0;
        std::uint64_t mailed = 0;
        std::uint64_t windows = 0;
        std::uint64_t widened = 0;
        std::uint64_t speculated = 0;
        std::uint64_t rollbacks = 0;
        std::uint64_t commits = 0;
        std::size_t maxPending = 0;
        std::exception_ptr error;
        Speculation spec;
        /** Forced-straggler injection armed (check::FaultPlan). */
        bool forceStraggler = false;
        /** Earliest pending event time, published at the barrier. */
        std::atomic<Cycles> published{0};
    };

    static Cycles
    satAdd(Cycles a, Cycles b)
    {
        const Cycles s = a + b;
        return s < a ? noEvent : s;
    }

    Cycles
    edge(int from, int to) const
    {
        return lookahead_[static_cast<std::size_t>(from) * numPartitions_ +
                          to];
    }

    /** Called by EventQueue while the run is live. */
    void parallelSchedule(std::uint32_t exec_slot, Cycles when, EventFn fn);

    void workerLoop(int p);
    /**
     * Fixpoint of the per-partition earliest-possible-event bound from
     * the published heads; fills @p earliest (numPartitions_ entries).
     */
    void computeEarliest(Cycles *earliest) const;
    /** Window bound for partition @p p given the fixpoint values. */
    Cycles windowBound(int p, const Cycles *earliest) const;
    void executeWindow(Partition &part, Cycles window_end);
    void pushLocal(Partition &part, Entry entry);
    /** Move a whole mailbox into the heap with one batched repair. */
    void drainBox(Partition &part, std::vector<Entry> &box);
    /** Append entries to the heap and repair it in one pass. */
    void mergeEntries(Partition &part, std::vector<Entry> &entries);

    /** Begin speculating past the sound bound (optimism mode). */
    void maybeSpeculate(int p, Cycles bound);
    /** Resolve a pending speculation against this round's bound. */
    void resolveSpeculation(int p, Cycles bound);
    void commitSpeculation(int p);
    void rollbackSpeculation(int p);

    EventQueue &eq_;
    const std::vector<int> partitionOf_;
    const int numPartitions_;
    const std::vector<Cycles> lookahead_;
    const PdesWindowPolicy policy_;
    const int optimism_;
    PdesStateSaver *const saver_;
    /** Minimum off-diagonal lookahead (legacy global bound). */
    Cycles minLookahead_ = noEvent;
    /** Per-partition min round trip through a peer (commit horizon). */
    std::vector<Cycles> minRoundTrip_;
    /** Slots owned by each partition (built in run()). */
    std::vector<std::vector<std::uint32_t>> slotsOf_;
    std::vector<Partition> parts_;
    /** Mailboxes, indexed [src * P + dst]; single producer per window. */
    std::vector<std::vector<Entry>> boxes_;
    Barrier barrier_;
    std::atomic<bool> abort_{false};
    PdesRunStats stats_;
};

} // namespace swsm

#endif // SWSM_SIM_PDES_HH
