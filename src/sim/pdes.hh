/**
 * @file
 * Conservative, time-windowed parallel discrete-event engine.
 *
 * A PdesEngine partitions an EventQueue's execution slots (cluster
 * nodes) across worker threads and advances all partitions in bounded
 * time windows. The window length is the minimum cross-partition
 * latency ("lookahead"): in the machine layer, the smallest possible
 * gap between the sender-side network dispatch event and the arrival
 * it schedules at the receiver (NI occupancy + link latency + minimum
 * transfer time, computed once per run from CommParams by
 * Network::crossLookahead()).
 *
 * Each window round:
 *
 *   1. every worker drains the mailboxes addressed to its partition
 *      (messages produced in the previous window) into its local heap,
 *   2. publishes the timestamp of its earliest pending event and waits
 *      at a barrier,
 *   3. every worker independently computes the same global minimum T
 *      and executes its local events with timestamp in [T, T + L),
 *      where L is the lookahead; cross-partition schedules are appended
 *      to single-producer mailbox vectors,
 *   4. all workers wait at a second barrier and loop.
 *
 * Safety: a cross-partition event scheduled by an event executing at
 * time t' >= T arrives no earlier than t' + L >= T + L, i.e. beyond the
 * current window — so when a partition executes its events below T + L,
 * every message that could land there has already been drained. The
 * engine checks this invariant on every send and drain under
 * SWSM_CHECK.
 *
 * Determinism: events carry (when, stamp) with stamp =
 * (scheduling slot << 48 | per-slot seq) assigned by the EventQueue.
 * Per-slot event sequences are identical to the serial kernel's by
 * induction, so each partition executes the serial order restricted to
 * its slots, and every simulated time, counter and emitted byte is
 * bit-identical to a serial run. The mailboxes need no locks: each
 * (src, dst) vector has exactly one producer per window and is consumed
 * only after the barrier, whose acquire/release ordering publishes the
 * entries.
 */

#ifndef SWSM_SIM_PDES_HH
#define SWSM_SIM_PDES_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace swsm
{

/** Deterministic end-of-run statistics of one parallel run. */
struct PdesRunStats
{
    std::uint64_t partitions = 0;
    /** Window rounds executed (barrier pairs). */
    std::uint64_t windows = 0;
    /** Cross-partition events routed through mailboxes. */
    std::uint64_t mailboxEvents = 0;
    /** Events executed by the busiest partition. */
    std::uint64_t maxPartitionEvents = 0;
    /** Events executed per partition (index = partition). */
    std::vector<std::uint64_t> partitionEvents;
};

/**
 * Runs one EventQueue to completion on several worker threads.
 *
 * The engine is built per run: construct with a slot-to-partition map
 * and the lookahead, call run(), read stats(). While run() is live the
 * queue routes schedule()/now() to the engine; afterwards the queue is
 * back in serial mode with its counters merged (events scheduled/run
 * sum over partitions; max pending is the max over partitions).
 */
class PdesEngine
{
  public:
    /** Upper bound on worker threads (and stat shards, see stats.hh). */
    static constexpr int maxPartitions = 16;

    /** Sentinel for parallelSchedule: keep the scheduling slot. */
    static constexpr std::uint32_t sameSlot = ~0u;

    /**
     * @param eq queue to drain (its pending events seed the partitions)
     * @param partition_of slot -> partition, one entry per queue slot;
     *        values in [0, num_partitions)
     * @param num_partitions worker count, in [2, maxPartitions]
     * @param lookahead minimum cross-partition scheduling latency, > 0
     * @param unsound_widen widen each partition's window bound to the
     *        minimum over the *other* partitions' published heads
     *        instead of the sound global minimum. UNSOUND — a
     *        partition's published head is no floor on its future
     *        sends, so a widened window can execute past a message
     *        that has not been delivered yet; the engine detects the
     *        resulting causality violation and panics rather than
     *        silently corrupting the simulation. Off by default and
     *        reachable only through the explicit
     *        SWSM_PDES_UNSOUND_WIDEN=1 escape hatch (for measuring
     *        what the widened bound would buy, never for results).
     */
    PdesEngine(EventQueue &eq, std::vector<int> partition_of,
               int num_partitions, Cycles lookahead,
               bool unsound_widen = false);
    ~PdesEngine();

    PdesEngine(const PdesEngine &) = delete;
    PdesEngine &operator=(const PdesEngine &) = delete;

    /**
     * Run until every partition drains. Rethrows the first (by
     * partition index) exception thrown by an event. Returns the number
     * of events executed.
     */
    std::uint64_t run();

    /** Deterministic run statistics (valid after run()). */
    const PdesRunStats &stats() const { return stats_; }

    /**
     * Verify every mailbox was drained (SWSM_CHECK). A clean run always
     * drains them — an entry left behind means a window advanced past
     * an undelivered message, which breaks the conservative contract.
     */
    void checkDrained() const;

    /** Partition index of the calling worker thread (-1 off-engine). */
    static int currentPartition();

  private:
    friend class EventQueue;

    using Entry = EventQueue::Entry;

    /** Sense-reversing spin barrier for the window rounds. */
    class Barrier
    {
      public:
        explicit Barrier(int parties) : parties_(parties) {}
        void wait();

      private:
        const int parties_;
        std::atomic<int> arrived_{0};
        std::atomic<int> sense_{0};
    };

    struct alignas(64) Partition
    {
        std::vector<Entry> heap;
        Cycles now = 0;
        std::uint32_t slot = 0;
        std::uint64_t executed = 0;
        std::uint64_t scheduled = 0;
        std::uint64_t mailed = 0;
        std::uint64_t windows = 0;
        std::size_t maxPending = 0;
        std::exception_ptr error;
        /** Earliest pending event time, published at the barrier. */
        std::atomic<Cycles> published{0};
    };

    static constexpr Cycles noEvent = ~static_cast<Cycles>(0);

    /** Called by EventQueue while the run is live. */
    void parallelSchedule(std::uint32_t exec_slot, Cycles when, EventFn fn);

    void workerLoop(int p);
    void executeWindow(Partition &part, Cycles window_end);
    void pushLocal(Partition &part, Entry entry);
    /** Move a whole mailbox into the heap with one batched repair. */
    void drainBox(Partition &part, std::vector<Entry> &box);

    EventQueue &eq_;
    const std::vector<int> partitionOf_;
    const int numPartitions_;
    const Cycles lookahead_;
    const bool unsoundWiden_;
    std::vector<Partition> parts_;
    /** Mailboxes, indexed [src * P + dst]; single producer per window. */
    std::vector<std::vector<Entry>> boxes_;
    Barrier barrier_;
    std::atomic<bool> abort_{false};
    PdesRunStats stats_;
};

} // namespace swsm

#endif // SWSM_SIM_PDES_HH
