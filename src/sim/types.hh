/**
 * @file
 * Fundamental simulation types shared by every layer of the stack.
 *
 * All simulated time is expressed in processor cycles of the modeled
 * 1-IPC node CPU (the paper normalizes every cost to processor cycles).
 */

#ifndef SWSM_SIM_TYPES_HH
#define SWSM_SIM_TYPES_HH

#include <cstdint>

namespace swsm
{

/** Simulated time in processor cycles. */
using Cycles = std::uint64_t;

/** Identifier of a cluster node (one uniprocessor per node). */
using NodeId = std::int32_t;

/** Global shared-address-space byte address. */
using GlobalAddr = std::uint64_t;

/** Identifier of a shared page (GlobalAddr / page size). */
using PageId = std::uint64_t;

/** Identifier of a fine-grained coherence block. */
using BlockId = std::uint64_t;

/** Identifier of a lock object in the shared programming model. */
using LockId = std::int32_t;

/** Identifier of a barrier object in the shared programming model. */
using BarrierId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/**
 * Execution-time attribution buckets (the paper's Figure 4 breakdowns).
 *
 * Every cycle of a simulated processor's wall time lands in exactly one
 * bucket. The protocol buckets are split so Table 4 (diff computation vs.
 * protocol handler execution) can be reproduced.
 */
enum class TimeBucket : int
{
    Busy = 0,       ///< application compute + 1-IPC issue cycles
    StallLocal,     ///< local cache-miss stalls
    DataWait,       ///< stalled on remote page/block fetch
    LockWait,       ///< waiting to acquire a lock
    BarrierWait,    ///< waiting at a barrier
    ProtoHandler,   ///< executing protocol message handlers
    ProtoDiff,      ///< computing or applying diffs
    ProtoTwin,      ///< creating twins
    ProtoProtect,   ///< page protection changes (mprotect)
    ProtoOther,     ///< remaining protocol activity
    NumBuckets
};

/** Number of TimeBucket values. */
constexpr int numTimeBuckets = static_cast<int>(TimeBucket::NumBuckets);

/** Short printable name of a bucket ("busy", "lock", ...). */
const char *timeBucketName(TimeBucket b);

/** True for the protocol-activity buckets (handler/diff/twin/...). */
constexpr bool
isProtoBucket(TimeBucket b)
{
    return b >= TimeBucket::ProtoHandler && b <= TimeBucket::ProtoOther;
}

/** Bytes per machine word for diff/twin accounting (paper: 32-bit x86). */
constexpr std::uint32_t wordBytes = 4;

} // namespace swsm

#endif // SWSM_SIM_TYPES_HH
