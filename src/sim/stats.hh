/**
 * @file
 * Lightweight statistics package for simulation components.
 *
 * Components register named statistics in a StatGroup; the harness dumps
 * groups hierarchically. Three statistic kinds cover the paper's needs:
 * counters (message counts), accumulators (per-processor time buckets,
 * message sizes) and histograms (latency distributions).
 */

#ifndef SWSM_SIM_STATS_HH
#define SWSM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace swsm
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Calling thread's statistics shard, in [0, maxStatShards). 0 for
 * ordinary (serial) threads; the parallel event engine (sim/pdes.hh)
 * assigns each worker its partition index so that per-shard counters
 * need no synchronization.
 */
int statShard();
void setStatShard(int shard);

/**
 * Counter sharded across the parallel event engine's worker threads.
 *
 * inc() adds to the calling thread's shard (cache-line padded, no
 * atomics); value() sums the shards and must only be called while no
 * concurrent inc() is possible (between runs). The final sum is
 * independent of how increments were distributed, so a partitioned run
 * reports exactly the serial totals. Drop-in for Counter in components
 * whose events execute on different partitions (protocol stats, the
 * network and message layer).
 */
class ShardedCounter
{
  public:
    static constexpr int maxStatShards = 16;

    void inc(std::uint64_t n = 1) { shards_[statShard()].v += n; }

    void
    reset()
    {
        for (Shard &s : shards_)
            s.v = 0;
    }

    std::uint64_t
    value() const
    {
        std::uint64_t sum = 0;
        for (const Shard &s : shards_)
            sum += s.v;
        return sum;
    }

    /**
     * One shard's raw value. Only the shard's owning worker (or a
     * quiescent run) may read or write it; the machine-level
     * speculation saver uses the pair to checkpoint and roll back the
     * speculating partition's shard without touching its peers'.
     */
    std::uint64_t shardValue(int shard) const { return shards_[shard].v; }
    void setShardValue(int shard, std::uint64_t v) { shards_[shard].v = v; }

  private:
    struct alignas(64) Shard
    {
        std::uint64_t v = 0;
    };

    Shard shards_[maxStatShards];
};

/** Running sum / count / min / max / mean of samples. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Power-of-two bucketed histogram of non-negative samples. */
class Histogram
{
  public:
    /** @param num_buckets bucket i holds samples in [2^(i-1), 2^i). */
    explicit Histogram(unsigned num_buckets = 32)
        : buckets(num_buckets, 0)
    {}

    void sample(std::uint64_t v);
    void reset();

    std::uint64_t bucketCount(unsigned i) const { return buckets.at(i); }
    unsigned numBuckets() const { return buckets.size(); }
    std::uint64_t totalSamples() const { return total; }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
};

/**
 * A named collection of statistics belonging to one component.
 *
 * StatGroup does not own the statistics; components embed them as members
 * and register pointers. Groups nest via child registration.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c);
    void addAccumulator(const std::string &name, const Accumulator *a);
    void addChild(const StatGroup *g);

    const std::string &name() const { return name_; }

    /** Dump all statistics, one "<prefix>.<name> <value>" line each. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Accumulator *>> accumulators;
    std::vector<const StatGroup *> children;
};

} // namespace swsm

#endif // SWSM_SIM_STATS_HH
