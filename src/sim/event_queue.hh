/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated cluster. Events are callbacks
 * scheduled at absolute cycle times; ties are broken deterministically by
 * insertion sequence so that simulations are bit-reproducible.
 */

#ifndef SWSM_SIM_EVENT_QUEUE_HH
#define SWSM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace swsm
{

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Priority queue of timed callbacks with deterministic tie-breaking.
 *
 * The queue owns the notion of "now": the timestamp of the event currently
 * (or most recently) being executed. Scheduling into the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (cycles). */
    Cycles now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /**
     * Schedule @p fn at absolute time @p when.
     * @pre when >= now()
     */
    void schedule(Cycles when, EventFn fn);

    /** Schedule @p fn @p delta cycles from now. */
    void scheduleAfter(Cycles delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Execute the earliest pending event, advancing now().
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /** Run until the queue drains. Returns the number of events run. */
    std::uint64_t run();

    /**
     * Run until the queue drains or @p limit events have fired.
     * Used by tests and as a runaway guard.
     */
    std::uint64_t run(std::uint64_t limit);

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Cycles now_ = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace swsm

#endif // SWSM_SIM_EVENT_QUEUE_HH
