/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated cluster. Events are callbacks
 * scheduled at absolute cycle times; ties are broken deterministically by
 * a (slot, per-slot sequence) stamp so that simulations are
 * bit-reproducible — and, crucially, so that the tie order does not
 * depend on how the event set is partitioned across worker threads (see
 * sim/pdes.hh).
 *
 * The kernel schedules millions of events per run, so the callback type
 * is a small-buffer EventFn rather than std::function: every callback the
 * simulator itself creates fits in the inline storage and scheduling one
 * costs no heap allocation. The underlying binary heap is an explicit
 * std::vector (reserved up front) instead of std::priority_queue, so
 * entries can be moved out without const_cast and the backing storage
 * can be pre-sized.
 *
 * Slots and execution contexts: every event belongs to a slot (in the
 * machine layer, the node whose state it touches). schedule() inherits
 * the slot of the event currently executing; scheduleTo() targets an
 * explicit slot and is the only way an event crosses slots. Each slot
 * carries its own monotonically increasing sequence counter, and an
 * event's tie-break stamp is (scheduling slot << 48) | per-slot seq.
 * Because slot s's events always execute in the same relative order, the
 * stamps — and therefore the global (when, stamp) execution order — are
 * identical whether the queue runs serially or partitioned.
 *
 * An EventQueue is confined to one thread in serial mode. In parallel
 * mode a PdesEngine temporarily takes over scheduling (see sim/pdes.hh);
 * the queue itself remains externally unsynchronized, and the parallel
 * sweep engine gives each concurrent simulation its own queue.
 */

#ifndef SWSM_SIM_EVENT_QUEUE_HH
#define SWSM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace swsm
{

class MetricsRegistry;
class PdesEngine;

/**
 * Move-only callback with inline storage for the event hot path.
 *
 * Callables up to inlineBytes are stored in place; larger ones fall
 * back to a single heap allocation. inlineBytes is sized to hold the
 * kernel's largest hot-path lambda, the network's local-dispatch
 * closure, at 72 bytes — net/network.cc static_asserts that it still
 * fits. Unlike std::function it supports move-only callables, so
 * completion callbacks can be moved — not copied — into the queue.
 */
class EventFn
{
  public:
    static constexpr std::size_t inlineBytes = 72;

    EventFn() noexcept : ops(nullptr) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(store)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(store) = new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept : ops(other.ops)
    {
        if (ops)
            ops->relocate(other.store, store);
        other.ops = nullptr;
    }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops = other.ops;
            if (ops)
                ops->relocate(other.store, store);
            other.ops = nullptr;
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    void
    operator()()
    {
        ops->invoke(store);
    }

    /**
     * Return a copy of this callback, or an empty EventFn when the
     * underlying callable is not copy-constructible. The parallel
     * kernel clones events *before* executing them speculatively so a
     * rollback can re-insert a pristine copy (an executed closure may
     * have moved out of its captures); a non-clonable event therefore
     * acts as a speculation barrier (see sim/pdes.cc).
     */
    EventFn
    clone() const
    {
        EventFn copy;
        if (ops != nullptr && ops->clone != nullptr) {
            ops->clone(store, copy.store);
            copy.ops = ops;
        }
        return copy;
    }

    /** True when clone() returns a usable copy. */
    bool
    canClone() const noexcept
    {
        return ops != nullptr && ops->clone != nullptr;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src and destroy src. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
        /** Copy-construct dst from src; null when Fn is move-only. */
        void (*clone)(const void *src, void *dst);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn, bool Inline>
    static constexpr auto
    cloneOp()
    {
        using CloneFn = void (*)(const void *, void *);
        if constexpr (!std::is_copy_constructible_v<Fn>) {
            return static_cast<CloneFn>(nullptr);
        } else if constexpr (Inline) {
            return static_cast<CloneFn>([](const void *src, void *dst) {
                ::new (dst) Fn(*static_cast<const Fn *>(src));
            });
        } else {
            return static_cast<CloneFn>([](const void *src, void *dst) {
                *static_cast<Fn **>(dst) =
                    new Fn(**static_cast<Fn *const *>(src));
            });
        }
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *src, void *dst) {
            auto *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        cloneOp<Fn, true>(),
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *src, void *dst) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
        cloneOp<Fn, false>(),
    };

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(store);
            ops = nullptr;
        }
    }

    const Ops *ops;
    alignas(std::max_align_t) unsigned char store[inlineBytes];
};

/**
 * Deliberately non-clonable callable wrapper: a speculation barrier.
 *
 * The parallel kernel refuses to speculate past any event whose
 * EventFn cannot be cloned (see EventFn::clone). Wrapping a copyable
 * lambda in specBarrier() deletes its copy constructor without
 * changing size or behaviour, turning the event into a hard barrier.
 * The machine layer wraps every fiber-resume event this way: fiber
 * stacks cannot be checkpointed, so no fiber may run inside a
 * speculation window — the spans *between* context switches (handler
 * ticks, message deliveries, network pipeline stages) speculate, and
 * the fibers themselves never need rollback.
 */
template <typename Fn>
class SpecBarrierFn
{
  public:
    explicit SpecBarrierFn(Fn fn) noexcept(
        std::is_nothrow_move_constructible_v<Fn>)
        : fn_(std::move(fn))
    {
    }

    SpecBarrierFn(SpecBarrierFn &&) noexcept = default;
    SpecBarrierFn(const SpecBarrierFn &) = delete;
    SpecBarrierFn &operator=(SpecBarrierFn &&) = delete;
    SpecBarrierFn &operator=(const SpecBarrierFn &) = delete;

    void operator()() { fn_(); }

  private:
    Fn fn_;
};

/** Wrap @p fn so the resulting event acts as a speculation barrier. */
template <typename Fn>
SpecBarrierFn<std::decay_t<Fn>>
specBarrier(Fn &&fn)
{
    return SpecBarrierFn<std::decay_t<Fn>>(std::forward<Fn>(fn));
}

/**
 * Priority queue of timed callbacks with deterministic tie-breaking.
 *
 * The queue owns the notion of "now": the timestamp of the event currently
 * (or most recently) being executed. Scheduling into the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (cycles). */
    Cycles
    now() const
    {
        if (pdes_ != nullptr) [[unlikely]]
            return parallelNow();
        return now_;
    }

    /** Slot of the event currently (or most recently) executing. */
    std::uint32_t
    currentSlot() const
    {
        if (pdes_ != nullptr) [[unlikely]]
            return parallelSlot();
        return curSlot_;
    }

    /** Number of pending events (serial mode). */
    std::size_t pending() const { return heap.size(); }

    /** True when no events remain (serial mode). */
    bool empty() const { return heap.empty(); }

    /** Pre-size the backing storage for @p events pending events. */
    void reserve(std::size_t events) { heap.reserve(events); }

    /**
     * Declare the number of execution slots (e.g. cluster nodes). Must
     * be called before any event for a slot >= the current count is
     * scheduled; growing the count does not disturb already-assigned
     * stamps. Slot 0 always exists (the default context).
     */
    void setNumSlots(std::uint32_t slots);

    /** Number of declared execution slots. */
    std::uint32_t numSlots() const
    {
        return static_cast<std::uint32_t>(slotSeq_.size());
    }

    /**
     * Schedule @p fn at absolute time @p when in the current slot's
     * context (the event will execute with currentSlot() unchanged).
     * @pre when >= now()
     */
    void schedule(Cycles when, EventFn fn);

    /**
     * Schedule @p fn at absolute time @p when to execute in @p slot's
     * context. This is the only way work crosses slots — in the machine
     * layer, the network's sender-side dispatch targeting the receiving
     * node. The tie-break stamp still comes from the *scheduling* slot.
     * @pre when >= now(), slot < numSlots()
     */
    void scheduleTo(std::uint32_t slot, Cycles when, EventFn fn);

    /** Schedule @p fn @p delta cycles from now. */
    void scheduleAfter(Cycles delta, EventFn fn)
    {
        schedule(now() + delta, std::move(fn));
    }

    /**
     * Execute the earliest pending event, advancing now().
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /** Run until the queue drains. Returns the number of events run. */
    std::uint64_t run();

    /**
     * Run until the queue drains or @p limit events have fired.
     * Used by tests and as a runaway guard.
     */
    std::uint64_t run(std::uint64_t limit);

    /** Events scheduled since construction. */
    std::uint64_t eventsScheduled() const { return scheduled_; }

    /** Events executed since construction. */
    std::uint64_t eventsRun() const { return executed_; }

    /** High-water mark of pending events (heap depth). */
    std::uint64_t maxPending() const { return maxPending_; }

    /** Register the kernel's scheduling statistics under "sim.*". */
    void registerMetrics(MetricsRegistry &registry) const;

  private:
    friend class PdesEngine;

    struct Entry
    {
        Cycles when;
        /** (scheduling slot << 48) | per-slot sequence; unique. */
        std::uint64_t stamp;
        /** Slot whose context the event executes in. */
        std::uint32_t execSlot;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.stamp > b.stamp;
        }
    };

    /**
     * Per-slot stamp counter, cache-line padded: in parallel mode each
     * slot's counter is touched only by the worker owning that slot's
     * partition, and padding keeps neighbouring slots from false
     * sharing on the scheduling hot path.
     */
    struct alignas(64) SlotSeq
    {
        std::uint64_t next = 0;
    };

    static constexpr unsigned stampSlotShift = 48;

    std::uint64_t
    makeStamp(std::uint32_t slot)
    {
        return (static_cast<std::uint64_t>(slot) << stampSlotShift) |
               slotSeq_[slot].next++;
    }

    /** Common serial-mode insert. */
    void push(Cycles when, std::uint64_t stamp, std::uint32_t exec_slot,
              EventFn fn);

    [[noreturn]] void pastPanic(Cycles when, Cycles now) const;

    /** Parallel-mode accessors (defined in pdes.cc). */
    Cycles parallelNow() const;
    std::uint32_t parallelSlot() const;

    std::vector<Entry> heap;
    Cycles now_ = 0;
    std::uint32_t curSlot_ = 0;
    std::vector<SlotSeq> slotSeq_;
    /** Non-null only while a PdesEngine::run is live on this queue. */
    PdesEngine *pdes_ = nullptr;
    std::uint64_t scheduled_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t maxPending_ = 0;
};

} // namespace swsm

#endif // SWSM_SIM_EVENT_QUEUE_HH
