#include "log.hh"

#include <atomic>
#include <cstdarg>

namespace swsm
{

namespace
{
// Atomic: the parallel sweep engine logs from worker threads. This is
// the only mutable global in the simulation core; everything else is
// confined to one Cluster (and thus one worker thread) per run.
std::atomic<int> verbosity{0};
} // namespace

namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace log_detail

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    if (verbosity >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (verbosity >= 1)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setLogVerbosity(int level)
{
    verbosity = level;
}

int
logVerbosity()
{
    return verbosity;
}

} // namespace swsm
