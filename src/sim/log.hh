/**
 * @file
 * Status/error reporting helpers in the gem5 spirit.
 *
 * fatal()  - the condition is the user's fault (bad configuration);
 *            throws swsm::FatalError so library users and tests can catch.
 * panic()  - the condition is a simulator bug; aborts.
 * warn()/inform() - non-fatal status messages on stderr.
 */

#ifndef SWSM_SIM_LOG_HH
#define SWSM_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace swsm
{

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace log_detail
{
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace log_detail

/** Report a user error and throw FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/** Set verbosity: 0 = silent (default for tests), 1 = inform+warn. */
void setLogVerbosity(int level);

/** Current verbosity. */
int logVerbosity();

} // namespace swsm

#define SWSM_FATAL(...) ::swsm::fatal(::swsm::log_detail::format(__VA_ARGS__))
#define SWSM_PANIC(...) ::swsm::panic(::swsm::log_detail::format(__VA_ARGS__))
#define SWSM_WARN(...) ::swsm::warn(::swsm::log_detail::format(__VA_ARGS__))
#define SWSM_INFORM(...) \
    ::swsm::inform(::swsm::log_detail::format(__VA_ARGS__))

#endif // SWSM_SIM_LOG_HH
