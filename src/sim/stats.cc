#include "stats.hh"

namespace swsm
{

namespace
{
thread_local int tlsStatShard = 0;
} // namespace

int
statShard()
{
    return tlsStatShard;
}

void
setStatShard(int shard)
{
    tlsStatShard = shard;
}

void
Histogram::sample(std::uint64_t v)
{
    unsigned bucket = 0;
    while (bucket + 1 < buckets.size() && v >= (1ULL << bucket))
        ++bucket;
    ++buckets[bucket];
    ++total;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
}

void
StatGroup::addCounter(const std::string &name, const Counter *c)
{
    counters.emplace_back(name, c);
}

void
StatGroup::addAccumulator(const std::string &name, const Accumulator *a)
{
    accumulators.emplace_back(name, a);
}

void
StatGroup::addChild(const StatGroup *g)
{
    children.push_back(g);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &[name, c] : counters)
        os << base << "." << name << " " << c->value() << "\n";
    for (const auto &[name, a] : accumulators) {
        os << base << "." << name << ".sum " << a->sum() << "\n";
        os << base << "." << name << ".mean " << a->mean() << "\n";
        os << base << "." << name << ".count " << a->count() << "\n";
    }
    for (const auto *child : children)
        child->dump(os, base);
}

} // namespace swsm
