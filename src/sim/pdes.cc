#include "pdes.hh"

#include <algorithm>
#include <thread>

#include "check/check.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace swsm
{

namespace
{

/** Calling thread's engine + partition while inside workerLoop. */
struct TlsWorker
{
    PdesEngine *engine = nullptr;
    int p = -1;
};

thread_local TlsWorker tlsWorker;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

void
PdesEngine::Barrier::wait()
{
    const int s = sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
        arrived_.store(0, std::memory_order_relaxed);
        sense_.store(s ^ 1, std::memory_order_release);
    } else {
        // Spin briefly for the dedicated-core case, then yield on
        // every iteration: on an oversubscribed host (more workers
        // than cores) the releasing thread needs our timeslice, and
        // spinning through it multiplies every window's cost.
        const std::uint32_t spin_limit =
            std::thread::hardware_concurrency() >=
                    static_cast<unsigned>(parties_)
                ? 4096u
                : 0u;
        std::uint32_t spins = 0;
        while (sense_.load(std::memory_order_acquire) == s) {
            if (++spins > spin_limit)
                std::this_thread::yield();
            else
                cpuRelax();
        }
    }
}

PdesConfig
PdesConfig::uniform(int num_partitions, Cycles lookahead)
{
    PdesConfig config;
    config.lookahead.assign(
        static_cast<std::size_t>(num_partitions) * num_partitions,
        lookahead);
    return config;
}

PdesEngine::PdesEngine(EventQueue &eq, std::vector<int> partition_of,
                       int num_partitions, PdesConfig config)
    : eq_(eq), partitionOf_(std::move(partition_of)),
      numPartitions_(num_partitions),
      lookahead_(std::move(config.lookahead)), policy_(config.policy),
      optimism_(config.saver != nullptr ? config.optimism : 0),
      saver_(config.saver),
      parts_(static_cast<std::size_t>(num_partitions)),
      boxes_(static_cast<std::size_t>(num_partitions) * num_partitions),
      barrier_(num_partitions)
{
    if (numPartitions_ < 2 || numPartitions_ > maxPartitions)
        SWSM_PANIC("PdesEngine needs 2..%d partitions, got %d",
                   maxPartitions, numPartitions_);
    if (lookahead_.size() !=
        static_cast<std::size_t>(numPartitions_) * numPartitions_) {
        SWSM_PANIC("lookahead matrix has %zu entries, need %d x %d",
                   lookahead_.size(), numPartitions_, numPartitions_);
    }
    if (optimism_ < 0)
        SWSM_PANIC("PdesEngine optimism must be >= 0, got %d", optimism_);
    minRoundTrip_.assign(static_cast<std::size_t>(numPartitions_), noEvent);
    for (int from = 0; from < numPartitions_; ++from) {
        for (int to = 0; to < numPartitions_; ++to) {
            if (from == to)
                continue;
            const Cycles l = edge(from, to);
            if (l == 0) {
                SWSM_PANIC("PdesEngine needs positive lookahead, "
                           "entry [%d][%d] is zero",
                           from, to);
            }
            minLookahead_ = std::min(minLookahead_, l);
            minRoundTrip_[from] = std::min(
                minRoundTrip_[from], satAdd(l, edge(to, from)));
        }
    }
    if (minLookahead_ == noEvent)
        SWSM_PANIC("PdesEngine lookahead matrix has no finite edge");
    if (partitionOf_.size() < eq_.numSlots())
        SWSM_PANIC("partition map covers %zu slots, queue has %u",
                   partitionOf_.size(), eq_.numSlots());
    for (const int p : partitionOf_) {
        if (p < 0 || p >= numPartitions_)
            SWSM_PANIC("slot mapped to partition %d outside [0, %d)", p,
                       numPartitions_);
    }
}

PdesEngine::PdesEngine(EventQueue &eq, std::vector<int> partition_of,
                       int num_partitions, Cycles lookahead)
    : PdesEngine(eq, std::move(partition_of), num_partitions,
                 PdesConfig::uniform(num_partitions, lookahead))
{
}

PdesEngine::~PdesEngine() = default;

void
PdesEngine::pushLocal(Partition &part, Entry entry)
{
    part.heap.push_back(std::move(entry));
    std::push_heap(part.heap.begin(), part.heap.end(),
                   EventQueue::Later{});
    if (part.heap.size() > part.maxPending)
        part.maxPending = part.heap.size();
}

void
PdesEngine::mergeEntries(Partition &part, std::vector<Entry> &entries)
{
    // Append the batch, then repair the heap in one pass: for small
    // batches an incremental push_heap preserves the O(k log n) bound;
    // once the batch is a sizable fraction of the heap a single
    // make_heap is cheaper (O(n)). Heap layout does not affect
    // determinism — events execute in (when, stamp) order, a strict
    // total order.
    auto &heap = part.heap;
    const std::size_t start = heap.size();
    for (Entry &e : entries)
        heap.push_back(std::move(e));
    entries.clear();
    const std::size_t added = heap.size() - start;
    if (added == 0)
        return;
    if (added > start / 4) {
        std::make_heap(heap.begin(), heap.end(), EventQueue::Later{});
    } else {
        for (std::size_t i = start + 1; i <= heap.size(); ++i)
            std::push_heap(heap.begin(), heap.begin() + i,
                           EventQueue::Later{});
    }
    if (heap.size() > part.maxPending)
        part.maxPending = heap.size();
}

void
PdesEngine::drainBox(Partition &part, std::vector<Entry> &box)
{
    // While a speculation is pending, incoming mail is held aside
    // instead of merged: the heap is speculative, and held mail is
    // what the resolution step scans for stragglers. The causality
    // floor is then the *checkpoint* clock — mail below the
    // speculative clock is a straggler (handled by rollback), not a
    // protocol violation.
    Speculation &spec = part.spec;
    const Cycles floor = spec.pending ? spec.baseNow : part.now;
    for (Entry &e : box) {
        // Always-on causality check (not just SWSM_CHECK): with the
        // sound window bound this is dead code by construction, and
        // it is the check that catches any unsound widening executing
        // a window past an undelivered message.
        if (e.when < floor) {
            check::violation(
                "pdes window advanced past an undelivered "
                "cross-partition message (when=%llu now=%llu)",
                static_cast<unsigned long long>(e.when),
                static_cast<unsigned long long>(floor));
        }
    }
    if (spec.pending) {
        for (Entry &e : box)
            spec.heldIn.push_back(std::move(e));
        box.clear();
        return;
    }
    mergeEntries(part, box);
}

void
PdesEngine::parallelSchedule(std::uint32_t exec_slot, Cycles when,
                             EventFn fn)
{
    Partition &part = parts_[tlsWorker.p];
    if (exec_slot == sameSlot)
        exec_slot = part.slot;
    const std::uint64_t stamp = eq_.makeStamp(part.slot);
    ++part.scheduled;
    const int dst = partitionOf_[exec_slot];
    if (dst == tlsWorker.p) {
        if (when < part.now)
            eq_.pastPanic(when, part.now);
        pushLocal(part, Entry{when, stamp, exec_slot, std::move(fn)});
        return;
    }
    // The conservative contract: anything crossing partitions must land
    // at least one full lookahead ahead of the sender's clock, or a
    // window that already executed could have depended on it.
    if (when < satAdd(part.now, edge(tlsWorker.p, dst))) {
        SWSM_PANIC("cross-partition event violates lookahead: when=%llu "
                   "now=%llu lookahead=%llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(part.now),
                   static_cast<unsigned long long>(
                       edge(tlsWorker.p, dst)));
    }
    ++part.mailed;
    Entry entry{when, stamp, exec_slot, std::move(fn)};
    if (part.spec.executing) {
        // Speculative mail is held back until the speculation commits:
        // peers' window bounds are derived from this partition's
        // frozen pre-speculation head, so nothing downstream may
        // observe speculative sends that a rollback would retract.
        part.spec.heldOut[dst].push_back(std::move(entry));
        return;
    }
    boxes_[static_cast<std::size_t>(tlsWorker.p) * numPartitions_ + dst]
        .push_back(std::move(entry));
}

void
PdesEngine::computeEarliest(Cycles *earliest) const
{
    // Least fixpoint of
    //   E[q] = min(published[q], min over r != q of E[r] + L[r][q]),
    // i.e. the transitive closure of "who can cause what, how soon"
    // over the lookahead graph. Every worker computes this from the
    // same post-barrier published snapshot, so all agree bit-for-bit.
    // Converges in <= P passes (each pass finalizes at least the
    // smallest undetermined value); P <= 16 keeps this trivially cheap.
    for (int q = 0; q < numPartitions_; ++q) {
        earliest[q] =
            parts_[q].published.load(std::memory_order_relaxed);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int q = 0; q < numPartitions_; ++q) {
            for (int r = 0; r < numPartitions_; ++r) {
                if (r == q)
                    continue;
                const Cycles via = satAdd(earliest[r], edge(r, q));
                if (via < earliest[q]) {
                    earliest[q] = via;
                    changed = true;
                }
            }
        }
    }
}

Cycles
PdesEngine::windowBound(int p, const Cycles *earliest) const
{
    // Bound partition p by its actual incoming edges: no peer can get
    // a message to p earlier than its own earliest possible event plus
    // the minimum hop cost of the edge. p's own head does not bound p
    // — only round trips through peers do, and those are captured by
    // the fixpoint.
    Cycles bound = noEvent;
    for (int q = 0; q < numPartitions_; ++q) {
        if (q == p)
            continue;
        bound = std::min(bound, satAdd(earliest[q], edge(q, p)));
    }
    return bound;
}

void
PdesEngine::executeWindow(Partition &part, Cycles window_end)
{
    auto &heap = part.heap;
    while (!heap.empty() && heap.front().when < window_end) {
        std::pop_heap(heap.begin(), heap.end(), EventQueue::Later{});
        Entry entry = std::move(heap.back());
        heap.pop_back();
        part.now = entry.when;
        part.slot = entry.execSlot;
        ++part.executed;
        entry.fn();
    }
}

void
PdesEngine::maybeSpeculate(int p, Cycles bound)
{
    Partition &part = parts_[p];
    Speculation &spec = part.spec;
    if (optimism_ <= 0 || saver_ == nullptr || spec.blocked ||
        part.heap.empty()) {
        return;
    }
    // Commit horizon: while this partition's published head is frozen
    // at base_publish, every peer's earliest-possible-event is capped
    // by base_publish + L(p->q), so our own bound can never exceed
    // base_publish + min round trip. Events beyond the cap could never
    // commit — don't waste the checkpoint on them.
    const Cycles base_publish = part.heap.front().when;
    const Cycles cap = satAdd(base_publish, minRoundTrip_[p]);
    if (part.heap.front().when >= cap ||
        !part.heap.front().fn.canClone()) {
        return;
    }

    saver_->save(p);
    spec.pending = true;
    spec.baseNow = part.now;
    spec.baseSlot = part.slot;
    spec.baseExecuted = part.executed;
    spec.baseScheduled = part.scheduled;
    spec.baseMailed = part.mailed;
    spec.baseMaxPending = part.maxPending;
    spec.basePublish = base_publish;
    spec.prevBound = bound;
    for (const std::uint32_t slot : slotsOf_[p])
        spec.baseSeq[slot] = eq_.slotSeq_[slot].next;

    spec.executing = true;
    int n = 0;
    auto &heap = part.heap;
    while (n < optimism_ && !heap.empty() && heap.front().when < cap) {
        // Clone *before* executing: the original closure may move out
        // of its captures when invoked, so only a pre-execution copy
        // can be re-inserted on rollback. A non-clonable event is a
        // speculation barrier.
        EventFn clone = heap.front().fn.clone();
        if (!clone)
            break;
        std::pop_heap(heap.begin(), heap.end(), EventQueue::Later{});
        Entry entry = std::move(heap.back());
        heap.pop_back();
        spec.log.push_back(SpecEvent{entry.when, entry.stamp,
                                     entry.execSlot, std::move(clone)});
        part.now = entry.when;
        part.slot = entry.execSlot;
        ++part.executed;
        ++part.speculated;
        // Track the *maximum* (when, stamp) key of the episode, not the
        // key of the last event executed: a speculated event may
        // schedule a child at the same cycle whose stamp (its own
        // slot's sequence) is smaller than the parent's, and that child
        // pops next. A late arrival must be compared against the
        // largest speculated key, or it can slip between a small-stamp
        // child and its large-stamp parent and the wrong interleaving
        // commits. `when` is non-decreasing across pops, so only equal
        // cycles need the stamp max.
        if (n == 0 || entry.when > spec.lastWhen) {
            spec.lastWhen = entry.when;
            spec.lastStamp = entry.stamp;
        } else if (entry.stamp > spec.lastStamp) {
            spec.lastStamp = entry.stamp;
        }
        ++n;
        entry.fn();
    }
    spec.executing = false;
    if (n == 0) {
        // The head refused to clone after all — unwind the checkpoint.
        saver_->discard(p);
        spec.pending = false;
    }
}

void
PdesEngine::resolveSpeculation(int p, Cycles bound)
{
    Partition &part = parts_[p];
    Speculation &spec = part.spec;
    bool straggler = false;
    if (part.forceStraggler) {
        // check::FaultPlan injection: treat the first resolution as a
        // straggler to exercise the rollback path deterministically.
        part.forceStraggler = false;
        straggler = true;
    }
    for (const Entry &e : spec.heldIn) {
        // A held message ordered (when, stamp)-before the largest
        // speculated key would have interleaved below the speculative
        // horizon in the serial order.
        if (e.when < spec.lastWhen ||
            (e.when == spec.lastWhen && e.stamp < spec.lastStamp)) {
            straggler = true;
            break;
        }
    }
    if (straggler) {
        rollbackSpeculation(p);
        return;
    }
    if (spec.lastWhen < bound) {
        // Every speculated event now sits below the sound bound: no
        // message can ever arrive below it, so the speculation was
        // right.
        commitSpeculation(p);
        return;
    }
    if (bound <= spec.prevBound) {
        // Liveness: the bound stopped advancing (peers are themselves
        // waiting on our frozen head). Waiting longer cannot commit —
        // roll back and make progress conservatively.
        rollbackSpeculation(p);
        return;
    }
    spec.prevBound = bound;
}

void
PdesEngine::commitSpeculation(int p)
{
    Partition &part = parts_[p];
    Speculation &spec = part.spec;
    saver_->discard(p);
    // Release the held mail. Receivers drain boxes only at the next
    // round boundary, and their current bounds were computed from our
    // frozen pre-speculation head, so every held arrival is at or
    // beyond every peer's bound: delivery stays conservative.
    for (int dst = 0; dst < numPartitions_; ++dst) {
        auto &held = spec.heldOut[dst];
        if (held.empty())
            continue;
        auto &box =
            boxes_[static_cast<std::size_t>(p) * numPartitions_ + dst];
        for (Entry &e : held)
            box.push_back(std::move(e));
        held.clear();
    }
    mergeEntries(part, spec.heldIn);
    spec.log.clear();
    spec.pending = false;
    ++part.commits;
}

void
PdesEngine::rollbackSpeculation(int p)
{
    Partition &part = parts_[p];
    Speculation &spec = part.spec;
    spec.executing = false;
    saver_->restore(p);
    part.now = spec.baseNow;
    part.slot = spec.baseSlot;
    part.executed = spec.baseExecuted;
    part.scheduled = spec.baseScheduled;
    part.mailed = spec.baseMailed;
    part.maxPending = spec.baseMaxPending;
    // Restore the per-slot stamp counters so re-execution assigns the
    // exact stamps the serial order would, keeping determinism.
    for (const std::uint32_t slot : slotsOf_[p])
        eq_.slotSeq_[slot].next = spec.baseSeq[slot];
    // Purge everything the speculation scheduled locally: entries
    // stamped by an owned slot at or past the checkpoint watermark.
    constexpr std::uint64_t seq_mask =
        (std::uint64_t{1} << EventQueue::stampSlotShift) - 1;
    auto &heap = part.heap;
    heap.erase(
        std::remove_if(
            heap.begin(), heap.end(),
            [&](const Entry &e) {
                const auto slot = static_cast<std::uint32_t>(
                    e.stamp >> EventQueue::stampSlotShift);
                return partitionOf_[slot] == p &&
                       (e.stamp & seq_mask) >= spec.baseSeq[slot];
            }),
        heap.end());
    // Re-insert the pristine clones and the held mail; the straggler
    // (if any) now interleaves where the serial order puts it, and the
    // whole stretch re-executes through normal windows. Clones at or
    // past the watermark are skipped: those events were *scheduled by
    // the speculation itself* (children of earlier speculated events),
    // so re-executing their parents recreates them — with the restored
    // stamp counters, under the exact same stamps.
    for (SpecEvent &ev : spec.log) {
        const auto slot = static_cast<std::uint32_t>(
            ev.stamp >> EventQueue::stampSlotShift);
        if (partitionOf_[slot] == p &&
            (ev.stamp & seq_mask) >= spec.baseSeq[slot]) {
            continue;
        }
        heap.push_back(
            Entry{ev.when, ev.stamp, ev.execSlot, std::move(ev.fn)});
    }
    spec.log.clear();
    for (Entry &e : spec.heldIn)
        heap.push_back(std::move(e));
    spec.heldIn.clear();
    for (auto &held : spec.heldOut)
        held.clear();
    std::make_heap(heap.begin(), heap.end(), EventQueue::Later{});
    spec.pending = false;
    // Don't immediately re-speculate into the same stall: wait until
    // this partition makes conservative progress again.
    spec.blocked = true;
    ++part.rollbacks;
}

void
PdesEngine::workerLoop(int p)
{
    tlsWorker.engine = this;
    tlsWorker.p = p;
    const int prev_shard = statShard();
    setStatShard(p);
    Partition &part = parts_[p];

    for (;;) {
        // Deliver mail produced in the previous window. The barrier
        // preceding this point published the entries (single producer
        // per box, consumed only here). A causality violation in the
        // drain must not unwind past the barrier protocol, so it is
        // captured like an event error. The abort_ store is deferred
        // to the execute phase below: peers poll abort_ right after
        // the post-window barrier, and a store made here — between
        // that barrier and the publish barrier — can reach one
        // partition's check but not another's, leaving the survivors
        // waiting on a barrier the early exiter never joins.
        bool drain_error = false;
        try {
            for (int src = 0; src < numPartitions_; ++src) {
                drainBox(part, boxes_[static_cast<std::size_t>(src) *
                                          numPartitions_ +
                                      p]);
            }
        } catch (...) {
            if (!part.error)
                part.error = std::current_exception();
            drain_error = true;
        }

        // While a speculation is pending the partition publishes the
        // minimum of its pre-speculation head and any held incoming
        // mail: a rollback re-executes from exactly that state — held
        // mail included — so peers must not trust anything later. (The
        // frozen head alone is unsound: a straggler sitting in heldIn
        // is below it, and the events it spawns after the rollback may
        // land below bounds peers derived from the frozen head.)
        Cycles pub;
        if (part.spec.pending) {
            pub = part.spec.basePublish;
            for (const Entry &e : part.spec.heldIn)
                pub = std::min(pub, e.when);
        } else {
            pub = part.heap.empty() ? noEvent : part.heap.front().when;
        }
        part.published.store(pub, std::memory_order_relaxed);
        barrier_.wait();

        // Every worker reads the same published values, so they all
        // agree on the same bounds (and on termination) without
        // further communication.
        Cycles t_all = noEvent;
        for (int q = 0; q < numPartitions_; ++q) {
            t_all = std::min(
                t_all, parts_[q].published.load(std::memory_order_relaxed));
        }
        if (t_all == noEvent)
            break;

        const Cycles legacy_bound = satAdd(t_all, minLookahead_);
        Cycles bound = legacy_bound;
        if (policy_ == PdesWindowPolicy::PerDest) {
            Cycles earliest[maxPartitions];
            computeEarliest(earliest);
            bound = windowBound(p, earliest);
            if (bound > legacy_bound)
                ++part.widened;
        }

        ++part.windows;
        if (drain_error) {
            // Surface the drain failure from inside the execute phase:
            // every peer's next abort_ poll sits after the coming
            // barrier, so the whole gang agrees to stop this round.
            abort_.store(true, std::memory_order_relaxed);
        } else if (!abort_.load(std::memory_order_relaxed)) {
            try {
                if (part.spec.pending)
                    resolveSpeculation(p, bound);
                if (!part.spec.pending) {
                    const std::uint64_t before = part.executed;
                    executeWindow(part, bound);
                    if (part.executed != before)
                        part.spec.blocked = false;
                    maybeSpeculate(p, bound);
                }
            } catch (...) {
                if (!part.error)
                    part.error = std::current_exception();
                if (part.spec.pending) {
                    try {
                        rollbackSpeculation(p);
                    } catch (...) {
                        // Keep the original error; the merge below
                        // reports sound-but-stale state.
                    }
                }
                abort_.store(true, std::memory_order_relaxed);
            }
        }
        barrier_.wait();
        if (abort_.load(std::memory_order_relaxed))
            break;
    }

    // An abort can strand a pending speculation; leave sound state
    // behind for the merge.
    if (part.spec.pending) {
        try {
            rollbackSpeculation(p);
        } catch (...) {
            if (!part.error)
                part.error = std::current_exception();
        }
    }

    setStatShard(prev_shard);
    tlsWorker = TlsWorker{};
}

std::uint64_t
PdesEngine::run()
{
    // Seed the partitions from the queue's pending events (setup-phase
    // events scheduled serially before the run).
    for (Entry &e : eq_.heap)
        parts_[partitionOf_[e.execSlot]].heap.push_back(std::move(e));
    eq_.heap.clear();
    slotsOf_.assign(static_cast<std::size_t>(numPartitions_), {});
    for (std::uint32_t slot = 0; slot < eq_.numSlots(); ++slot)
        slotsOf_[partitionOf_[slot]].push_back(slot);
    const bool force_straggler = check::faultPlan().pdesForceStraggler;
    for (Partition &part : parts_) {
        std::make_heap(part.heap.begin(), part.heap.end(),
                       EventQueue::Later{});
        part.now = eq_.now_;
        part.maxPending = part.heap.size();
        part.spec.heldOut.clear();
        part.spec.heldOut.resize(static_cast<std::size_t>(numPartitions_));
        part.spec.baseSeq.assign(eq_.numSlots(), 0);
        part.forceStraggler = force_straggler;
    }

    eq_.pdes_ = this;
    std::vector<std::thread> threads;
    threads.reserve(numPartitions_ - 1);
    for (int p = 1; p < numPartitions_; ++p)
        threads.emplace_back([this, p] { workerLoop(p); });
    workerLoop(0);
    for (std::thread &t : threads)
        t.join();
    eq_.pdes_ = nullptr;

    // Merge the partition counters back into the queue.
    std::uint64_t executed = 0;
    bool leftovers = false;
    stats_.partitions = static_cast<std::uint64_t>(numPartitions_);
    stats_.windows = parts_[0].windows;
    stats_.partitionEvents.clear();
    for (Partition &part : parts_) {
        executed += part.executed;
        eq_.scheduled_ += part.scheduled;
        eq_.executed_ += part.executed;
        eq_.maxPending_ = std::max<std::uint64_t>(eq_.maxPending_,
                                                  part.maxPending);
        eq_.now_ = std::max(eq_.now_, part.now);
        stats_.widenedWindows += part.widened;
        stats_.mailboxEvents += part.mailed;
        stats_.speculated += part.speculated;
        stats_.rollbacks += part.rollbacks;
        stats_.commits += part.commits;
        stats_.maxPartitionEvents =
            std::max(stats_.maxPartitionEvents, part.executed);
        stats_.partitionEvents.push_back(part.executed);
        for (Entry &e : part.heap) {
            eq_.heap.push_back(std::move(e));
            leftovers = true;
        }
        part.heap.clear();
    }
    if (leftovers)
        std::make_heap(eq_.heap.begin(), eq_.heap.end(),
                       EventQueue::Later{});

    for (const Partition &part : parts_) {
        if (part.error)
            std::rethrow_exception(part.error);
    }
    return executed;
}

void
PdesEngine::checkDrained() const
{
    if (!check::enabled())
        return;
    for (std::size_t i = 0; i < boxes_.size(); ++i) {
        SWSM_INVARIANT(
            boxes_[i].empty(),
            "pdes mailbox %zu->%zu ended with %zu undelivered events",
            i / numPartitions_, i % numPartitions_, boxes_[i].size());
    }
    for (std::size_t p = 0; p < parts_.size(); ++p) {
        const Speculation &spec = parts_[p].spec;
        SWSM_INVARIANT(!spec.pending,
                       "pdes partition %zu ended with a pending "
                       "speculation",
                       p);
        SWSM_INVARIANT(spec.heldIn.empty() && spec.log.empty(),
                       "pdes partition %zu ended with %zu held and %zu "
                       "logged speculative events",
                       p, spec.heldIn.size(), spec.log.size());
        for (const auto &held : spec.heldOut) {
            SWSM_INVARIANT(held.empty(),
                           "pdes partition %zu ended with %zu held "
                           "outgoing events",
                           p, held.size());
        }
    }
}

int
PdesEngine::currentPartition()
{
    return tlsWorker.p;
}

Cycles
EventQueue::parallelNow() const
{
    if (tlsWorker.p < 0)
        return now_;
    return pdes_->parts_[tlsWorker.p].now;
}

std::uint32_t
EventQueue::parallelSlot() const
{
    if (tlsWorker.p < 0)
        return curSlot_;
    return pdes_->parts_[tlsWorker.p].slot;
}

} // namespace swsm
