#include "pdes.hh"

#include <algorithm>
#include <thread>

#include "check/check.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace swsm
{

namespace
{

/** Calling thread's engine + partition while inside workerLoop. */
struct TlsWorker
{
    PdesEngine *engine = nullptr;
    int p = -1;
};

thread_local TlsWorker tlsWorker;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

void
PdesEngine::Barrier::wait()
{
    const int s = sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
        arrived_.store(0, std::memory_order_relaxed);
        sense_.store(s ^ 1, std::memory_order_release);
    } else {
        // Spin briefly for the dedicated-core case, then yield on
        // every iteration: on an oversubscribed host (more workers
        // than cores) the releasing thread needs our timeslice, and
        // spinning through it multiplies every window's cost.
        const std::uint32_t spin_limit =
            std::thread::hardware_concurrency() >=
                    static_cast<unsigned>(parties_)
                ? 4096u
                : 0u;
        std::uint32_t spins = 0;
        while (sense_.load(std::memory_order_acquire) == s) {
            if (++spins > spin_limit)
                std::this_thread::yield();
            else
                cpuRelax();
        }
    }
}

PdesEngine::PdesEngine(EventQueue &eq, std::vector<int> partition_of,
                       int num_partitions, Cycles lookahead,
                       bool unsound_widen)
    : eq_(eq), partitionOf_(std::move(partition_of)),
      numPartitions_(num_partitions), lookahead_(lookahead),
      unsoundWiden_(unsound_widen),
      parts_(static_cast<std::size_t>(num_partitions)),
      boxes_(static_cast<std::size_t>(num_partitions) * num_partitions),
      barrier_(num_partitions)
{
    if (unsoundWiden_) {
        SWSM_WARN("PdesEngine: unsound min-over-others window widening "
                  "is enabled; causality violations will be detected "
                  "and panic instead of producing results");
    }
    if (numPartitions_ < 2 || numPartitions_ > maxPartitions)
        SWSM_PANIC("PdesEngine needs 2..%d partitions, got %d",
                   maxPartitions, numPartitions_);
    if (lookahead_ == 0)
        SWSM_PANIC("PdesEngine needs a positive lookahead");
    if (partitionOf_.size() < eq_.numSlots())
        SWSM_PANIC("partition map covers %zu slots, queue has %u",
                   partitionOf_.size(), eq_.numSlots());
    for (const int p : partitionOf_) {
        if (p < 0 || p >= numPartitions_)
            SWSM_PANIC("slot mapped to partition %d outside [0, %d)", p,
                       numPartitions_);
    }
}

PdesEngine::~PdesEngine() = default;

void
PdesEngine::pushLocal(Partition &part, Entry entry)
{
    part.heap.push_back(std::move(entry));
    std::push_heap(part.heap.begin(), part.heap.end(),
                   EventQueue::Later{});
    if (part.heap.size() > part.maxPending)
        part.maxPending = part.heap.size();
}

void
PdesEngine::drainBox(Partition &part, std::vector<Entry> &box)
{
    // Append the whole mailbox, then repair the heap in one pass:
    // sifting each entry individually costs a log-depth walk per
    // message, and the busiest partitions receive mail in bursts at
    // window boundaries. For small batches an incremental push_heap
    // per appended element preserves the O(k log n) bound; once the
    // batch is a sizable fraction of the heap a single make_heap is
    // cheaper (O(n)). Heap layout does not affect determinism — events
    // execute in (when, stamp) order, a strict total order.
    auto &heap = part.heap;
    const std::size_t start = heap.size();
    for (Entry &e : box) {
        // Always-on causality check (not just SWSM_CHECK): with the
        // sound window bound this is dead code by construction, and it
        // is the check that catches the unsound min-over-others
        // widening executing a window past an undelivered message.
        if (e.when < part.now) {
            check::violation(
                "pdes window advanced past an undelivered "
                "cross-partition message (when=%llu now=%llu)",
                static_cast<unsigned long long>(e.when),
                static_cast<unsigned long long>(part.now));
        }
        heap.push_back(std::move(e));
    }
    box.clear();
    const std::size_t added = heap.size() - start;
    if (added == 0)
        return;
    if (added > start / 4) {
        std::make_heap(heap.begin(), heap.end(), EventQueue::Later{});
    } else {
        for (std::size_t i = start + 1; i <= heap.size(); ++i)
            std::push_heap(heap.begin(), heap.begin() + i,
                           EventQueue::Later{});
    }
    if (heap.size() > part.maxPending)
        part.maxPending = heap.size();
}

void
PdesEngine::parallelSchedule(std::uint32_t exec_slot, Cycles when,
                             EventFn fn)
{
    Partition &part = parts_[tlsWorker.p];
    if (exec_slot == sameSlot)
        exec_slot = part.slot;
    const std::uint64_t stamp = eq_.makeStamp(part.slot);
    ++part.scheduled;
    const int dst = partitionOf_[exec_slot];
    if (dst == tlsWorker.p) {
        if (when < part.now)
            eq_.pastPanic(when, part.now);
        pushLocal(part, Entry{when, stamp, exec_slot, std::move(fn)});
        return;
    }
    // The conservative contract: anything crossing partitions must land
    // at least one full lookahead ahead of the sender's clock, or a
    // window that already executed could have depended on it.
    if (when < part.now + lookahead_) {
        SWSM_PANIC("cross-partition event violates lookahead: when=%llu "
                   "now=%llu lookahead=%llu",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(part.now),
                   static_cast<unsigned long long>(lookahead_));
    }
    ++part.mailed;
    boxes_[static_cast<std::size_t>(tlsWorker.p) * numPartitions_ + dst]
        .push_back(Entry{when, stamp, exec_slot, std::move(fn)});
}

void
PdesEngine::executeWindow(Partition &part, Cycles window_end)
{
    auto &heap = part.heap;
    while (!heap.empty() && heap.front().when < window_end) {
        std::pop_heap(heap.begin(), heap.end(), EventQueue::Later{});
        Entry entry = std::move(heap.back());
        heap.pop_back();
        part.now = entry.when;
        part.slot = entry.execSlot;
        ++part.executed;
        entry.fn();
    }
}

void
PdesEngine::workerLoop(int p)
{
    tlsWorker.engine = this;
    tlsWorker.p = p;
    const int prev_shard = statShard();
    setStatShard(p);
    Partition &part = parts_[p];

    for (;;) {
        // Deliver mail produced in the previous window. The barrier
        // preceding this point published the entries (single producer
        // per box, consumed only here). A causality violation in the
        // drain (possible only under the unsound widening escape
        // hatch) must not unwind past the barrier protocol, so it is
        // captured like an event error. The abort_ store is deferred
        // to the execute phase below: peers poll abort_ right after
        // the post-window barrier, and a store made here — between
        // that barrier and the publish barrier — can reach one
        // partition's check but not another's, leaving the survivors
        // waiting on a barrier the early exiter never joins.
        bool drain_error = false;
        try {
            for (int src = 0; src < numPartitions_; ++src) {
                drainBox(part, boxes_[static_cast<std::size_t>(src) *
                                          numPartitions_ +
                                      p]);
            }
        } catch (...) {
            if (!part.error)
                part.error = std::current_exception();
            drain_error = true;
        }

        part.published.store(part.heap.empty() ? noEvent
                                               : part.heap.front().when,
                             std::memory_order_relaxed);
        barrier_.wait();

        // Every worker reads the same published values, so they all
        // agree on the same global floor (and on termination) without
        // further communication. The window bound must be the global
        // minimum *including our own head*: at a round boundary no mail
        // is in flight, so every future send descends from some pending
        // event >= t_all and arrives >= t_all + L. A tempting wider
        // bound — min over the *other* partitions only — is unsound:
        // a partition's published head is no floor on its future sends,
        // because mail we sent from below our own horizon can pull a
        // peer's clock backward next round and its reply then lands in
        // our past. That widening exists only behind the explicit
        // SWSM_PDES_UNSOUND_WIDEN escape hatch (see the constructor
        // doc); the default bound is always the sound global minimum.
        Cycles t_all = noEvent;
        for (int q = 0; q < numPartitions_; ++q) {
            t_all = std::min(
                t_all, parts_[q].published.load(std::memory_order_relaxed));
        }
        if (t_all == noEvent)
            break;

        Cycles t_bound = t_all;
        if (unsoundWiden_) {
            // Escape hatch: min over the *other* partitions only. The
            // drain-time causality check above turns the resulting
            // violations into a panic instead of silent corruption.
            Cycles t_others = noEvent;
            for (int q = 0; q < numPartitions_; ++q) {
                if (q == p)
                    continue;
                t_others = std::min(
                    t_others,
                    parts_[q].published.load(std::memory_order_relaxed));
            }
            t_bound = t_others;
        }

        ++part.windows;
        Cycles window_end = t_bound + lookahead_;
        if (window_end < t_bound) // saturate on overflow
            window_end = noEvent;
        if (drain_error) {
            // Surface the drain failure from inside the execute phase:
            // every peer's next abort_ poll sits after the coming
            // barrier, so the whole gang agrees to stop this round.
            abort_.store(true, std::memory_order_relaxed);
        } else if (!abort_.load(std::memory_order_relaxed)) {
            try {
                executeWindow(part, window_end);
            } catch (...) {
                if (!part.error)
                    part.error = std::current_exception();
                abort_.store(true, std::memory_order_relaxed);
            }
        }
        barrier_.wait();
        if (abort_.load(std::memory_order_relaxed))
            break;
    }

    setStatShard(prev_shard);
    tlsWorker = TlsWorker{};
}

std::uint64_t
PdesEngine::run()
{
    // Seed the partitions from the queue's pending events (setup-phase
    // events scheduled serially before the run).
    for (Entry &e : eq_.heap)
        parts_[partitionOf_[e.execSlot]].heap.push_back(std::move(e));
    eq_.heap.clear();
    for (Partition &part : parts_) {
        std::make_heap(part.heap.begin(), part.heap.end(),
                       EventQueue::Later{});
        part.now = eq_.now_;
        part.maxPending = part.heap.size();
    }

    eq_.pdes_ = this;
    std::vector<std::thread> threads;
    threads.reserve(numPartitions_ - 1);
    for (int p = 1; p < numPartitions_; ++p)
        threads.emplace_back([this, p] { workerLoop(p); });
    workerLoop(0);
    for (std::thread &t : threads)
        t.join();
    eq_.pdes_ = nullptr;

    // Merge the partition counters back into the queue.
    std::uint64_t executed = 0;
    bool leftovers = false;
    stats_.partitions = static_cast<std::uint64_t>(numPartitions_);
    stats_.windows = parts_[0].windows;
    stats_.partitionEvents.clear();
    for (Partition &part : parts_) {
        executed += part.executed;
        eq_.scheduled_ += part.scheduled;
        eq_.executed_ += part.executed;
        eq_.maxPending_ = std::max<std::uint64_t>(eq_.maxPending_,
                                                  part.maxPending);
        eq_.now_ = std::max(eq_.now_, part.now);
        stats_.mailboxEvents += part.mailed;
        stats_.maxPartitionEvents =
            std::max(stats_.maxPartitionEvents, part.executed);
        stats_.partitionEvents.push_back(part.executed);
        for (Entry &e : part.heap) {
            eq_.heap.push_back(std::move(e));
            leftovers = true;
        }
        part.heap.clear();
    }
    if (leftovers)
        std::make_heap(eq_.heap.begin(), eq_.heap.end(),
                       EventQueue::Later{});

    for (const Partition &part : parts_) {
        if (part.error)
            std::rethrow_exception(part.error);
    }
    return executed;
}

void
PdesEngine::checkDrained() const
{
    if (!check::enabled())
        return;
    for (std::size_t i = 0; i < boxes_.size(); ++i) {
        SWSM_INVARIANT(
            boxes_[i].empty(),
            "pdes mailbox %zu->%zu ended with %zu undelivered events",
            i / numPartitions_, i % numPartitions_, boxes_[i].size());
    }
}

int
PdesEngine::currentPartition()
{
    return tlsWorker.p;
}

Cycles
EventQueue::parallelNow() const
{
    if (tlsWorker.p < 0)
        return now_;
    return pdes_->parts_[tlsWorker.p].now;
}

std::uint32_t
EventQueue::parallelSlot() const
{
    if (tlsWorker.p < 0)
        return curSlot_;
    return pdes_->parts_[tlsWorker.p].slot;
}

} // namespace swsm
