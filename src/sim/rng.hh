/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * A small xoshiro256** implementation seeded via splitmix64, so every
 * component can derive an independent, reproducible stream from
 * (global seed, component id).
 */

#ifndef SWSM_SIM_RNG_HH
#define SWSM_SIM_RNG_HH

#include <cstdint>

namespace swsm
{

/** xoshiro256** PRNG; deterministic and fast, no global state. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Reset the stream to a function of @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform value in [0, bound). @pre bound > 0 */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::uint64_t s[4];
};

} // namespace swsm

#endif // SWSM_SIM_RNG_HH
