#include "env.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace swsm
{

bool
parseBoundedInt(std::string_view text, int min_value, int max_value,
                int &out)
{
    int parsed = 0;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc{} || ptr != last || parsed < min_value)
        return false;
    out = std::min(parsed, max_value);
    return true;
}

int
envBoundedInt(const char *name, int min_value, int max_value, int def)
{
    const char *v = std::getenv(name);
    if (!v || *v == '\0')
        return def;
    int out = def;
    if (!parseBoundedInt(v, min_value, max_value, out)) {
        SWSM_WARN("ignoring invalid %s=\"%s\" (need an integer in "
                  "[%d, %d]); using %d",
                  name, v, min_value, max_value, def);
        return def;
    }
    return out;
}

bool
envFlag(const char *name, bool def)
{
    const char *v = std::getenv(name);
    if (!v || *v == '\0')
        return def;
    for (const char *off : {"0", "false", "off", "no"}) {
        if (std::strcmp(v, off) == 0)
            return false;
    }
    for (const char *on : {"1", "true", "on", "yes"}) {
        if (std::strcmp(v, on) == 0)
            return true;
    }
    SWSM_WARN("ignoring invalid %s=\"%s\" (need 0/1, on/off, true/false "
              "or yes/no); using %d",
              name, v, def ? 1 : 0);
    return def;
}

} // namespace swsm
