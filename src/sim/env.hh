/**
 * @file
 * Validated environment-variable parsing for the SWSM_* knobs.
 *
 * Every layer that reads a SWSM_* environment variable goes through
 * these helpers instead of raw getenv/strtol: malformed values warn
 * once and fall back to the documented default instead of silently
 * parsing to garbage (strtol("x", ...) == 0) or inverting the flag
 * ("SWSM_FASTPATH=off" used to mean *on* because only the literal "0"
 * disabled it).
 *
 * The helpers live in swsm_sim, below every other layer, so the
 * machine, memory and harness layers can all share one parser.
 */

#ifndef SWSM_SIM_ENV_HH
#define SWSM_SIM_ENV_HH

#include <string_view>

namespace swsm
{

/**
 * Parse @p text as a bounded decimal integer. The whole string must be
 * a valid number (std::from_chars; no trailing junk) and at least
 * @p min_value, otherwise @p out is untouched and the result is false.
 * Values above @p max_value are clamped to it.
 */
bool parseBoundedInt(std::string_view text, int min_value, int max_value,
                     int &out);

/**
 * Read environment variable @p name as a bounded integer. Unset (or
 * empty) returns @p def unchanged; a malformed or below-minimum value
 * warns and returns @p def; values above @p max_value are clamped.
 * @p def itself is returned verbatim, so a sentinel outside
 * [min_value, max_value] can signal "unset" to the caller.
 */
int envBoundedInt(const char *name, int min_value, int max_value,
                  int def);

/**
 * Read environment variable @p name as a boolean flag. Unset or empty
 * returns @p def. "0", "false", "off" and "no" mean false; "1",
 * "true", "on" and "yes" mean true (case-sensitive, matching the
 * documented spellings). Anything else warns and returns @p def.
 */
bool envFlag(const char *name, bool def);

} // namespace swsm

#endif // SWSM_SIM_ENV_HH
