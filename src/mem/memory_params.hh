/**
 * @file
 * Node memory hierarchy parameters.
 *
 * Modeled on the PentiumPro nodes of the paper's real SVM cluster. The
 * hierarchy is held constant across all experiments (the paper varies
 * only communication and protocol costs); it is parameterized here so the
 * library can model other nodes.
 */

#ifndef SWSM_MEM_MEMORY_PARAMS_HH
#define SWSM_MEM_MEMORY_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace swsm
{

/** Cache and memory latency configuration for one node. */
struct MemoryParams
{
    /** L1 data cache size in bytes (PentiumPro: 8 KB). */
    std::uint32_t l1Bytes = 8 * 1024;
    /** L1 associativity. */
    std::uint32_t l1Assoc = 2;
    /** Cache line size in bytes (both levels). */
    std::uint32_t lineBytes = 32;
    /** L2 cache size in bytes (PentiumPro: 256 KB). */
    std::uint32_t l2Bytes = 256 * 1024;
    /** L2 associativity. */
    std::uint32_t l2Assoc = 4;
    /** Extra stall cycles for an L1 miss that hits in L2. */
    Cycles l2HitCycles = 10;
    /** Extra stall cycles for an access served by local memory. */
    Cycles memCycles = 60;
};

} // namespace swsm

#endif // SWSM_MEM_MEMORY_PARAMS_HH
