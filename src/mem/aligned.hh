/**
 * @file
 * Minimal aligned allocator for the SIMD data path.
 *
 * The vector kernels in mem/simd.hh operate on page-sized byte buffers
 * (HLRC page copies, twins, fetch snapshots). Allocating those through
 * AlignedAlloc guarantees 32-byte alignment, so a 256-bit load never
 * straddles a cache line and the alignment contract of DESIGN.md §3.8
 * holds with no unaligned escape hatch. The allocator is stateless, so
 * AlignedBytes is layout- and API-compatible with std::vector — only
 * the storage's address changes.
 */

#ifndef SWSM_MEM_ALIGNED_HH
#define SWSM_MEM_ALIGNED_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace swsm
{

/** std::allocator with a compile-time alignment floor. */
template <typename T, std::size_t Align>
struct AlignedAlloc
{
    using value_type = T;
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering T");

    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, Align>;
    };

    friend bool
    operator==(const AlignedAlloc &, const AlignedAlloc &)
    {
        return true;
    }
};

/** SIMD register width (bytes) the data-path kernels are built for. */
constexpr std::size_t simdAlign = 32;

/** A byte buffer whose storage is always 32-byte aligned. */
using AlignedBytes = std::vector<std::uint8_t,
                                 AlignedAlloc<std::uint8_t, simdAlign>>;

/** True if @p p satisfies the SIMD alignment contract. */
inline bool
simdAligned(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % simdAlign == 0;
}

} // namespace swsm

#endif // SWSM_MEM_ALIGNED_HH
