#include "cache_model.hh"

#include "sim/log.hh"

namespace swsm
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
CacheModel::Level::init(std::uint32_t bytes, std::uint32_t assoc_,
                        std::uint32_t line_bytes)
{
    assoc = assoc_;
    numSets = bytes / (line_bytes * assoc_);
    if (numSets == 0 || !isPow2(numSets))
        SWSM_FATAL("cache level needs a power-of-two number of sets");
    tags.assign(static_cast<std::size_t>(numSets) * assoc, 0);
    stamps.assign(static_cast<std::size_t>(numSets) * assoc, 0);
}

bool
CacheModel::Level::lookupInsert(std::uint64_t line, std::uint64_t stamp)
{
    const std::uint64_t tag = line + 1;
    const std::size_t base =
        static_cast<std::size_t>(line & (numSets - 1)) * assoc;
    std::size_t victim = base;
    for (std::size_t way = base; way < base + assoc; ++way) {
        if (tags[way] == tag) {
            stamps[way] = stamp;
            return true;
        }
        if (stamps[way] < stamps[victim])
            victim = way;
    }
    tags[victim] = tag;
    stamps[victim] = stamp;
    return false;
}

void
CacheModel::Level::invalidate(std::uint64_t line)
{
    const std::uint64_t tag = line + 1;
    const std::size_t base =
        static_cast<std::size_t>(line & (numSets - 1)) * assoc;
    for (std::size_t way = base; way < base + assoc; ++way) {
        if (tags[way] == tag) {
            tags[way] = 0;
            stamps[way] = 0;
        }
    }
}

void
CacheModel::Level::clear()
{
    std::fill(tags.begin(), tags.end(), 0);
    std::fill(stamps.begin(), stamps.end(), 0);
}

CacheModel::CacheModel(const MemoryParams &params) : params(params)
{
    if (!isPow2(params.lineBytes))
        SWSM_FATAL("cache line size must be a power of two");
    l1.init(params.l1Bytes, params.l1Assoc, params.lineBytes);
    l2.init(params.l2Bytes, params.l2Assoc, params.lineBytes);
}

Cycles
CacheModel::access(GlobalAddr addr, bool write)
{
    (void)write; // Allocate-on-write; no extra write penalty modeled.
    const std::uint64_t line = addr / params.lineBytes;
    ++stamp;
    if (l1.lookupInsert(line, stamp)) {
        l1Hits_.inc();
        return 0;
    }
    l1Misses_.inc();
    if (l2.lookupInsert(line, stamp)) {
        l2Hits_.inc();
        return params.l2HitCycles;
    }
    l2Misses_.inc();
    return params.memCycles;
}

Cycles
CacheModel::accessRange(GlobalAddr addr, std::uint64_t bytes, bool write)
{
    if (bytes == 0)
        return 0;
    Cycles total = 0;
    const std::uint64_t first = addr / params.lineBytes;
    const std::uint64_t last = (addr + bytes - 1) / params.lineBytes;
    for (std::uint64_t line = first; line <= last; ++line)
        total += access(line * params.lineBytes, write);
    return total;
}

void
CacheModel::invalidateRange(GlobalAddr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    const std::uint64_t first = addr / params.lineBytes;
    const std::uint64_t last = (addr + bytes - 1) / params.lineBytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        l1.invalidate(line);
        l2.invalidate(line);
    }
}

void
CacheModel::reset()
{
    l1.clear();
    l2.clear();
}

} // namespace swsm
