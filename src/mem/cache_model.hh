/**
 * @file
 * Two-level set-associative cache timing model for one node.
 *
 * The model answers one question per access: how many stall cycles beyond
 * the 1-IPC issue cycle does this reference cost? It tracks tags with LRU
 * replacement in an 8 KB L1 and a 256 KB L2 (PentiumPro-like) and is also
 * used to model the cache pollution caused by protocol twin/diff
 * operations, which the paper simulates explicitly.
 *
 * Simplifications (documented in DESIGN.md): write-allocate with no extra
 * dirty-writeback penalty; no MSHR-level concurrency (the modeled
 * processor is in-order single-issue, so misses serialize anyway).
 */

#ifndef SWSM_MEM_CACHE_MODEL_HH
#define SWSM_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "mem/memory_params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{

/** Per-node two-level cache with LRU tag arrays. */
class CacheModel
{
  public:
    explicit CacheModel(const MemoryParams &params);

    /**
     * Simulate one reference to @p addr.
     * @return stall cycles beyond the issue cycle (0 on an L1 hit).
     */
    Cycles access(GlobalAddr addr, bool write);

    /**
     * Simulate a sequential walk over [addr, addr+bytes), one reference
     * per cache line; used for bulk copies and twin/diff pollution.
     * @return total stall cycles.
     */
    Cycles accessRange(GlobalAddr addr, std::uint64_t bytes, bool write);

    /**
     * Discard any cached lines in [addr, addr+bytes); used when a page or
     * block copy is replaced by fresh remote data deposited by the NI.
     */
    void invalidateRange(GlobalAddr addr, std::uint64_t bytes);

    /** Drop all cached lines (used between timed phases by the harness). */
    void reset();

    const Counter &l1Hits() const { return l1Hits_; }
    const Counter &l1Misses() const { return l1Misses_; }
    const Counter &l2Hits() const { return l2Hits_; }
    const Counter &l2Misses() const { return l2Misses_; }

  private:
    /** One tag array level. */
    struct Level
    {
        std::uint32_t numSets = 0;
        std::uint32_t assoc = 0;
        /** tags[set * assoc + way]; 0 means empty (tags are line+1). */
        std::vector<std::uint64_t> tags;
        /** LRU stamps parallel to tags. */
        std::vector<std::uint64_t> stamps;

        void init(std::uint32_t bytes, std::uint32_t assoc_,
                  std::uint32_t line_bytes);
        /** @return true on hit; inserts on miss. */
        bool lookupInsert(std::uint64_t line, std::uint64_t stamp);
        void invalidate(std::uint64_t line);
        void clear();
    };

    MemoryParams params;
    Level l1;
    Level l2;
    std::uint64_t stamp = 0;

    Counter l1Hits_;
    Counter l1Misses_;
    Counter l2Hits_;
    Counter l2Misses_;
};

} // namespace swsm

#endif // SWSM_MEM_CACHE_MODEL_HH
