/**
 * @file
 * AVX2 implementations of the mem/simd.hh kernels.
 *
 * This translation unit is the only one compiled with -mavx2 (see
 * src/mem/CMakeLists.txt), so AVX2 instructions cannot leak into code
 * that runs before the CPUID dispatch. Every entry point is reached
 * only when simd::activeLevel() == Level::Avx2.
 *
 * All loads and stores use the unaligned forms: they run at full speed
 * on the 32-byte-aligned buffers the pool hands out (the aligned-pool
 * contract merely guarantees no cache-line splits), and stay correct
 * for the foreign pointers the kernels cannot control (home-store
 * bytes, diff word arrays, intra-page run offsets).
 */

#ifdef SWSM_HAVE_AVX2

#include <cstdint>
#include <cstring>
#include <immintrin.h>
#include <utility>
#include <vector>

#include "simd.hh"

namespace swsm::simd::detail
{

namespace
{

inline std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

} // namespace

void
diffWordsAvx2(const std::uint8_t *cur, const std::uint8_t *twin,
              std::uint32_t bytes, std::uint32_t word0, DiffWords &out)
{
    std::uint32_t off = 0;
    for (; off + 32 <= bytes; off += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cur + off));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(twin + off));
        const auto eq = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
        if (eq == 0xffffffffu)
            continue;
        // Some byte differs: refine per 4-byte word, ascending, using
        // the per-byte equality mask (nibble w covers word w).
        for (std::uint32_t w = 0; w < 8; ++w) {
            if (((eq >> (4 * w)) & 0xfu) == 0xfu)
                continue;
            const std::uint32_t o = off + 4 * w;
            out.emplace_back(word0 + o / 4, load32(cur + o));
        }
    }
    // Sub-register tails (16-byte chunk runs of 1024-byte pages, 8-byte
    // chunks of smaller ones): same probe/refine as the scalar kernel.
    for (; off + 8 <= bytes; off += 8) {
        if (load64(cur + off) == load64(twin + off))
            continue;
        for (std::uint32_t o = off; o < off + 8; o += 4) {
            const std::uint32_t a = load32(cur + o);
            if (a != load32(twin + o))
                out.emplace_back(word0 + o / 4, a);
        }
    }
    for (; off + 4 <= bytes; off += 4) {
        const std::uint32_t a = load32(cur + off);
        if (a != load32(twin + off))
            out.emplace_back(word0 + off / 4, a);
    }
}

bool
rangesEqualAvx2(const std::uint8_t *a, const std::uint8_t *b,
                std::uint32_t bytes)
{
    std::uint32_t off = 0;
    for (; off + 32 <= bytes; off += 32) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + off));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + off));
        if (static_cast<std::uint32_t>(_mm256_movemask_epi8(
                _mm256_cmpeq_epi8(va, vb))) != 0xffffffffu)
            return false;
    }
    for (; off + 8 <= bytes; off += 8) {
        if (load64(a + off) != load64(b + off))
            return false;
    }
    for (; off < bytes; ++off) {
        if (a[off] != b[off])
            return false;
    }
    return true;
}

void
copyBytesAvx2(std::uint8_t *dst, const std::uint8_t *src,
              std::uint32_t bytes)
{
    std::uint32_t off = 0;
    // 128 bytes per iteration keeps two loads and two stores in
    // flight per cycle on every AVX2 core.
    for (; off + 128 <= bytes; off += 128) {
        const __m256i v0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + off));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + off + 32));
        const __m256i v2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + off + 64));
        const __m256i v3 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + off + 96));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + off), v0);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + off + 32),
                            v1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + off + 64),
                            v2);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + off + 96),
                            v3);
    }
    for (; off + 32 <= bytes; off += 32) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + off),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + off)));
    }
    for (; off + 8 <= bytes; off += 8) {
        std::uint64_t v;
        std::memcpy(&v, src + off, 8);
        std::memcpy(dst + off, &v, 8);
    }
    for (; off < bytes; ++off)
        dst[off] = src[off];
}

void
applyRunAvx2(std::uint8_t *dst,
             const std::pair<std::uint32_t, std::uint32_t> *words,
             std::size_t count)
{
    // A run of consecutive (index, value) pairs is an 8-byte-strided
    // value stream: gather the odd dwords of 8 pairs (two 256-bit
    // loads) into one 256-bit register and store 8 values at once.
    static_assert(sizeof(words[0]) == 8, "pair layout assumed packed");
    const __m256i pick_vals = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256i p0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i p1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i + 4));
        const __m256i v0 = _mm256_permutevar8x32_epi32(p0, pick_vals);
        const __m256i v1 = _mm256_permutevar8x32_epi32(p1, pick_vals);
        const __m256i vals = _mm256_permute2x128_si256(v0, v1, 0x20);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + 4 * i),
                            vals);
    }
    for (; i < count; ++i)
        std::memcpy(dst + 4 * i, &words[i].second, 4);
}

} // namespace swsm::simd::detail

#endif // SWSM_HAVE_AVX2
