/**
 * @file
 * Runtime-dispatched SIMD kernels for the memory-coherence data path.
 *
 * Four host-side byte operations dominate a diff-based protocol run:
 * comparing a page against its twin (diff scan), verifying clean
 * ranges match (the SWSM_CHECK cross-check), copying a page into its
 * twin (twin create) and writing a diff's words into the home copy
 * (diff apply). Each has two implementations with bit-identical
 * observable results:
 *
 *  - a scalar reference (explicit word loops — deliberately not libc
 *    memcpy/memcmp, whose hidden vectorization would make the scalar
 *    baseline meaningless);
 *  - an AVX2 version (simd_avx2.cc, compiled with -mavx2 in its own
 *    translation unit) processing 32 bytes per step.
 *
 * The level is resolved once per process from CPUID and the SWSM_SIMD
 * environment variable (SWSM_SIMD=0 forces scalar — the escape hatch
 * for A/B timing and for bisecting a suspected divergence), and can be
 * overridden by tests and microbenchmarks through setLevel(). Because
 * both levels produce the same word lists and the same bytes, nothing
 * simulated depends on which one ran; tests/test_simd.cc enforces this
 * end to end.
 */

#ifndef SWSM_MEM_SIMD_HH
#define SWSM_MEM_SIMD_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace swsm::simd
{

/** (word index, new value) pairs, ascending — the HLRC diff format. */
using DiffWords = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/** Kernel implementation tiers. */
enum class Level
{
    Scalar, ///< reference word loops, always available
    Avx2,   ///< 256-bit kernels (x86 AVX2)
};

/** True when the host CPU can execute the AVX2 kernels. */
bool avx2Supported();

/**
 * The level a fresh process would select: Avx2 when the CPU supports
 * it and SWSM_SIMD is not "0", else Scalar. Reads the environment on
 * every call (cheap enough off the hot path); activeLevel() caches.
 */
Level bestLevel();

/** The level the kernels dispatch on (resolved once, then cached). */
Level activeLevel();

/**
 * Override the dispatch level (tests, microbenchmark A/B). Requests
 * for an unsupported level fall back to Scalar; returns the level
 * actually installed.
 */
Level setLevel(Level level);

/** "scalar" or "avx2". */
const char *levelName(Level level);

/**
 * Append (word0 + i, value) for every differing 4-byte word i of
 * [cur, cur+bytes) vs [twin, twin+bytes), in ascending order.
 * @p bytes must be a multiple of 4. Both levels produce identical
 * output for identical input.
 */
void diffWords(const std::uint8_t *cur, const std::uint8_t *twin,
               std::uint32_t bytes, std::uint32_t word0, DiffWords &out);

/** True if [a, a+bytes) and [b, b+bytes) are byte-identical. */
bool rangesEqual(const std::uint8_t *a, const std::uint8_t *b,
                 std::uint32_t bytes);

/**
 * Copy @p bytes from @p src to @p dst (non-overlapping). The twin
 * create path; @p bytes need not be word-aligned.
 */
void copyBytes(std::uint8_t *dst, const std::uint8_t *src,
               std::uint32_t bytes);

/**
 * Write each (word index, value) of @p words at @p base + 4 * index.
 * Runs of consecutive indices (the common diff shape: contiguous
 * dirty words) are stored as one vectorized burst.
 */
void applyWords(std::uint8_t *base,
                const std::pair<std::uint32_t, std::uint32_t> *words,
                std::size_t count);

} // namespace swsm::simd

#endif // SWSM_MEM_SIMD_HH
