#include "simd.hh"

#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace swsm::simd
{

namespace detail
{

// Implemented in simd_avx2.cc (compiled with -mavx2) when the
// toolchain supports it; never called unless avx2Supported().
void diffWordsAvx2(const std::uint8_t *cur, const std::uint8_t *twin,
                   std::uint32_t bytes, std::uint32_t word0,
                   DiffWords &out);
bool rangesEqualAvx2(const std::uint8_t *a, const std::uint8_t *b,
                     std::uint32_t bytes);
void copyBytesAvx2(std::uint8_t *dst, const std::uint8_t *src,
                   std::uint32_t bytes);
void applyRunAvx2(std::uint8_t *dst,
                  const std::pair<std::uint32_t, std::uint32_t> *words,
                  std::size_t count);

namespace
{

/**
 * The scalar reference kernels below spell out their word loops
 * instead of deferring to memcpy/memcmp on purpose: libc's versions
 * are themselves vectorized, which would both undermine SWSM_SIMD=0
 * as a scalar baseline and hide alignment bugs the explicit loops
 * surface. Word loads still go through std::memcpy (the legal way to
 * type-pun), which compilers lower to a single load.
 */

inline std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
diffWordsScalar(const std::uint8_t *cur, const std::uint8_t *twin,
                std::uint32_t bytes, std::uint32_t word0, DiffWords &out)
{
    std::uint32_t off = 0;
    // 8-byte probe, word-granular refine: the PR 4 chunked scan's
    // inner loop, kept as the bit-equivalence reference.
    for (; off + 8 <= bytes; off += 8) {
        if (load64(cur + off) == load64(twin + off))
            continue;
        for (std::uint32_t o = off; o < off + 8; o += 4) {
            const std::uint32_t a = load32(cur + o);
            if (a != load32(twin + o))
                out.emplace_back(word0 + o / 4, a);
        }
    }
    for (; off + 4 <= bytes; off += 4) {
        const std::uint32_t a = load32(cur + off);
        if (a != load32(twin + off))
            out.emplace_back(word0 + off / 4, a);
    }
}

bool
rangesEqualScalar(const std::uint8_t *a, const std::uint8_t *b,
                  std::uint32_t bytes)
{
    std::uint32_t off = 0;
    for (; off + 8 <= bytes; off += 8) {
        if (load64(a + off) != load64(b + off))
            return false;
    }
    for (; off < bytes; ++off) {
        if (a[off] != b[off])
            return false;
    }
    return true;
}

void
copyBytesScalar(std::uint8_t *dst, const std::uint8_t *src,
                std::uint32_t bytes)
{
    std::uint32_t off = 0;
    for (; off + 8 <= bytes; off += 8) {
        std::uint64_t v;
        std::memcpy(&v, src + off, 8);
        std::memcpy(dst + off, &v, 8);
    }
    for (; off < bytes; ++off)
        dst[off] = src[off];
}

void
applyRunScalar(std::uint8_t *dst,
               const std::pair<std::uint32_t, std::uint32_t> *words,
               std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        std::memcpy(dst + 4 * i, &words[i].second, 4);
}

Level
resolve()
{
    // Accept the level tokens plus the usual flag spellings
    // (envFlag-compatible): "off"/"false"/"no" select scalar like "0",
    // anything else unrecognized warns and keeps auto-detection.
    if (const char *env = std::getenv("SWSM_SIMD")) {
        if (std::strcmp(env, "scalar") == 0 ||
            std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "false") == 0 || std::strcmp(env, "no") == 0)
            return Level::Scalar;
        if (std::strcmp(env, "avx2") == 0) {
            if (avx2Supported())
                return Level::Avx2;
            SWSM_WARN("SWSM_SIMD=avx2 requested but AVX2 is not "
                      "available; using scalar kernels");
            return Level::Scalar;
        }
        if (std::strcmp(env, "1") != 0 && std::strcmp(env, "on") != 0 &&
            std::strcmp(env, "true") != 0 &&
            std::strcmp(env, "yes") != 0 && std::strcmp(env, "auto") != 0)
            SWSM_WARN("ignoring unrecognized SWSM_SIMD value \"%s\" "
                      "(want scalar, avx2, auto, or a 0/1 flag)",
                      env);
    }
    return avx2Supported() ? Level::Avx2 : Level::Scalar;
}

Level &
levelSlot()
{
    static Level level = resolve();
    return level;
}

} // namespace
} // namespace detail

bool
avx2Supported()
{
#if defined(SWSM_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

Level
bestLevel()
{
    return detail::resolve();
}

Level
activeLevel()
{
    return detail::levelSlot();
}

Level
setLevel(Level level)
{
    if (level == Level::Avx2 && !avx2Supported())
        level = Level::Scalar;
    detail::levelSlot() = level;
    return level;
}

const char *
levelName(Level level)
{
    return level == Level::Avx2 ? "avx2" : "scalar";
}

void
diffWords(const std::uint8_t *cur, const std::uint8_t *twin,
          std::uint32_t bytes, std::uint32_t word0, DiffWords &out)
{
#ifdef SWSM_HAVE_AVX2
    if (activeLevel() == Level::Avx2) {
        detail::diffWordsAvx2(cur, twin, bytes, word0, out);
        return;
    }
#endif
    detail::diffWordsScalar(cur, twin, bytes, word0, out);
}

bool
rangesEqual(const std::uint8_t *a, const std::uint8_t *b,
            std::uint32_t bytes)
{
#ifdef SWSM_HAVE_AVX2
    if (activeLevel() == Level::Avx2)
        return detail::rangesEqualAvx2(a, b, bytes);
#endif
    return detail::rangesEqualScalar(a, b, bytes);
}

void
copyBytes(std::uint8_t *dst, const std::uint8_t *src, std::uint32_t bytes)
{
#ifdef SWSM_HAVE_AVX2
    if (activeLevel() == Level::Avx2) {
        detail::copyBytesAvx2(dst, src, bytes);
        return;
    }
#endif
    detail::copyBytesScalar(dst, src, bytes);
}

void
applyWords(std::uint8_t *base,
           const std::pair<std::uint32_t, std::uint32_t> *words,
           std::size_t count)
{
#ifdef SWSM_HAVE_AVX2
    const bool avx2 = activeLevel() == Level::Avx2;
#else
    const bool avx2 = false;
#endif
    // Batch maximal runs of consecutive word indices (diffs list words
    // ascending, and real write patterns dirty contiguous spans), so
    // one run becomes one streaming store burst instead of count
    // scattered 4-byte writes.
    std::size_t i = 0;
    while (i < count) {
        std::size_t run = 1;
        while (i + run < count &&
               words[i + run].first == words[i].first + run)
            ++run;
        std::uint8_t *dst = base + 4 * std::size_t{words[i].first};
#ifdef SWSM_HAVE_AVX2
        if (avx2 && run >= 8)
            detail::applyRunAvx2(dst, words + i, run);
        else
            detail::applyRunScalar(dst, words + i, run);
#else
        (void)avx2;
        detail::applyRunScalar(dst, words + i, run);
#endif
        i += run;
    }
}

} // namespace swsm::simd
