#include "wire.hh"

#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/shm_cache.hh"
#include "sim/log.hh"

namespace swsm::wire
{

std::string
Request::get(const std::string &key, const std::string &def) const
{
    const auto it = params.find(key);
    return it == params.end() ? def : it->second;
}

bool
parseRequest(std::string_view line, Request &out)
{
    Request req;
    std::size_t pos = 0;
    while (pos < line.size()) {
        std::size_t end = line.find(' ', pos);
        if (end == std::string_view::npos)
            end = line.size();
        const std::string_view tok = line.substr(pos, end - pos);
        pos = end + 1;
        if (tok.empty())
            continue;
        if (req.verb.empty()) {
            if (tok.find('=') != std::string_view::npos)
                return false;
            req.verb = tok;
            continue;
        }
        const std::size_t eq = tok.find('=');
        if (eq == 0 || eq == std::string_view::npos)
            return false;
        req.params[std::string(tok.substr(0, eq))] =
            std::string(tok.substr(eq + 1));
    }
    if (req.verb.empty())
        return false;
    out = std::move(req);
    return true;
}

std::string
formatRequest(const Request &req)
{
    std::string line = req.verb;
    for (const auto &[k, v] : req.params) {
        line += ' ';
        line += k;
        line += '=';
        line += v;
    }
    return line;
}

std::string
defaultSockPath()
{
    if (const char *path = std::getenv("SWSM_SERVE_SOCK"))
        return path;
    return ShmCache::defaultDir() + "/swsm_serve.sock";
}

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        SWSM_WARN("socket path too long: %s", path.c_str());
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(const std::string &host, int port)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                      &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (const addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

bool
writeAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineReader::fill()
{
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0)
        return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
}

bool
LineReader::readLine(std::string &out)
{
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (!fill())
            return false;
    }
}

bool
LineReader::readBytes(std::size_t n, std::string &out)
{
    while (buf_.size() < n) {
        if (!fill())
            return false;
    }
    out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
}

} // namespace swsm::wire
