/**
 * @file
 * Cross-host sharding of sweep grids over the wire protocol.
 *
 * Two verbs ride on the existing request/event framing (wire.hh):
 *
 *   shardwork shards=N index=I <grid params>
 *     Served by each peer: take the deterministic 1/N slice of the
 *     grid (selects() on the bare batch-runner result key), run it,
 *     and stream back raw memo-cache blobs — one
 *     {"event":"blob","key":...,"bytes":n} line plus n raw bytes per
 *     entry (results and the baselines they depend on), then a done
 *     event. Blobs, not rendered JSON: the coordinator renders every
 *     shard through the same BenchReport path a local run uses, which
 *     is what makes the merged report deterministic.
 *
 *   shard peers=host:port,host:port,... <grid params>
 *     Served by the coordinator: assign shard i of N to peer i, fetch
 *     all slices concurrently, verify that overlapping keys (baselines
 *     land in every shard that needs them) carry byte-identical blobs,
 *     and render one merged BENCH report. The merged document is
 *     byte-identical regardless of shard count or arrival order:
 *     entries sort by key, and the header is pinned to a canonical
 *     jobs=1/simThreads=1 (results are bit-identical across both by
 *     construction, so the pin loses nothing).
 *
 * Keeping the cross-host path message-based — assignments and result
 * blobs, never shared mappings — follows the disaggregated-memory
 * lesson that cross-host synchronization through remote shared state
 * is the expensive part; hosts only share immutable bytes here.
 */

#ifndef SWSM_SERVE_SHARD_HH
#define SWSM_SERVE_SHARD_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "serve/wire.hh"

namespace swsm::shard
{

/** Most peers one shard request may name (grids are small). */
constexpr std::uint32_t maxShards = 64;

/** One peer server address. */
struct Peer
{
    std::string host;
    int port = 0;
};

/**
 * Parse "host:port,host:port,..." (1..maxShards peers). @return false
 * with a diagnostic in @p err on malformed specs.
 */
bool parsePeers(const std::string &spec, std::vector<Peer> &out,
                std::string &err);

/**
 * True when @p report_key belongs to shard @p index of @p shards.
 * Deterministic (FNV-1a of the bare batch-runner key), so every host
 * computes the same partition with no coordination.
 */
bool selects(std::string_view report_key, std::uint32_t shards,
             std::uint32_t index);

/**
 * Run @p work ("shardwork ...") on @p peer over TCP and collect the
 * returned blobs keyed by memo-cache key. @return false with a
 * diagnostic in @p err on transport or server errors.
 */
bool fetchShard(const Peer &peer, const wire::Request &work,
                std::map<std::string, std::string> &blobs,
                std::string &err);

} // namespace swsm::shard

#endif // SWSM_SERVE_SHARD_HH
