/**
 * @file
 * Binary encoding of experiment results for the shared-memory memo
 * cache (serve/shm_cache.hh).
 *
 * The encoding is a fixed little-endian byte layout (not host struct
 * dumps) so tools/bench_diff.py can decode segments offline with the
 * struct module. It round-trips exactly the fields the BENCH report
 * needs — workload/config/protocol labels, cycle counts, verification
 * flag, the host seconds measured when the experiment originally ran,
 * and the full metrics snapshot. Traces and per-processor vectors are
 * deliberately excluded: cached replays serve reports, not trace
 * viewers.
 *
 * Layout (u32/u64/f64 little-endian; str = u32 length + raw bytes):
 *
 *   result: u32 magic 'SWR1', str workload, str config, str protocol,
 *           u64 parallelCycles, u64 sequentialCycles, u8 verified,
 *           f64 hostSeconds,
 *           u32 nCounters x { str name, u64 value },
 *           u32 nGauges   x { str name, f64 value },
 *           u32 nHistograms x { str name, u64 total,
 *                               u32 nBuckets x u64 count }
 *   baseline: u32 magic 'SWB1', u64 cycles
 *
 * schemaVersion is stamped into the segment header (keySchema); any
 * layout change here must bump it so stale segments rebuild instead of
 * misdecoding.
 */

#ifndef SWSM_SERVE_RESULT_CODEC_HH
#define SWSM_SERVE_RESULT_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/experiment.hh"

namespace swsm::codec
{

/** Bumped on any byte-layout change (segment keySchema). */
constexpr std::uint32_t schemaVersion = 1;

std::string encodeResult(const ExperimentResult &r);
/** @return false (out untouched on magic mismatch) on malformed blobs */
bool decodeResult(std::string_view blob, ExperimentResult &out);

std::string encodeBaseline(Cycles seq);
bool decodeBaseline(std::string_view blob, Cycles &out);

/** True when @p blob carries the result (not baseline) magic. */
bool isResultBlob(std::string_view blob);

} // namespace swsm::codec

#endif // SWSM_SERVE_RESULT_CODEC_HH
