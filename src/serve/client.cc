#include "client.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace swsm
{

namespace
{

/** Connect with bounded exponential-backoff retry; -1 when exhausted. */
int
connectWithRetry(const std::string &sock_path, const ClientOptions &opts)
{
    int backoff = std::max(1, opts.backoffMs);
    for (int attempt = 0;; ++attempt) {
        const int fd = wire::connectUnix(sock_path);
        if (fd >= 0)
            return fd;
        if (attempt >= opts.retries)
            return -1;
        ::usleep(static_cast<useconds_t>(backoff) * 1000);
        backoff = std::min(backoff * 2, 5000);
    }
}

void
applyTimeout(int fd, int timeout_ms)
{
    if (timeout_ms <= 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Distinguish a receive deadline from the server closing on us. */
std::string
streamFailure(const ClientOptions &opts)
{
    if (opts.timeoutMs > 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return "server stalled (no data for " +
            std::to_string(opts.timeoutMs) + " ms)";
    return "connection closed mid-stream";
}

} // namespace

bool
eventField(const std::string &line, const std::string &name,
           std::uint64_t &out)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start)
        return false;
    out = v;
    return true;
}

bool
eventField(const std::string &line, const std::string &name,
           std::string &out)
{
    const std::string needle = "\"" + name + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

ServeResponse
serveRequest(const std::string &sock_path, const wire::Request &req,
             const std::function<void(const std::string &line)> &on_event,
             const ClientOptions &opts)
{
    ServeResponse resp;
    const int fd = connectWithRetry(sock_path, opts);
    if (fd < 0) {
        resp.error = "cannot connect to " + sock_path;
        if (opts.retries > 0)
            resp.error +=
                " (" + std::to_string(opts.retries + 1) + " attempts)";
        return resp;
    }
    applyTimeout(fd, opts.timeoutMs);

    if (!wire::writeAll(fd, wire::formatRequest(req) + "\n")) {
        ::close(fd);
        resp.error = "request write failed";
        return resp;
    }

    wire::LineReader reader(fd);
    std::string line;
    bool sawTerminal = false;
    errno = 0;
    while (reader.readLine(line)) {
        resp.events.push_back(line);
        if (on_event)
            on_event(line);

        std::string event;
        if (!eventField(line, "event", event))
            continue;
        if (event == "report") {
            std::uint64_t bytes = 0;
            if (!eventField(line, "bytes", bytes) ||
                !reader.readBytes(bytes, resp.report)) {
                resp.error = "truncated report (" +
                    streamFailure(opts) + ")";
                ::close(fd);
                return resp;
            }
        } else if (event == "done") {
            eventField(line, "hits", resp.hits);
            eventField(line, "misses", resp.misses);
            resp.haveDone = true;
            sawTerminal = true;
            break;
        } else if (event == "error") {
            eventField(line, "message", resp.error);
            if (resp.error.empty())
                resp.error = "server error";
            ::close(fd);
            return resp;
        } else if (event == "pong" || event == "bye" ||
                   event == "stats") {
            sawTerminal = true;
            break;
        }
    }
    if (!sawTerminal)
        resp.error = streamFailure(opts);
    ::close(fd);
    if (!sawTerminal)
        return resp;
    resp.ok = true;
    return resp;
}

} // namespace swsm
