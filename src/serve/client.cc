#include "client.hh"

#include <cstdlib>

#include <unistd.h>

namespace swsm
{

bool
eventField(const std::string &line, const std::string &name,
           std::uint64_t &out)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start)
        return false;
    out = v;
    return true;
}

bool
eventField(const std::string &line, const std::string &name,
           std::string &out)
{
    const std::string needle = "\"" + name + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

ServeResponse
serveRequest(const std::string &sock_path, const wire::Request &req,
             const std::function<void(const std::string &line)> &on_event)
{
    ServeResponse resp;
    const int fd = wire::connectUnix(sock_path);
    if (fd < 0) {
        resp.error = "cannot connect to " + sock_path;
        return resp;
    }

    if (!wire::writeAll(fd, wire::formatRequest(req) + "\n")) {
        ::close(fd);
        resp.error = "request write failed";
        return resp;
    }

    wire::LineReader reader(fd);
    std::string line;
    bool sawTerminal = false;
    while (reader.readLine(line)) {
        resp.events.push_back(line);
        if (on_event)
            on_event(line);

        std::string event;
        if (!eventField(line, "event", event))
            continue;
        if (event == "report") {
            std::uint64_t bytes = 0;
            if (!eventField(line, "bytes", bytes) ||
                !reader.readBytes(bytes, resp.report)) {
                resp.error = "truncated report";
                ::close(fd);
                return resp;
            }
        } else if (event == "done") {
            eventField(line, "hits", resp.hits);
            eventField(line, "misses", resp.misses);
            resp.haveDone = true;
            sawTerminal = true;
            break;
        } else if (event == "error") {
            eventField(line, "message", resp.error);
            if (resp.error.empty())
                resp.error = "server error";
            ::close(fd);
            return resp;
        } else if (event == "pong" || event == "bye" ||
                   event == "stats") {
            sawTerminal = true;
            break;
        }
    }
    ::close(fd);
    if (!sawTerminal) {
        resp.error = "connection closed mid-stream";
        return resp;
    }
    resp.ok = true;
    return resp;
}

} // namespace swsm
