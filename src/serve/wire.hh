/**
 * @file
 * Wire protocol of the sweep server (serve/server.hh).
 *
 * Transport is a SOCK_STREAM AF_UNIX socket. A client sends one
 * newline-terminated request line
 *
 *   <verb> [key=value]...
 *
 * (verbs: ping, stats, run, grid, shutdown) and reads a stream of
 * newline-terminated JSON event objects back. A "report" event carries
 * a "bytes" field and is followed by exactly that many raw bytes of
 * BENCH-schema JSON document; every other event is a single line. The
 * stream ends with a "done" (or "error") event and the server closes
 * the connection.
 *
 * Keys and values must not contain spaces or newlines — every
 * parameter is a name, letter, or number, so no quoting is needed.
 */

#ifndef SWSM_SERVE_WIRE_HH
#define SWSM_SERVE_WIRE_HH

#include <map>
#include <string>
#include <string_view>

namespace swsm::wire
{

/** One parsed request line. */
struct Request
{
    std::string verb;
    std::map<std::string, std::string> params;

    /** Parameter value or @p def when absent. */
    std::string get(const std::string &key, const std::string &def = "")
        const;
};

/** Parse "verb k=v ..."; false on empty lines or bare '=' tokens. */
bool parseRequest(std::string_view line, Request &out);

/** Render a request as its wire line (no trailing newline). */
std::string formatRequest(const Request &req);

/** Default socket path: <shm dir>/swsm_serve.sock, or $SWSM_SERVE_SOCK. */
std::string defaultSockPath();

/** Bind + listen on a unix socket (unlinking a stale path); -1 on error. */
int listenUnix(const std::string &path);

/** Connect to a unix socket; -1 on error. */
int connectUnix(const std::string &path);

/**
 * Bind + listen a TCP socket on @p port, all interfaces (the shard
 * protocol's cross-host transport; SO_REUSEADDR set); -1 on error.
 */
int listenTcp(int port);

/** Connect to @p host:@p port (name or numeric); -1 on error. */
int connectTcp(const std::string &host, int port);

/** Write the whole buffer (MSG_NOSIGNAL); false on a closed peer. */
bool writeAll(int fd, std::string_view data);

/** Buffered reader for newline-framed lines plus raw byte runs. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Read up to a newline (stripped); false on EOF/error. */
    bool readLine(std::string &out);

    /** Read exactly @p n raw bytes; false on short reads. */
    bool readBytes(std::size_t n, std::string &out);

  private:
    bool fill();

    int fd_;
    std::string buf_;
};

} // namespace swsm::wire

#endif // SWSM_SERVE_WIRE_HH
