/**
 * @file
 * Client side of the sweep server protocol (serve/wire.hh): connect,
 * send one request, stream the response. Shared by the swsm_query CLI
 * and the server lifecycle tests.
 */

#ifndef SWSM_SERVE_CLIENT_HH
#define SWSM_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/wire.hh"

namespace swsm
{

/** One fully-read server response. */
struct ServeResponse
{
    /** Transport and protocol success (an "error" event clears it). */
    bool ok = false;
    /** Message of the error event (or a transport description). */
    std::string error;
    /** Every event line received, in order (report bytes excluded). */
    std::vector<std::string> events;
    /** The BENCH document of the report event, when one arrived. */
    std::string report;
    /** Parsed from the done event (request-local cache traffic). */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    bool haveDone = false;
};

/**
 * Transport knobs. The defaults keep the historical behaviour (one
 * connect attempt, block forever); swsm_query exposes them as
 * --timeout and --retries so a wedged or absent server produces a
 * diagnostic instead of a hang.
 */
struct ClientOptions
{
    /**
     * Per-I/O deadline in milliseconds (SO_RCVTIMEO/SO_SNDTIMEO);
     * 0 = wait forever. This bounds each read of the event stream,
     * not the whole request — a grid that streams a result every few
     * seconds keeps resetting it.
     */
    int timeoutMs = 0;
    /** Extra connect attempts after the first fails; 0 = fail fast. */
    int retries = 0;
    /** First retry delay; doubles per attempt (capped at 5 s). */
    int backoffMs = 50;
};

/**
 * Send @p req to the server at @p sock_path and read the response to
 * completion. @p on_event (optional) sees each event line as it
 * arrives — progress streaming for the CLI.
 */
ServeResponse serveRequest(
    const std::string &sock_path, const wire::Request &req,
    const std::function<void(const std::string &line)> &on_event = {},
    const ClientOptions &opts = {});

/** Extract an unsigned JSON field ("name":123) from an event line. */
bool eventField(const std::string &line, const std::string &name,
                std::uint64_t &out);

/** Extract a string JSON field ("name":"value") from an event line. */
bool eventField(const std::string &line, const std::string &name,
                std::string &out);

} // namespace swsm

#endif // SWSM_SERVE_CLIENT_HH
