/**
 * @file
 * Persistent sweep server: accepts run/grid requests over a local unix
 * socket, schedules the underlying simulations on the harness TaskPool
 * (baselines before the configurations that need them, exactly like
 * the batch ParallelSweepRunner), and streams BENCH-schema results
 * back incrementally.
 *
 * Completed experiments are memoized in a named shared-memory segment
 * (serve/shm_cache.hh) keyed by the canonical parameter tuple
 *
 *   <size>/p<procs>/<SweepRunner::resultKey>      results
 *   <size>/baseline/<app>                         sequential baselines
 *
 * so repeated grids skip already-simulated configurations, the cache
 * survives server restarts, and offline tools can read it zero-copy
 * (tools/bench_diff.py --from-shm). Keys deliberately exclude
 * jobs/simThreads — results are bit-identical across both by
 * construction — and baselines exclude procs (a sequential run).
 *
 * Concurrent clients requesting the same uncached configuration are
 * deduplicated in-flight: the first request simulates, the rest block
 * on its completion, and serve.sim_runs counts each simulation once.
 *
 * With workers > 0 the server stops simulating in-process: cache
 * misses are pushed onto a shared-memory job queue (serve/shm_queue.hh)
 * and N forked worker processes (serve/worker.hh) pull, simulate and
 * publish into the memo segment; a supervisor thread reclaims the
 * leases of crashed workers and respawns them. With tcpPort > 0 the
 * same verbs are also served over TCP, which is how shard peers
 * (serve/shard.hh) reach each other across hosts.
 *
 * Replay determinism: the cached blob stores the host seconds measured
 * when the experiment originally ran, and the report's top-level
 * hostSeconds is the sum over its entries rather than wall-clock, so a
 * cache-hit replay of a request is byte-identical to the pass that
 * populated it. (Batch BENCH files measure wall-clock there — compare
 * server output against them with tools/bench_diff.py, which ignores
 * host timing, not with cmp.)
 */

#ifndef SWSM_SERVE_SERVER_HH
#define SWSM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "harness/sweep.hh"
#include "obs/metrics.hh"
#include "serve/shm_cache.hh"
#include "serve/shm_queue.hh"
#include "serve/wire.hh"

namespace swsm
{

struct ServerOptions
{
    /** Listening socket path. */
    std::string sockPath = wire::defaultSockPath();
    /** Memo segment name (inside ShmCache::defaultDir()). */
    std::string segment = "swsm_memo";
    std::uint32_t slotCount = 4096;
    std::uint64_t arenaBytes = 64ull << 20;
    /** TaskPool workers per grid request. */
    int jobs = defaultJobs();
    /** Threads inside each simulation (parallel event kernel). */
    int simThreads = defaultSimThreads();
    /** Wipe the segment before serving. */
    bool reset = false;
    /**
     * Worker processes pulling jobs off the shared-memory queue
     * (serve/shm_queue.hh); 0 = simulate in-process (the classic
     * single-process server).
     */
    int workers = 0;
    /** Re-queue a leased job whose heartbeat is older than this. */
    std::uint64_t leaseTimeoutMs = 10000;
    /** Worker lease heartbeat period. */
    std::uint64_t workerHeartbeatMs = 250;
    /**
     * Also accept requests on this TCP port (the shard protocol's
     * cross-host transport, serve/shard.hh); 0 = unix socket only.
     */
    int tcpPort = 0;
};

/** The sweep server; construct, then run() until a shutdown request. */
class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Accept requests until a shutdown verb arrives. */
    void run();

    /** Ask a running run() to stop (unblocks the accept loop). */
    void stop();

    const std::string &sockPath() const { return opts_.sockPath; }
    ShmCache &cache() { return cache_; }

    /** Simulations actually executed (cache misses computed here). */
    std::uint64_t simRuns() const
    {
        return simRuns_.load(std::memory_order_relaxed);
    }

    /** Frozen serve.* metrics (requests, hits, queue depth, latency). */
    MetricsSnapshot metrics() const { return registry_.snapshot(); }

    /** The job queue, when --workers is active (tests peek at stats). */
    ShmQueue *jobQueue() { return queue_.get(); }

    /** Live worker process ids (empty when workers == 0). */
    std::vector<pid_t> workerPids() const;

  private:
    struct Inflight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string blob;
        std::string error;
    };

    /**
     * One executed grid: deduped items, their cache keys, and every
     * blob/decoded result — enough to render a BENCH report or stream
     * raw blobs to a shard coordinator.
     */
    struct GridRun
    {
        std::vector<GridItem> items;
        /** Memo-cache keys, grid order. */
        std::vector<std::string> keys;
        /** Bare batch-runner keys (reports key on these). */
        std::vector<std::string> reportKeys;
        std::vector<ExperimentResult> results;
        std::vector<std::string> blobs;
        std::vector<bool> cached;
        /** app -> (sequential cycles, encoded baseline blob). */
        std::map<std::string, std::pair<Cycles, std::string>> baselines;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    void handleConnection(int fd);
    bool handleRunOrGrid(int fd, const wire::Request &req);
    bool handleShardWork(int fd, const wire::Request &req);
    bool handleShard(int fd, const wire::Request &req);

    /**
     * Dedupe @p items and run them all (baselines first, TaskPool
     * parallel, memo-cached). @p onResult, when set, sees each item in
     * grid order as it completes; a false return stops further calls
     * (client gone) without aborting the grid. @return false with
     * @p failure set when any item failed.
     */
    bool executeGrid(const SweepOptions &sweep,
                     std::vector<GridItem> items, GridRun &run,
                     const std::function<bool(std::size_t)> &onResult,
                     std::string &failure);

    /** Fork one worker process (queue consumer); returns its pid. */
    pid_t spawnWorkerProcess();
    /** Supervisor thread: reclaim stale leases, respawn dead workers. */
    void superviseWorkers();
    /** Dispatch @p key to the worker queue and wait for its blob. */
    std::string computeViaQueue(const std::string &key);

    /**
     * Cache lookup with in-flight dedup; on miss @p compute runs (once
     * across all concurrent requesters) and the blob is stored.
     * @param cached set true on a shared-memory hit
     * @throws FatalError when compute failed (in any requester)
     */
    std::string obtain(const std::string &key, bool &cached,
                       const std::function<std::string()> &compute);

    Cycles obtainBaseline(const AppInfo &app, const SweepOptions &sweep,
                          bool &cached, std::string *blob_out = nullptr);
    ExperimentResult obtainResult(const GridItem &item,
                                  const SweepOptions &sweep, Cycles seq,
                                  bool &cached,
                                  std::string *blob_out = nullptr);

    void recordLatency(double seconds);

    ServerOptions opts_;
    ShmCache cache_;
    int listenFd_ = -1;
    int tcpListenFd_ = -1;
    std::atomic<bool> stopping_{false};

    /** Worker fan-out state (workers > 0 only). */
    std::unique_ptr<ShmQueue> queue_;
    std::vector<pid_t> workerPids_;
    mutable std::mutex workerMu_;
    std::thread supervisor_;

    std::mutex inflightMu_;
    std::map<std::string, std::shared_ptr<Inflight>> inflight_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> simRuns_{0};
    std::atomic<std::uint64_t> reqHits_{0};
    std::atomic<std::uint64_t> reqMisses_{0};
    std::atomic<int> queueDepth_{0};
    mutable std::mutex latencyMu_;
    HistogramData latencyUs_;
    MetricsRegistry registry_;
};

/** Canonical memo-cache key for one grid item under @p sweep. */
std::string cacheKeyResult(const SweepOptions &sweep,
                           const GridItem &item);
/** Canonical memo-cache key for @p app's sequential baseline. */
std::string cacheKeyBaseline(const SweepOptions &sweep,
                             const std::string &app);

} // namespace swsm

#endif // SWSM_SERVE_SERVER_HH
