#include "shm_queue.hh"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/shm_cache.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

constexpr char kMagic[8] = {'S', 'W', 'S', 'M', 'J', 'O', 'B', 'Q'};
constexpr std::uint32_t kLayoutVersion = 1;
constexpr std::uint64_t kHeaderBytes = 128;
constexpr std::uint64_t kSlotBytes = 256;
constexpr std::uint64_t kPayloadBytes = 192;

constexpr std::uint64_t kFree = 0;
constexpr std::uint64_t kClaimed = 1;
constexpr std::uint64_t kQueued = 2;
constexpr std::uint64_t kLeased = 3;
constexpr std::uint64_t kFailed = 4;

constexpr std::uint64_t
phaseOf(std::uint64_t word)
{
    return word & 0xff;
}

constexpr std::uint64_t
epochOf(std::uint64_t word)
{
    return word >> 8;
}

constexpr std::uint64_t
makeWord(std::uint64_t epoch, std::uint64_t phase)
{
    return (epoch << 8) | phase;
}

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v && p < (1u << 30))
        p <<= 1;
    return p;
}

} // namespace

struct ShmQueue::Header
{
    char magic[8];
    std::uint32_t layoutVersion;
    std::uint32_t slotCount;
    std::atomic<std::uint64_t> pushHint;
    std::atomic<std::uint64_t> popHint;
    std::atomic<std::uint64_t> pushed;
    std::atomic<std::uint64_t> completed;
    std::atomic<std::uint64_t> failed;
    std::atomic<std::uint64_t> reclaimed;
};

struct ShmQueue::Slot
{
    std::atomic<std::uint64_t> state;
    std::atomic<std::uint64_t> leaseMs;
    std::uint32_t keyLen;
    std::uint32_t errLen;
    std::uint64_t keyHash;
    std::uint8_t reserved[32];
    char payload[kPayloadBytes];
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "segment atomics must be address-free");

ShmQueue::Header *
ShmQueue::header() const
{
    return static_cast<Header *>(map_);
}

ShmQueue::Slot *
ShmQueue::slot(std::uint32_t i) const
{
    return reinterpret_cast<Slot *>(static_cast<std::uint8_t *>(map_) +
                                    kHeaderBytes +
                                    static_cast<std::uint64_t>(i) *
                                        kSlotBytes);
}

bool
ShmQueue::remove(const std::string &name)
{
    return ::unlink(ShmCache::pathFor(name).c_str()) == 0;
}

std::uint64_t
ShmQueue::nowMs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000ull +
        static_cast<std::uint64_t>(ts.tv_nsec) / 1000000ull;
}

bool
ShmQueue::headerValid() const
{
    const Header *h = header();
    return std::memcmp(h->magic, kMagic, sizeof(kMagic)) == 0 &&
        h->layoutVersion == kLayoutVersion && h->slotCount == slots_;
}

void
ShmQueue::initialize()
{
    std::memset(map_, 0, mapBytes_);
    Header *h = header();
    std::memcpy(h->magic, kMagic, sizeof(kMagic));
    h->layoutVersion = kLayoutVersion;
    h->slotCount = slots_;
}

ShmQueue::ShmQueue(const Options &opts)
{
    static_assert(sizeof(Header) <= kHeaderBytes,
                  "header grew past its reserved block");
    static_assert(sizeof(Slot) == kSlotBytes, "slot layout drifted");
    static_assert(offsetof(Slot, payload) == kSlotBytes - kPayloadBytes,
                  "payload block must close out the slot");

    slots_ = roundUpPow2(opts.slotCount ? opts.slotCount : 1);
    mapBytes_ =
        kHeaderBytes + static_cast<std::uint64_t>(slots_) * kSlotBytes;

    const std::string path = ShmCache::pathFor(opts.name);
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        SWSM_FATAL("shm queue: cannot open %s", path.c_str());

    // Exclusive lock only around geometry validation and (re)init;
    // steady-state operation is lock-free on the mapped atomics.
    ::flock(fd_, LOCK_EX);
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
        SWSM_FATAL("shm queue: cannot stat %s", path.c_str());
    }
    const bool sizeOk =
        static_cast<std::uint64_t>(st.st_size) == mapBytes_;
    if (!sizeOk) {
        if (::ftruncate(fd_, 0) != 0 ||
            ::ftruncate(fd_, static_cast<off_t>(mapBytes_)) != 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
            SWSM_FATAL("shm queue: cannot size %s", path.c_str());
        }
    }

    map_ = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  fd_, 0);
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
        SWSM_FATAL("shm queue: cannot map %s", path.c_str());
    }

    if (!sizeOk || !headerValid())
        initialize();
    ::flock(fd_, LOCK_UN);
}

ShmQueue::~ShmQueue()
{
    if (map_)
        ::munmap(map_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ShmQueue::push(std::string_view key)
{
    if (key.size() > maxKeyBytes)
        return false;
    Header *h = header();
    const std::uint64_t start =
        h->pushHint.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t mask = slots_ - 1;
    for (std::uint32_t i = 0; i < slots_; ++i) {
        Slot &s = *slot(static_cast<std::uint32_t>(start + i) & mask);
        std::uint64_t word = s.state.load(std::memory_order_acquire);
        if (phaseOf(word) != kFree)
            continue;
        // Bumping the epoch on claim starts a new job generation, so
        // state words from any earlier occupant of this slot can never
        // CAS against the new one.
        if (!s.state.compare_exchange_strong(
                word, makeWord(epochOf(word) + 1, kClaimed),
                std::memory_order_acq_rel))
            continue;
        std::memcpy(s.payload, key.data(), key.size());
        s.keyLen = static_cast<std::uint32_t>(key.size());
        s.errLen = 0;
        s.keyHash = fnv1a64(key);
        s.leaseMs.store(0, std::memory_order_relaxed);
        s.state.store(makeWord(epochOf(word) + 1, kQueued),
                      std::memory_order_release);
        h->pushed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
ShmQueue::tryPop(Lease &out)
{
    Header *h = header();
    const std::uint64_t start =
        h->popHint.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t mask = slots_ - 1;
    for (std::uint32_t i = 0; i < slots_; ++i) {
        const std::uint32_t idx =
            static_cast<std::uint32_t>(start + i) & mask;
        Slot &s = *slot(idx);
        std::uint64_t word = s.state.load(std::memory_order_acquire);
        if (phaseOf(word) != kQueued)
            continue;
        const std::uint64_t leased = makeWord(epochOf(word), kLeased);
        if (!s.state.compare_exchange_strong(word, leased,
                                             std::memory_order_acq_rel))
            continue;
        s.leaseMs.store(nowMs(), std::memory_order_relaxed);
        out.slot = idx;
        out.word = leased;
        out.key.assign(s.payload, s.keyLen);
        return true;
    }
    return false;
}

bool
ShmQueue::heartbeat(const Lease &lease)
{
    Slot &s = *slot(lease.slot);
    if (s.state.load(std::memory_order_acquire) != lease.word)
        return false;
    // A lost race here (reclaim between the check and the store) only
    // refreshes the new occupant's heartbeat — a benign extension.
    s.leaseMs.store(nowMs(), std::memory_order_relaxed);
    return true;
}

bool
ShmQueue::complete(const Lease &lease)
{
    Slot &s = *slot(lease.slot);
    std::uint64_t expect = lease.word;
    if (!s.state.compare_exchange_strong(
            expect, makeWord(epochOf(lease.word) + 1, kFree),
            std::memory_order_acq_rel))
        return false; // reclaimed; the re-leased run owns the slot now
    header()->completed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ShmQueue::fail(const Lease &lease, std::string_view error)
{
    Slot &s = *slot(lease.slot);
    if (s.state.load(std::memory_order_acquire) != lease.word)
        return false;
    // Only the lease holder writes past keyLen, and the Failed publish
    // below is the release barrier the reader pairs with.
    const std::uint64_t spare = kPayloadBytes - s.keyLen;
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(spare,
                                                           error.size()));
    std::memcpy(s.payload + s.keyLen, error.data(), n);
    s.errLen = n;
    std::uint64_t expect = lease.word;
    if (!s.state.compare_exchange_strong(
            expect, makeWord(epochOf(lease.word), kFailed),
            std::memory_order_acq_rel))
        return false;
    header()->failed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ShmQueue::takeFailure(std::string_view key, std::string &error)
{
    const std::uint64_t hash = fnv1a64(key);
    for (std::uint32_t i = 0; i < slots_; ++i) {
        Slot &s = *slot(i);
        std::uint64_t word = s.state.load(std::memory_order_acquire);
        if (phaseOf(word) != kFailed || s.keyHash != hash)
            continue;
        if (std::string_view(s.payload, s.keyLen) != key)
            continue;
        const std::string text(s.payload + s.keyLen, s.errLen);
        if (!s.state.compare_exchange_strong(
                word, makeWord(epochOf(word) + 1, kFree),
                std::memory_order_acq_rel))
            continue;
        error = text;
        return true;
    }
    return false;
}

bool
ShmQueue::contains(std::string_view key) const
{
    const std::uint64_t hash = fnv1a64(key);
    for (std::uint32_t i = 0; i < slots_; ++i) {
        Slot &s = *slot(i);
        const std::uint64_t word =
            s.state.load(std::memory_order_acquire);
        const std::uint64_t phase = phaseOf(word);
        if (phase == kFree || phase == kClaimed)
            continue;
        if (s.keyHash != hash ||
            std::string_view(s.payload, s.keyLen) != key)
            continue;
        // Confirm the slot still holds this occupant after the read.
        if (s.state.load(std::memory_order_acquire) == word)
            return true;
    }
    return false;
}

int
ShmQueue::reclaimExpired(std::uint64_t stale_ms)
{
    Header *h = header();
    const std::uint64_t now = nowMs();
    int reclaimed = 0;
    for (std::uint32_t i = 0; i < slots_; ++i) {
        Slot &s = *slot(i);
        std::uint64_t word = s.state.load(std::memory_order_acquire);
        if (phaseOf(word) != kLeased)
            continue;
        const std::uint64_t beat =
            s.leaseMs.load(std::memory_order_relaxed);
        if (now < beat + stale_ms)
            continue;
        // Epoch bump: the dead worker's complete()/fail() CAS (and any
        // later heartbeat) now misses.
        if (s.state.compare_exchange_strong(
                word, makeWord(epochOf(word) + 1, kQueued),
                std::memory_order_acq_rel)) {
            ++reclaimed;
            h->reclaimed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return reclaimed;
}

ShmQueue::Stats
ShmQueue::stats() const
{
    const Header *h = header();
    Stats st;
    st.pushed = h->pushed.load(std::memory_order_relaxed);
    st.completed = h->completed.load(std::memory_order_relaxed);
    st.failed = h->failed.load(std::memory_order_relaxed);
    st.reclaimed = h->reclaimed.load(std::memory_order_relaxed);
    st.slotCount = slots_;
    for (std::uint32_t i = 0; i < slots_; ++i) {
        const std::uint64_t phase =
            phaseOf(slot(i)->state.load(std::memory_order_relaxed));
        if (phase == kQueued)
            ++st.queued;
        else if (phase == kLeased)
            ++st.leased;
    }
    return st;
}

} // namespace swsm
