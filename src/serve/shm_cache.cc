#include "shm_cache.hh"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/log.hh"

namespace swsm
{

std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace
{

constexpr char kMagic[8] = {'S', 'W', 'S', 'M', 'M', 'E', 'M', 'O'};
constexpr std::uint32_t kLayoutVersion = 1;
constexpr std::uint64_t kHeaderBytes = 128;
constexpr std::uint64_t kSlotBytes = 64;
/** Linear-probe window length (capped by the table size). */
constexpr std::uint32_t kProbeWindow = 16;

constexpr std::uint32_t kEmpty = 0;
constexpr std::uint32_t kBusy = 1;
constexpr std::uint32_t kFull = 2;

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v && p < (1u << 30))
        p <<= 1;
    return p;
}

} // namespace

struct ShmCache::Header
{
    char magic[8];
    std::uint32_t layoutVersion;
    std::uint32_t keySchema;
    std::uint32_t slotCount;
    std::uint32_t reserved;
    std::uint64_t arenaBytes;
    std::atomic<std::uint64_t> arenaUsed;
    std::atomic<std::uint64_t> seq;
    std::atomic<std::uint64_t> hits;
    std::atomic<std::uint64_t> misses;
    std::atomic<std::uint64_t> inserts;
    std::atomic<std::uint64_t> evictions;
};

struct ShmCache::Slot
{
    std::atomic<std::uint32_t> state;
    std::uint32_t keyLen;
    std::uint64_t keyHash;
    std::uint64_t keyOff;
    std::uint64_t valOff;
    std::uint32_t valLen;
    std::uint32_t pad;
    std::uint64_t checksum;
    std::uint64_t seq;
    std::uint64_t pad2;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "segment atomics must be address-free");

std::string
ShmCache::defaultDir()
{
    if (const char *dir = std::getenv("SWSM_SHM_DIR"))
        return dir;
    struct stat st;
    if (::stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode) &&
        ::access("/dev/shm", W_OK) == 0)
        return "/dev/shm";
    return "/tmp";
}

std::string
ShmCache::pathFor(const std::string &name)
{
    return defaultDir() + "/" + name;
}

bool
ShmCache::remove(const std::string &name)
{
    return ::unlink(pathFor(name).c_str()) == 0;
}

ShmCache::Header *
ShmCache::header() const
{
    return static_cast<Header *>(map_);
}

ShmCache::Slot *
ShmCache::slot(std::uint32_t i) const
{
    return reinterpret_cast<Slot *>(static_cast<std::uint8_t *>(map_) +
                                    kHeaderBytes +
                                    static_cast<std::uint64_t>(i) *
                                        kSlotBytes);
}

const std::uint8_t *
ShmCache::bytesAt(std::uint64_t off) const
{
    return static_cast<const std::uint8_t *>(map_) + off;
}

bool
ShmCache::headerValid(const Options &opts) const
{
    const Header *h = header();
    return std::memcmp(h->magic, kMagic, sizeof(kMagic)) == 0 &&
        h->layoutVersion == kLayoutVersion &&
        h->keySchema == opts.keySchema && h->slotCount == slots_ &&
        h->arenaBytes == opts.arenaBytes;
}

void
ShmCache::initialize(const Options &opts)
{
    std::memset(map_, 0, mapBytes_);
    Header *h = header();
    std::memcpy(h->magic, kMagic, sizeof(kMagic));
    h->layoutVersion = kLayoutVersion;
    h->keySchema = opts.keySchema;
    h->slotCount = slots_;
    h->arenaBytes = opts.arenaBytes;
}

ShmCache::ShmCache(const Options &opts)
{
    static_assert(sizeof(Header) <= kHeaderBytes,
                  "header grew past its reserved block");
    static_assert(sizeof(Slot) == kSlotBytes,
                  "slot layout is mirrored by tools/bench_diff.py");
    static_assert(offsetof(Slot, keyHash) == 8 &&
                      offsetof(Slot, keyOff) == 16 &&
                      offsetof(Slot, valOff) == 24 &&
                      offsetof(Slot, valLen) == 32 &&
                      offsetof(Slot, checksum) == 40 &&
                      offsetof(Slot, seq) == 48,
                  "slot layout is mirrored by tools/bench_diff.py");

    slots_ = roundUpPow2(opts.slotCount ? opts.slotCount : 1);
    mapBytes_ = kHeaderBytes +
        static_cast<std::uint64_t>(slots_) * kSlotBytes + opts.arenaBytes;

    const std::string path = pathFor(opts.name);
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0)
        SWSM_FATAL("shm cache: cannot open %s", path.c_str());

    // Exclusive lock only around geometry validation and (re)init;
    // steady-state operation is lock-free on the mapped atomics.
    ::flock(fd_, LOCK_EX);
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
        SWSM_FATAL("shm cache: cannot stat %s", path.c_str());
    }
    const bool existed = st.st_size > 0;
    const bool sizeOk =
        static_cast<std::uint64_t>(st.st_size) == mapBytes_;
    if (!sizeOk) {
        // Re-truncating through zero guarantees a zeroed mapping even
        // when shrinking an oversized stale file.
        if (::ftruncate(fd_, 0) != 0 ||
            ::ftruncate(fd_, static_cast<off_t>(mapBytes_)) != 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
            SWSM_FATAL("shm cache: cannot size %s", path.c_str());
        }
    }

    map_ = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                  fd_, 0);
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
        SWSM_FATAL("shm cache: cannot map %s", path.c_str());
    }

    if (!sizeOk || !headerValid(opts)) {
        initialize(opts);
        rebuilt_ = existed;
        if (rebuilt_)
            SWSM_WARN("shm cache: stale or corrupt segment %s rebuilt",
                      path.c_str());
    }
    ::flock(fd_, LOCK_UN);
}

ShmCache::~ShmCache()
{
    if (map_)
        ::munmap(map_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ShmCache::readEntry(Slot &s, std::string_view key, std::string &value)
{
    // Snapshot the descriptor, copy the bytes, then confirm the slot
    // did not change underneath (eviction reuses slots); a mismatch at
    // any step reads as "not this entry".
    const std::uint64_t entry_seq = s.seq;
    const std::uint64_t key_off = s.keyOff;
    const std::uint32_t key_len = s.keyLen;
    const std::uint64_t val_off = s.valOff;
    const std::uint32_t val_len = s.valLen;
    const std::uint64_t sum = s.checksum;
    if (key_len != key.size())
        return false;
    if (key_off + key_len > mapBytes_ || val_off + val_len > mapBytes_)
        return false;
    const std::string_view stored_key(
        reinterpret_cast<const char *>(bytesAt(key_off)), key_len);
    if (stored_key != key)
        return false;
    value.assign(reinterpret_cast<const char *>(bytesAt(val_off)),
                 val_len);
    if (fnv1a64(value, fnv1a64(key)) != sum)
        return false;
    return s.state.load(std::memory_order_acquire) == kFull &&
        s.seq == entry_seq;
}

bool
ShmCache::get(std::string_view key, std::string &value)
{
    Header *h = header();
    const std::uint64_t hash = fnv1a64(key);
    const std::uint32_t window = std::min(kProbeWindow, slots_);
    const std::uint32_t mask = slots_ - 1;
    for (std::uint32_t i = 0; i < window; ++i) {
        Slot &s = *slot((static_cast<std::uint32_t>(hash) + i) & mask);
        if (s.state.load(std::memory_order_acquire) != kFull)
            continue;
        if (s.keyHash != hash)
            continue;
        if (readEntry(s, key, value)) {
            h->hits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        if (s.keyLen == key.size() && s.keyHash == hash) {
            // Same key but the bytes failed validation: a corrupt
            // entry. Reclaim the one slot so a fresh insert can land.
            std::uint32_t expect = kFull;
            if (s.state.compare_exchange_strong(
                    expect, kEmpty, std::memory_order_acq_rel))
                SWSM_WARN("shm cache: dropped corrupt entry for %.*s",
                          static_cast<int>(key.size()), key.data());
            break;
        }
    }
    h->misses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
ShmCache::put(std::string_view key, std::string_view value)
{
    Header *h = header();
    const std::uint64_t hash = fnv1a64(key);
    const std::uint32_t window = std::min(kProbeWindow, slots_);
    const std::uint32_t mask = slots_ - 1;

    // First writer wins: an existing valid entry for the key is the
    // memoized result and must not be replaced.
    {
        std::string existing;
        for (std::uint32_t i = 0; i < window; ++i) {
            Slot &s =
                *slot((static_cast<std::uint32_t>(hash) + i) & mask);
            if (s.state.load(std::memory_order_acquire) == kFull &&
                s.keyHash == hash && readEntry(s, key, existing))
                return true;
        }
    }

    // Reserve arena space (CAS loop so a full arena stays exactly
    // full instead of overflowing the used counter).
    const std::uint64_t need = key.size() + value.size();
    std::uint64_t off = h->arenaUsed.load(std::memory_order_relaxed);
    const std::uint64_t arena0 = kHeaderBytes +
        static_cast<std::uint64_t>(slots_) * kSlotBytes;
    for (;;) {
        if (off + need > h->arenaBytes)
            return false;
        if (h->arenaUsed.compare_exchange_weak(
                off, off + need, std::memory_order_relaxed))
            break;
    }
    const std::uint64_t key_off = arena0 + off;
    const std::uint64_t val_off = key_off + key.size();

    // Claim a slot: an empty one in the window, else evict the
    // oldest-seq full slot (its arena bytes are left behind — see the
    // header comment on the append-only arena).
    Slot *claimed = nullptr;
    for (std::uint32_t i = 0; i < window && !claimed; ++i) {
        Slot &s = *slot((static_cast<std::uint32_t>(hash) + i) & mask);
        std::uint32_t expect = kEmpty;
        if (s.state.compare_exchange_strong(expect, kBusy,
                                            std::memory_order_acq_rel))
            claimed = &s;
    }
    if (!claimed) {
        for (std::uint32_t attempt = 0; attempt < window && !claimed;
             ++attempt) {
            Slot *oldest = nullptr;
            std::uint64_t oldest_seq = ~0ull;
            for (std::uint32_t i = 0; i < window; ++i) {
                Slot &s =
                    *slot((static_cast<std::uint32_t>(hash) + i) & mask);
                if (s.state.load(std::memory_order_acquire) == kFull &&
                    s.seq < oldest_seq) {
                    oldest_seq = s.seq;
                    oldest = &s;
                }
            }
            if (!oldest)
                break;
            std::uint32_t expect = kFull;
            if (oldest->state.compare_exchange_strong(
                    expect, kBusy, std::memory_order_acq_rel)) {
                claimed = oldest;
                h->evictions.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (!claimed)
            return false;
    }

    std::memcpy(static_cast<std::uint8_t *>(map_) + key_off, key.data(),
                key.size());
    std::memcpy(static_cast<std::uint8_t *>(map_) + val_off,
                value.data(), value.size());
    claimed->keyHash = hash;
    claimed->keyOff = key_off;
    claimed->keyLen = static_cast<std::uint32_t>(key.size());
    claimed->valOff = val_off;
    claimed->valLen = static_cast<std::uint32_t>(value.size());
    claimed->checksum = fnv1a64(value, fnv1a64(key));
    claimed->seq = h->seq.fetch_add(1, std::memory_order_relaxed) + 1;
    claimed->state.store(kFull, std::memory_order_release);
    h->inserts.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ShmCache::forEach(const std::function<void(std::string_view key,
                                           std::string_view value)> &fn)
{
    for (std::uint32_t i = 0; i < slots_; ++i) {
        Slot &s = *slot(i);
        if (s.state.load(std::memory_order_acquire) != kFull)
            continue;
        const std::uint64_t key_off = s.keyOff;
        const std::uint32_t key_len = s.keyLen;
        const std::uint64_t val_off = s.valOff;
        const std::uint32_t val_len = s.valLen;
        if (key_off + key_len > mapBytes_ ||
            val_off + val_len > mapBytes_)
            continue;
        const std::string_view key(
            reinterpret_cast<const char *>(bytesAt(key_off)), key_len);
        const std::string_view value(
            reinterpret_cast<const char *>(bytesAt(val_off)), val_len);
        if (fnv1a64(value, fnv1a64(key)) != s.checksum)
            continue;
        fn(key, value);
    }
}

ShmCache::Stats
ShmCache::stats() const
{
    const Header *h = header();
    Stats st;
    st.hits = h->hits.load(std::memory_order_relaxed);
    st.misses = h->misses.load(std::memory_order_relaxed);
    st.inserts = h->inserts.load(std::memory_order_relaxed);
    st.evictions = h->evictions.load(std::memory_order_relaxed);
    st.arenaUsed = h->arenaUsed.load(std::memory_order_relaxed);
    st.arenaBytes = h->arenaBytes;
    st.slotCount = slots_;
    for (std::uint32_t i = 0; i < slots_; ++i) {
        if (slot(i)->state.load(std::memory_order_relaxed) == kFull)
            ++st.slotsUsed;
    }
    return st;
}

} // namespace swsm
