/**
 * @file
 * Persistent shared-memory memo cache for completed experiment results.
 *
 * A ShmCache is a named, file-backed shared-memory segment (default
 * directory /dev/shm, overridable with SWSM_SHM_DIR) holding a
 * fixed-slot hash table plus an append-only byte arena. Keys are
 * canonical experiment parameter strings (serve/server.hh builds them
 * from SweepRunner::resultKey plus the size/procs prefix) and values
 * are opaque blobs (serve/result_codec.hh). The segment survives
 * process restarts and is safely shared by concurrent readers and
 * writers in different processes: slot state transitions use lock-free
 * CAS on std::atomic<std::uint32_t> words that live inside the mapping
 * (address-free on the supported targets), and every entry carries an
 * FNV-1a checksum over its key and value bytes so a torn or corrupted
 * entry reads as a miss instead of bad data.
 *
 * Layout (all integers little-endian, offsets from segment start;
 * mirrored by tools/bench_diff.py --from-shm, keep in sync):
 *
 *   [0,128)   Header: magic "SWSMMEMO", u32 layoutVersion,
 *             u32 keySchema, u32 slotCount, u32 reserved,
 *             u64 arenaBytes, then atomic u64 arenaUsed, seq, hits,
 *             misses, inserts, evictions; zero padding to 128.
 *   [128, 128 + 64*slotCount)  Slot array, 64 bytes each:
 *             u32 state (0 empty / 1 busy / 2 full), u32 keyLen,
 *             u64 keyHash, u64 keyOff, u64 valOff, u32 valLen,
 *             u32 pad, u64 checksum, u64 seq, u64 pad2.
 *   [arena0, arena0 + arenaBytes)  append-only arena; keyOff/valOff
 *             are absolute segment offsets.
 *
 * Invalidation rules: a magic/layoutVersion/keySchema/geometry mismatch
 * on attach wipes and reinitialises the segment (wasRebuilt() reports
 * it); a checksum mismatch on lookup reclaims the one slot. Eviction
 * (window full) drops the oldest-seq entry; its arena bytes are not
 * reclaimed — the arena is an append-only log sized so fig3-scale
 * grids never fill it, and a full arena just stops new inserts.
 */

#ifndef SWSM_SERVE_SHM_CACHE_HH
#define SWSM_SERVE_SHM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace swsm
{

/** FNV-1a 64-bit hash (also the entry checksum primitive). */
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** A named shared-memory key/value memo segment. */
class ShmCache
{
  public:
    struct Options
    {
        /** Segment file name inside defaultDir(). */
        std::string name = "swsm_memo";
        /** Value-format version; a mismatch on attach rebuilds. */
        std::uint32_t keySchema = 0;
        /** Hash table capacity (rounded up to a power of two). */
        std::uint32_t slotCount = 4096;
        /** Append-only arena capacity in bytes. */
        std::uint64_t arenaBytes = 64ull << 20;
    };

    /** Lifetime counters + occupancy, read from the live header. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        std::uint64_t slotsUsed = 0;
        std::uint64_t arenaUsed = 0;
        std::uint64_t arenaBytes = 0;
        std::uint32_t slotCount = 0;
    };

    /**
     * Attach to (creating or rebuilding as needed) the named segment.
     * Throws FatalError when the backing file cannot be created or
     * mapped.
     */
    explicit ShmCache(const Options &opts);
    ~ShmCache();

    ShmCache(const ShmCache &) = delete;
    ShmCache &operator=(const ShmCache &) = delete;

    /** Segment directory: $SWSM_SHM_DIR, /dev/shm, or /tmp. */
    static std::string defaultDir();
    /** Backing-file path for segment @p name. */
    static std::string pathFor(const std::string &name);
    /** Unlink segment @p name; true if a file was removed. */
    static bool remove(const std::string &name);

    /** True when attach found a stale/corrupt header and reinitialised. */
    bool wasRebuilt() const { return rebuilt_; }

    /**
     * Look @p key up; on hit copies the value into @p value. Checksum
     * failures reclaim the slot and count as misses.
     */
    bool get(std::string_view key, std::string &value);

    /**
     * Insert @p key -> @p value (first writer wins; an existing entry
     * for the key is kept untouched). @return false when the value
     * cannot be stored (arena full or no evictable slot).
     */
    bool put(std::string_view key, std::string_view value);

    /** Visit every valid entry (checksum-verified), slot order. */
    void forEach(const std::function<void(std::string_view key,
                                          std::string_view value)> &fn);

    Stats stats() const;

    /** Hash-table capacity actually in use (power of two). */
    std::uint32_t slotCount() const { return slots_; }

  private:
    struct Header;
    struct Slot;

    Header *header() const;
    Slot *slot(std::uint32_t i) const;
    const std::uint8_t *bytesAt(std::uint64_t off) const;
    bool headerValid(const Options &opts) const;
    void initialize(const Options &opts);
    bool readEntry(Slot &s, std::string_view key, std::string &value);

    void *map_ = nullptr;
    std::uint64_t mapBytes_ = 0;
    int fd_ = -1;
    std::uint32_t slots_ = 0;
    bool rebuilt_ = false;
};

} // namespace swsm

#endif // SWSM_SERVE_SHM_CACHE_HH
