#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <set>

#include <sys/socket.h>
#include <unistd.h>

#include "harness/bench_report.hh"
#include "harness/task_pool.hh"
#include "obs/json_writer.hh"
#include "serve/result_codec.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

/** Non-fatal registry lookup (bad requests must not kill the server). */
const AppInfo *
findAppSoft(const std::string &name)
{
    for (const AppInfo &app : appRegistry()) {
        if (app.name == name)
            return &app;
    }
    return nullptr;
}

bool
sendEvent(int fd, const std::function<void(JsonWriter &)> &fill)
{
    JsonWriter w(0);
    w.beginObject();
    fill(w);
    w.endObject();
    return wire::writeAll(fd, w.str() + "\n");
}

bool
sendError(int fd, const std::string &message)
{
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "error");
        w.member("message", message);
    });
}

void
writeSnapshot(JsonWriter &w, const MetricsSnapshot &m)
{
    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : m.counters)
        w.member(name, v);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, v] : m.gauges)
        w.member(name, v);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : m.histograms) {
        w.key(name);
        w.beginObject();
        w.member("total", h.total);
        w.key("buckets");
        w.beginArray();
        for (const std::uint64_t count : h.buckets)
            w.value(count);
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

/**
 * Build the request's sweep options from its parameters. The server's
 * jobs/simThreads settings ride along so every request renders the
 * same report header; simThreadsExplicit pins the per-simulation
 * thread count (results are bit-identical across it anyway).
 */
bool
buildSweep(const wire::Request &req, const ServerOptions &server,
           SweepOptions &out, std::string &err)
{
    SweepOptions sweep;
    if (!parseSizeClass(req.get("size", "small"), sweep.size)) {
        err = "bad size (want tiny|small|medium|paper)";
        return false;
    }
    if (!parseBoundedInt(req.get("procs", "16"), 1, maxProcs,
                         sweep.numProcs)) {
        err = "bad procs";
        return false;
    }
    sweep.full = req.get("full", "0") == "1";
    const std::string apps = req.get("apps");
    std::size_t pos = 0;
    while (pos < apps.size()) {
        std::size_t comma = apps.find(',', pos);
        if (comma == std::string::npos)
            comma = apps.size();
        const std::string name = apps.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (!findAppSoft(name)) {
            err = "unknown app \"" + name + "\"";
            return false;
        }
        sweep.apps.push_back(name);
    }
    sweep.jobs = server.jobs;
    sweep.simThreads = server.simThreads;
    sweep.simThreadsExplicit = true;
    out = std::move(sweep);
    return true;
}

/** Items of a "run" request: the one configuration it names. */
bool
buildRunItem(const wire::Request &req, GridItem &out, std::string &err)
{
    const AppInfo *app = findAppSoft(req.get("app"));
    if (!app) {
        err = "unknown app \"" + req.get("app") + "\"";
        return false;
    }
    GridItem item;
    item.app = *app;
    const std::string proto = req.get("proto", "hlrc");
    if (proto == "ideal") {
        item.ideal = true;
        item.kind = ProtocolKind::Ideal;
    } else if (proto == "hlrc") {
        item.kind = ProtocolKind::Hlrc;
    } else if (proto == "sc") {
        item.kind = ProtocolKind::Sc;
    } else {
        err = "bad proto (want hlrc|sc|ideal)";
        return false;
    }
    const std::string comm = req.get("comm", "A");
    const std::string cost = req.get("cost", "O");
    if (comm.size() != 1 ||
        std::string("AHBWX").find(comm[0]) == std::string::npos) {
        err = "bad comm set (want one of A H B W X)";
        return false;
    }
    if (cost.size() != 1 ||
        std::string("OHB").find(cost[0]) == std::string::npos) {
        err = "bad cost set (want one of O H B)";
        return false;
    }
    item.commSet = comm[0];
    item.protoSet = cost[0];
    out = std::move(item);
    return true;
}

/** RAII socket close. */
struct FdCloser
{
    int fd;
    ~FdCloser()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

} // namespace

std::string
cacheKeyResult(const SweepOptions &sweep, const GridItem &item)
{
    const std::string suffix = item.ideal
        ? SweepRunner::idealKey(item.app)
        : SweepRunner::resultKey(item.app, item.kind, item.commSet,
                                 item.protoSet);
    return std::string(sizeClassName(sweep.size)) + "/p" +
        std::to_string(sweep.numProcs) + "/" + suffix;
}

std::string
cacheKeyBaseline(const SweepOptions &sweep, const std::string &app)
{
    // No procs component: the baseline is a sequential run.
    return std::string(sizeClassName(sweep.size)) + "/baseline/" + app;
}

Server::Server(const ServerOptions &opts)
    : opts_(opts),
      cache_([&] {
          if (opts.reset)
              ShmCache::remove(opts.segment);
          ShmCache::Options co;
          co.name = opts.segment;
          co.keySchema = codec::schemaVersion;
          co.slotCount = opts.slotCount;
          co.arenaBytes = opts.arenaBytes;
          return co;
      }())
{
    listenFd_ = wire::listenUnix(opts_.sockPath);
    if (listenFd_ < 0)
        SWSM_FATAL("sweep server: cannot listen on %s",
                   opts_.sockPath.c_str());

    registry_.addCounter("serve.requests", [this] {
        return requests_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.sim_runs", [this] {
        return simRuns_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.hits", [this] {
        return reqHits_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.misses", [this] {
        return reqMisses_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.cache_inserts",
                         [this] { return cache_.stats().inserts; });
    registry_.addCounter("serve.cache_evictions",
                         [this] { return cache_.stats().evictions; });
    registry_.addCounter("serve.cache_slots_used",
                         [this] { return cache_.stats().slotsUsed; });
    registry_.addCounter("serve.cache_arena_used",
                         [this] { return cache_.stats().arenaUsed; });
    registry_.addGauge("serve.queue_depth", [this] {
        return static_cast<double>(
            queueDepth_.load(std::memory_order_relaxed));
    });
    registry_.addHistogram("serve.request_latency_us", [this] {
        std::lock_guard<std::mutex> lock(latencyMu_);
        return latencyUs_;
    });
}

Server::~Server()
{
    stop();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    ::unlink(opts_.sockPath.c_str());
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_relaxed);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
}

void
Server::recordLatency(double seconds)
{
    std::uint64_t us = static_cast<std::uint64_t>(seconds * 1e6);
    std::size_t bucket = 0;
    while (us >>= 1)
        ++bucket;
    std::lock_guard<std::mutex> lock(latencyMu_);
    if (latencyUs_.buckets.size() <= bucket)
        latencyUs_.buckets.resize(bucket + 1);
    ++latencyUs_.buckets[bucket];
    ++latencyUs_.total;
}

void
Server::run()
{
    std::vector<std::thread> connections;
    while (!stopping_.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        connections.emplace_back(&Server::handleConnection, this, fd);
    }
    for (std::thread &t : connections)
        t.join();
}

std::string
Server::obtain(const std::string &key, bool &cached,
               const std::function<std::string()> &compute)
{
    std::string blob;
    if (cache_.get(key, blob)) {
        cached = true;
        return blob;
    }
    cached = false;

    std::shared_ptr<Inflight> fl;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            fl = std::make_shared<Inflight>();
            inflight_.emplace(key, fl);
            owner = true;
        } else {
            fl = it->second;
        }
    }

    if (!owner) {
        std::unique_lock<std::mutex> lk(fl->mu);
        fl->cv.wait(lk, [&] { return fl->done; });
        if (fl->failed)
            fatal(fl->error);
        return fl->blob;
    }

    std::string result;
    std::string err;
    try {
        // Another process (or a request that slipped between our miss
        // and the inflight claim) may have stored it meanwhile.
        if (cache_.get(key, result)) {
            cached = true;
        } else {
            simRuns_.fetch_add(1, std::memory_order_relaxed);
            result = compute();
            if (!cache_.put(key, result))
                SWSM_WARN("shm cache: cannot store %s (segment full)",
                          key.c_str());
        }
    } catch (const std::exception &e) {
        err = e.what();
    }

    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        inflight_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lk(fl->mu);
        fl->done = true;
        fl->failed = !err.empty();
        fl->error = err;
        fl->blob = result;
    }
    fl->cv.notify_all();
    if (!err.empty())
        fatal(err);
    return result;
}

Cycles
Server::obtainBaseline(const AppInfo &app, const SweepOptions &sweep,
                       bool &cached)
{
    const std::string blob =
        obtain(cacheKeyBaseline(sweep, app.name), cached, [&] {
            return codec::encodeBaseline(
                runSequentialBaseline(app.factory, sweep.size));
        });
    Cycles seq = 0;
    if (!codec::decodeBaseline(blob, seq))
        fatal("shm cache: undecodable baseline blob for " + app.name);
    return seq;
}

ExperimentResult
Server::obtainResult(const GridItem &item, const SweepOptions &sweep,
                     Cycles seq, bool &cached)
{
    const std::string blob =
        obtain(cacheKeyResult(sweep, item), cached, [&] {
            ExperimentConfig cfg;
            cfg.protocol = item.kind;
            cfg.numProcs = sweep.numProcs;
            cfg.trace = false;
            cfg.simThreads = sweep.effectiveSimThreads();
            if (!item.ideal) {
                cfg.commSet = item.commSet;
                cfg.protoSet =
                    item.kind == ProtocolKind::Sc ? 'O' : item.protoSet;
                cfg.blockBytes = item.app.scBlockBytes;
            }
            return codec::encodeResult(
                runExperiment(item.app.factory, sweep.size, cfg, seq));
        });
    // Fresh computes decode their own encoding too, so hit and miss
    // paths render byte-identically.
    ExperimentResult r;
    if (!codec::decodeResult(blob, r))
        fatal("shm cache: undecodable result blob");
    return r;
}

bool
Server::handleRunOrGrid(int fd, const wire::Request &req)
{
    SweepOptions sweep;
    std::string err;
    if (!buildSweep(req, opts_, sweep, err))
        return sendError(fd, err);

    std::string benchName;
    std::vector<GridItem> items;
    if (req.verb == "grid") {
        benchName = req.get("bench", "fig3");
        if (benchName != "fig3")
            return sendError(fd, "unknown bench \"" + benchName + "\"");
        items = figure3Grid(sweep);
    } else {
        benchName = "run";
        GridItem item;
        if (!buildRunItem(req, item, err))
            return sendError(fd, err);
        items.push_back(std::move(item));
    }

    // Dedupe by canonical key, keeping first-occurrence order (the SC
    // cost variants collapse onto 'O' exactly like the batch runner's
    // plan phase).
    std::vector<std::string> keys;
    std::vector<std::string> reportKeys; // bare batch-runner keys
    {
        std::vector<GridItem> unique;
        std::set<std::string> seen;
        for (GridItem &item : items) {
            std::string key = cacheKeyResult(sweep, item);
            if (!seen.insert(key).second)
                continue;
            reportKeys.push_back(
                item.ideal ? SweepRunner::idealKey(item.app)
                           : SweepRunner::resultKey(item.app, item.kind,
                                                    item.commSet,
                                                    item.protoSet));
            unique.push_back(std::move(item));
            keys.push_back(std::move(key));
        }
        items = std::move(unique);
    }
    if (items.empty())
        return sendError(fd, "empty grid");

    struct ItemState
    {
        bool done = false;
        bool cached = false;
        ExperimentResult result;
        std::string error;
    };
    struct BaselineState
    {
        Cycles seq = 0;
        bool cached = false;
        std::string error;
    };

    std::vector<ItemState> states(items.size());
    std::map<std::string, BaselineState> baselines;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    const auto countLookup = [&](bool cached) {
        (cached ? hits : misses).fetch_add(1, std::memory_order_relaxed);
        (cached ? reqHits_ : reqMisses_)
            .fetch_add(1, std::memory_order_relaxed);
    };

    // Pre-insert every app's baseline node so worker threads only ever
    // assign through stable references.
    for (const GridItem &item : items)
        baselines[item.app.name];

    TaskPool pool(std::max(1, sweep.jobs));
    std::map<std::string, TaskPool::TaskId> baselineTask;
    for (std::size_t i = 0; i < items.size(); ++i) {
        const AppInfo &app = items[i].app;
        if (baselineTask.count(app.name))
            continue;
        BaselineState &bs = baselines[app.name];
        baselineTask[app.name] = pool.submit([this, &app, &sweep, &bs,
                                              &countLookup] {
            try {
                bool cached = false;
                const Cycles seq = obtainBaseline(app, sweep, cached);
                countLookup(cached);
                bs.seq = seq;
                bs.cached = cached;
            } catch (const std::exception &e) {
                bs.error = e.what();
            }
        });
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        const GridItem &item = items[i];
        ItemState &st = states[i];
        const BaselineState &bs = baselines[item.app.name];
        pool.submit(
            [this, &item, &sweep, &st, &bs, &mu, &cv, &countLookup] {
                try {
                    if (!bs.error.empty())
                        fatal(bs.error);
                    bool cached = false;
                    ExperimentResult r =
                        obtainResult(item, sweep, bs.seq, cached);
                    countLookup(cached);
                    std::lock_guard<std::mutex> lock(mu);
                    st.result = std::move(r);
                    st.cached = cached;
                    st.done = true;
                } catch (const std::exception &e) {
                    std::lock_guard<std::mutex> lock(mu);
                    st.error = e.what();
                    st.done = true;
                }
                cv.notify_all();
            },
            {baselineTask[item.app.name]});
    }

    // Stream result events in grid order while the pool executes; a
    // completed item is reported as soon as every earlier one is.
    std::thread runner([&] { pool.run(); });
    std::string failure;
    bool clientGone = false;
    for (std::size_t i = 0; i < items.size(); ++i) {
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return states[i].done; });
        }
        const ItemState &st = states[i];
        if (!st.error.empty()) {
            failure = st.error;
            break;
        }
        if (clientGone)
            continue;
        const bool ok = sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "result");
            w.member("key", keys[i]);
            w.member("cached", st.cached);
            w.member("workload", st.result.workload);
            w.member("protocol", st.result.protocol);
            w.member("config", st.result.config);
            w.member("simCycles",
                     static_cast<std::uint64_t>(
                         st.result.parallelCycles));
            w.member("seqCycles",
                     static_cast<std::uint64_t>(
                         st.result.sequentialCycles));
            w.member("speedup", st.result.speedup());
            w.member("verified", st.result.verified);
        });
        if (!ok)
            clientGone = true; // keep simulating; results stay cached
    }
    runner.join();
    if (!failure.empty())
        return sendError(fd, failure);
    if (clientGone)
        return false;

    // Assemble the BENCH document: baselines in app order, entries in
    // key order, exactly like BenchReport::addAll on the batch path.
    // The top-level hostSeconds is the (deterministic) sum over the
    // entries' stored values, not wall-clock — see the class comment.
    BenchReport report(benchName, &sweep);
    for (const auto &[app, bs] : baselines)
        report.addBaseline(app, bs.seq);
    // Entries carry the bare runner key so the document matches the
    // batch binaries' BENCH output (the size/procs context lives in
    // the report header, as it does there).
    std::map<std::string, const ItemState *> byKey;
    for (std::size_t i = 0; i < items.size(); ++i)
        byKey[reportKeys[i]] = &states[i];
    double hostSum = 0.0;
    for (const auto &[key, st] : byKey) {
        report.add(key, st->result);
        hostSum += st->result.hostSeconds;
    }
    const std::string doc = report.render(hostSum);

    if (!sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "report");
            w.member("bytes",
                     static_cast<std::uint64_t>(doc.size()));
        }))
        return false;
    if (!wire::writeAll(fd, doc))
        return false;
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "done");
        w.member("hits",
                 hits.load(std::memory_order_relaxed));
        w.member("misses",
                 misses.load(std::memory_order_relaxed));
        w.member("simRunsTotal",
                 simRuns_.load(std::memory_order_relaxed));
    });
}

void
Server::handleConnection(int fd)
{
    FdCloser closer{fd};
    wire::LineReader reader(fd);
    std::string line;
    if (!reader.readLine(line))
        return;
    wire::Request req;
    if (!wire::parseRequest(line, req)) {
        sendError(fd, "malformed request line");
        return;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();

    if (req.verb == "ping") {
        sendEvent(fd,
                  [](JsonWriter &w) { w.member("event", "pong"); });
    } else if (req.verb == "stats") {
        const MetricsSnapshot m = registry_.snapshot();
        const ShmCache::Stats cs = cache_.stats();
        sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "stats");
            w.member("segmentHits", cs.hits);
            w.member("segmentMisses", cs.misses);
            writeSnapshot(w, m);
        });
    } else if (req.verb == "shutdown") {
        sendEvent(fd, [](JsonWriter &w) { w.member("event", "bye"); });
        stop();
    } else if (req.verb == "run" || req.verb == "grid") {
        try {
            handleRunOrGrid(fd, req);
        } catch (const std::exception &e) {
            sendError(fd, e.what());
        }
    } else {
        sendError(fd, "unknown verb \"" + req.verb + "\"");
    }

    recordLatency(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    queueDepth_.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace swsm
