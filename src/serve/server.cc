#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "harness/bench_report.hh"
#include "harness/task_pool.hh"
#include "obs/json_writer.hh"
#include "serve/result_codec.hh"
#include "serve/shard.hh"
#include "serve/worker.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

/** Non-fatal registry lookup (bad requests must not kill the server). */
const AppInfo *
findAppSoft(const std::string &name)
{
    for (const AppInfo &app : appRegistry()) {
        if (app.name == name)
            return &app;
    }
    return nullptr;
}

bool
sendEvent(int fd, const std::function<void(JsonWriter &)> &fill)
{
    JsonWriter w(0);
    w.beginObject();
    fill(w);
    w.endObject();
    return wire::writeAll(fd, w.str() + "\n");
}

bool
sendError(int fd, const std::string &message)
{
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "error");
        w.member("message", message);
    });
}

void
writeSnapshot(JsonWriter &w, const MetricsSnapshot &m)
{
    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : m.counters)
        w.member(name, v);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, v] : m.gauges)
        w.member(name, v);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : m.histograms) {
        w.key(name);
        w.beginObject();
        w.member("total", h.total);
        w.key("buckets");
        w.beginArray();
        for (const std::uint64_t count : h.buckets)
            w.value(count);
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

/**
 * Build the request's sweep options from its parameters. The server's
 * jobs/simThreads settings ride along so every request renders the
 * same report header; simThreadsExplicit pins the per-simulation
 * thread count (results are bit-identical across it anyway).
 */
bool
buildSweep(const wire::Request &req, const ServerOptions &server,
           SweepOptions &out, std::string &err)
{
    SweepOptions sweep;
    if (!parseSizeClass(req.get("size", "small"), sweep.size)) {
        err = "bad size (want tiny|small|medium|paper)";
        return false;
    }
    if (!parseBoundedInt(req.get("procs", "16"), 1, maxProcs,
                         sweep.numProcs)) {
        err = "bad procs";
        return false;
    }
    sweep.full = req.get("full", "0") == "1";
    const std::string apps = req.get("apps");
    std::size_t pos = 0;
    while (pos < apps.size()) {
        std::size_t comma = apps.find(',', pos);
        if (comma == std::string::npos)
            comma = apps.size();
        const std::string name = apps.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (!findAppSoft(name)) {
            err = "unknown app \"" + name + "\"";
            return false;
        }
        sweep.apps.push_back(name);
    }
    sweep.jobs = server.jobs;
    sweep.simThreads = server.simThreads;
    sweep.simThreadsExplicit = true;
    out = std::move(sweep);
    return true;
}

/** Items of a "run" request: the one configuration it names. */
bool
buildRunItem(const wire::Request &req, GridItem &out, std::string &err)
{
    const AppInfo *app = findAppSoft(req.get("app"));
    if (!app) {
        err = "unknown app \"" + req.get("app") + "\"";
        return false;
    }
    GridItem item;
    item.app = *app;
    const std::string proto = req.get("proto", "hlrc");
    if (proto == "ideal") {
        item.ideal = true;
        item.kind = ProtocolKind::Ideal;
    } else if (proto == "hlrc") {
        item.kind = ProtocolKind::Hlrc;
    } else if (proto == "sc") {
        item.kind = ProtocolKind::Sc;
    } else {
        err = "bad proto (want hlrc|sc|ideal)";
        return false;
    }
    const std::string comm = req.get("comm", "A");
    const std::string cost = req.get("cost", "O");
    if (comm.size() != 1 ||
        std::string("AHBWX").find(comm[0]) == std::string::npos) {
        err = "bad comm set (want one of A H B W X)";
        return false;
    }
    if (cost.size() != 1 ||
        std::string("OHB").find(cost[0]) == std::string::npos) {
        err = "bad cost set (want one of O H B)";
        return false;
    }
    item.commSet = comm[0];
    item.protoSet = cost[0];
    out = std::move(item);
    return true;
}

/** RAII socket close. */
struct FdCloser
{
    int fd;
    ~FdCloser()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** Job-queue segment name: rides beside the memo segment. */
std::string
queueNameFor(const std::string &segment)
{
    return segment + ".jobq";
}

/**
 * Dedupe a grid by canonical cache key, keeping first-occurrence order
 * (the SC cost variants collapse onto 'O' exactly like the batch
 * runner's plan phase); fills the parallel key vectors.
 */
void
dedupeGrid(const SweepOptions &sweep, std::vector<GridItem> &items,
           std::vector<std::string> &keys,
           std::vector<std::string> &report_keys)
{
    std::vector<GridItem> unique;
    std::set<std::string> seen;
    for (GridItem &item : items) {
        std::string key = cacheKeyResult(sweep, item);
        if (!seen.insert(key).second)
            continue;
        report_keys.push_back(
            item.ideal ? SweepRunner::idealKey(item.app)
                       : SweepRunner::resultKey(item.app, item.kind,
                                                item.commSet,
                                                item.protoSet));
        unique.push_back(std::move(item));
        keys.push_back(std::move(key));
    }
    items = std::move(unique);
}

} // namespace

std::string
cacheKeyResult(const SweepOptions &sweep, const GridItem &item)
{
    const std::string suffix = item.ideal
        ? SweepRunner::idealKey(item.app)
        : SweepRunner::resultKey(item.app, item.kind, item.commSet,
                                 item.protoSet);
    return std::string(sizeClassName(sweep.size)) + "/p" +
        std::to_string(sweep.numProcs) + "/" + suffix;
}

std::string
cacheKeyBaseline(const SweepOptions &sweep, const std::string &app)
{
    // No procs component: the baseline is a sequential run.
    return std::string(sizeClassName(sweep.size)) + "/baseline/" + app;
}

Server::Server(const ServerOptions &opts)
    : opts_(opts),
      cache_([&] {
          if (opts.reset)
              ShmCache::remove(opts.segment);
          ShmCache::Options co;
          co.name = opts.segment;
          co.keySchema = codec::schemaVersion;
          co.slotCount = opts.slotCount;
          co.arenaBytes = opts.arenaBytes;
          return co;
      }())
{
    listenFd_ = wire::listenUnix(opts_.sockPath);
    if (listenFd_ < 0)
        SWSM_FATAL("sweep server: cannot listen on %s",
                   opts_.sockPath.c_str());

    registry_.addCounter("serve.requests", [this] {
        return requests_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.sim_runs", [this] {
        return simRuns_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.hits", [this] {
        return reqHits_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.misses", [this] {
        return reqMisses_.load(std::memory_order_relaxed);
    });
    registry_.addCounter("serve.cache_inserts",
                         [this] { return cache_.stats().inserts; });
    registry_.addCounter("serve.cache_evictions",
                         [this] { return cache_.stats().evictions; });
    registry_.addCounter("serve.cache_slots_used",
                         [this] { return cache_.stats().slotsUsed; });
    registry_.addCounter("serve.cache_arena_used",
                         [this] { return cache_.stats().arenaUsed; });
    registry_.addGauge("serve.queue_depth", [this] {
        return static_cast<double>(
            queueDepth_.load(std::memory_order_relaxed));
    });
    registry_.addHistogram("serve.request_latency_us", [this] {
        std::lock_guard<std::mutex> lock(latencyMu_);
        return latencyUs_;
    });

    if (opts_.tcpPort > 0) {
        tcpListenFd_ = wire::listenTcp(opts_.tcpPort);
        if (tcpListenFd_ < 0)
            SWSM_FATAL("sweep server: cannot listen on tcp port %d",
                       opts_.tcpPort);
    }

    if (opts_.workers > 0) {
        // The queue is transient coordination state (unlike the memo
        // cache): always start fresh so stale jobs or failure records
        // from a crashed server cannot leak into new requests.
        ShmQueue::remove(queueNameFor(opts_.segment));
        ShmQueue::Options qo;
        qo.name = queueNameFor(opts_.segment);
        queue_ = std::make_unique<ShmQueue>(qo);
        // Forking here, before run() spawns any threads, keeps the
        // children single-threaded at birth; later respawns fork from
        // the supervisor thread and immediately confine themselves to
        // runWorkerLoop.
        for (int i = 0; i < opts_.workers; ++i)
            workerPids_.push_back(spawnWorkerProcess());
        supervisor_ = std::thread(&Server::superviseWorkers, this);
    }
}

Server::~Server()
{
    stop();
    if (supervisor_.joinable())
        supervisor_.join();

    std::vector<pid_t> pids;
    {
        std::lock_guard<std::mutex> lock(workerMu_);
        pids.swap(workerPids_);
    }
    for (const pid_t pid : pids)
        ::kill(pid, SIGTERM);
    for (const pid_t pid : pids) {
        bool reaped = false;
        for (int i = 0; i < 200 && !reaped; ++i) {
            if (::waitpid(pid, nullptr, WNOHANG) == pid)
                reaped = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (!reaped) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }
    if (queue_)
        ShmQueue::remove(queueNameFor(opts_.segment));

    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (tcpListenFd_ >= 0)
        ::close(tcpListenFd_);
    ::unlink(opts_.sockPath.c_str());
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_relaxed);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (tcpListenFd_ >= 0)
        ::shutdown(tcpListenFd_, SHUT_RDWR);
}

std::vector<pid_t>
Server::workerPids() const
{
    std::lock_guard<std::mutex> lock(workerMu_);
    return workerPids_;
}

pid_t
Server::spawnWorkerProcess()
{
    const pid_t pid = ::fork();
    if (pid < 0)
        SWSM_FATAL("sweep server: cannot fork worker");
    if (pid != 0)
        return pid;

    // Worker child: drop the listening sockets, die with the server,
    // and never return into the parent's control flow.
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (tcpListenFd_ >= 0)
        ::close(tcpListenFd_);
    WorkerOptions wo;
    wo.segment = opts_.segment;
    wo.cacheSlotCount = opts_.slotCount;
    wo.arenaBytes = opts_.arenaBytes;
    wo.queueName = queueNameFor(opts_.segment);
    wo.simThreads = opts_.simThreads;
    wo.heartbeatMs = opts_.workerHeartbeatMs;
    try {
        runWorkerLoop(wo);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "swsm worker: %s\n", e.what());
        ::_exit(1);
    }
    ::_exit(0);
}

void
Server::superviseWorkers()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        queue_->reclaimExpired(opts_.leaseTimeoutMs);

        std::lock_guard<std::mutex> lock(workerMu_);
        for (pid_t &pid : workerPids_) {
            if (::waitpid(pid, nullptr, WNOHANG) != pid)
                continue;
            SWSM_WARN("sweep server: worker %d died, respawning",
                      static_cast<int>(pid));
            pid = spawnWorkerProcess();
        }
    }
}

std::string
Server::computeViaQueue(const std::string &key)
{
    if (!queue_->push(key))
        fatal("job queue full: cannot enqueue " + key);
    // The submitter polls: the worker publishes the blob to the memo
    // cache *before* retiring its lease, so "not in the queue and not
    // in the cache" means the job was truly lost (bounded re-push).
    int repushes = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(10);
    for (;;) {
        std::string blob;
        if (cache_.get(key, blob))
            return blob;
        std::string err;
        if (queue_->takeFailure(key, err))
            fatal("worker failed on " + key + ": " + err);
        if (!queue_->contains(key)) {
            if (cache_.get(key, blob))
                return blob;
            if (++repushes > 3 || !queue_->push(key))
                fatal("job repeatedly lost: " + key);
        }
        if (std::chrono::steady_clock::now() > deadline)
            fatal("timed out waiting for a worker on " + key);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

void
Server::recordLatency(double seconds)
{
    std::uint64_t us = static_cast<std::uint64_t>(seconds * 1e6);
    std::size_t bucket = 0;
    while (us >>= 1)
        ++bucket;
    std::lock_guard<std::mutex> lock(latencyMu_);
    if (latencyUs_.buckets.size() <= bucket)
        latencyUs_.buckets.resize(bucket + 1);
    ++latencyUs_.buckets[bucket];
    ++latencyUs_.total;
}

void
Server::run()
{
    std::vector<std::thread> connections;
    std::mutex connMu;
    const auto acceptLoop = [&](int listen_fd) {
        while (!stopping_.load(std::memory_order_relaxed)) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            std::lock_guard<std::mutex> lock(connMu);
            connections.emplace_back(&Server::handleConnection, this,
                                     fd);
        }
    };

    std::thread tcpAccept;
    if (tcpListenFd_ >= 0)
        tcpAccept = std::thread(acceptLoop, tcpListenFd_);
    acceptLoop(listenFd_);
    if (tcpAccept.joinable())
        tcpAccept.join();
    for (std::thread &t : connections)
        t.join();
}

std::string
Server::obtain(const std::string &key, bool &cached,
               const std::function<std::string()> &compute)
{
    std::string blob;
    if (cache_.get(key, blob)) {
        cached = true;
        return blob;
    }
    cached = false;

    std::shared_ptr<Inflight> fl;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        auto it = inflight_.find(key);
        if (it == inflight_.end()) {
            fl = std::make_shared<Inflight>();
            inflight_.emplace(key, fl);
            owner = true;
        } else {
            fl = it->second;
        }
    }

    if (!owner) {
        std::unique_lock<std::mutex> lk(fl->mu);
        fl->cv.wait(lk, [&] { return fl->done; });
        if (fl->failed)
            fatal(fl->error);
        return fl->blob;
    }

    std::string result;
    std::string err;
    try {
        // Another process (or a request that slipped between our miss
        // and the inflight claim) may have stored it meanwhile.
        if (cache_.get(key, result)) {
            cached = true;
        } else if (queue_) {
            // Worker fan-out: dispatch instead of simulating here; the
            // worker publishes into the cache itself.
            simRuns_.fetch_add(1, std::memory_order_relaxed);
            result = computeViaQueue(key);
        } else {
            simRuns_.fetch_add(1, std::memory_order_relaxed);
            result = compute();
            if (!cache_.put(key, result))
                SWSM_WARN("shm cache: cannot store %s (segment full)",
                          key.c_str());
        }
    } catch (const std::exception &e) {
        err = e.what();
    }

    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        inflight_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lk(fl->mu);
        fl->done = true;
        fl->failed = !err.empty();
        fl->error = err;
        fl->blob = result;
    }
    fl->cv.notify_all();
    if (!err.empty())
        fatal(err);
    return result;
}

Cycles
Server::obtainBaseline(const AppInfo &app, const SweepOptions &sweep,
                       bool &cached, std::string *blob_out)
{
    const std::string blob =
        obtain(cacheKeyBaseline(sweep, app.name), cached, [&] {
            return codec::encodeBaseline(
                runSequentialBaseline(app.factory, sweep.size));
        });
    Cycles seq = 0;
    if (!codec::decodeBaseline(blob, seq))
        fatal("shm cache: undecodable baseline blob for " + app.name);
    if (blob_out)
        *blob_out = blob;
    return seq;
}

ExperimentResult
Server::obtainResult(const GridItem &item, const SweepOptions &sweep,
                     Cycles seq, bool &cached, std::string *blob_out)
{
    const std::string blob =
        obtain(cacheKeyResult(sweep, item), cached, [&] {
            ExperimentConfig cfg;
            cfg.protocol = item.kind;
            cfg.numProcs = sweep.numProcs;
            cfg.trace = false;
            cfg.simThreads = sweep.effectiveSimThreads();
            if (!item.ideal) {
                cfg.commSet = item.commSet;
                cfg.protoSet =
                    item.kind == ProtocolKind::Sc ? 'O' : item.protoSet;
                cfg.blockBytes = item.app.scBlockBytes;
            }
            return codec::encodeResult(
                runExperiment(item.app.factory, sweep.size, cfg, seq));
        });
    // Fresh computes decode their own encoding too, so hit and miss
    // paths render byte-identically.
    ExperimentResult r;
    if (!codec::decodeResult(blob, r))
        fatal("shm cache: undecodable result blob");
    if (blob_out)
        *blob_out = blob;
    return r;
}

bool
Server::executeGrid(const SweepOptions &sweep,
                    std::vector<GridItem> items, GridRun &run,
                    const std::function<bool(std::size_t)> &onResult,
                    std::string &failure)
{
    dedupeGrid(sweep, items, run.keys, run.reportKeys);
    if (items.empty()) {
        failure = "empty grid";
        return false;
    }

    struct ItemState
    {
        bool done = false;
        bool cached = false;
        ExperimentResult result;
        std::string blob;
        std::string error;
    };
    struct BaselineState
    {
        Cycles seq = 0;
        bool cached = false;
        std::string blob;
        std::string error;
    };

    std::vector<ItemState> states(items.size());
    std::map<std::string, BaselineState> baselines;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    const auto countLookup = [&](bool cached) {
        (cached ? hits : misses).fetch_add(1, std::memory_order_relaxed);
        (cached ? reqHits_ : reqMisses_)
            .fetch_add(1, std::memory_order_relaxed);
    };

    // Pre-insert every app's baseline node so worker threads only ever
    // assign through stable references.
    for (const GridItem &item : items)
        baselines[item.app.name];

    TaskPool pool(std::max(1, sweep.jobs));
    std::map<std::string, TaskPool::TaskId> baselineTask;
    for (std::size_t i = 0; i < items.size(); ++i) {
        const AppInfo &app = items[i].app;
        if (baselineTask.count(app.name))
            continue;
        BaselineState &bs = baselines[app.name];
        baselineTask[app.name] = pool.submit([this, &app, &sweep, &bs,
                                              &countLookup] {
            try {
                bool cached = false;
                const Cycles seq =
                    obtainBaseline(app, sweep, cached, &bs.blob);
                countLookup(cached);
                bs.seq = seq;
                bs.cached = cached;
            } catch (const std::exception &e) {
                bs.error = e.what();
            }
        });
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        const GridItem &item = items[i];
        ItemState &st = states[i];
        const BaselineState &bs = baselines[item.app.name];
        pool.submit(
            [this, &item, &sweep, &st, &bs, &mu, &cv, &countLookup] {
                try {
                    if (!bs.error.empty())
                        fatal(bs.error);
                    bool cached = false;
                    std::string blob;
                    ExperimentResult r = obtainResult(item, sweep,
                                                      bs.seq, cached,
                                                      &blob);
                    countLookup(cached);
                    std::lock_guard<std::mutex> lock(mu);
                    st.result = std::move(r);
                    st.blob = std::move(blob);
                    st.cached = cached;
                    st.done = true;
                } catch (const std::exception &e) {
                    std::lock_guard<std::mutex> lock(mu);
                    st.error = e.what();
                    st.done = true;
                }
                cv.notify_all();
            },
            {baselineTask[item.app.name]});
    }

    // Hand items over in grid order while the pool executes; a
    // completed item is reported as soon as every earlier one is.
    std::thread runner([&] { pool.run(); });
    run.results.resize(items.size());
    run.blobs.resize(items.size());
    run.cached.resize(items.size());
    bool keepReporting = true;
    for (std::size_t i = 0; i < items.size(); ++i) {
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return states[i].done; });
        }
        ItemState &st = states[i];
        if (!st.error.empty()) {
            failure = st.error;
            break;
        }
        // The pool task is finished with this state; move it out.
        run.results[i] = std::move(st.result);
        run.blobs[i] = std::move(st.blob);
        run.cached[i] = st.cached;
        if (keepReporting && onResult)
            keepReporting = onResult(i);
    }
    runner.join();
    if (!failure.empty())
        return false;

    for (auto &[app, bs] : baselines)
        run.baselines[app] = {bs.seq, std::move(bs.blob)};
    run.items = std::move(items);
    run.hits = hits.load(std::memory_order_relaxed);
    run.misses = misses.load(std::memory_order_relaxed);
    return true;
}

bool
Server::handleRunOrGrid(int fd, const wire::Request &req)
{
    SweepOptions sweep;
    std::string err;
    if (!buildSweep(req, opts_, sweep, err))
        return sendError(fd, err);

    std::string benchName;
    std::vector<GridItem> items;
    if (req.verb == "grid") {
        benchName = req.get("bench", "fig3");
        if (benchName != "fig3")
            return sendError(fd, "unknown bench \"" + benchName + "\"");
        items = figure3Grid(sweep);
    } else {
        benchName = "run";
        GridItem item;
        if (!buildRunItem(req, item, err))
            return sendError(fd, err);
        items.push_back(std::move(item));
    }

    GridRun run;
    std::string failure;
    bool clientGone = false;
    const bool ok = executeGrid(
        sweep, std::move(items), run,
        [&](std::size_t i) {
            const ExperimentResult &r = run.results[i];
            const bool sent = sendEvent(fd, [&](JsonWriter &w) {
                w.member("event", "result");
                w.member("key", run.keys[i]);
                w.member("cached", static_cast<bool>(run.cached[i]));
                w.member("workload", r.workload);
                w.member("protocol", r.protocol);
                w.member("config", r.config);
                w.member("simCycles",
                         static_cast<std::uint64_t>(r.parallelCycles));
                w.member("seqCycles",
                         static_cast<std::uint64_t>(
                             r.sequentialCycles));
                w.member("speedup", r.speedup());
                w.member("verified", r.verified);
            });
            if (!sent)
                clientGone = true; // keep simulating; results cache
            return !clientGone;
        },
        failure);
    if (!ok)
        return sendError(fd, failure);
    if (clientGone)
        return false;

    // Assemble the BENCH document: baselines in app order, entries in
    // key order, exactly like BenchReport::addAll on the batch path.
    // The top-level hostSeconds is the (deterministic) sum over the
    // entries' stored values, not wall-clock — see the class comment.
    BenchReport report(benchName, &sweep);
    for (const auto &[app, bs] : run.baselines)
        report.addBaseline(app, bs.first);
    // Entries carry the bare runner key so the document matches the
    // batch binaries' BENCH output (the size/procs context lives in
    // the report header, as it does there).
    std::map<std::string, const ExperimentResult *> byKey;
    for (std::size_t i = 0; i < run.items.size(); ++i)
        byKey[run.reportKeys[i]] = &run.results[i];
    double hostSum = 0.0;
    for (const auto &[key, r] : byKey) {
        report.add(key, *r);
        hostSum += r->hostSeconds;
    }
    const std::string doc = report.render(hostSum);

    if (!sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "report");
            w.member("bytes",
                     static_cast<std::uint64_t>(doc.size()));
        }))
        return false;
    if (!wire::writeAll(fd, doc))
        return false;
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "done");
        w.member("hits", run.hits);
        w.member("misses", run.misses);
        w.member("simRunsTotal",
                 simRuns_.load(std::memory_order_relaxed));
    });
}

bool
Server::handleShardWork(int fd, const wire::Request &req)
{
    SweepOptions sweep;
    std::string err;
    if (!buildSweep(req, opts_, sweep, err))
        return sendError(fd, err);
    const std::string benchName = req.get("bench", "fig3");
    if (benchName != "fig3")
        return sendError(fd, "unknown bench \"" + benchName + "\"");
    int shards = 0;
    int index = 0;
    if (!parseBoundedInt(req.get("shards", "1"), 1,
                         static_cast<int>(shard::maxShards), shards))
        return sendError(fd, "bad shards");
    if (!parseBoundedInt(req.get("index", "0"), 0, shards - 1, index))
        return sendError(fd, "bad shard index");

    std::vector<GridItem> mine;
    for (GridItem &item : figure3Grid(sweep)) {
        const std::string rk = item.ideal
            ? SweepRunner::idealKey(item.app)
            : SweepRunner::resultKey(item.app, item.kind, item.commSet,
                                     item.protoSet);
        if (shard::selects(rk, static_cast<std::uint32_t>(shards),
                           static_cast<std::uint32_t>(index)))
            mine.push_back(std::move(item));
    }

    GridRun run;
    std::string failure;
    if (!mine.empty() &&
        !executeGrid(sweep, std::move(mine), run, nullptr, failure))
        return sendError(fd, failure);

    const auto sendBlob = [&](const std::string &key,
                              const std::string &blob) {
        return sendEvent(fd,
                         [&](JsonWriter &w) {
                             w.member("event", "blob");
                             w.member("key", key);
                             w.member("bytes",
                                      static_cast<std::uint64_t>(
                                          blob.size()));
                         }) &&
            wire::writeAll(fd, blob);
    };
    std::uint64_t count = 0;
    for (const auto &[app, bs] : run.baselines) {
        if (!sendBlob(cacheKeyBaseline(sweep, app), bs.second))
            return false;
        ++count;
    }
    for (std::size_t i = 0; i < run.items.size(); ++i) {
        if (!sendBlob(run.keys[i], run.blobs[i]))
            return false;
        ++count;
    }
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "done");
        w.member("blobs", count);
        w.member("hits", run.hits);
        w.member("misses", run.misses);
    });
}

bool
Server::handleShard(int fd, const wire::Request &req)
{
    SweepOptions sweep;
    std::string err;
    if (!buildSweep(req, opts_, sweep, err))
        return sendError(fd, err);
    const std::string benchName = req.get("bench", "fig3");
    if (benchName != "fig3")
        return sendError(fd, "unknown bench \"" + benchName + "\"");
    std::vector<shard::Peer> peers;
    if (!shard::parsePeers(req.get("peers"), peers, err))
        return sendError(fd, err);
    const std::uint32_t n = static_cast<std::uint32_t>(peers.size());

    // Fan the slices out to every peer concurrently; each peer derives
    // the same partition from (shards, index) alone.
    std::vector<std::map<std::string, std::string>> shardBlobs(n);
    std::vector<std::string> shardErr(n);
    {
        std::vector<std::thread> fetchers;
        for (std::uint32_t i = 0; i < n; ++i) {
            fetchers.emplace_back([&, i] {
                wire::Request work;
                work.verb = "shardwork";
                work.params = req.params;
                work.params.erase("peers");
                work.params["shards"] = std::to_string(n);
                work.params["index"] = std::to_string(i);
                shard::fetchShard(peers[i], work, shardBlobs[i],
                                  shardErr[i]);
            });
        }
        for (std::thread &t : fetchers)
            t.join();
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!shardErr[i].empty())
            return sendError(fd, "shard " + std::to_string(i) + ": " +
                                 shardErr[i]);
    }

    // Merge. Baselines land in every shard whose slice needs them, so
    // overlapping keys must carry byte-identical blobs — anything else
    // means the hosts disagree on a deterministic result.
    std::map<std::string, std::string> blobs;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (auto &[key, blob] : shardBlobs[i]) {
            const auto [it, fresh] = blobs.emplace(key, blob);
            if (!fresh && it->second != blob)
                return sendError(fd, "shards disagree on " + key);
        }
    }

    std::vector<GridItem> items = figure3Grid(sweep);
    std::vector<std::string> keys;
    std::vector<std::string> reportKeys;
    dedupeGrid(sweep, items, keys, reportKeys);
    if (items.empty())
        return sendError(fd, "empty grid");

    // Canonical header: the merged report must not depend on shard
    // count, arrival order, or this host's parallelism settings
    // (results are bit-identical across jobs/simThreads anyway).
    SweepOptions headerSweep = sweep;
    headerSweep.jobs = 1;
    headerSweep.simThreads = 1;
    headerSweep.simThreadsExplicit = true;
    BenchReport report(benchName, &headerSweep);

    std::set<std::string> apps;
    for (const GridItem &item : items)
        apps.insert(item.app.name);
    for (const std::string &app : apps) {
        const std::string key = cacheKeyBaseline(sweep, app);
        const auto it = blobs.find(key);
        Cycles seq = 0;
        if (it == blobs.end() || !codec::decodeBaseline(it->second, seq))
            return sendError(fd, "missing baseline blob " + key);
        report.addBaseline(app, seq);
    }

    std::map<std::string, std::string> keyByReportKey;
    for (std::size_t i = 0; i < items.size(); ++i)
        keyByReportKey[reportKeys[i]] = keys[i];
    for (const auto &[rk, key] : keyByReportKey) {
        const auto it = blobs.find(key);
        ExperimentResult r;
        if (it == blobs.end() || !codec::decodeResult(it->second, r))
            return sendError(fd, "missing result blob " + key);
        // Host timing is a per-host measurement: which peer computed a
        // key changes with the shard count and peer order, so any
        // nonzero value here would break the merged report's
        // byte-identity guarantee. Zero it out — every other field is
        // bit-identical across hosts by construction, and per-host
        // timing stays available from each peer's own grid reports.
        r.hostSeconds = 0.0;
        report.add(rk, r);
    }
    const std::string doc = report.render(0.0);

    if (!sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "report");
            w.member("bytes",
                     static_cast<std::uint64_t>(doc.size()));
        }))
        return false;
    if (!wire::writeAll(fd, doc))
        return false;
    return sendEvent(fd, [&](JsonWriter &w) {
        w.member("event", "done");
        w.member("shards", static_cast<std::uint64_t>(n));
    });
}

void
Server::handleConnection(int fd)
{
    FdCloser closer{fd};
    wire::LineReader reader(fd);
    std::string line;
    if (!reader.readLine(line))
        return;
    wire::Request req;
    if (!wire::parseRequest(line, req)) {
        sendError(fd, "malformed request line");
        return;
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();

    if (req.verb == "ping") {
        sendEvent(fd,
                  [](JsonWriter &w) { w.member("event", "pong"); });
    } else if (req.verb == "stats") {
        const MetricsSnapshot m = registry_.snapshot();
        const ShmCache::Stats cs = cache_.stats();
        sendEvent(fd, [&](JsonWriter &w) {
            w.member("event", "stats");
            w.member("segmentHits", cs.hits);
            w.member("segmentMisses", cs.misses);
            if (queue_) {
                const ShmQueue::Stats qs = queue_->stats();
                w.member("workers",
                         static_cast<std::uint64_t>(
                             workerPids().size()));
                w.member("queuePushed", qs.pushed);
                w.member("queueCompleted", qs.completed);
                w.member("queueFailed", qs.failed);
                w.member("queueReclaimed", qs.reclaimed);
                w.member("jobsQueued", qs.queued);
                w.member("jobsLeased", qs.leased);
            }
            writeSnapshot(w, m);
        });
    } else if (req.verb == "shutdown") {
        sendEvent(fd, [](JsonWriter &w) { w.member("event", "bye"); });
        stop();
    } else if (req.verb == "run" || req.verb == "grid") {
        try {
            handleRunOrGrid(fd, req);
        } catch (const std::exception &e) {
            sendError(fd, e.what());
        }
    } else if (req.verb == "shardwork") {
        try {
            handleShardWork(fd, req);
        } catch (const std::exception &e) {
            sendError(fd, e.what());
        }
    } else if (req.verb == "shard") {
        try {
            handleShard(fd, req);
        } catch (const std::exception &e) {
            sendError(fd, e.what());
        }
    } else {
        sendError(fd, "unknown verb \"" + req.verb + "\"");
    }

    recordLatency(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    queueDepth_.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace swsm
