/**
 * @file
 * Lock-free shared-memory MPMC job queue for sweep worker processes.
 *
 * A ShmQueue is a named, file-backed shared-memory segment (same
 * directory rules as the memo cache, shm_cache.hh) that carries
 * experiment jobs from the sweep server to its --workers processes.
 * Jobs are the memo-cache key strings themselves (serve/server.hh:
 * "<size>/p<procs>/<app>/..."), stored inline in fixed 256-byte slots —
 * no arena, so a crashed process can never leave a partially appended
 * payload behind.
 *
 * Every slot transition is one CAS on a 64-bit state word
 * (epoch << 8 | phase) that lives inside the mapping:
 *
 *   Free --push--> Claimed --publish--> Queued --tryPop--> Leased
 *   Leased --complete--> Free          (result already in the memo cache)
 *   Leased --fail--> Failed --takeFailure--> Free
 *   Leased --reclaimExpired--> Queued  (lease heartbeat went stale)
 *
 * The epoch bumps on push, reclaim, completion and failure-pickup, so
 * a zombie worker finishing a job that was already reclaimed and
 * re-leased CAS-fails instead of corrupting the new owner's lease (no
 * ABA). Leased slots carry a heartbeat timestamp (CLOCK_MONOTONIC
 * milliseconds — comparable across processes on one host, which is the
 * only place a shared-memory segment can live); reclaimExpired()
 * re-queues any lease whose heartbeat is older than the caller's
 * timeout instead of letting a crashed worker wedge the grid.
 *
 * Head/tail cursors in the header are fetch-add hints that spread
 * producers and consumers across the slot array; correctness never
 * depends on them — the per-slot CAS is the arbiter, so the queue is
 * approximately FIFO and exactly once.
 */

#ifndef SWSM_SERVE_SHM_QUEUE_HH
#define SWSM_SERVE_SHM_QUEUE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace swsm
{

/** A named shared-memory multi-producer/multi-consumer job queue. */
class ShmQueue
{
  public:
    /** Longest job key push() accepts (slot-inline storage). */
    static constexpr std::uint32_t maxKeyBytes = 160;

    struct Options
    {
        /** Segment file name inside ShmCache::defaultDir(). */
        std::string name = "swsm_jobq";
        /** Slot capacity (rounded up to a power of two). */
        std::uint32_t slotCount = 1024;
    };

    /** Lifetime counters + a snapshot of current slot phases. */
    struct Stats
    {
        std::uint64_t pushed = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t reclaimed = 0;
        std::uint32_t queued = 0;
        std::uint32_t leased = 0;
        std::uint32_t slotCount = 0;
    };

    /** A popped job: slot index + the exact leased state word. */
    struct Lease
    {
        std::uint32_t slot = 0;
        std::uint64_t word = 0;
        std::string key;

        bool valid() const { return word != 0; }
    };

    /** Attach to (creating or rebuilding as needed) the named segment. */
    explicit ShmQueue(const Options &opts);
    ~ShmQueue();

    ShmQueue(const ShmQueue &) = delete;
    ShmQueue &operator=(const ShmQueue &) = delete;

    /** Unlink segment @p name; true if a file was removed. */
    static bool remove(const std::string &name);

    /** CLOCK_MONOTONIC in milliseconds (the heartbeat clock). */
    static std::uint64_t nowMs();

    /**
     * Enqueue job @p key. @return false when the queue is full or the
     * key exceeds maxKeyBytes (callers bound their in-flight pushes, so
     * full means a sizing bug — see serve/server.cc).
     */
    bool push(std::string_view key);

    /**
     * Lease one queued job. @return false (out untouched) when nothing
     * is queued; the caller then sleeps or reclaims, its choice.
     */
    bool tryPop(Lease &out);

    /** Refresh @p lease's heartbeat; false when the lease was lost. */
    bool heartbeat(const Lease &lease);

    /**
     * Retire @p lease after publishing its result to the memo cache.
     * @return false when the lease was already reclaimed (the result
     * in the cache is still valid — first writer wins there).
     */
    bool complete(const Lease &lease);

    /**
     * Retire @p lease with an error message (truncated to the slot's
     * spare bytes) for the submitter to pick up via takeFailure().
     */
    bool fail(const Lease &lease, std::string_view error);

    /**
     * Claim the failure record for @p key, if any: copies the error
     * out, frees the slot, and returns true exactly once per failure.
     */
    bool takeFailure(std::string_view key, std::string &error);

    /**
     * True while @p key occupies any slot (queued, leased or failed) —
     * the submitter's "still in flight" test before re-pushing a job
     * it can no longer see.
     */
    bool contains(std::string_view key) const;

    /**
     * Re-queue every leased job whose heartbeat is older than
     * @p stale_ms. @return the number of leases reclaimed.
     */
    int reclaimExpired(std::uint64_t stale_ms);

    Stats stats() const;

    /** Slot capacity actually in use (power of two). */
    std::uint32_t slotCount() const { return slots_; }

  private:
    struct Header;
    struct Slot;

    Header *header() const;
    Slot *slot(std::uint32_t i) const;
    bool headerValid() const;
    void initialize();

    void *map_ = nullptr;
    std::uint64_t mapBytes_ = 0;
    int fd_ = -1;
    std::uint32_t slots_ = 0;
};

} // namespace swsm

#endif // SWSM_SERVE_SHM_QUEUE_HH
