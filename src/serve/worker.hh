/**
 * @file
 * Worker side of the sweep server's process fan-out (--workers=N).
 *
 * A worker process attaches to the server's shared-memory memo cache
 * (shm_cache.hh) and job queue (shm_queue.hh) by name, then loops:
 * lease a job, run the experiment it names, publish the encoded result
 * blob into the memo cache, retire the lease. Jobs are the memo-cache
 * key strings themselves — fully parseable back into an experiment
 * (parseJobKey), so the queue needs no second codec:
 *
 *   <size>/baseline/<app>                sequential baseline
 *   <size>/p<procs>/<app>/ideal          algorithmic-limit run
 *   <size>/p<procs>/<app>/<proto>/<CP>   protocol run (comm+cost sets)
 *
 * While an experiment runs, a heartbeat thread refreshes the lease
 * timestamp; if the worker dies mid-job the heartbeat stops and the
 * server's reclaim pass re-queues the job for a live worker. A result
 * landing twice (a slow worker finishing after reclaim) is harmless:
 * the memo cache is first-writer-wins and results are deterministic.
 *
 * The server forks workers directly (no exec), so this header is the
 * whole worker "ABI"; swsm_serve never needs a separate worker binary.
 */

#ifndef SWSM_SERVE_WORKER_HH
#define SWSM_SERVE_WORKER_HH

#include <cstdint>
#include <string>

#include "harness/sweep.hh"
#include "serve/shm_cache.hh"

namespace swsm
{

/** One parsed job key: what to run and where it goes. */
struct JobSpec
{
    std::string key;
    SizeClass size = SizeClass::Small;
    /** True for a sequential-baseline job (item unused). */
    bool baseline = false;
    int numProcs = 0;
    /** The experiment (app + protocol + sets) for non-baseline jobs. */
    GridItem item;
};

/**
 * Parse memo-cache key @p key into a runnable JobSpec. @return false
 * with a diagnostic in @p err for malformed keys or unknown apps.
 */
bool parseJobKey(const std::string &key, JobSpec &out, std::string &err);

/**
 * Run @p job and publish its encoded blob into @p cache (first writer
 * wins). Computes and publishes the app's sequential baseline first
 * when a result job finds it missing. @return the blob.
 * @throws FatalError when the simulation itself fails.
 */
std::string runJob(const JobSpec &job, ShmCache &cache, int sim_threads);

/** What a worker process needs to attach and run. */
struct WorkerOptions
{
    /** Memo segment name (must match the server's). */
    std::string segment = "swsm_memo";
    std::uint32_t cacheSlotCount = 4096;
    std::uint64_t arenaBytes = 64ull << 20;
    /** Job-queue segment name (must match the server's). */
    std::string queueName = "swsm_memo.jobq";
    std::uint32_t queueSlotCount = 1024;
    /** Threads inside each simulation (parallel event kernel). */
    int simThreads = 1;
    /** Lease heartbeat period while a job runs. */
    std::uint64_t heartbeatMs = 250;
};

/**
 * The worker process body: attach, then pull/run/publish forever. Only
 * returns by exception (attach failure); the server terminates workers
 * with SIGTERM at shutdown.
 */
void runWorkerLoop(const WorkerOptions &opts);

} // namespace swsm

#endif // SWSM_SERVE_WORKER_HH
