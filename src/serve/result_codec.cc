#include "result_codec.hh"

#include <cstring>

namespace swsm::codec
{

namespace
{

constexpr std::uint32_t kResultMagic = 0x31525753; // "SWR1"
constexpr std::uint32_t kBaselineMagic = 0x31425753; // "SWB1"

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

void
putStr(std::string &out, std::string_view s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/** Bounds-checked little-endian reader over one blob. */
struct Reader
{
    std::string_view in;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (!ok || in.size() - pos < n)
            ok = false;
        return ok;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(in[pos + i]))
                << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(in[pos + i]))
                << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<std::uint8_t>(in[pos++]);
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(in.substr(pos, n));
        pos += n;
        return s;
    }
};

} // namespace

std::string
encodeResult(const ExperimentResult &r)
{
    std::string out;
    putU32(out, kResultMagic);
    putStr(out, r.workload);
    putStr(out, r.config);
    putStr(out, r.protocol);
    putU64(out, r.parallelCycles);
    putU64(out, r.sequentialCycles);
    out.push_back(r.verified ? 1 : 0);
    putF64(out, r.hostSeconds);

    const MetricsSnapshot &m = r.stats.metrics;
    putU32(out, static_cast<std::uint32_t>(m.counters.size()));
    for (const auto &[name, v] : m.counters) {
        putStr(out, name);
        putU64(out, v);
    }
    putU32(out, static_cast<std::uint32_t>(m.gauges.size()));
    for (const auto &[name, v] : m.gauges) {
        putStr(out, name);
        putF64(out, v);
    }
    putU32(out, static_cast<std::uint32_t>(m.histograms.size()));
    for (const auto &[name, h] : m.histograms) {
        putStr(out, name);
        putU64(out, h.total);
        putU32(out, static_cast<std::uint32_t>(h.buckets.size()));
        for (const std::uint64_t count : h.buckets)
            putU64(out, count);
    }
    return out;
}

bool
decodeResult(std::string_view blob, ExperimentResult &out)
{
    Reader rd{blob};
    if (rd.u32() != kResultMagic || !rd.ok)
        return false;

    ExperimentResult r;
    r.workload = rd.str();
    r.config = rd.str();
    r.protocol = rd.str();
    r.parallelCycles = rd.u64();
    r.sequentialCycles = rd.u64();
    r.verified = rd.u8() != 0;
    r.hostSeconds = rd.f64();

    MetricsSnapshot &m = r.stats.metrics;
    const std::uint32_t nc = rd.u32();
    for (std::uint32_t i = 0; i < nc && rd.ok; ++i) {
        std::string name = rd.str();
        const std::uint64_t v = rd.u64();
        m.counters.emplace_back(std::move(name), v);
    }
    const std::uint32_t ng = rd.u32();
    for (std::uint32_t i = 0; i < ng && rd.ok; ++i) {
        std::string name = rd.str();
        const double v = rd.f64();
        m.gauges.emplace_back(std::move(name), v);
    }
    const std::uint32_t nh = rd.u32();
    for (std::uint32_t i = 0; i < nh && rd.ok; ++i) {
        std::string name = rd.str();
        HistogramData h;
        h.total = rd.u64();
        const std::uint32_t nb = rd.u32();
        for (std::uint32_t b = 0; b < nb && rd.ok; ++b)
            h.buckets.push_back(rd.u64());
        m.histograms.emplace_back(std::move(name), std::move(h));
    }
    if (!rd.ok || rd.pos != blob.size())
        return false;
    out = std::move(r);
    return true;
}

std::string
encodeBaseline(Cycles seq)
{
    std::string out;
    putU32(out, kBaselineMagic);
    putU64(out, seq);
    return out;
}

bool
decodeBaseline(std::string_view blob, Cycles &out)
{
    Reader rd{blob};
    if (rd.u32() != kBaselineMagic)
        return false;
    const std::uint64_t v = rd.u64();
    if (!rd.ok || rd.pos != blob.size())
        return false;
    out = v;
    return true;
}

bool
isResultBlob(std::string_view blob)
{
    Reader rd{blob};
    return rd.u32() == kResultMagic;
}

} // namespace swsm::codec
