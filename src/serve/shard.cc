#include "shard.hh"

#include <unistd.h>

#include "serve/client.hh"
#include "serve/shm_cache.hh"
#include "sim/env.hh"

namespace swsm::shard
{

bool
parsePeers(const std::string &spec, std::vector<Peer> &out,
           std::string &err)
{
    std::vector<Peer> peers;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t colon = item.rfind(':');
        Peer p;
        int port = 0;
        if (colon == std::string::npos || colon == 0 ||
            !parseBoundedInt(std::string_view(item).substr(colon + 1), 1,
                             65535, port)) {
            err = "bad peer \"" + item + "\" (want host:port)";
            return false;
        }
        p.host = item.substr(0, colon);
        p.port = port;
        peers.push_back(std::move(p));
    }
    if (peers.empty() || peers.size() > maxShards) {
        err = "need 1.." + std::to_string(maxShards) + " peers";
        return false;
    }
    out = std::move(peers);
    return true;
}

bool
selects(std::string_view report_key, std::uint32_t shards,
        std::uint32_t index)
{
    if (shards <= 1)
        return index == 0;
    return fnv1a64(report_key) % shards == index;
}

bool
fetchShard(const Peer &peer, const wire::Request &work,
           std::map<std::string, std::string> &blobs, std::string &err)
{
    const int fd = wire::connectTcp(peer.host, peer.port);
    if (fd < 0) {
        err = "cannot connect to " + peer.host + ":" +
            std::to_string(peer.port);
        return false;
    }
    struct Closer
    {
        int fd;
        ~Closer() { ::close(fd); }
    } closer{fd};

    if (!wire::writeAll(fd, wire::formatRequest(work) + "\n")) {
        err = "request write to " + peer.host + " failed";
        return false;
    }

    wire::LineReader reader(fd);
    std::string line;
    while (reader.readLine(line)) {
        std::string event;
        if (!eventField(line, "event", event))
            continue;
        if (event == "blob") {
            std::string key;
            std::uint64_t bytes = 0;
            std::string blob;
            if (!eventField(line, "key", key) ||
                !eventField(line, "bytes", bytes) ||
                !reader.readBytes(bytes, blob)) {
                err = "truncated blob from " + peer.host;
                return false;
            }
            blobs[key] = std::move(blob);
        } else if (event == "done") {
            return true;
        } else if (event == "error") {
            if (!eventField(line, "message", err) || err.empty())
                err = "peer error";
            err = peer.host + ": " + err;
            return false;
        }
    }
    err = "connection to " + peer.host + " closed mid-stream";
    return false;
}

} // namespace swsm::shard
