#include "worker.hh"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "serve/result_codec.hh"
#include "serve/shm_queue.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

/** Registry lookup that reports instead of killing the worker. */
const AppInfo *
findAppSoft(const std::string &name)
{
    for (const AppInfo &app : appRegistry()) {
        if (app.name == name)
            return &app;
    }
    return nullptr;
}

std::vector<std::string>
splitKey(const std::string &key)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= key.size()) {
        const std::size_t slash = key.find('/', pos);
        if (slash == std::string::npos) {
            parts.push_back(key.substr(pos));
            break;
        }
        parts.push_back(key.substr(pos, slash - pos));
        pos = slash + 1;
    }
    return parts;
}

} // namespace

bool
parseJobKey(const std::string &key, JobSpec &out, std::string &err)
{
    JobSpec job;
    job.key = key;
    const std::vector<std::string> parts = splitKey(key);
    if (parts.size() < 3) {
        err = "job key too short: " + key;
        return false;
    }
    if (!parseSizeClass(parts[0], job.size)) {
        err = "bad size class in job key: " + key;
        return false;
    }

    if (parts[1] == "baseline") {
        if (parts.size() != 3) {
            err = "malformed baseline job key: " + key;
            return false;
        }
        const AppInfo *app = findAppSoft(parts[2]);
        if (!app) {
            err = "unknown app in job key: " + key;
            return false;
        }
        job.baseline = true;
        job.item.app = *app;
        out = std::move(job);
        return true;
    }

    if (parts[1].size() < 2 || parts[1][0] != 'p' ||
        !parseBoundedInt(std::string_view(parts[1]).substr(1), 1,
                         maxProcs, job.numProcs)) {
        err = "bad procs in job key: " + key;
        return false;
    }
    const AppInfo *app = findAppSoft(parts[2]);
    if (!app) {
        err = "unknown app in job key: " + key;
        return false;
    }
    job.item.app = *app;

    if (parts.size() == 4 && parts[3] == "ideal") {
        job.item.ideal = true;
        job.item.kind = ProtocolKind::Ideal;
        out = std::move(job);
        return true;
    }
    if (parts.size() != 5) {
        err = "malformed result job key: " + key;
        return false;
    }
    if (parts[3] == "hlrc") {
        job.item.kind = ProtocolKind::Hlrc;
    } else if (parts[3] == "sc") {
        job.item.kind = ProtocolKind::Sc;
    } else {
        err = "bad protocol in job key: " + key;
        return false;
    }
    if (parts[4].size() != 2 ||
        std::string("AHBWX").find(parts[4][0]) == std::string::npos ||
        std::string("OHB").find(parts[4][1]) == std::string::npos) {
        err = "bad config sets in job key: " + key;
        return false;
    }
    job.item.commSet = parts[4][0];
    job.item.protoSet = parts[4][1];
    out = std::move(job);
    return true;
}

std::string
runJob(const JobSpec &job, ShmCache &cache, int sim_threads)
{
    const AppInfo &app = job.item.app;
    if (job.baseline) {
        const std::string blob = codec::encodeBaseline(
            runSequentialBaseline(app.factory, job.size));
        if (!cache.put(job.key, blob))
            SWSM_WARN("shm cache: cannot store %s (segment full)",
                      job.key.c_str());
        return blob;
    }

    // Result jobs need the app's sequential baseline; the server
    // queues baselines first, so this is normally a cache hit.
    const std::string baselineKey = std::string(sizeClassName(job.size)) +
        "/baseline/" + app.name;
    Cycles seq = 0;
    std::string seqBlob;
    if (!cache.get(baselineKey, seqBlob) ||
        !codec::decodeBaseline(seqBlob, seq)) {
        seq = runSequentialBaseline(app.factory, job.size);
        cache.put(baselineKey, codec::encodeBaseline(seq));
    }

    ExperimentConfig cfg;
    cfg.protocol = job.item.kind;
    cfg.numProcs = job.numProcs;
    cfg.trace = false;
    cfg.simThreads = sim_threads;
    if (!job.item.ideal) {
        cfg.commSet = job.item.commSet;
        cfg.protoSet = job.item.kind == ProtocolKind::Sc
            ? 'O'
            : job.item.protoSet;
        cfg.blockBytes = app.scBlockBytes;
    }
    const std::string blob = codec::encodeResult(
        runExperiment(app.factory, job.size, cfg, seq));
    if (!cache.put(job.key, blob))
        SWSM_WARN("shm cache: cannot store %s (segment full)",
                  job.key.c_str());
    return blob;
}

void
runWorkerLoop(const WorkerOptions &opts)
{
    ShmCache::Options co;
    co.name = opts.segment;
    co.keySchema = codec::schemaVersion;
    co.slotCount = opts.cacheSlotCount;
    co.arenaBytes = opts.arenaBytes;
    ShmCache cache(co);

    ShmQueue::Options qo;
    qo.name = opts.queueName;
    qo.slotCount = opts.queueSlotCount;
    ShmQueue queue(qo);

    for (;;) {
        ShmQueue::Lease lease;
        if (!queue.tryPop(lease)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
        }

        // Keep the lease warm while the simulation runs; a silent stop
        // of this heartbeat is exactly what the server's reclaim pass
        // watches for.
        std::atomic<bool> jobDone{false};
        std::thread beat([&] {
            while (!jobDone.load(std::memory_order_relaxed)) {
                queue.heartbeat(lease);
                for (std::uint64_t slept = 0;
                     slept < opts.heartbeatMs &&
                     !jobDone.load(std::memory_order_relaxed);
                     slept += 10)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
            }
        });

        std::string error;
        try {
            JobSpec job;
            if (!parseJobKey(lease.key, job, error)) {
                // fall through to fail() below
            } else {
                runJob(job, cache, opts.simThreads);
            }
        } catch (const std::exception &e) {
            error = e.what();
        }

        jobDone.store(true, std::memory_order_relaxed);
        beat.join();
        if (error.empty())
            queue.complete(lease);
        else
            queue.fail(lease, error);
    }
}

} // namespace swsm
