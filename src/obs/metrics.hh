/**
 * @file
 * Metrics registry: the simulator's single naming scheme for run-level
 * observability.
 *
 * Components (event kernel, network resources, protocols, cluster time
 * buckets) register named providers — counters (uint64), gauges
 * (double) and histograms — under dotted paths such as
 * "proto.read_faults" or "net.iobus.queue_delay". A provider is a
 * closure reading the component's live statistic, so registration
 * happens once at machine construction and costs nothing per event.
 * At the end of a run the registry is frozen into a MetricsSnapshot:
 * plain sorted name/value vectors that are cheap to copy into results
 * and serialize into BENCH_*.json.
 *
 * swsm_obs depends only on the standard library so every layer of the
 * stack (including the sim kernel) can link against it.
 */

#ifndef SWSM_OBS_METRICS_HH
#define SWSM_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swsm
{

/** Frozen histogram contents (power-of-two buckets, like sim's). */
struct HistogramData
{
    std::uint64_t total = 0;
    /** Per-bucket sample counts; trailing zero buckets are trimmed. */
    std::vector<std::uint64_t> buckets;

    /** Bucket-wise accumulate @p other into this histogram. */
    void merge(const HistogramData &other);
    /** Drop trailing zero buckets (compact serialized form). */
    void trim();
};

/** One run's frozen metric values, sorted by name. */
class MetricsSnapshot
{
  public:
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramData>> histograms;

    /** Counter value, or 0 when @p name was never registered. */
    std::uint64_t counter(std::string_view name) const;
    /** Gauge value, or 0.0 when @p name was never registered. */
    double gauge(std::string_view name) const;
    /** Histogram contents, or nullptr when @p name is unknown. */
    const HistogramData *histogram(std::string_view name) const;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
};

/** Named metric providers registered by simulation components. */
class MetricsRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using HistogramFn = std::function<HistogramData()>;

    /** Register a counter provider; duplicate names throw. */
    void addCounter(std::string name, CounterFn fn);
    /** Register a gauge provider; duplicate names throw. */
    void addGauge(std::string name, GaugeFn fn);
    /** Register a histogram provider; duplicate names throw. */
    void addHistogram(std::string name, HistogramFn fn);

    /** Number of registered metrics of all kinds. */
    std::size_t size() const;

    /** Read every provider and freeze the values, sorted by name. */
    MetricsSnapshot snapshot() const;

  private:
    void checkFresh(const std::string &name) const;

    std::vector<std::pair<std::string, CounterFn>> counterFns;
    std::vector<std::pair<std::string, GaugeFn>> gaugeFns;
    std::vector<std::pair<std::string, HistogramFn>> histogramFns;
};

} // namespace swsm

#endif // SWSM_OBS_METRICS_HH
