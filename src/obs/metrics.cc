#include "metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace swsm
{

void
HistogramData::merge(const HistogramData &other)
{
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
}

void
HistogramData::trim()
{
    while (!buckets.empty() && buckets.back() == 0)
        buckets.pop_back();
}

namespace
{

template <typename T>
const T *
findValue(const std::vector<std::pair<std::string, T>> &sorted,
          std::string_view name)
{
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), name,
        [](const auto &entry, std::string_view n) {
            return entry.first < n;
        });
    if (it == sorted.end() || it->first != name)
        return nullptr;
    return &it->second;
}

template <typename T>
void
sortByName(std::vector<std::pair<std::string, T>> &entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
}

} // namespace

std::uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    const std::uint64_t *v = findValue(counters, name);
    return v ? *v : 0;
}

double
MetricsSnapshot::gauge(std::string_view name) const
{
    const double *v = findValue(gauges, name);
    return v ? *v : 0.0;
}

const HistogramData *
MetricsSnapshot::histogram(std::string_view name) const
{
    return findValue(histograms, name);
}

void
MetricsRegistry::checkFresh(const std::string &name) const
{
    const auto used = [&name](const auto &entries) {
        return std::any_of(entries.begin(), entries.end(),
                           [&name](const auto &e) {
                               return e.first == name;
                           });
    };
    if (used(counterFns) || used(gaugeFns) || used(histogramFns))
        throw std::logic_error("duplicate metric name: " + name);
}

void
MetricsRegistry::addCounter(std::string name, CounterFn fn)
{
    checkFresh(name);
    counterFns.emplace_back(std::move(name), std::move(fn));
}

void
MetricsRegistry::addGauge(std::string name, GaugeFn fn)
{
    checkFresh(name);
    gaugeFns.emplace_back(std::move(name), std::move(fn));
}

void
MetricsRegistry::addHistogram(std::string name, HistogramFn fn)
{
    checkFresh(name);
    histogramFns.emplace_back(std::move(name), std::move(fn));
}

std::size_t
MetricsRegistry::size() const
{
    return counterFns.size() + gaugeFns.size() + histogramFns.size();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters.reserve(counterFns.size());
    for (const auto &[name, fn] : counterFns)
        snap.counters.emplace_back(name, fn());
    snap.gauges.reserve(gaugeFns.size());
    for (const auto &[name, fn] : gaugeFns)
        snap.gauges.emplace_back(name, fn());
    snap.histograms.reserve(histogramFns.size());
    for (const auto &[name, fn] : histogramFns) {
        HistogramData h = fn();
        h.trim();
        snap.histograms.emplace_back(name, std::move(h));
    }
    sortByName(snap.counters);
    sortByName(snap.gauges);
    sortByName(snap.histograms);
    return snap;
}

} // namespace swsm
