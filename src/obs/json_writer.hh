/**
 * @file
 * Minimal streaming JSON writer for the observability layer.
 *
 * Replaces the hand-rolled fprintf emitters: values are typed (64-bit
 * integers never pass through printf length modifiers) and strings are
 * escaped per RFC 8259 — quotes, backslashes, and every control
 * character, using the short forms (\n, \t, ...) where they exist and
 * \u00XX otherwise. Output is built in memory and flushed by the
 * caller, so a partially-written file never masquerades as valid JSON.
 *
 * The writer is deliberately dependency-free (swsm_obs sits below every
 * other layer) and deterministic: identical call sequences produce
 * byte-identical output, which the serial-vs-parallel bench diffs rely
 * on.
 */

#ifndef SWSM_OBS_JSON_WRITER_HH
#define SWSM_OBS_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swsm
{

/** Streaming JSON emitter with automatic separators and indentation. */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line */
    explicit JsonWriter(int indent = 0) : indentWidth(indent) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value() call is its value. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void nullValue();

    /** key() + value() in one call. */
    template <typename T>
    void
    member(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** The document built so far. */
    const std::string &str() const { return out; }

    /** Escape @p s for inclusion inside a JSON string literal. */
    static std::string escape(std::string_view s);

  private:
    struct Scope
    {
        bool isObject;
        bool empty;
    };

    /** Comma/newline/indent before a new element; marks scope used. */
    void separate();
    void newline();

    std::string out;
    std::vector<Scope> scopes;
    int indentWidth;
    bool pendingKey = false;
};

} // namespace swsm

#endif // SWSM_OBS_JSON_WRITER_HH
