/**
 * @file
 * Low-overhead event tracer with Chrome trace_event JSON export.
 *
 * Components that can trace hold a `Tracer *` that is null unless the
 * run was started with tracing on; every emission site is a branch on
 * that pointer, so a disabled tracer costs one predicted-not-taken
 * branch and nothing else. Events carry *simulated* time (cycles) in
 * the `ts`/`dur` fields and the emitting node id as `tid`, so a trace
 * opened in chrome://tracing or Perfetto shows one track per simulated
 * processor plus the wait/protocol/network activity on it.
 *
 * Name, category and argument-key strings must have static storage
 * duration (string literals): events store the pointers, not copies,
 * which keeps recording allocation-free apart from vector growth.
 *
 * Recording order is the simulation's deterministic event order, so a
 * trace is byte-identical however many sweep worker threads ran other
 * experiments concurrently (each simulation owns its tracer).
 */

#ifndef SWSM_OBS_TRACE_HH
#define SWSM_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swsm
{

/** One numeric event argument (key must be a string literal). */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

/** One recorded trace event (Chrome trace_event semantics). */
struct TraceEvent
{
    const char *name; ///< literal; shown on the track
    const char *cat;  ///< literal; Perfetto category filter
    char ph;          ///< 'X' complete, 'i' instant
    std::int32_t tid; ///< simulated node id (track)
    std::uint64_t ts; ///< simulated start time, cycles
    std::uint64_t dur;///< duration in cycles ('X' only)
    TraceArg args[2];
    std::uint8_t numArgs = 0;
};

/** Recorded events of one simulation, in emission order. */
struct TraceBuffer
{
    std::vector<TraceEvent> events;
};

/** Records protocol/network/sync events in simulated time. */
class Tracer
{
  public:
    /** Record a complete ('X') span [@p start, @p end]. */
    void
    complete(const char *name, const char *cat, std::int32_t tid,
             std::uint64_t start, std::uint64_t end)
    {
        buf.events.push_back(TraceEvent{
            name, cat, 'X', tid, start, end - start, {}, 0});
    }

    void
    complete(const char *name, const char *cat, std::int32_t tid,
             std::uint64_t start, std::uint64_t end, TraceArg a0)
    {
        buf.events.push_back(TraceEvent{
            name, cat, 'X', tid, start, end - start, {a0}, 1});
    }

    void
    complete(const char *name, const char *cat, std::int32_t tid,
             std::uint64_t start, std::uint64_t end, TraceArg a0,
             TraceArg a1)
    {
        buf.events.push_back(TraceEvent{
            name, cat, 'X', tid, start, end - start, {a0, a1}, 2});
    }

    /** Record an instant ('i') event at @p ts. */
    void
    instant(const char *name, const char *cat, std::int32_t tid,
            std::uint64_t ts)
    {
        buf.events.push_back(
            TraceEvent{name, cat, 'i', tid, ts, 0, {}, 0});
    }

    void
    instant(const char *name, const char *cat, std::int32_t tid,
            std::uint64_t ts, TraceArg a0)
    {
        buf.events.push_back(
            TraceEvent{name, cat, 'i', tid, ts, 0, {a0}, 1});
    }

    void
    instant(const char *name, const char *cat, std::int32_t tid,
            std::uint64_t ts, TraceArg a0, TraceArg a1)
    {
        buf.events.push_back(
            TraceEvent{name, cat, 'i', tid, ts, 0, {a0, a1}, 2});
    }

    const TraceBuffer &buffer() const { return buf; }

    /** Move the recorded events out (the tracer is then empty). */
    TraceBuffer
    take()
    {
        TraceBuffer out = std::move(buf);
        buf = TraceBuffer{};
        return out;
    }

  private:
    TraceBuffer buf;
};

/** One simulation's events labeled for a merged multi-run trace. */
struct TraceProcess
{
    std::string name;        ///< experiment key; Perfetto process name
    const TraceBuffer *buf;  ///< not owned
};

/**
 * Serialize @p processes into Chrome trace_event JSON at @p path, one
 * pid (with a process_name metadata record) per entry, in order.
 * @return false when the file cannot be written
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TraceProcess> &processes);

/** Single-simulation convenience overload (pid 0). */
bool writeChromeTrace(const std::string &path, std::string_view name,
                      const TraceBuffer &buf);

} // namespace swsm

#endif // SWSM_OBS_TRACE_HH
