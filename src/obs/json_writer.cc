#include "json_writer.hh"

#include <cmath>
#include <cstdio>

namespace swsm
{

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    if (indentWidth == 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indentWidth) * scopes.size(), ' ');
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        // The key already separated this element.
        pendingKey = false;
        return;
    }
    if (scopes.empty())
        return;
    if (!scopes.back().empty)
        out.push_back(',');
    scopes.back().empty = false;
    newline();
}

void
JsonWriter::beginObject()
{
    separate();
    out.push_back('{');
    scopes.push_back(Scope{true, true});
}

void
JsonWriter::endObject()
{
    const bool was_empty = scopes.back().empty;
    scopes.pop_back();
    if (!was_empty)
        newline();
    out.push_back('}');
}

void
JsonWriter::beginArray()
{
    separate();
    out.push_back('[');
    scopes.push_back(Scope{false, true});
}

void
JsonWriter::endArray()
{
    const bool was_empty = scopes.back().empty;
    scopes.pop_back();
    if (!was_empty)
        newline();
    out.push_back(']');
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    out.push_back('"');
    out += escape(k);
    out += indentWidth ? "\": " : "\":";
    pendingKey = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    out.push_back('"');
    out += escape(v);
    out.push_back('"');
}

void
JsonWriter::value(bool v)
{
    separate();
    out += v ? "true" : "false";
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null keeps the document parseable.
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    out += std::to_string(v);
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    out += std::to_string(v);
}

void
JsonWriter::nullValue()
{
    separate();
    out += "null";
}

} // namespace swsm
