#include "trace.hh"

#include <cstdio>

#include "json_writer.hh"

namespace swsm
{

namespace
{

void
writeEvent(JsonWriter &w, const TraceEvent &e, int pid)
{
    w.beginObject();
    w.member("name", e.name);
    w.member("cat", e.cat);
    w.member("ph", std::string_view(&e.ph, 1));
    w.member("ts", e.ts);
    if (e.ph == 'X')
        w.member("dur", e.dur);
    if (e.ph == 'i')
        w.member("s", "t"); // thread-scoped instant
    w.member("pid", pid);
    w.member("tid", e.tid);
    if (e.numArgs) {
        w.key("args");
        w.beginObject();
        for (std::uint8_t a = 0; a < e.numArgs; ++a)
            w.member(e.args[a].key, e.args[a].value);
        w.endObject();
    }
    w.endObject();
}

} // namespace

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TraceProcess> &processes)
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (std::size_t pid = 0; pid < processes.size(); ++pid) {
        w.beginObject();
        w.member("name", "process_name");
        w.member("ph", "M");
        w.member("pid", static_cast<int>(pid));
        w.key("args");
        w.beginObject();
        w.member("name", std::string_view(processes[pid].name));
        w.endObject();
        w.endObject();
        for (const TraceEvent &e : processes[pid].buf->events)
            writeEvent(w, e, static_cast<int>(pid));
    }
    w.endArray();
    // Cycles are not microseconds; tell viewers not to rescale.
    w.member("displayTimeUnit", "ns");
    w.endObject();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string &doc = w.str();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
}

bool
writeChromeTrace(const std::string &path, std::string_view name,
                 const TraceBuffer &buf)
{
    return writeChromeTrace(path,
                            {TraceProcess{std::string(name), &buf}});
}

} // namespace swsm
