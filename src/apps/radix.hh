/**
 * @file
 * SPLASH-2-style parallel radix sort (the paper's "Radix", 1M keys).
 *
 * Keys are sorted digit by digit (8-bit digits). Per pass: each
 * processor histograms its block of the source array (private), posts
 * its histogram in shared memory, and after a barrier computes global
 * rank offsets; then it permutes its keys into the destination array.
 *
 *  - Original ("radix"): each key is written directly to its global
 *    destination. Ranks interleave processors' runs at fine grain, so
 *    many processors write the same destination pages concurrently —
 *    the page-level false-sharing storm that makes Radix the worst SVM
 *    application in the paper.
 *
 *  - Radix-Local ("radix-local", restructured): keys are first staged
 *    into a processor-local shared buffer (local writes), and after a
 *    barrier each *owner* bulk-reads the runs destined for its block —
 *    remote access becomes coarse-grained ("writing to a local buffer
 *    first", the paper's restructuring (i)).
 *
 * Verified against std::sort (exact).
 */

#ifndef SWSM_APPS_RADIX_HH
#define SWSM_APPS_RADIX_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Parallel radix sort workload (original or restructured). */
class RadixWorkload : public Workload
{
  public:
    RadixWorkload(SizeClass size, bool local_buffers);

    const char *
    name() const override
    {
        return localBuffers ? "radix-local" : "radix";
    }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    static constexpr std::uint32_t radixBits = 8;
    static constexpr std::uint32_t buckets = 1u << radixBits;
    static constexpr std::uint32_t passes = 32 / radixBits;

    std::uint64_t nkeys = 0;
    bool localBuffers = false;

    SharedArray<std::uint32_t> a;    ///< ping buffer
    SharedArray<std::uint32_t> b;    ///< pong buffer
    SharedArray<std::uint32_t> hist; ///< per-proc histograms (P x 256)
    SharedArray<std::uint32_t> stage;///< staging space (radix-local)
    BarrierId bar = 0;
    std::vector<std::uint32_t> input; ///< original keys (verification)
};

} // namespace swsm

#endif // SWSM_APPS_RADIX_HH
