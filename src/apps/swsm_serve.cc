/**
 * @file
 * swsm_serve: the persistent sweep server (serve/server.hh).
 *
 * Listens on a local unix socket for run/grid requests, memoizes
 * completed experiments in a named shared-memory segment, and streams
 * BENCH-schema results back. Pair with swsm_query (the client CLI) or
 * tools/bench_diff.py --from-shm (offline segment reader).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/server.hh"
#include "sim/env.hh"
#include "sim/log.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--sock=PATH] [--segment=NAME] [--slots=N]\n"
        "          [--arena-mb=N] [--jobs=N] [--reset]\n"
        "  --sock=PATH     listening socket (default: "
        "$SWSM_SERVE_SOCK or <shm dir>/swsm_serve.sock)\n"
        "  --segment=NAME  memo segment name in $SWSM_SHM_DIR or "
        "/dev/shm (default: swsm_memo)\n"
        "  --slots=N       memo hash-table capacity (default: 4096)\n"
        "  --arena-mb=N    memo arena size in MiB (default: 64)\n"
        "  --jobs=N        workers per grid request (default: "
        "SWSM_JOBS or hardware concurrency)\n"
        "  --reset         wipe the segment before serving\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        int parsed = 0;
        if (arg.rfind("--sock=", 0) == 0) {
            opts.sockPath = arg.substr(7);
        } else if (arg.rfind("--segment=", 0) == 0) {
            opts.segment = arg.substr(10);
        } else if (arg.rfind("--slots=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(8), 1, 1 << 20, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.slotCount = static_cast<std::uint32_t>(parsed);
        } else if (arg.rfind("--arena-mb=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(11), 1, 16384, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.arenaBytes = static_cast<std::uint64_t>(parsed) << 20;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(7), 1, maxJobs, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.jobs = parsed;
        } else if (arg == "--reset") {
            opts.reset = true;
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 1;
        }
    }

    try {
        Server server(opts);
        std::fprintf(stderr,
                     "swsm_serve: listening on %s (segment %s%s)\n",
                     server.sockPath().c_str(), opts.segment.c_str(),
                     server.cache().wasRebuilt() ? ", rebuilt" : "");
        server.run();
        std::fprintf(stderr, "swsm_serve: shut down\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "swsm_serve: %s\n", e.what());
        return 1;
    }
    return 0;
}
