/**
 * @file
 * swsm_serve: the persistent sweep server (serve/server.hh).
 *
 * Listens on a local unix socket for run/grid requests, memoizes
 * completed experiments in a named shared-memory segment, and streams
 * BENCH-schema results back. Pair with swsm_query (the client CLI) or
 * tools/bench_diff.py --from-shm (offline segment reader).
 *
 * --workers=N forks N worker processes that pull cache misses off a
 * shared-memory job queue (multi-process fan-out, serve/shm_queue.hh);
 * --workers=auto sizes the pool from the measured core budget
 * (harness/budget.hh). --tcp=PORT additionally serves the same verbs
 * over TCP so shard coordinators (serve/shard.hh) can reach this host.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/budget.hh"
#include "serve/server.hh"
#include "sim/env.hh"
#include "sim/log.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--sock=PATH] [--segment=NAME] [--slots=N]\n"
        "          [--arena-mb=N] [--jobs=N] [--workers=N|auto]\n"
        "          [--tcp=PORT] [--lease-timeout-ms=N] [--reset]\n"
        "  --sock=PATH     listening socket (default: "
        "$SWSM_SERVE_SOCK or <shm dir>/swsm_serve.sock)\n"
        "  --segment=NAME  memo segment name in $SWSM_SHM_DIR or "
        "/dev/shm (default: swsm_memo)\n"
        "  --slots=N       memo hash-table capacity (default: 4096)\n"
        "  --arena-mb=N    memo arena size in MiB (default: 64)\n"
        "  --jobs=N        scheduler threads per grid request "
        "(default: measured core budget)\n"
        "  --workers=N     fork N job-queue worker processes; auto = "
        "size from the core budget; 0 = in-process (default)\n"
        "  --tcp=PORT      also accept requests on this TCP port "
        "(shard transport)\n"
        "  --lease-timeout-ms=N  re-queue a worker job whose "
        "heartbeat is older than this (default: 10000)\n"
        "  --reset         wipe the segment before serving\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace swsm;

    ServerOptions opts;
    bool jobsExplicit = false;
    bool workersAuto = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        int parsed = 0;
        if (arg.rfind("--sock=", 0) == 0) {
            opts.sockPath = arg.substr(7);
        } else if (arg.rfind("--segment=", 0) == 0) {
            opts.segment = arg.substr(10);
        } else if (arg.rfind("--slots=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(8), 1, 1 << 20, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.slotCount = static_cast<std::uint32_t>(parsed);
        } else if (arg.rfind("--arena-mb=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(11), 1, 16384, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.arenaBytes = static_cast<std::uint64_t>(parsed) << 20;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(7), 1, maxJobs, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.jobs = parsed;
            jobsExplicit = true;
        } else if (arg == "--workers=auto") {
            workersAuto = true;
        } else if (arg.rfind("--workers=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(10), 0, maxWorkerProcs,
                                 parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.workers = parsed;
        } else if (arg.rfind("--tcp=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(6), 1, 65535, parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.tcpPort = parsed;
        } else if (arg.rfind("--lease-timeout-ms=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(19), 100, 3600000,
                                 parsed)) {
                usage(argv[0]);
                return 1;
            }
            opts.leaseTimeoutMs = static_cast<std::uint64_t>(parsed);
        } else if (arg == "--reset") {
            opts.reset = true;
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 1;
        }
    }

    // Resolve jobs / workers / per-simulation threads through the
    // measured core budget (explicit flags stay authoritative;
    // SWSM_BUDGET=static restores the legacy oversubscription rule).
    {
        BudgetRequest breq;
        breq.jobs = opts.jobs;
        breq.jobsExplicit = jobsExplicit;
        breq.workers = workersAuto ? 0 : opts.workers;
        breq.workersAuto = workersAuto;
        const Budget budget = computeBudget(breq);
        if (workersAuto)
            opts.workers = budget.workers;
        if (!jobsExplicit)
            opts.jobs = budget.jobs;
        opts.simThreads = budget.simThreads;
    }

    try {
        Server server(opts);
        std::fprintf(stderr,
                     "swsm_serve: listening on %s (segment %s%s)\n",
                     server.sockPath().c_str(), opts.segment.c_str(),
                     server.cache().wasRebuilt() ? ", rebuilt" : "");
        if (opts.workers > 0)
            std::fprintf(stderr,
                         "swsm_serve: %d worker processes x %d "
                         "sim threads (lease timeout %llu ms)\n",
                         opts.workers, opts.simThreads,
                         static_cast<unsigned long long>(
                             opts.leaseTimeoutMs));
        if (opts.tcpPort > 0)
            std::fprintf(stderr, "swsm_serve: tcp port %d\n",
                         opts.tcpPort);
        server.run();
        std::fprintf(stderr, "swsm_serve: shut down\n");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "swsm_serve: %s\n", e.what());
        return 1;
    }
    return 0;
}
