#include "app_util.hh"

#include <algorithm>

#include "sim/log.hh"

namespace swsm
{

void
fftInPlace(Complex *a, std::uint64_t n, int sign)
{
    if (n == 0 || (n & (n - 1)) != 0)
        SWSM_PANIC("fftInPlace needs a power-of-two size");
    // Bit-reversal permutation.
    for (std::uint64_t i = 1, j = 0; i < n; ++i) {
        std::uint64_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (std::uint64_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * 2.0 * M_PI / static_cast<double>(len);
        const Complex wl{std::cos(ang), std::sin(ang)};
        for (std::uint64_t i = 0; i < n; i += len) {
            Complex w{1.0, 0.0};
            for (std::uint64_t k = 0; k < len / 2; ++k) {
                const Complex u = a[i + k];
                const Complex v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w = w * wl;
            }
        }
    }
}

std::vector<Complex>
fftReference(const std::vector<Complex> &in)
{
    std::vector<Complex> out = in;
    fftInPlace(out.data(), out.size(), -1);
    return out;
}

double
relError(double a, double b)
{
    return std::abs(a - b) / std::max(1.0, std::abs(b));
}

Range
blockRange(std::uint64_t n, int parts, int p)
{
    const std::uint64_t per = n / parts;
    const std::uint64_t rem = n % parts;
    const std::uint64_t up = static_cast<std::uint64_t>(p);
    const std::uint64_t begin = up * per + std::min<std::uint64_t>(up, rem);
    const std::uint64_t extra = up < rem ? 1 : 0;
    return Range{begin, begin + per + extra};
}

} // namespace swsm
