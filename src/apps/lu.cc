#include "lu.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{

/** In-place LU of a B x B block (no pivoting, unit lower diagonal). */
void
factorBlock(double *a, std::uint64_t b)
{
    for (std::uint64_t k = 0; k < b; ++k) {
        for (std::uint64_t i = k + 1; i < b; ++i) {
            a[i * b + k] /= a[k * b + k];
            for (std::uint64_t j = k + 1; j < b; ++j)
                a[i * b + j] -= a[i * b + k] * a[k * b + j];
        }
    }
}

/** X := X * U^-1 for the upper triangle (with diagonal) of diag. */
void
solveRight(double *x, const double *diag, std::uint64_t b)
{
    for (std::uint64_t r = 0; r < b; ++r) {
        for (std::uint64_t j = 0; j < b; ++j) {
            double v = x[r * b + j];
            for (std::uint64_t t = 0; t < j; ++t)
                v -= x[r * b + t] * diag[t * b + j];
            x[r * b + j] = v / diag[j * b + j];
        }
    }
}

/** X := L^-1 * X for the unit lower triangle of diag. */
void
solveLeft(double *x, const double *diag, std::uint64_t b)
{
    for (std::uint64_t i = 0; i < b; ++i) {
        for (std::uint64_t t = 0; t < i; ++t) {
            const double l = diag[i * b + t];
            for (std::uint64_t j = 0; j < b; ++j)
                x[i * b + j] -= l * x[t * b + j];
        }
    }
}

/** C -= A * B (all B x B). */
void
gemmSub(double *c, const double *a, const double *b, std::uint64_t bs)
{
    for (std::uint64_t i = 0; i < bs; ++i) {
        for (std::uint64_t k = 0; k < bs; ++k) {
            const double aik = a[i * bs + k];
            for (std::uint64_t j = 0; j < bs; ++j)
                c[i * bs + j] -= aik * b[k * bs + j];
        }
    }
}

} // namespace

LuWorkload::LuWorkload(SizeClass size)
{
    switch (size) {
      case SizeClass::Tiny:
        n = 64;
        break;
      case SizeClass::Small:
        n = 384;
        break;
      case SizeClass::Medium:
      case SizeClass::Paper:
        n = 512; // the paper's size
        break;
    }
    nb = n / bs;
}

int
LuWorkload::owner(std::uint64_t bi, std::uint64_t bj) const
{
    return static_cast<int>((bi % gridRows) * gridCols + (bj % gridCols));
}

GlobalAddr
LuWorkload::blockAddr(std::uint64_t bi, std::uint64_t bj) const
{
    return blocks.addr(blockSlot[bi * nb + bj] * bs * bs);
}

void
LuWorkload::readBlock(Thread &t, std::uint64_t bi, std::uint64_t bj,
                      double *buf) const
{
    t.readBytes(blockAddr(bi, bj), buf, bs * bs * sizeof(double));
}

void
LuWorkload::writeBlock(Thread &t, std::uint64_t bi, std::uint64_t bj,
                       const double *buf) const
{
    t.writeBytes(blockAddr(bi, bj), buf, bs * bs * sizeof(double));
}

void
LuWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    gridRows = 1;
    for (int r = static_cast<int>(std::sqrt(np)); r >= 1; --r) {
        if (np % r == 0) {
            gridRows = r;
            break;
        }
    }
    gridCols = np / gridRows;

    blocks = SharedArray<double>(cluster, n * n,
                                 cluster.params().pageBytes);
    bar = cluster.allocBarrier();

    // Group each owner's blocks contiguously (the "contiguous blocks"
    // allocation) and home the group at the owner.
    blockSlot.assign(nb * nb, 0);
    std::uint64_t slot = 0;
    for (int p = 0; p < np; ++p) {
        const std::uint64_t first = slot;
        for (std::uint64_t bi = 0; bi < nb; ++bi) {
            for (std::uint64_t bj = 0; bj < nb; ++bj) {
                if (owner(bi, bj) == p)
                    blockSlot[bi * nb + bj] = slot++;
            }
        }
        if (slot > first) {
            cluster.space().setRangeHome(
                blocks.addr(first * bs * bs),
                (slot - first) * bs * bs * sizeof(double), p);
        }
    }

    // Diagonally dominant input: stable without pivoting.
    Rng rng(1234);
    original.resize(n * n);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            double v = rng.nextDouble() * 2.0 - 1.0;
            if (i == j)
                v += static_cast<double>(n);
            original[i * n + j] = v;
        }
    }
    for (std::uint64_t bi = 0; bi < nb; ++bi) {
        for (std::uint64_t bj = 0; bj < nb; ++bj) {
            for (std::uint64_t r = 0; r < bs; ++r) {
                for (std::uint64_t c = 0; c < bs; ++c) {
                    const double v =
                        original[(bi * bs + r) * n + bj * bs + c];
                    cluster.initWrite(
                        blockAddr(bi, bj) + (r * bs + c) * sizeof(double),
                        &v, sizeof(double));
                }
            }
        }
    }
}

void
LuWorkload::body(Thread &t)
{
    const int me = t.id();
    const std::uint64_t bb = bs * bs;
    std::vector<double> diag(bb), mine(bb), left(bb), up(bb);

    for (std::uint64_t k = 0; k < nb; ++k) {
        // 1. Factor the diagonal block.
        if (owner(k, k) == me) {
            readBlock(t, k, k, diag.data());
            factorBlock(diag.data(), bs);
            t.compute(2 * bs * bs * bs / 3);
            writeBlock(t, k, k, diag.data());
        }
        t.barrier(bar);

        // 2. Perimeter: triangular solves against the diagonal block.
        bool have_diag = false;
        for (std::uint64_t bi = k + 1; bi < nb; ++bi) {
            if (owner(bi, k) != me)
                continue;
            if (!have_diag) {
                readBlock(t, k, k, diag.data());
                have_diag = true;
            }
            readBlock(t, bi, k, mine.data());
            solveRight(mine.data(), diag.data(), bs);
            t.compute(bs * bs * bs);
            writeBlock(t, bi, k, mine.data());
        }
        for (std::uint64_t bj = k + 1; bj < nb; ++bj) {
            if (owner(k, bj) != me)
                continue;
            if (!have_diag) {
                readBlock(t, k, k, diag.data());
                have_diag = true;
            }
            readBlock(t, k, bj, mine.data());
            solveLeft(mine.data(), diag.data(), bs);
            t.compute(bs * bs * bs);
            writeBlock(t, k, bj, mine.data());
        }
        t.barrier(bar);

        // 3. Interior: rank-B update from the pivot row and column.
        for (std::uint64_t bi = k + 1; bi < nb; ++bi) {
            bool have_left = false;
            for (std::uint64_t bj = k + 1; bj < nb; ++bj) {
                if (owner(bi, bj) != me)
                    continue;
                if (!have_left) {
                    readBlock(t, bi, k, left.data());
                    have_left = true;
                }
                readBlock(t, k, bj, up.data());
                readBlock(t, bi, bj, mine.data());
                gemmSub(mine.data(), left.data(), up.data(), bs);
                t.compute(2 * bs * bs * bs);
                writeBlock(t, bi, bj, mine.data());
            }
        }
        t.barrier(bar);
    }
}

bool
LuWorkload::verify(Cluster &cluster)
{
    // Gather the factored matrix back into dense layout.
    std::vector<double> lu(n * n);
    for (std::uint64_t bi = 0; bi < nb; ++bi) {
        for (std::uint64_t bj = 0; bj < nb; ++bj) {
            std::vector<double> buf(bs * bs);
            cluster.debugRead(blockAddr(bi, bj), buf.data(),
                              bs * bs * sizeof(double));
            for (std::uint64_t r = 0; r < bs; ++r)
                for (std::uint64_t c = 0; c < bs; ++c)
                    lu[(bi * bs + r) * n + bj * bs + c] =
                        buf[r * bs + c];
        }
    }

    // Check A == L * U row by row.
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            double v = 0.0;
            const std::uint64_t lim = std::min(i, j);
            for (std::uint64_t k = 0; k <= lim; ++k) {
                const double l = k == i ? 1.0 : lu[i * n + k];
                if (k <= j)
                    v += l * lu[k * n + j];
            }
            const double a = original[i * n + j];
            if (std::abs(v - a) > 1e-6 * (1.0 + std::abs(a))) {
                SWSM_WARN("lu mismatch at (%llu,%llu): %g vs %g",
                          static_cast<unsigned long long>(i),
                          static_cast<unsigned long long>(j), v, a);
                return false;
            }
        }
    }
    return true;
}

} // namespace swsm
