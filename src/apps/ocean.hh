/**
 * @file
 * Ocean-style regular grid solver (the paper's "Ocean", 514x514).
 *
 * Red-black Gauss-Seidel SOR relaxation over an (N+2)^2 grid with fixed
 * boundary, run for a fixed number of sweeps (deterministic across all
 * protocols and schedules, because each color only reads the other).
 *
 * Two versions reproduce the paper's application-layer contrast:
 *
 *  - Contiguous ("ocean"): sqrt(P) x sqrt(P) square subgrids, each
 *    stored contiguously and homed at its owner (the SPLASH-2 4-D
 *    arrays). Top/bottom neighbour boundaries are contiguous rows, but
 *    the *left/right* boundaries are single words per subgrid row —
 *    the fine-grained column-oriented remote access that makes message
 *    handling cost dominate in the paper ("a message per word of
 *    useful data").
 *
 *  - Rowwise ("ocean-rowwise", restructured): row-block partitions;
 *    all communication becomes two contiguous boundary rows per
 *    neighbour per sweep — far fewer, larger messages.
 *
 * Verified bitwise-tolerantly against a native sequential reference
 * running the same sweeps.
 */

#ifndef SWSM_APPS_OCEAN_HH
#define SWSM_APPS_OCEAN_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Red-black SOR grid solver, square or row-block partitions. */
class OceanWorkload : public Workload
{
  public:
    /**
     * @param size problem size selector
     * @param rowwise true builds the restructured row-block version
     */
    OceanWorkload(SizeClass size, bool rowwise);

    const char *
    name() const override
    {
        return rowwise ? "ocean-rowwise" : "ocean";
    }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    /** Subgrid geometry of one processor (interior coordinates). */
    struct Part
    {
        std::uint64_t r0, r1; ///< interior row range [r0, r1)
        std::uint64_t c0, c1; ///< interior column range [c0, c1)
    };

    Part partOf(int p, int np) const;
    /** Shared address of grid cell (r, c) in the partitioned layout. */
    GlobalAddr cellAddr(std::uint64_t r, std::uint64_t c) const;

    void relaxColor(Thread &t, const Part &part, int color);

    std::uint64_t n = 0;  ///< interior dimension (grid is (n+2)^2)
    int sweeps = 4;
    bool rowwise = false;
    int gridRows = 0;     ///< partition grid (square version)
    int gridCols = 0;
    double omega = 1.2;   ///< SOR relaxation factor

    SharedArray<double> grid;
    /** (r, c) -> element index in the contiguous-by-owner layout. */
    std::vector<std::uint32_t> layout;
    BarrierId bar = 0;
    std::vector<double> initial; ///< initial grid (verification)
};

} // namespace swsm

#endif // SWSM_APPS_OCEAN_HH
