#include "fft.hh"

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

FftWorkload::FftWorkload(SizeClass size)
{
    switch (size) {
      case SizeClass::Tiny:
        m = 32; // 1 K points
        break;
      case SizeClass::Small:
        // 256 K points: keeps the transpose's page-fetch amplification
        // (page bytes / contiguous strip bytes) near the paper's
        // 1M-point geometry. See DESIGN.md §5.
        m = 512;
        break;
      case SizeClass::Medium:
      case SizeClass::Paper:
        m = 1024; // the paper's 1 M points
        break;
    }
}

void
FftWorkload::setup(Cluster &cluster)
{
    const std::uint64_t n = points();
    const std::uint32_t page = cluster.params().pageBytes;
    x = SharedArray<Complex>(cluster, n, page);
    trans = SharedArray<Complex>(cluster, n, page);
    bar = cluster.allocBarrier();

    // Row blocks live at their owners (the SPLASH-2 data distribution).
    const int np = cluster.numProcs();
    for (int p = 0; p < np; ++p) {
        const Range rows = blockRange(m, np, p);
        const std::uint64_t bytes = rows.size() * m * x.slotBytes();
        cluster.space().setRangeHome(x.addr(rows.begin * m), bytes, p);
        cluster.space().setRangeHome(trans.addr(rows.begin * m), bytes, p);
    }

    Rng rng(42);
    input.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        input[i] = Complex{rng.nextDouble() * 2.0 - 1.0,
                           rng.nextDouble() * 2.0 - 1.0};
        x.init(cluster, i, input[i]);
    }
}

void
FftWorkload::transpose(Thread &t, const SharedArray<Complex> &src,
                       const SharedArray<Complex> &dst)
{
    const Range rows = blockRange(m, t.nprocs(), t.id());
    if (rows.size() == 0)
        return;
    std::vector<Complex> buf(rows.size());
    // For every source row c, read the contiguous segment that lands in
    // our destination rows, then scatter it into column c.
    for (std::uint64_t c = 0; c < m; ++c) {
        src.read(t, c * m + rows.begin, rows.size(), buf.data());
        for (std::uint64_t r = rows.begin; r < rows.end; ++r)
            dst.put(t, r * m + c, buf[r - rows.begin]);
        t.compute(2 * rows.size());
    }
}

void
FftWorkload::rowFfts(Thread &t, const SharedArray<Complex> &arr)
{
    const Range rows = blockRange(m, t.nprocs(), t.id());
    std::vector<Complex> row(m);
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        arr.read(t, r * m, m, row.data());
        fftInPlace(row.data(), m, -1);
        t.compute(fftCycles(m));
        arr.write(t, r * m, m, row.data());
    }
}

void
FftWorkload::twiddle(Thread &t, const SharedArray<Complex> &arr)
{
    const Range rows = blockRange(m, t.nprocs(), t.id());
    const double n = static_cast<double>(points());
    std::vector<Complex> row(m);
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        arr.read(t, r * m, m, row.data());
        for (std::uint64_t c = 0; c < m; ++c) {
            const double ang = -2.0 * M_PI *
                static_cast<double>(r) * static_cast<double>(c) / n;
            row[c] = row[c] * Complex{std::cos(ang), std::sin(ang)};
        }
        t.compute(10 * m);
        arr.write(t, r * m, m, row.data());
    }
}

void
FftWorkload::body(Thread &t)
{
    transpose(t, x, trans); // 1: trans = x^T
    t.barrier(bar);
    rowFfts(t, trans);      // 2: m-point FFTs over trans rows
    twiddle(t, trans);      // 3: twiddle scale (local rows)
    t.barrier(bar);
    transpose(t, trans, x); // 4: x = trans^T
    t.barrier(bar);
    rowFfts(t, x);          // 5: m-point FFTs over x rows
    t.barrier(bar);
    transpose(t, x, trans); // 6: ordered result in trans
    t.barrier(bar);
}

bool
FftWorkload::verify(Cluster &cluster)
{
    const std::vector<Complex> ref = fftReference(input);
    const std::uint64_t n = points();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Complex got = trans.peek(cluster, i);
        if (std::abs(got.re - ref[i].re) >
                1e-6 * (1.0 + std::abs(ref[i].re)) ||
            std::abs(got.im - ref[i].im) >
                1e-6 * (1.0 + std::abs(ref[i].im))) {
            SWSM_WARN("fft mismatch at %llu: (%g,%g) vs (%g,%g)",
                      static_cast<unsigned long long>(i), got.re, got.im,
                      ref[i].re, ref[i].im);
            return false;
        }
    }
    return true;
}

} // namespace swsm
