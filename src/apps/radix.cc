#include "radix.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

RadixWorkload::RadixWorkload(SizeClass size, bool local_buffers)
    : localBuffers(local_buffers)
{
    switch (size) {
      case SizeClass::Tiny:
        nkeys = 8 * 1024;
        break;
      case SizeClass::Small:
        nkeys = 128 * 1024;
        break;
      case SizeClass::Medium:
        nkeys = 512 * 1024;
        break;
      case SizeClass::Paper:
        nkeys = 1024 * 1024; // the paper's 1 M keys
        break;
    }
}

void
RadixWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    const std::uint32_t page = cluster.params().pageBytes;
    a = SharedArray<std::uint32_t>(cluster, nkeys, page);
    b = SharedArray<std::uint32_t>(cluster, nkeys, page);
    hist = SharedArray<std::uint32_t>(cluster,
                                      static_cast<std::uint64_t>(np) *
                                          buckets,
                                      page);
    if (localBuffers)
        stage = SharedArray<std::uint32_t>(cluster, nkeys, page);
    bar = cluster.allocBarrier();

    for (int p = 0; p < np; ++p) {
        const Range blk = blockRange(nkeys, np, p);
        const std::uint64_t bytes = blk.size() * sizeof(std::uint32_t);
        cluster.space().setRangeHome(a.addr(blk.begin), bytes, p);
        cluster.space().setRangeHome(b.addr(blk.begin), bytes, p);
        if (localBuffers)
            cluster.space().setRangeHome(stage.addr(blk.begin), bytes, p);
        cluster.space().setRangeHome(
            hist.addr(static_cast<std::uint64_t>(p) * buckets),
            buckets * sizeof(std::uint32_t), p);
    }

    Rng rng(2024);
    input.resize(nkeys);
    for (std::uint64_t i = 0; i < nkeys; ++i) {
        input[i] = static_cast<std::uint32_t>(rng.next64());
        a.init(cluster, i, input[i]);
    }
}

void
RadixWorkload::body(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    const Range blk = blockRange(nkeys, np, me);
    std::vector<std::uint32_t> keys(blk.size());
    std::vector<std::uint32_t> all_hist(
        static_cast<std::size_t>(np) * buckets);

    const SharedArray<std::uint32_t> *src = &a;
    const SharedArray<std::uint32_t> *dst = &b;

    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const std::uint32_t shift = pass * radixBits;

        // 1. Private histogram of my (fixed) block of the source.
        src->read(t, blk.begin, blk.size(), keys.data());
        std::vector<std::uint32_t> cnt(buckets, 0);
        for (const std::uint32_t k : keys)
            ++cnt[(k >> shift) & (buckets - 1)];
        t.compute(2 * blk.size());

        // 2. Publish it and wait for everyone.
        hist.write(t, static_cast<std::uint64_t>(me) * buckets, buckets,
                   cnt.data());
        t.barrier(bar);

        // 3. Global rank offsets from all histograms.
        hist.read(t, 0, static_cast<std::uint64_t>(np) * buckets,
                  all_hist.data());
        t.compute(static_cast<Cycles>(np) * buckets);
        std::vector<std::uint64_t> digit_base(buckets + 1, 0);
        for (std::uint32_t d = 0; d < buckets; ++d) {
            std::uint64_t total = 0;
            for (int q = 0; q < np; ++q)
                total += all_hist[static_cast<std::size_t>(q) * buckets +
                                  d];
            digit_base[d + 1] = digit_base[d] + total;
        }
        // Start offset of (digit d, proc q)'s run.
        auto run_off = [&](std::uint32_t d, int q) {
            std::uint64_t off = digit_base[d];
            for (int q2 = 0; q2 < q; ++q2)
                off += all_hist[static_cast<std::size_t>(q2) * buckets +
                                d];
            return off;
        };

        if (!localBuffers) {
            // 4a. Original: write every key straight to its global
            // rank — fine-grained scattered remote writes with heavy
            // page-level false sharing.
            std::vector<std::uint64_t> next(buckets);
            for (std::uint32_t d = 0; d < buckets; ++d)
                next[d] = run_off(d, me);
            for (const std::uint32_t k : keys) {
                const std::uint32_t d = (k >> shift) & (buckets - 1);
                dst->put(t, next[d]++, k);
            }
            t.compute(2 * blk.size());
            t.barrier(bar);
        } else {
            // 4b. Restructured: stage my keys grouped by digit in my
            // local staging block, then let each destination owner
            // bulk-read the runs that land in its block.
            std::vector<std::uint64_t> stage_off(buckets + 1, 0);
            for (std::uint32_t d = 0; d < buckets; ++d)
                stage_off[d + 1] = stage_off[d] + cnt[d];
            std::vector<std::uint32_t> grouped(blk.size());
            {
                std::vector<std::uint64_t> cursor(stage_off.begin(),
                                                  stage_off.end() - 1);
                for (const std::uint32_t k : keys) {
                    const std::uint32_t d = (k >> shift) & (buckets - 1);
                    grouped[cursor[d]++] = k;
                }
            }
            t.compute(3 * blk.size());
            stage.write(t, blk.begin, blk.size(), grouped.data());
            t.barrier(bar);

            // Gather phase: pull every (proc, digit) run overlapping my
            // destination block with coarse-grained reads.
            std::vector<std::uint32_t> out(blk.size());
            std::vector<std::uint32_t> run(blk.size());
            for (int q = 0; q < np; ++q) {
                const Range qblk = blockRange(nkeys, np, q);
                std::uint64_t qstage = qblk.begin;
                for (std::uint32_t d = 0; d < buckets; ++d) {
                    const std::uint64_t c =
                        all_hist[static_cast<std::size_t>(q) * buckets +
                                 d];
                    if (c == 0)
                        continue;
                    const std::uint64_t off = run_off(d, q);
                    const std::uint64_t lo =
                        std::max<std::uint64_t>(off, blk.begin);
                    const std::uint64_t hi =
                        std::min<std::uint64_t>(off + c, blk.end);
                    if (lo < hi) {
                        stage.read(t, qstage + (lo - off), hi - lo,
                                   run.data());
                        std::copy(run.begin(),
                                  run.begin() +
                                      static_cast<std::ptrdiff_t>(hi -
                                                                  lo),
                                  out.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          lo - blk.begin));
                    }
                    qstage += c;
                }
            }
            dst->write(t, blk.begin, blk.size(), out.data());
            t.compute(2 * blk.size());
            t.barrier(bar);
        }
        std::swap(src, dst);
    }
}

bool
RadixWorkload::verify(Cluster &cluster)
{
    std::vector<std::uint32_t> expect = input;
    std::sort(expect.begin(), expect.end());
    // passes is even, so the final result is back in `a`.
    static_assert(passes % 2 == 0);
    for (std::uint64_t i = 0; i < nkeys; ++i) {
        const std::uint32_t got = a.peek(cluster, i);
        if (got != expect[i]) {
            SWSM_WARN("radix mismatch at %llu: %u vs %u",
                      static_cast<unsigned long long>(i), got, expect[i]);
            return false;
        }
    }
    return true;
}

} // namespace swsm
