#include "water.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{
constexpr double timeStep = 0.001;
constexpr double softening = 0.5;
constexpr Cycles pairCost = 800;   // the water potential is expensive
constexpr Cycles integrateCost = 60;
} // namespace

WaterWorkload::WaterWorkload(SizeClass size, bool spatial)
    : spatial(spatial)
{
    switch (size) {
      case SizeClass::Tiny:
        n = 64;
        steps = 2;
        break;
      case SizeClass::Small:
        n = 512; // the paper's molecule count
        steps = 2;
        break;
      case SizeClass::Medium:
        n = 1000;
        steps = 2;
        break;
      case SizeClass::Paper:
        n = 512; // the paper's molecule count
        steps = 2;
        break;
    }
    boxSize = std::cbrt(static_cast<double>(n)) * 1.2;
    cellsPerDim = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::cbrt(n / 3.0)));
    cutoff = boxSize / static_cast<double>(cellsPerDim);
    maxPerCell = std::max<std::uint64_t>(
        16, 8 * n / (cellsPerDim * cellsPerDim * cellsPerDim));
}

WaterWorkload::Vec3
WaterWorkload::pairForce(const Vec3 &pi, const Vec3 &pj)
{
    const double dx = pi.x - pj.x;
    const double dy = pi.y - pj.y;
    const double dz = pi.z - pj.z;
    const double r2 = dx * dx + dy * dy + dz * dz + softening;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    // Lennard-Jones: F = 24 (2 r^-12 - r^-6) / r^2 * dr
    const double f = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
    return Vec3{f * dx, f * dy, f * dz};
}

WaterWorkload::Vec3
WaterWorkload::readVec(Thread &t, std::uint64_t i, std::uint64_t off) const
{
    const std::uint64_t base = i * molStride + off;
    return Vec3{mol.get(t, base), mol.get(t, base + 1),
                mol.get(t, base + 2)};
}

void
WaterWorkload::writeVec(Thread &t, std::uint64_t i, std::uint64_t off,
                        const Vec3 &v) const
{
    const std::uint64_t base = i * molStride + off;
    mol.put(t, base, v.x);
    mol.put(t, base + 1, v.y);
    mol.put(t, base + 2, v.z);
}

void
WaterWorkload::addVec(Thread &t, std::uint64_t i, std::uint64_t off,
                      const Vec3 &v) const
{
    const Vec3 old = readVec(t, i, off);
    writeVec(t, i, off, Vec3{old.x + v.x, old.y + v.y, old.z + v.z});
}

std::uint64_t
WaterWorkload::cellOf(const Vec3 &p) const
{
    auto clamp_dim = [this](double x) {
        const double scaled = x / cutoff;
        const auto c = static_cast<std::int64_t>(std::floor(scaled));
        return static_cast<std::uint64_t>(std::min<std::int64_t>(
            std::max<std::int64_t>(c, 0),
            static_cast<std::int64_t>(cellsPerDim) - 1));
    };
    return (clamp_dim(p.x) * cellsPerDim + clamp_dim(p.y)) * cellsPerDim +
           clamp_dim(p.z);
}

void
WaterWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    const std::uint32_t page = cluster.params().pageBytes;
    mol = SharedArray<double>(cluster, n * molStride, page);
    bar = cluster.allocBarrier();

    for (int p = 0; p < np; ++p) {
        const Range blk = blockRange(n, np, p);
        cluster.space().setRangeHome(
            mol.addr(blk.begin * molStride),
            blk.size() * molStride * sizeof(double), p);
    }

    // Jittered lattice positions, small random velocities.
    Rng rng(7);
    const auto side = static_cast<std::uint64_t>(
        std::ceil(std::cbrt(static_cast<double>(n))));
    const double spacing = boxSize / static_cast<double>(side);
    initPos.resize(3 * n);
    initVel.resize(3 * n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t ix = i % side;
        const std::uint64_t iy = (i / side) % side;
        const std::uint64_t iz = i / (side * side);
        initPos[3 * i] = (ix + 0.5) * spacing +
            (rng.nextDouble() - 0.5) * 0.2;
        initPos[3 * i + 1] = (iy + 0.5) * spacing +
            (rng.nextDouble() - 0.5) * 0.2;
        initPos[3 * i + 2] = (iz + 0.5) * spacing +
            (rng.nextDouble() - 0.5) * 0.2;
        for (int d = 0; d < 3; ++d)
            initVel[3 * i + d] = (rng.nextDouble() - 0.5) * 0.01;
        for (int d = 0; d < 3; ++d) {
            mol.init(cluster, i * molStride + posOff + d,
                     initPos[3 * i + d]);
            mol.init(cluster, i * molStride + velOff + d,
                     initVel[3 * i + d]);
            mol.init(cluster, i * molStride + forceOff + d, 0.0);
        }
    }

    if (spatial) {
        const std::uint64_t cells =
            cellsPerDim * cellsPerDim * cellsPerDim;
        cellCount = SharedArray<std::uint32_t>(cluster, cells, page);
        cellList =
            SharedArray<std::uint32_t>(cluster, cells * maxPerCell, page);
        cellLocks.resize(cells);
        for (auto &l : cellLocks)
            l = cluster.allocLock();
        // Initial cell membership.
        std::vector<std::vector<std::uint32_t>> members(cells);
        for (std::uint64_t i = 0; i < n; ++i) {
            const Vec3 p{initPos[3 * i], initPos[3 * i + 1],
                         initPos[3 * i + 2]};
            members[cellOf(p)].push_back(static_cast<std::uint32_t>(i));
        }
        for (std::uint64_t c = 0; c < cells; ++c) {
            if (members[c].size() > maxPerCell)
                SWSM_FATAL("water cell overflow at setup");
            cellCount.init(cluster, c,
                           static_cast<std::uint32_t>(members[c].size()));
            for (std::size_t k = 0; k < members[c].size(); ++k)
                cellList.init(cluster, c * maxPerCell + k, members[c][k]);
        }

        // 3-D block partition of the cell grid (the SPLASH spatial
        // decomposition): locks are only needed for cells whose
        // neighbourhood crosses an ownership boundary.
        int px = 1, py = 1, pz = 1;
        {
            int rem = np;
            for (int f = static_cast<int>(std::cbrt(rem)); f >= 1; --f) {
                if (rem % f == 0) {
                    pz = f;
                    rem /= f;
                    break;
                }
            }
            for (int f = static_cast<int>(std::sqrt(rem)); f >= 1; --f) {
                if (rem % f == 0) {
                    py = f;
                    rem /= f;
                    break;
                }
            }
            px = rem;
        }
        auto dim_owner = [this](int parts, std::uint64_t coord) {
            for (int q = 0; q < parts; ++q) {
                const Range r = blockRange(cellsPerDim, parts, q);
                if (coord >= r.begin && coord < r.end)
                    return q;
            }
            return 0;
        };
        cellOwner.assign(cells, 0);
        for (std::uint64_t x = 0; x < cellsPerDim; ++x)
            for (std::uint64_t y = 0; y < cellsPerDim; ++y)
                for (std::uint64_t z = 0; z < cellsPerDim; ++z)
                    cellOwner[(x * cellsPerDim + y) * cellsPerDim + z] =
                        (dim_owner(px, x) * py + dim_owner(py, y)) * pz +
                        dim_owner(pz, z);
        cellNeedsLock.assign(cells, false);
        const auto dim = static_cast<std::int64_t>(cellsPerDim);
        for (std::int64_t x = 0; x < dim; ++x) {
            for (std::int64_t y = 0; y < dim; ++y) {
                for (std::int64_t z = 0; z < dim; ++z) {
                    const std::uint64_t c =
                        (static_cast<std::uint64_t>(x) * cellsPerDim +
                         static_cast<std::uint64_t>(y)) *
                            cellsPerDim +
                        static_cast<std::uint64_t>(z);
                    for (std::int64_t ddx = -1;
                         ddx <= 1 && !cellNeedsLock[c]; ++ddx)
                        for (std::int64_t ddy = -1;
                             ddy <= 1 && !cellNeedsLock[c]; ++ddy)
                            for (std::int64_t ddz = -1; ddz <= 1; ++ddz) {
                                const std::int64_t nx = x + ddx;
                                const std::int64_t ny = y + ddy;
                                const std::int64_t nz = z + ddz;
                                if (nx < 0 || ny < 0 || nz < 0 ||
                                    nx >= dim || ny >= dim || nz >= dim)
                                    continue;
                                const std::uint64_t c2 =
                                    (static_cast<std::uint64_t>(nx) *
                                         cellsPerDim +
                                     static_cast<std::uint64_t>(ny)) *
                                        cellsPerDim +
                                    static_cast<std::uint64_t>(nz);
                                if (cellOwner[c2] != cellOwner[c]) {
                                    cellNeedsLock[c] = true;
                                    break;
                                }
                            }
                }
            }
        }
    } else {
        molLocks.resize(n);
        for (auto &l : molLocks)
            l = cluster.allocLock();
    }
}

void
WaterWorkload::bodyNsquared(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    const Range blk = blockRange(n, np, me);
    std::vector<double> positions(3 * n);
    std::vector<Vec3> acc(n);
    std::vector<bool> touched(n);

    for (int s = 0; s < steps; ++s) {
        // Zero our force block.
        for (std::uint64_t i = blk.begin; i < blk.end; ++i)
            writeVec(t, i, forceOff, Vec3{});
        t.barrier(bar);

        // All positions (page-grained remote reads via the records),
        // then my pair set: molecule i with the next n/2, cyclically.
        for (std::uint64_t j = 0; j < n; ++j) {
            const Vec3 pj = readVec(t, j, posOff);
            positions[3 * j] = pj.x;
            positions[3 * j + 1] = pj.y;
            positions[3 * j + 2] = pj.z;
        }
        std::fill(acc.begin(), acc.end(), Vec3{});
        std::fill(touched.begin(), touched.end(), false);
        const std::uint64_t half = n / 2;
        std::uint64_t pairs = 0;
        for (std::uint64_t i = blk.begin; i < blk.end; ++i) {
            for (std::uint64_t k = 1; k <= half; ++k) {
                const std::uint64_t j = (i + k) % n;
                if (2 * k == n && i >= half)
                    continue; // count the diametric pair once
                const Vec3 pi{positions[3 * i], positions[3 * i + 1],
                              positions[3 * i + 2]};
                const Vec3 pj{positions[3 * j], positions[3 * j + 1],
                              positions[3 * j + 2]};
                const Vec3 f = pairForce(pi, pj);
                acc[i].x += f.x;
                acc[i].y += f.y;
                acc[i].z += f.z;
                acc[j].x -= f.x;
                acc[j].y -= f.y;
                acc[j].z -= f.z;
                touched[i] = touched[j] = true;
                ++pairs;
            }
        }
        t.compute(pairs * pairCost);

        // Migratory accumulation under per-molecule locks.
        for (std::uint64_t i = 0; i < n; ++i) {
            if (!touched[i])
                continue;
            t.acquire(molLocks[i]);
            addVec(t, i, forceOff, acc[i]);
            t.release(molLocks[i]);
        }
        t.barrier(bar);

        // Integrate our own molecules.
        for (std::uint64_t i = blk.begin; i < blk.end; ++i) {
            const Vec3 f = readVec(t, i, forceOff);
            Vec3 v = readVec(t, i, velOff);
            Vec3 p = readVec(t, i, posOff);
            v.x += f.x * timeStep;
            v.y += f.y * timeStep;
            v.z += f.z * timeStep;
            p.x += v.x * timeStep;
            p.y += v.y * timeStep;
            p.z += v.z * timeStep;
            writeVec(t, i, velOff, v);
            writeVec(t, i, posOff, p);
        }
        t.compute(blk.size() * integrateCost);
        t.barrier(bar);
    }
}

void
WaterWorkload::bodySpatial(Thread &t)
{
    const int me = t.id();
    const std::uint64_t cells = cellsPerDim * cellsPerDim * cellsPerDim;
    const auto dim = static_cast<std::int64_t>(cellsPerDim);
    std::vector<std::uint64_t> my_cells;
    for (std::uint64_t c = 0; c < cells; ++c)
        if (cellOwner[c] == me)
            my_cells.push_back(c);

    auto cell_index = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        return (static_cast<std::uint64_t>(x) * cellsPerDim +
                static_cast<std::uint64_t>(y)) *
                   cellsPerDim +
               static_cast<std::uint64_t>(z);
    };

    std::vector<Vec3> acc(n);
    std::vector<bool> touched(n);
    std::vector<std::uint32_t> mine, theirs;

    for (int s = 0; s < steps; ++s) {
        // Zero forces of molecules currently in our cells.
        for (const std::uint64_t c : my_cells) {
            const std::uint32_t cnt = cellCount.get(t, c);
            for (std::uint32_t k = 0; k < cnt; ++k) {
                const std::uint32_t i = cellList.get(t, c * maxPerCell + k);
                writeVec(t, i, forceOff, Vec3{});
            }
        }
        t.barrier(bar);

        // Pair forces from neighbouring cells (pair-once by ordering).
        std::fill(acc.begin(), acc.end(), Vec3{});
        std::fill(touched.begin(), touched.end(), false);
        std::vector<std::uint64_t> touched_cells;
        std::uint64_t pairs = 0;
        for (const std::uint64_t c : my_cells) {
            const auto cx = static_cast<std::int64_t>(
                c / (cellsPerDim * cellsPerDim));
            const auto cy = static_cast<std::int64_t>(
                (c / cellsPerDim) % cellsPerDim);
            const auto cz = static_cast<std::int64_t>(c % cellsPerDim);
            const std::uint32_t cnt = cellCount.get(t, c);
            mine.resize(cnt);
            for (std::uint32_t k = 0; k < cnt; ++k)
                mine[k] = cellList.get(t, c * maxPerCell + k);

            for (std::int64_t dx = -1; dx <= 1; ++dx) {
                for (std::int64_t dy = -1; dy <= 1; ++dy) {
                    for (std::int64_t dz = -1; dz <= 1; ++dz) {
                        const std::int64_t nx = cx + dx;
                        const std::int64_t ny = cy + dy;
                        const std::int64_t nz = cz + dz;
                        if (nx < 0 || ny < 0 || nz < 0 || nx >= dim ||
                            ny >= dim || nz >= dim)
                            continue;
                        const std::uint64_t c2 = cell_index(nx, ny, nz);
                        if (c2 < c)
                            continue; // pair cells once
                        bool any_pair = false;
                        const std::uint32_t cnt2 = cellCount.get(t, c2);
                        theirs.resize(cnt2);
                        for (std::uint32_t k = 0; k < cnt2; ++k)
                            theirs[k] =
                                cellList.get(t, c2 * maxPerCell + k);
                        for (const std::uint32_t i : mine) {
                            const Vec3 pi = readVec(t, i, posOff);
                            for (const std::uint32_t j : theirs) {
                                if (c2 == c && j <= i)
                                    continue; // within-cell pairs once
                                const Vec3 pj = readVec(t, j, posOff);
                                const double ddx = pi.x - pj.x;
                                const double ddy = pi.y - pj.y;
                                const double ddz = pi.z - pj.z;
                                if (ddx * ddx + ddy * ddy + ddz * ddz >
                                    cutoff * cutoff)
                                    continue;
                                const Vec3 f = pairForce(pi, pj);
                                acc[i].x += f.x;
                                acc[i].y += f.y;
                                acc[i].z += f.z;
                                acc[j].x -= f.x;
                                acc[j].y -= f.y;
                                acc[j].z -= f.z;
                                touched[i] = touched[j] = true;
                                any_pair = true;
                                ++pairs;
                            }
                        }
                        if (any_pair) {
                            touched_cells.push_back(c);
                            touched_cells.push_back(c2);
                        }
                    }
                }
            }
        }
        t.compute(pairs * pairCost);
        std::sort(touched_cells.begin(), touched_cells.end());
        touched_cells.erase(
            std::unique(touched_cells.begin(), touched_cells.end()),
            touched_cells.end());

        // Accumulate into the touched cells: interior cells of our own
        // partition are written by us alone (no lock); cells whose
        // neighbourhood crosses an ownership boundary take the cell
        // lock (the SPLASH boundary-locking discipline).
        for (const std::uint64_t c : touched_cells) {
            const bool lock = cellNeedsLock[c];
            if (lock)
                t.acquire(cellLocks[c]);
            const std::uint32_t cnt = cellCount.get(t, c);
            for (std::uint32_t k = 0; k < cnt; ++k) {
                const std::uint32_t i = cellList.get(t, c * maxPerCell + k);
                if (touched[i]) {
                    addVec(t, i, forceOff, acc[i]);
                    touched[i] = false;
                    acc[i] = Vec3{};
                }
            }
            if (lock)
                t.release(cellLocks[c]);
        }
        t.barrier(bar);

        // Integrate molecules in our cells; queue migrations.
        struct Migration
        {
            std::uint32_t mol;
            std::uint64_t from;
            std::uint64_t to;
        };
        std::vector<Migration> migrate;
        for (const std::uint64_t c : my_cells) {
            const std::uint32_t cnt = cellCount.get(t, c);
            for (std::uint32_t k = 0; k < cnt; ++k) {
                const std::uint32_t i = cellList.get(t, c * maxPerCell + k);
                const Vec3 f = readVec(t, i, forceOff);
                Vec3 v = readVec(t, i, velOff);
                Vec3 p = readVec(t, i, posOff);
                v.x += f.x * timeStep;
                v.y += f.y * timeStep;
                v.z += f.z * timeStep;
                p.x += v.x * timeStep;
                p.y += v.y * timeStep;
                p.z += v.z * timeStep;
                writeVec(t, i, velOff, v);
                writeVec(t, i, posOff, p);
                t.compute(integrateCost);
                const std::uint64_t nc = cellOf(p);
                if (nc != c)
                    migrate.push_back(Migration{i, c, nc});
            }
        }
        t.barrier(bar);

        // Migrations under cell locks (rare with a small time step).
        for (const auto &[i, oc, nc] : migrate) {
            t.acquire(cellLocks[oc]);
            const std::uint32_t ocnt = cellCount.get(t, oc);
            for (std::uint32_t k = 0; k < ocnt; ++k) {
                if (cellList.get(t, oc * maxPerCell + k) == i) {
                    const std::uint32_t last =
                        cellList.get(t, oc * maxPerCell + ocnt - 1);
                    cellList.put(t, oc * maxPerCell + k, last);
                    cellCount.put(t, oc, ocnt - 1);
                    break;
                }
            }
            t.release(cellLocks[oc]);
            t.acquire(cellLocks[nc]);
            const std::uint32_t cnt = cellCount.get(t, nc);
            if (cnt >= maxPerCell)
                SWSM_PANIC("water cell overflow during migration");
            cellList.put(t, nc * maxPerCell + cnt, i);
            cellCount.put(t, nc, cnt + 1);
            t.release(cellLocks[nc]);
        }
        t.barrier(bar);
    }
}

void
WaterWorkload::body(Thread &t)
{
    if (spatial)
        bodySpatial(t);
    else
        bodyNsquared(t);
}

bool
WaterWorkload::verify(Cluster &cluster)
{
    // Native reference: identical physics, sequential accumulation.
    std::vector<double> p = initPos;
    std::vector<double> v = initVel;
    const bool use_cutoff = spatial;
    for (int s = 0; s < steps; ++s) {
        std::vector<Vec3> f(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            for (std::uint64_t j = i + 1; j < n; ++j) {
                const Vec3 pi{p[3 * i], p[3 * i + 1], p[3 * i + 2]};
                const Vec3 pj{p[3 * j], p[3 * j + 1], p[3 * j + 2]};
                if (use_cutoff) {
                    const double dx = pi.x - pj.x;
                    const double dy = pi.y - pj.y;
                    const double dz = pi.z - pj.z;
                    if (dx * dx + dy * dy + dz * dz > cutoff * cutoff)
                        continue;
                }
                const Vec3 fij = pairForce(pi, pj);
                f[i].x += fij.x;
                f[i].y += fij.y;
                f[i].z += fij.z;
                f[j].x -= fij.x;
                f[j].y -= fij.y;
                f[j].z -= fij.z;
            }
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            v[3 * i] += f[i].x * timeStep;
            v[3 * i + 1] += f[i].y * timeStep;
            v[3 * i + 2] += f[i].z * timeStep;
            p[3 * i] += v[3 * i] * timeStep;
            p[3 * i + 1] += v[3 * i + 1] * timeStep;
            p[3 * i + 2] += v[3 * i + 2] * timeStep;
        }
    }

    for (std::uint64_t i = 0; i < 3 * n; ++i) {
        const double got = mol.peek(
            cluster, (i / 3) * molStride + posOff + i % 3);
        if (std::abs(got - p[i]) > 1e-7 * (1.0 + std::abs(p[i]))) {
            SWSM_WARN("water mismatch at %llu: %g vs %g",
                      static_cast<unsigned long long>(i), got, p[i]);
            return false;
        }
    }
    return true;
}

} // namespace swsm
