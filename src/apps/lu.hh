/**
 * @file
 * SPLASH-2-style blocked dense LU factorization, "contiguous blocks"
 * version (the paper's "LU-Contiguous", 512x512).
 *
 * The N x N matrix is split into B x B blocks assigned to processors in
 * a 2-D scatter; each processor's blocks are stored contiguously and
 * homed locally (the "contiguous" allocation that avoids page-level
 * false sharing). Per factorization step: the diagonal owner factors
 * the diagonal block; perimeter owners update their column/row blocks;
 * interior owners apply the rank-B update. Single-writer, coarse-
 * grained reads of the pivot blocks, no locks — the paper's canonical
 * "little protocol activity" application.
 *
 * No pivoting; the input is made diagonally dominant. Verified by
 * recomposing L*U and comparing against the original matrix.
 */

#ifndef SWSM_APPS_LU_HH
#define SWSM_APPS_LU_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Blocked LU factorization workload. */
class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(SizeClass size);

    const char *name() const override { return "lu"; }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

    std::uint64_t matrixDim() const { return n; }

  private:
    /** Owner of block (bi, bj) in the 2-D scatter. */
    int owner(std::uint64_t bi, std::uint64_t bj) const;
    /** Shared address of block (bi, bj)'s first element. */
    GlobalAddr blockAddr(std::uint64_t bi, std::uint64_t bj) const;

    /** Read block (bi, bj) into @p buf (B*B doubles). */
    void readBlock(Thread &t, std::uint64_t bi, std::uint64_t bj,
                   double *buf) const;
    /** Write @p buf back to block (bi, bj). */
    void writeBlock(Thread &t, std::uint64_t bi, std::uint64_t bj,
                    const double *buf) const;

    std::uint64_t n = 0;   ///< matrix dimension
    std::uint64_t bs = 16; ///< block dimension
    std::uint64_t nb = 0;  ///< blocks per dimension
    int gridRows = 0;      ///< processor grid rows (scatter)
    int gridCols = 0;

    SharedArray<double> blocks; ///< block-major storage, grouped by owner
    std::vector<std::uint64_t> blockSlot; ///< (bi*nb+bj) -> slot index
    BarrierId bar = 0;
    std::vector<double> original; ///< input matrix (verification)
};

} // namespace swsm

#endif // SWSM_APPS_LU_HH
