/**
 * @file
 * Registry of the paper's application suite (Table 1).
 *
 * One entry per application *version* (original or restructured),
 * carrying the metadata the experiments need: the factory, the paper's
 * problem size, the per-application best SC block granularity (the
 * paper lets SC choose it), the Shasta instrumentation cost the paper
 * quotes, and the link between original and restructured versions.
 */

#ifndef SWSM_APPS_APP_REGISTRY_HH
#define SWSM_APPS_APP_REGISTRY_HH

#include <string>
#include <vector>

#include "apps/workload.hh"

namespace swsm
{

/** Metadata + factory for one application version. */
struct AppInfo
{
    std::string name;          ///< e.g. "barnes", "barnes-spatial"
    std::string paperSize;     ///< problem size quoted in the paper
    std::string defaultSize;   ///< our Small size
    bool restructured = false; ///< a restructured version?
    std::string originalOf;    ///< name of the original it restructures
    std::uint32_t scBlockBytes = 64; ///< SC best granularity (paper §2)
    int shastaInstrPct = 0;    ///< Table 1 instrumentation cost (%)
    WorkloadFactory factory;
};

/** The full suite, originals first, restructured versions after. */
const std::vector<AppInfo> &appRegistry();

/** Lookup by name; fatal on unknown names. */
const AppInfo &findApp(const std::string &name);

} // namespace swsm

#endif // SWSM_APPS_APP_REGISTRY_HH
