/**
 * @file
 * Ray tracer with distributed task queues (the paper's "Raytrace, car").
 *
 * A procedural scene of spheres in a uniform acceleration grid is ray
 * traced with shadows and one mirror bounce. The scene and grid live in
 * shared memory and are read-only during rendering — the fine-grained,
 * irregular, read-mostly access pattern that gives Raytrace its "very
 * large number of fine-grained messages" in the paper. Image tiles are
 * distributed over per-processor task queues with stealing (locks).
 *
 * Rendering is deterministic per pixel regardless of which processor
 * renders it, so the image is verified exactly against a native
 * sequential render through the same templated code path.
 */

#ifndef SWSM_APPS_RAYTRACE_HH
#define SWSM_APPS_RAYTRACE_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Ray tracing workload. */
class RaytraceWorkload : public Workload
{
  public:
    explicit RaytraceWorkload(SizeClass size);

    const char *name() const override { return "raytrace"; }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    /** Scene constants generated in setup (also the reference data). */
    struct SceneData
    {
        std::vector<double> sx, sy, sz, sr; ///< sphere centre + radius
        std::vector<std::uint32_t> color;   ///< packed base colour
        std::vector<std::uint8_t> mirror;   ///< reflective flag
        std::vector<std::uint32_t> gridCount;
        std::vector<std::uint32_t> gridList; ///< cell * maxPerCell + k
    };

    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint32_t tile = 8;
    std::uint32_t numSpheres = 0;
    std::uint32_t gridDim = 8;
    std::uint32_t maxPerCell = 0;

    SceneData scene; ///< native copy (setup + verification)

    SharedArray<double> sx, sy, sz, sr;
    SharedArray<std::uint32_t> scolor;
    SharedArray<std::uint32_t> smirror;
    SharedArray<std::uint32_t> gridCount;
    SharedArray<std::uint32_t> gridList;
    SharedArray<std::uint32_t> image;

    // Per-processor task queues with stealing.
    SharedArray<std::uint32_t> qItems;
    SharedArray<std::uint32_t> qHead;
    SharedArray<std::uint32_t> qTail;
    std::vector<LockId> qLocks;
    std::uint32_t tilesPerProcCap = 0;
    BarrierId bar = 0;
};

} // namespace swsm

#endif // SWSM_APPS_RAYTRACE_HH
