/**
 * @file
 * Shared helpers for the application suite: complex arithmetic, FFT
 * reference kernels, partitioning math and cost models.
 *
 * Compute-cost constants approximate 1-IPC instruction counts of the
 * corresponding inner loops; they scale all applications uniformly and
 * only the ratios between computation and communication matter for the
 * study's results.
 */

#ifndef SWSM_APPS_APP_UTIL_HH
#define SWSM_APPS_APP_UTIL_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace swsm
{

/** Shared-memory-friendly complex number (16-byte slot). */
struct Complex
{
    double re = 0.0;
    double im = 0.0;

    friend Complex
    operator+(Complex a, Complex b)
    {
        return {a.re + b.re, a.im + b.im};
    }
    friend Complex
    operator-(Complex a, Complex b)
    {
        return {a.re - b.re, a.im - b.im};
    }
    friend Complex
    operator*(Complex a, Complex b)
    {
        return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
    }
};

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned l = 0;
    while ((1ULL << l) < v)
        ++l;
    return l;
}

/**
 * In-place iterative radix-2 FFT (forward for sign=-1, inverse for
 * sign=+1, unnormalized). @p n must be a power of two.
 */
void fftInPlace(Complex *a, std::uint64_t n, int sign);

/** Forward DFT reference of @p in (radix-2, ordered output). */
std::vector<Complex> fftReference(const std::vector<Complex> &in);

/** Approximate 1-IPC cycles of an n-point radix-2 FFT. */
inline Cycles
fftCycles(std::uint64_t n)
{
    return 5 * n * log2Exact(n);
}

/** Relative error |a-b| / max(1, |b|). */
double relError(double a, double b);

/** Contiguous [begin, end) range of item @p p out of @p parts over n. */
struct Range
{
    std::uint64_t begin;
    std::uint64_t end;

    std::uint64_t size() const { return end - begin; }
};

/** Block partition of n items over parts workers. */
Range blockRange(std::uint64_t n, int parts, int p);

} // namespace swsm

#endif // SWSM_APPS_APP_UTIL_HH
