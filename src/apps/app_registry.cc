#include "app_registry.hh"

#include <memory>

#include "apps/barnes.hh"
#include "apps/fft.hh"
#include "apps/lu.hh"
#include "apps/ocean.hh"
#include "apps/radix.hh"
#include "apps/raytrace.hh"
#include "apps/volrend.hh"
#include "apps/water.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

template <typename W, typename... Args>
WorkloadFactory
make(Args... args)
{
    return [args...](SizeClass s) {
        return std::make_unique<W>(s, args...);
    };
}

std::vector<AppInfo>
buildRegistry()
{
    std::vector<AppInfo> apps;

    // Originals (SPLASH-2 versions, paper Table 1). The instrumentation
    // cost column reproduces the Shasta costs the paper quotes.
    apps.push_back({"barnes", "16K particles", "2K particles", false, "",
                    64, 40, make<BarnesWorkload>(false)});
    apps.push_back({"fft", "1M points", "256K points", false, "", 4096,
                    29,
                    [](SizeClass s) {
                        return std::make_unique<FftWorkload>(s);
                    }});
    apps.push_back({"lu", "512x512", "384x384", false, "", 2048, 29,
                    [](SizeClass s) {
                        return std::make_unique<LuWorkload>(s);
                    }});
    apps.push_back({"ocean", "514x514", "514x514", false, "", 1024, 40,
                    make<OceanWorkload>(false)});
    apps.push_back({"radix", "1M keys", "128K keys", false, "", 64, 33,
                    make<RadixWorkload>(false)});
    apps.push_back({"raytrace", "car", "128x128, 256 spheres", false, "",
                    64, 29,
                    [](SizeClass s) {
                        return std::make_unique<RaytraceWorkload>(s);
                    }});
    apps.push_back({"volrend", "256^3 head", "64^3, 128^2 image", false, "",
                    64, 40, make<VolrendWorkload>(false)});
    apps.push_back({"water-nsq", "512 molecules", "512 molecules", false,
                    "", 64, 15, make<WaterWorkload>(false)});
    apps.push_back({"water-sp", "512 molecules", "512 molecules", false,
                    "", 64, 15, make<WaterWorkload>(true)});

    // Restructured versions (the paper's application-layer variable).
    apps.push_back({"barnes-spatial", "16K particles", "2K particles",
                    true, "barnes", 64, 40, make<BarnesWorkload>(true)});
    apps.push_back({"ocean-rowwise", "514x514", "514x514", true, "ocean",
                    1024, 40, make<OceanWorkload>(true)});
    apps.push_back({"radix-local", "1M keys", "128K keys", true, "radix",
                    64, 33, make<RadixWorkload>(true)});
    apps.push_back({"volrend-restr", "256^3 head", "64^3, 128^2 image", true,
                    "volrend", 64, 40, make<VolrendWorkload>(true)});
    return apps;
}

} // namespace

const std::vector<AppInfo> &
appRegistry()
{
    static const std::vector<AppInfo> registry = buildRegistry();
    return registry;
}

const AppInfo &
findApp(const std::string &name)
{
    for (const AppInfo &app : appRegistry()) {
        if (app.name == name)
            return app;
    }
    SWSM_FATAL("unknown application '%s'", name.c_str());
}

} // namespace swsm
