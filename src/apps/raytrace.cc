#include "raytrace.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{

constexpr double worldMin = -1.0;
constexpr double worldMax = 1.0;
constexpr double hitEps = 1e-9;

/** Packed 8-bit RGB. */
std::uint32_t
packRgb(double r, double g, double b)
{
    auto ch = [](double v) {
        return static_cast<std::uint32_t>(
            std::min(255.0, std::max(0.0, v * 255.0)));
    };
    return (ch(r) << 16) | (ch(g) << 8) | ch(b);
}

/**
 * Ray tracing core, templated over the scene accessor so the simulated
 * run (shared-memory reads, cycle charges) and the native reference
 * execute the same arithmetic.
 */
template <typename Reader>
class RayTracer
{
  public:
    RayTracer(Reader &rd, std::uint32_t grid_dim, std::uint32_t max_per_cell)
        : rd(rd), gridDim(grid_dim), maxPerCell(max_per_cell),
          cellSize((worldMax - worldMin) / grid_dim)
    {}

    /** Colour of the pixel (x, y) in a W x H image. */
    std::uint32_t
    pixel(std::uint32_t x, std::uint32_t y, std::uint32_t w,
          std::uint32_t h)
    {
        const double ex = 0.0, ey = 0.0, ez = -2.5;
        const double sxp = worldMin +
            (worldMax - worldMin) * (x + 0.5) / static_cast<double>(w);
        const double syp = worldMin +
            (worldMax - worldMin) * (y + 0.5) / static_cast<double>(h);
        double dx = sxp - ex, dy = syp - ey, dz = -1.0 - ez;
        normalize(dx, dy, dz);
        double r, g, b;
        trace(ex, ey, ez, dx, dy, dz, 1, r, g, b);
        rd.charge(20);
        return packRgb(r, g, b);
    }

  private:
    static void
    normalize(double &x, double &y, double &z)
    {
        const double inv = 1.0 / std::sqrt(x * x + y * y + z * z);
        x *= inv;
        y *= inv;
        z *= inv;
    }

    /** Ray-sphere intersection; returns smallest positive t or -1. */
    double
    hitSphere(std::uint32_t s, double ox, double oy, double oz,
              double dx, double dy, double dz)
    {
        rd.charge(60);
        const double cx = rd.sphereX(s), cy = rd.sphereY(s),
                     cz = rd.sphereZ(s), rad = rd.sphereR(s);
        const double lx = cx - ox, ly = cy - oy, lz = cz - oz;
        const double tca = lx * dx + ly * dy + lz * dz;
        const double d2 = lx * lx + ly * ly + lz * lz - tca * tca;
        const double r2 = rad * rad;
        if (d2 > r2)
            return -1.0;
        const double thc = std::sqrt(r2 - d2);
        const double t0 = tca - thc;
        const double t1 = tca + thc;
        if (t0 > hitEps)
            return t0;
        if (t1 > hitEps)
            return t1;
        return -1.0;
    }

    /**
     * 3-D DDA through the acceleration grid; returns the nearest sphere
     * (or -1) and its t.
     */
    std::int32_t
    traverse(double ox, double oy, double oz, double dx, double dy,
             double dz, double &best_t)
    {
        // Enter the grid AABB.
        double tmin = 0.0, tmax = 1e30;
        const double o[3] = {ox, oy, oz};
        const double d[3] = {dx, dy, dz};
        for (int a = 0; a < 3; ++a) {
            if (std::abs(d[a]) < 1e-12) {
                if (o[a] < worldMin || o[a] > worldMax)
                    return -1;
                continue;
            }
            double t0 = (worldMin - o[a]) / d[a];
            double t1 = (worldMax - o[a]) / d[a];
            if (t0 > t1)
                std::swap(t0, t1);
            tmin = std::max(tmin, t0);
            tmax = std::min(tmax, t1);
        }
        if (tmin > tmax)
            return -1;

        const double start = tmin + 1e-9;
        int cx = cellIndex(ox + dx * start);
        int cy = cellIndex(oy + dy * start);
        int cz = cellIndex(oz + dz * start);
        const int stepx = dx > 0 ? 1 : -1;
        const int stepy = dy > 0 ? 1 : -1;
        const int stepz = dz > 0 ? 1 : -1;
        auto boundary = [this](int c, int step) {
            return worldMin + (c + (step > 0 ? 1 : 0)) * cellSize;
        };
        auto next_t = [&](double oo, double dd, int c, int step) {
            return std::abs(dd) < 1e-12
                ? 1e30
                : (boundary(c, step) - oo) / dd;
        };
        double tx = next_t(ox, dx, cx, stepx);
        double ty = next_t(oy, dy, cy, stepy);
        double tz = next_t(oz, dz, cz, stepz);
        const double dtx = std::abs(dx) < 1e-12 ? 1e30 : cellSize /
                                                             std::abs(dx);
        const double dty = std::abs(dy) < 1e-12 ? 1e30 : cellSize /
                                                             std::abs(dy);
        const double dtz = std::abs(dz) < 1e-12 ? 1e30 : cellSize /
                                                             std::abs(dz);

        best_t = 1e30;
        std::int32_t best = -1;
        const int g = static_cast<int>(gridDim);
        while (cx >= 0 && cy >= 0 && cz >= 0 && cx < g && cy < g &&
               cz < g) {
            rd.charge(20);
            const std::uint32_t cell =
                (static_cast<std::uint32_t>(cx) * gridDim +
                 static_cast<std::uint32_t>(cy)) *
                    gridDim +
                static_cast<std::uint32_t>(cz);
            const std::uint32_t cnt = rd.gridCount(cell);
            for (std::uint32_t k = 0; k < cnt; ++k) {
                const std::uint32_t s =
                    rd.gridItem(cell * maxPerCell + k);
                const double t = hitSphere(s, ox, oy, oz, dx, dy, dz);
                if (t > 0 && t < best_t) {
                    best_t = t;
                    best = static_cast<std::int32_t>(s);
                }
            }
            const double cell_exit = std::min({tx, ty, tz});
            if (best >= 0 && best_t <= cell_exit + 1e-9)
                return best; // nothing in later cells can be closer
            if (cell_exit > tmax)
                break;
            if (tx <= ty && tx <= tz) {
                cx += stepx;
                tx += dtx;
            } else if (ty <= tz) {
                cy += stepy;
                ty += dty;
            } else {
                cz += stepz;
                tz += dtz;
            }
        }
        return best;
    }

    int
    cellIndex(double v) const
    {
        const int c = static_cast<int>((v - worldMin) / cellSize);
        return std::min(std::max(c, 0), static_cast<int>(gridDim) - 1);
    }

    void
    trace(double ox, double oy, double oz, double dx, double dy,
          double dz, int depth, double &r, double &g, double &b)
    {
        r = g = b = 0.05; // background / ambient haze
        double t;
        const std::int32_t s = traverse(ox, oy, oz, dx, dy, dz, t);
        if (s < 0)
            return;

        const double hx = ox + dx * t, hy = oy + dy * t,
                     hz = oz + dz * t;
        double nx = hx - rd.sphereX(s), ny = hy - rd.sphereY(s),
               nz = hz - rd.sphereZ(s);
        normalize(nx, ny, nz);

        // Fixed directional light.
        double lx = -0.4, ly = 0.8, lz = -0.45;
        normalize(lx, ly, lz);
        double diffuse = std::max(0.0, nx * lx + ny * ly + nz * lz);

        // Hard shadow.
        if (diffuse > 0) {
            double st;
            const std::int32_t blocker =
                traverse(hx + nx * 1e-6, hy + ny * 1e-6, hz + nz * 1e-6,
                         lx, ly, lz, st);
            if (blocker >= 0)
                diffuse = 0.0;
        }

        const std::uint32_t c = rd.color(s);
        const double base_r = ((c >> 16) & 0xff) / 255.0;
        const double base_g = ((c >> 8) & 0xff) / 255.0;
        const double base_b = (c & 0xff) / 255.0;
        r = base_r * (0.15 + 0.85 * diffuse);
        g = base_g * (0.15 + 0.85 * diffuse);
        b = base_b * (0.15 + 0.85 * diffuse);

        if (depth > 0 && rd.mirror(s)) {
            const double dot = dx * nx + dy * ny + dz * nz;
            double rx = dx - 2 * dot * nx;
            double ry = dy - 2 * dot * ny;
            double rz = dz - 2 * dot * nz;
            double rr, rg, rb;
            trace(hx + nx * 1e-6, hy + ny * 1e-6, hz + nz * 1e-6, rx, ry,
                  rz, depth - 1, rr, rg, rb);
            r = 0.5 * r + 0.5 * rr;
            g = 0.5 * g + 0.5 * rg;
            b = 0.5 * b + 0.5 * rb;
        }
    }

    Reader &rd;
    std::uint32_t gridDim;
    std::uint32_t maxPerCell;
    double cellSize;
};

} // namespace

RaytraceWorkload::RaytraceWorkload(SizeClass size)
{
    switch (size) {
      case SizeClass::Tiny:
        width = height = 32;
        numSpheres = 32;
        gridDim = 6;
        tile = 8;
        break;
      case SizeClass::Small:
        width = height = 128;
        numSpheres = 256;
        gridDim = 10;
        tile = 8;
        break;
      case SizeClass::Medium:
        width = height = 192;
        numSpheres = 512;
        gridDim = 12;
        tile = 8;
        break;
      case SizeClass::Paper:
        width = height = 256; // the paper's car scene scale
        numSpheres = 1024;
        gridDim = 14;
        tile = 8;
        break;
    }
}

void
RaytraceWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    const std::uint32_t page = cluster.params().pageBytes;

    // Procedural scene.
    Rng rng(555);
    scene.sx.resize(numSpheres);
    scene.sy.resize(numSpheres);
    scene.sz.resize(numSpheres);
    scene.sr.resize(numSpheres);
    scene.color.resize(numSpheres);
    scene.mirror.resize(numSpheres);
    for (std::uint32_t s = 0; s < numSpheres; ++s) {
        scene.sx[s] = (rng.nextDouble() * 1.6) - 0.8;
        scene.sy[s] = (rng.nextDouble() * 1.6) - 0.8;
        scene.sz[s] = (rng.nextDouble() * 1.6) - 0.8;
        scene.sr[s] = 0.04 + rng.nextDouble() * 0.12;
        scene.color[s] = packRgb(0.3 + 0.7 * rng.nextDouble(),
                                 0.3 + 0.7 * rng.nextDouble(),
                                 0.3 + 0.7 * rng.nextDouble());
        scene.mirror[s] = rng.nextDouble() < 0.25 ? 1 : 0;
    }

    // Uniform grid (AABB overlap binning).
    const std::uint32_t cells = gridDim * gridDim * gridDim;
    const double cell_size = (worldMax - worldMin) / gridDim;
    std::vector<std::vector<std::uint32_t>> bins(cells);
    for (std::uint32_t s = 0; s < numSpheres; ++s) {
        auto clamp_cell = [&](double v) {
            const int c = static_cast<int>((v - worldMin) / cell_size);
            return std::min(std::max(c, 0),
                            static_cast<int>(gridDim) - 1);
        };
        const int x0 = clamp_cell(scene.sx[s] - scene.sr[s]);
        const int x1 = clamp_cell(scene.sx[s] + scene.sr[s]);
        const int y0 = clamp_cell(scene.sy[s] - scene.sr[s]);
        const int y1 = clamp_cell(scene.sy[s] + scene.sr[s]);
        const int z0 = clamp_cell(scene.sz[s] - scene.sr[s]);
        const int z1 = clamp_cell(scene.sz[s] + scene.sr[s]);
        for (int x = x0; x <= x1; ++x)
            for (int y = y0; y <= y1; ++y)
                for (int z = z0; z <= z1; ++z)
                    bins[(x * gridDim + y) * gridDim + z].push_back(s);
    }
    maxPerCell = 1;
    for (const auto &bin : bins)
        maxPerCell = std::max<std::uint32_t>(maxPerCell, bin.size());
    scene.gridCount.assign(cells, 0);
    scene.gridList.assign(static_cast<std::size_t>(cells) * maxPerCell,
                          0);
    for (std::uint32_t c = 0; c < cells; ++c) {
        scene.gridCount[c] = static_cast<std::uint32_t>(bins[c].size());
        for (std::size_t k = 0; k < bins[c].size(); ++k)
            scene.gridList[static_cast<std::size_t>(c) * maxPerCell + k] =
                bins[c][k];
    }

    // Shared copies.
    sx = SharedArray<double>(cluster, numSpheres, page);
    sy = SharedArray<double>(cluster, numSpheres, page);
    sz = SharedArray<double>(cluster, numSpheres, page);
    sr = SharedArray<double>(cluster, numSpheres, page);
    scolor = SharedArray<std::uint32_t>(cluster, numSpheres, page);
    smirror = SharedArray<std::uint32_t>(cluster, numSpheres, page);
    gridCount = SharedArray<std::uint32_t>(cluster, cells, page);
    gridList = SharedArray<std::uint32_t>(
        cluster, static_cast<std::uint64_t>(cells) * maxPerCell, page);
    image = SharedArray<std::uint32_t>(
        cluster, static_cast<std::uint64_t>(width) * height, page);
    for (std::uint32_t s = 0; s < numSpheres; ++s) {
        sx.init(cluster, s, scene.sx[s]);
        sy.init(cluster, s, scene.sy[s]);
        sz.init(cluster, s, scene.sz[s]);
        sr.init(cluster, s, scene.sr[s]);
        scolor.init(cluster, s, scene.color[s]);
        smirror.init(cluster, s, scene.mirror[s]);
    }
    for (std::uint32_t c = 0; c < cells; ++c)
        gridCount.init(cluster, c, scene.gridCount[c]);
    for (std::uint64_t k = 0;
         k < static_cast<std::uint64_t>(cells) * maxPerCell; ++k)
        gridList.init(cluster, k, scene.gridList[k]);

    // Task queues: tiles dealt round-robin.
    const std::uint32_t tiles_x = width / tile;
    const std::uint32_t tiles_y = height / tile;
    const std::uint32_t num_tiles = tiles_x * tiles_y;
    tilesPerProcCap = num_tiles;
    qItems = SharedArray<std::uint32_t>(
        cluster, static_cast<std::uint64_t>(np) * tilesPerProcCap, page);
    qHead = SharedArray<std::uint32_t>(cluster, np, page);
    qTail = SharedArray<std::uint32_t>(cluster, np, page);
    std::vector<std::uint32_t> counts(np, 0);
    for (std::uint32_t i = 0; i < num_tiles; ++i) {
        const int p = static_cast<int>(i) % np;
        qItems.init(cluster,
                    static_cast<std::uint64_t>(p) * tilesPerProcCap +
                        counts[p],
                    i);
        ++counts[p];
    }
    for (int p = 0; p < np; ++p) {
        qHead.init(cluster, p, 0);
        qTail.init(cluster, p, counts[p]);
    }
    qLocks.resize(np);
    for (auto &l : qLocks)
        l = cluster.allocLock();
    bar = cluster.allocBarrier();
}

namespace
{

/** Shared-memory scene accessor (the simulated data path). */
struct SimReader
{
    Thread &t;
    const SharedArray<double> &sx, &sy, &sz, &sr;
    const SharedArray<std::uint32_t> &color_, &mirror_;
    const SharedArray<std::uint32_t> &gcount, &glist;

    double sphereX(std::uint32_t s) { return sx.get(t, s); }
    double sphereY(std::uint32_t s) { return sy.get(t, s); }
    double sphereZ(std::uint32_t s) { return sz.get(t, s); }
    double sphereR(std::uint32_t s) { return sr.get(t, s); }
    std::uint32_t color(std::uint32_t s) { return color_.get(t, s); }
    bool mirror(std::uint32_t s) { return mirror_.get(t, s) != 0; }
    std::uint32_t gridCount(std::uint32_t c) { return gcount.get(t, c); }
    std::uint32_t gridItem(std::uint64_t k) { return glist.get(t, k); }
    void charge(Cycles c) { t.compute(c); }
};

/** Native accessor (setup data; the verification path). */
struct RefReader
{
    const RaytraceWorkload *unused = nullptr;
    const std::vector<double> &sx, &sy, &sz, &sr;
    const std::vector<std::uint32_t> &color_;
    const std::vector<std::uint8_t> &mirror_;
    const std::vector<std::uint32_t> &gcount;
    const std::vector<std::uint32_t> &glist;

    double sphereX(std::uint32_t s) { return sx[s]; }
    double sphereY(std::uint32_t s) { return sy[s]; }
    double sphereZ(std::uint32_t s) { return sz[s]; }
    double sphereR(std::uint32_t s) { return sr[s]; }
    std::uint32_t color(std::uint32_t s) { return color_[s]; }
    bool mirror(std::uint32_t s) { return mirror_[s] != 0; }
    std::uint32_t gridCount(std::uint32_t c) { return gcount[c]; }
    std::uint32_t gridItem(std::uint64_t k) { return glist[k]; }
    void charge(Cycles) {}
};

} // namespace

void
RaytraceWorkload::body(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    SimReader rd{t,      sx,     sy,        sz,      sr,
                 scolor, smirror, gridCount, gridList};
    RayTracer<SimReader> tracer(rd, gridDim, maxPerCell);
    const std::uint32_t tiles_x = width / tile;

    for (;;) {
        std::int64_t tile_id = -1;
        // Pop from our own queue head...
        t.acquire(qLocks[me]);
        {
            const std::uint32_t h = qHead.get(t, me);
            const std::uint32_t tl = qTail.get(t, me);
            if (h < tl) {
                tile_id = qItems.get(
                    t,
                    static_cast<std::uint64_t>(me) * tilesPerProcCap + h);
                qHead.put(t, me, h + 1);
            }
        }
        t.release(qLocks[me]);

        // ...or steal from a victim's tail.
        for (int k = 1; k < np && tile_id < 0; ++k) {
            const int v = (me + k) % np;
            t.acquire(qLocks[v]);
            const std::uint32_t h = qHead.get(t, v);
            const std::uint32_t tl = qTail.get(t, v);
            if (h < tl) {
                tile_id = qItems.get(
                    t,
                    static_cast<std::uint64_t>(v) * tilesPerProcCap + tl -
                        1);
                qTail.put(t, v, tl - 1);
            }
            t.release(qLocks[v]);
        }
        if (tile_id < 0)
            break;

        const std::uint32_t tx =
            static_cast<std::uint32_t>(tile_id) % tiles_x;
        const std::uint32_t ty =
            static_cast<std::uint32_t>(tile_id) / tiles_x;
        for (std::uint32_t y = ty * tile; y < (ty + 1) * tile; ++y) {
            for (std::uint32_t x = tx * tile; x < (tx + 1) * tile; ++x) {
                const std::uint32_t rgb =
                    tracer.pixel(x, y, width, height);
                image.put(t, static_cast<std::uint64_t>(y) * width + x,
                          rgb);
            }
        }
    }
    t.barrier(bar);
}

bool
RaytraceWorkload::verify(Cluster &cluster)
{
    RefReader rd{nullptr,        scene.sx,    scene.sy,
                 scene.sz,       scene.sr,    scene.color,
                 scene.mirror,   scene.gridCount, scene.gridList};
    RayTracer<RefReader> tracer(rd, gridDim, maxPerCell);
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            const std::uint32_t want = tracer.pixel(x, y, width, height);
            const std::uint32_t got = image.peek(
                cluster, static_cast<std::uint64_t>(y) * width + x);
            if (got != want) {
                SWSM_WARN("raytrace mismatch at (%u,%u): %08x vs %08x", x,
                          y, got, want);
                return false;
            }
        }
    }
    return true;
}

} // namespace swsm
