/**
 * @file
 * Water molecular dynamics (the paper's "Water-Nsquared" and
 * "Water-Spatial", 512 molecules).
 *
 * Both versions integrate the same Lennard-Jones point-molecule system
 * (a simplification of SPLASH-2's 3-site water potential that preserves
 * the sharing structure; see DESIGN.md §5):
 *
 *  - Water-Nsquared ("water-nsq"): O(n^2) pairwise forces. Each
 *    processor owns a contiguous molecule block and computes each pair
 *    once (the SPLASH "half the other molecules" rule); contributions
 *    to molecules it does not own are accumulated under per-molecule
 *    locks — the migratory, lock-protected force data whose diffs
 *    dominate HLRC protocol time in the paper.
 *
 *  - Water-Spatial ("water-sp"): a uniform cell grid with cutoff;
 *    processors own spatial cell blocks, read only neighbouring cells'
 *    molecules and accumulate remote contributions under per-cell
 *    locks. Communication is near-neighbour and lock frequency much
 *    lower.
 *
 * Verified against a native sequential reference computing identical
 * physics (tolerance covers accumulation-order differences).
 */

#ifndef SWSM_APPS_WATER_HH
#define SWSM_APPS_WATER_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Water MD workload (n-squared or spatial version). */
class WaterWorkload : public Workload
{
  public:
    WaterWorkload(SizeClass size, bool spatial);

    const char *
    name() const override
    {
        return spatial ? "water-sp" : "water-nsq";
    }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    struct Vec3
    {
        double x = 0, y = 0, z = 0;
    };

    /** Pairwise LJ force of j on i (also used by the reference). */
    static Vec3 pairForce(const Vec3 &pi, const Vec3 &pj);

    /** Doubles per molecule record (pos/vel/force + padding; mirrors
     *  SPLASH-2 Water's ~1.5 KB per-molecule state). */
    static constexpr std::uint64_t molStride = 128;
    /** Record field offsets (in doubles). */
    static constexpr std::uint64_t posOff = 0;
    static constexpr std::uint64_t velOff = 3;
    static constexpr std::uint64_t forceOff = 6;

    Vec3 readVec(Thread &t, std::uint64_t i, std::uint64_t off) const;
    void writeVec(Thread &t, std::uint64_t i, std::uint64_t off,
                  const Vec3 &v) const;
    void addVec(Thread &t, std::uint64_t i, std::uint64_t off,
                const Vec3 &v) const;

    void bodyNsquared(Thread &t);
    void bodySpatial(Thread &t);

    /** Cell index of a position (spatial version). */
    std::uint64_t cellOf(const Vec3 &p) const;

    std::uint64_t n = 0;     ///< molecule count
    int steps = 2;
    bool spatial = false;
    double boxSize = 0.0;
    double cutoff = 0.0;     ///< spatial version cutoff radius
    std::uint64_t cellsPerDim = 0;
    std::uint64_t maxPerCell = 0;

    SharedArray<double> mol;   ///< n padded molecule records
    SharedArray<std::uint32_t> cellCount;  ///< spatial: per-cell counts
    SharedArray<std::uint32_t> cellList;   ///< spatial: members per cell
    std::vector<LockId> molLocks;          ///< n-squared: per molecule
    std::vector<LockId> cellLocks;         ///< spatial: per cell
    std::vector<int> cellOwner;            ///< spatial: 3-D partition
    std::vector<bool> cellNeedsLock;       ///< spatial: boundary cells
    BarrierId bar = 0;
    std::vector<double> initPos;           ///< verification snapshot
    std::vector<double> initVel;
};

} // namespace swsm

#endif // SWSM_APPS_WATER_HH
