/**
 * @file
 * SPLASH-2-style six-step 1D FFT (the paper's "FFT", 1M points).
 *
 * n = m*m complex points, viewed as an m x m row-major matrix that is
 * row-partitioned across processors with per-owner page homes. The
 * six-step transform — transpose, per-row m-point FFTs, twiddle scale,
 * transpose, per-row FFTs, transpose — reproduces the paper's sharing
 * pattern: coarse-grained, single-writer, all-to-all communication in
 * the transposes, no locks. Output is verified against an independent
 * full-size radix-2 reference FFT.
 */

#ifndef SWSM_APPS_FFT_HH
#define SWSM_APPS_FFT_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Six-step FFT workload. */
class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(SizeClass size);

    const char *name() const override { return "fft"; }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

    /** Total points n = m*m. */
    std::uint64_t points() const { return m * m; }

  private:
    /** Transpose @p src into @p dst (threads own dst row blocks). */
    void transpose(Thread &t, const SharedArray<Complex> &src,
                   const SharedArray<Complex> &dst);
    /** m-point FFT over each locally owned row of @p arr. */
    void rowFfts(Thread &t, const SharedArray<Complex> &arr);
    /** Twiddle scaling of locally owned rows. */
    void twiddle(Thread &t, const SharedArray<Complex> &arr);

    std::uint64_t m = 0;
    SharedArray<Complex> x;     ///< input / final output
    SharedArray<Complex> trans; ///< transpose scratch
    BarrierId bar = 0;
    std::vector<Complex> input; ///< saved initial values (verification)
};

} // namespace swsm

#endif // SWSM_APPS_FFT_HH
