/**
 * @file
 * Barnes-Hut N-body (the paper's "Barnes-original" and restructured
 * "Barnes-Spatial", 16K particles).
 *
 * A shared octree is rebuilt every time step, centres of mass are
 * computed bottom-up, and forces follow the theta-opening traversal.
 * The octree's final shape depends only on particle positions (space is
 * subdivided until particles separate), and both centre-of-mass and
 * traversal accumulate in octant order, so results are deterministic
 * and verified against a native sequential Barnes-Hut at tight
 * tolerance.
 *
 *  - Original ("barnes"): all processors insert their index-block of
 *    particles into one shared tree under fine-grained per-cell locks
 *    (descents re-validate the child slot after acquiring, which makes
 *    the build correct under lazy release consistency). The paper's
 *    many-small-critical-sections pathology: each insertion's critical
 *    section takes several page faults.
 *
 *  - Spatial ("barnes-spatial", restructured): the top two tree levels
 *    are pre-built and the 64 space octants are distributed across
 *    processors; each processor builds its octants' subtrees lock-free
 *    and computes forces for the particles in its octants. Locking
 *    disappears, load balance degrades for clustered distributions —
 *    the paper's restructuring trade-off.
 */

#ifndef SWSM_APPS_BARNES_HH
#define SWSM_APPS_BARNES_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Barnes-Hut workload (original or spatially restructured). */
class BarnesWorkload : public Workload
{
  public:
    BarnesWorkload(SizeClass size, bool spatial);

    const char *
    name() const override
    {
        return spatial ? "barnes-spatial" : "barnes";
    }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    struct Vec3
    {
        double x = 0, y = 0, z = 0;
    };

    /** Child slot encoding: 0 empty, >0 cell id, <0 particle -(i+1). */
    static constexpr std::int32_t emptySlot = 0;
    static std::int32_t particleRef(std::uint32_t i)
    {
        return -static_cast<std::int32_t>(i) - 1;
    }
    static std::uint32_t particleOf(std::int32_t v)
    {
        return static_cast<std::uint32_t>(-v - 1);
    }

    /** Octant of @p p relative to box centre @p c. */
    static int octantOf(const Vec3 &p, const Vec3 &c);
    /** Centre of octant @p o of a box at @p c with half size @p h. */
    static Vec3 octantCentre(const Vec3 &c, double h, int o);

    Vec3 readParticlePos(Thread &t, std::uint32_t i);

    /** Allocate a fresh cell (original: chunked from a shared counter;
     *  spatial: from the thread's private range). */
    std::uint32_t allocCell(Thread &t, std::uint32_t &chunk_next,
                            std::uint32_t &chunk_end);

    /** Insert particle @p i into the shared tree (locking build). */
    void insertLocked(Thread &t, std::uint32_t i, const Vec3 &p,
                      std::uint32_t &chunk_next,
                      std::uint32_t &chunk_end);
    /** Insert into a privately owned subtree (lock-free build). */
    void insertOwned(Thread &t, std::uint32_t i, const Vec3 &p,
                     std::uint32_t root_cell, const Vec3 &root_centre,
                     double root_half, int root_depth,
                     std::uint32_t &chunk_next, std::uint32_t &chunk_end);

    /** Place two colliding references under @p cell (under its lock in
     *  the original build; lock-free when the subtree is owned). */
    void splitSlot(Thread &t, std::uint32_t cell, int oct,
                   std::int32_t old_ref, std::uint32_t new_particle,
                   const Vec3 &slot_centre, double slot_half, int depth,
                   std::uint32_t &chunk_next, std::uint32_t &chunk_end);

    /** Compute one cell's mass/COM from its (finished) children. */
    void cellCom(Thread &t, std::uint32_t cell);

    /** Force on a particle via theta-opening traversal. */
    Vec3 forceOn(Thread &t, std::uint32_t i, const Vec3 &p,
                 std::uint32_t cell, const Vec3 &centre, double half,
                 std::uint64_t &interactions);

    void resetTree(Thread &t);
    void buildTree(Thread &t);
    void computeComs(Thread &t);
    void computeForces(Thread &t);
    void integrate(Thread &t);

    std::uint64_t n = 0;
    int steps = 2;
    bool spatial = false;
    double theta = 0.35;
    double boxHalf = 2.0;
    std::uint32_t maxCells = 0;
    std::uint32_t prebuiltCells = 0; ///< spatial: root + 8 + 64

    SharedArray<double> px, py, pz;     ///< particle positions
    SharedArray<double> vx, vy, vz;     ///< velocities
    SharedArray<double> fx, fy, fz;     ///< forces
    SharedArray<std::int32_t> child;    ///< maxCells x 8 slots
    SharedArray<std::int32_t> cellDepth;
    SharedArray<double> cellMass;
    SharedArray<double> comX, comY, comZ;
    SharedArray<std::uint32_t> nextCell; ///< original: allocation cursor
    std::vector<LockId> cellLocks;
    LockId allocLock = 0;
    BarrierId bar = 0;

    double pmass = 0.0; ///< uniform particle mass
    std::vector<double> ipx, ipy, ipz;  ///< initial state (verification)
    std::vector<double> ivx, ivy, ivz;
};

} // namespace swsm

#endif // SWSM_APPS_BARNES_HH
