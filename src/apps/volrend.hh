/**
 * @file
 * Volume renderer (the paper's "Volrend", 256^3 CT head).
 *
 * Orthographic ray casting through a procedural density volume with
 * front-to-back compositing, early ray termination, and empty-space
 * skipping via a min/max macro-cell grid — the read-only, irregular
 * shared data structures of the original. Image tiles are tasks.
 *
 *  - Original ("volrend"): naive contiguous band assignment of small
 *    tiles to per-processor queues. The clustered volume makes bands
 *    wildly uneven, so processors steal constantly (expensive lock +
 *    protocol activity), and the row-major image falsely shares pages
 *    between tiles of different processors.
 *
 *  - Restructured ("volrend-restr"): cost-balancing round-robin initial
 *    assignment (little stealing left) and a tile-blocked image layout
 *    (a tile's pixels are contiguous, curing page fragmentation) —
 *    the paper's restructuring (iii).
 *
 * Rendering is deterministic per pixel; the image verifies exactly
 * against a native render through the same templated core.
 */

#ifndef SWSM_APPS_VOLREND_HH
#define SWSM_APPS_VOLREND_HH

#include <vector>

#include "apps/app_util.hh"
#include "apps/workload.hh"
#include "machine/shared_array.hh"

namespace swsm
{

/** Volume rendering workload (original or restructured). */
class VolrendWorkload : public Workload
{
  public:
    VolrendWorkload(SizeClass size, bool restructured);

    const char *
    name() const override
    {
        return restructured ? "volrend-restr" : "volrend";
    }
    void setup(Cluster &cluster) override;
    void body(Thread &t) override;
    bool verify(Cluster &cluster) override;

  private:
    static constexpr std::uint32_t macroDim = 8; ///< macro cell edge

    /** Image index of pixel (x, y) under the active layout. */
    std::uint64_t pixelIndex(std::uint32_t x, std::uint32_t y) const;

    std::uint32_t volDim = 0;   ///< volume edge (volDim^3 voxels)
    std::uint32_t width = 0;    ///< image edge
    std::uint32_t tile = 4;
    bool restructured = false;

    std::vector<float> volume;       ///< native copy (reference)
    std::vector<float> macroMax;     ///< native macro grid

    SharedArray<float> vol;
    SharedArray<float> macro;
    SharedArray<std::uint32_t> image;

    SharedArray<std::uint32_t> qItems;
    SharedArray<std::uint32_t> qHead;
    SharedArray<std::uint32_t> qTail;
    std::vector<LockId> qLocks;
    std::uint32_t tilesPerProcCap = 0;
    BarrierId bar = 0;
};

} // namespace swsm

#endif // SWSM_APPS_VOLREND_HH
