#include "ocean.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{
/** 1-IPC cycles per relaxed point (the real Ocean's update is a
 *  multi-term stencil with several coefficient arrays). */
constexpr Cycles cellUpdateCost = 25;
} // namespace

OceanWorkload::OceanWorkload(SizeClass size, bool rowwise)
    : rowwise(rowwise)
{
    switch (size) {
      case SizeClass::Tiny:
        n = 32;
        sweeps = 2;
        break;
      case SizeClass::Small:
        n = 512; // the paper's 514x514 grid
        sweeps = 3;
        break;
      case SizeClass::Medium:
        n = 1024;
        sweeps = 3;
        break;
      case SizeClass::Paper:
        n = 512; // the paper's 514x514 grid
        sweeps = 3;
        break;
    }
}

OceanWorkload::Part
OceanWorkload::partOf(int p, int np) const
{
    if (rowwise) {
        const Range rows = blockRange(n, np, p);
        return Part{rows.begin + 1, rows.end + 1, 1, n + 1};
    }
    const int pr = p / gridCols;
    const int pc = p % gridCols;
    const Range rows = blockRange(n, gridRows, pr);
    const Range cols = blockRange(n, gridCols, pc);
    return Part{rows.begin + 1, rows.end + 1, cols.begin + 1,
                cols.end + 1};
}

GlobalAddr
OceanWorkload::cellAddr(std::uint64_t r, std::uint64_t c) const
{
    return grid.addr(layout[r * (n + 2) + c]);
}

void
OceanWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    if (rowwise) {
        gridRows = np;
        gridCols = 1;
    } else {
        gridRows = 1;
        for (int r = static_cast<int>(std::sqrt(np)); r >= 1; --r) {
            if (np % r == 0) {
                gridRows = r;
                break;
            }
        }
        gridCols = np / gridRows;
    }

    const std::uint64_t cells = (n + 2) * (n + 2);
    grid = SharedArray<double>(cluster, cells, cluster.params().pageBytes);
    bar = cluster.allocBarrier();

    // Contiguous-by-owner layout: every cell (boundary ring included,
    // via clamping) belongs to one partition; a partition's cells are
    // row-major and homed at the owner.
    layout.assign(cells, 0);
    std::vector<Part> parts(np);
    for (int p = 0; p < np; ++p)
        parts[p] = partOf(p, np);
    auto owner_of = [&](std::uint64_t r, std::uint64_t c) {
        const std::uint64_t rr = std::min(std::max<std::uint64_t>(r, 1), n);
        const std::uint64_t cc = std::min(std::max<std::uint64_t>(c, 1), n);
        for (int p = 0; p < np; ++p) {
            const Part &pt = parts[p];
            if (rr >= pt.r0 && rr < pt.r1 && cc >= pt.c0 && cc < pt.c1)
                return p;
        }
        SWSM_PANIC("ocean cell with no owner");
    };
    std::uint32_t next = 0;
    for (int p = 0; p < np; ++p) {
        const std::uint32_t first = next;
        for (std::uint64_t r = 0; r < n + 2; ++r)
            for (std::uint64_t c = 0; c < n + 2; ++c)
                if (owner_of(r, c) == p)
                    layout[r * (n + 2) + c] = next++;
        if (next > first) {
            cluster.space().setRangeHome(grid.addr(first),
                                         (next - first) * sizeof(double),
                                         p);
        }
    }

    // Smooth-ish random initial interior, fixed boundary.
    Rng rng(99);
    initial.assign(cells, 0.0);
    for (std::uint64_t r = 0; r < n + 2; ++r) {
        for (std::uint64_t c = 0; c < n + 2; ++c) {
            double v;
            if (r == 0 || c == 0 || r == n + 1 || c == n + 1) {
                v = std::sin(0.1 * static_cast<double>(r + c));
            } else {
                v = rng.nextDouble();
            }
            initial[r * (n + 2) + c] = v;
            grid.init(cluster, layout[r * (n + 2) + c], v);
        }
    }
}

void
OceanWorkload::relaxColor(Thread &t, const Part &part, int color)
{
    const std::uint64_t width = part.c1 - part.c0;
    std::vector<double> up(width), cur(width), down(width);
    for (std::uint64_t r = part.r0; r < part.r1; ++r) {
        // Contiguous row segments (the one above and below may be a
        // neighbour's boundary row — a coarse-grained remote read).
        t.readBytes(cellAddr(r - 1, part.c0), up.data(),
                    width * sizeof(double));
        t.readBytes(cellAddr(r, part.c0), cur.data(),
                    width * sizeof(double));
        t.readBytes(cellAddr(r + 1, part.c0), down.data(),
                    width * sizeof(double));
        // Left/right halo cells: single-word (fine-grained) remote
        // reads in the square-partition version.
        const double left_edge = t.get<double>(cellAddr(r, part.c0 - 1));
        const double right_edge = t.get<double>(cellAddr(r, part.c1));

        std::uint64_t updated = 0;
        for (std::uint64_t c = part.c0; c < part.c1; ++c) {
            if (((r + c) & 1u) != static_cast<std::uint64_t>(color))
                continue;
            const std::uint64_t i = c - part.c0;
            const double left = i == 0 ? left_edge : cur[i - 1];
            const double right =
                i + 1 == width ? right_edge : cur[i + 1];
            cur[i] = (1.0 - omega) * cur[i] +
                     omega * 0.25 * (up[i] + down[i] + left + right);
            ++updated;
        }
        t.compute(cellUpdateCost * updated);
        t.writeBytes(cellAddr(r, part.c0), cur.data(),
                     width * sizeof(double));
    }
}

void
OceanWorkload::body(Thread &t)
{
    const Part part = partOf(t.id(), t.nprocs());
    for (int s = 0; s < sweeps; ++s) {
        relaxColor(t, part, 0);
        t.barrier(bar);
        relaxColor(t, part, 1);
        t.barrier(bar);
    }
}

bool
OceanWorkload::verify(Cluster &cluster)
{
    // Native reference: identical red-black sweeps (deterministic).
    std::vector<double> ref = initial;
    const std::uint64_t w = n + 2;
    for (int s = 0; s < sweeps; ++s) {
        for (int color = 0; color < 2; ++color) {
            std::vector<double> prev = ref;
            for (std::uint64_t r = 1; r <= n; ++r) {
                for (std::uint64_t c = 1; c <= n; ++c) {
                    if (((r + c) & 1u) !=
                        static_cast<std::uint64_t>(color))
                        continue;
                    ref[r * w + c] = (1.0 - omega) * prev[r * w + c] +
                        omega * 0.25 *
                            (prev[(r - 1) * w + c] +
                             prev[(r + 1) * w + c] + prev[r * w + c - 1] +
                             prev[r * w + c + 1]);
                }
            }
        }
    }

    for (std::uint64_t r = 0; r < n + 2; ++r) {
        for (std::uint64_t c = 0; c < n + 2; ++c) {
            const double got = grid.peek(cluster, layout[r * w + c]);
            if (std::abs(got - ref[r * w + c]) > 1e-9) {
                SWSM_WARN("ocean mismatch at (%llu,%llu): %g vs %g",
                          static_cast<unsigned long long>(r),
                          static_cast<unsigned long long>(c), got,
                          ref[r * w + c]);
                return false;
            }
        }
    }
    return true;
}

} // namespace swsm
