#include "barnes.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{

constexpr double gravEps = 1e-4;  ///< softening (squared length units)
constexpr double timeStep = 0.01;
constexpr int maxDepth = 28;
constexpr Cycles interactionCost = 30;
constexpr Cycles insertLevelCost = 20;
constexpr Cycles comCost = 30;
constexpr std::uint32_t allocChunk = 64;

/** Softened gravitational pull of (mass m at q) on a body at p. */
void
gravAdd(double px, double py, double pz, double qx, double qy, double qz,
        double m, double &fx, double &fy, double &fz)
{
    const double dx = qx - px;
    const double dy = qy - py;
    const double dz = qz - pz;
    const double d2 = dx * dx + dy * dy + dz * dz + gravEps;
    const double inv = m / (d2 * std::sqrt(d2));
    fx += inv * dx;
    fy += inv * dy;
    fz += inv * dz;
}

} // namespace

BarnesWorkload::BarnesWorkload(SizeClass size, bool spatial)
    : spatial(spatial)
{
    switch (size) {
      case SizeClass::Tiny:
        n = 256;
        steps = 2;
        break;
      case SizeClass::Small:
        n = 2048;
        steps = 2;
        break;
      case SizeClass::Medium:
        n = 8192;
        steps = 2;
        break;
      case SizeClass::Paper:
        n = 16384; // the paper's body count
        steps = 2;
        break;
    }
    pmass = 1.0 / static_cast<double>(n);
    // Generous pool: the spatial build carves it into per-processor
    // ranges, and clustered inputs concentrate most cells in a few
    // octants, so each range must roughly cover a whole cluster.
    maxCells = static_cast<std::uint32_t>(24 * n + 512);
    prebuiltCells = 1 + 8 + 64 + 512; // root + three pre-built levels
}

int
BarnesWorkload::octantOf(const Vec3 &p, const Vec3 &c)
{
    return (p.x >= c.x ? 4 : 0) | (p.y >= c.y ? 2 : 0) |
           (p.z >= c.z ? 1 : 0);
}

BarnesWorkload::Vec3
BarnesWorkload::octantCentre(const Vec3 &c, double h, int o)
{
    const double q = h / 2.0;
    return Vec3{c.x + ((o & 4) ? q : -q), c.y + ((o & 2) ? q : -q),
                c.z + ((o & 1) ? q : -q)};
}

BarnesWorkload::Vec3
BarnesWorkload::readParticlePos(Thread &t, std::uint32_t i)
{
    return Vec3{px.get(t, i), py.get(t, i), pz.get(t, i)};
}

void
BarnesWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    const std::uint32_t page = cluster.params().pageBytes;

    px = SharedArray<double>(cluster, n, page);
    py = SharedArray<double>(cluster, n, page);
    pz = SharedArray<double>(cluster, n, page);
    vx = SharedArray<double>(cluster, n, page);
    vy = SharedArray<double>(cluster, n, page);
    vz = SharedArray<double>(cluster, n, page);
    fx = SharedArray<double>(cluster, n, page);
    fy = SharedArray<double>(cluster, n, page);
    fz = SharedArray<double>(cluster, n, page);
    child = SharedArray<std::int32_t>(cluster, 8ull * maxCells, page);
    cellDepth = SharedArray<std::int32_t>(cluster, maxCells, page);
    cellMass = SharedArray<double>(cluster, maxCells, page);
    comX = SharedArray<double>(cluster, maxCells, page);
    comY = SharedArray<double>(cluster, maxCells, page);
    comZ = SharedArray<double>(cluster, maxCells, page);
    nextCell = SharedArray<std::uint32_t>(cluster, 1);
    bar = cluster.allocBarrier();
    allocLock = cluster.allocLock();
    cellLocks.resize(maxCells);
    for (auto &l : cellLocks)
        l = cluster.allocLock();

    // Home particle blocks at their index owners.
    for (int p = 0; p < np; ++p) {
        const Range blk = blockRange(n, np, p);
        const std::uint64_t bytes = blk.size() * sizeof(double);
        for (auto *arr : {&px, &py, &pz, &vx, &vy, &vz, &fx, &fy, &fz})
            cluster.space().setRangeHome(arr->addr(blk.begin), bytes, p);
    }

    // Clustered particle distribution (deliberately imbalanced across
    // octants: the spatial version's load-balance trade-off).
    Rng rng(31);
    auto gaussian = [&rng] {
        const double u1 = rng.nextDouble() + 1e-12;
        const double u2 = rng.nextDouble();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    };
    struct ClusterSpec
    {
        double cx, cy, cz, sigma, weight;
    };
    // Cluster spreads straddle several level-2 octants so the spatial
    // build's imbalance is pronounced but not degenerate.
    const ClusterSpec specs[4] = {
        {0.6, 0.6, 0.6, 0.30, 0.40},
        {-0.7, 0.5, -0.3, 0.35, 0.25},
        {0.3, -0.8, 0.2, 0.45, 0.20},
        {-0.4, -0.4, -0.8, 0.60, 0.15},
    };
    ipx.resize(n);
    ipy.resize(n);
    ipz.resize(n);
    ivx.resize(n);
    ivy.resize(n);
    ivz.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const double pick = rng.nextDouble();
        double acc = 0.0;
        const ClusterSpec *spec = &specs[3];
        for (const auto &s : specs) {
            acc += s.weight;
            if (pick < acc) {
                spec = &s;
                break;
            }
        }
        auto clamp = [this](double v) {
            return std::min(std::max(v, -boxHalf + 0.05), boxHalf - 0.05);
        };
        ipx[i] = clamp(spec->cx + gaussian() * spec->sigma);
        ipy[i] = clamp(spec->cy + gaussian() * spec->sigma);
        ipz[i] = clamp(spec->cz + gaussian() * spec->sigma);
        ivx[i] = (rng.nextDouble() - 0.5) * 0.02;
        ivy[i] = (rng.nextDouble() - 0.5) * 0.02;
        ivz[i] = (rng.nextDouble() - 0.5) * 0.02;
        px.init(cluster, i, ipx[i]);
        py.init(cluster, i, ipy[i]);
        pz.init(cluster, i, ipz[i]);
        vx.init(cluster, i, ivx[i]);
        vy.init(cluster, i, ivy[i]);
        vz.init(cluster, i, ivz[i]);
    }

    // Empty tree; the first reset/build round fills it in.
    for (std::uint64_t s = 0; s < 8ull * maxCells; ++s)
        child.init(cluster, s, emptySlot);
    for (std::uint32_t c = 0; c < maxCells; ++c)
        cellDepth.init(cluster, c, 0);
    nextCell.init(cluster, 0, 2); // cell 1 is the root
}

std::uint32_t
BarnesWorkload::allocCell(Thread &t, std::uint32_t &chunk_next,
                          std::uint32_t &chunk_end)
{
    if (chunk_next == chunk_end) {
        if (spatial)
            SWSM_PANIC("barnes-spatial per-processor cell range exhausted");
        t.acquire(allocLock);
        const std::uint32_t cur = nextCell.get(t, 0);
        if (cur + allocChunk > maxCells)
            SWSM_PANIC("barnes cell pool exhausted");
        nextCell.put(t, 0, cur + allocChunk);
        t.release(allocLock);
        chunk_next = cur;
        chunk_end = cur + allocChunk;
    }
    return chunk_next++;
}

void
BarnesWorkload::splitSlot(Thread &t, std::uint32_t cell, int oct,
                          std::int32_t old_ref, std::uint32_t new_particle,
                          const Vec3 &slot_centre, double slot_half,
                          int depth, std::uint32_t &chunk_next,
                          std::uint32_t &chunk_end)
{
    const Vec3 p_old = readParticlePos(t, particleOf(old_ref));
    const Vec3 p_new = readParticlePos(t, new_particle);

    // Build the chain fully before linking it under `cell`'s slot, so
    // concurrent descents never see a half-built subtree. In the locked
    // build every new cell's own lock is held across its initialization:
    // a later inserter that reaches the new cell acquires that lock and
    // the LRC write notices of this interval with it — without this the
    // build would race under lazy release consistency (a reader could
    // re-validate against a stale copy and overwrite a slot).
    const bool locked = !spatial;
    std::vector<std::uint32_t> chain;
    const std::uint32_t first = allocCell(t, chunk_next, chunk_end);
    if (locked)
        t.acquire(cellLocks[first]);
    chain.push_back(first);
    std::uint32_t cur = first;
    Vec3 centre = slot_centre;
    double half = slot_half;
    int d = depth;
    for (;;) {
        cellDepth.put(t, cur, d);
        const int o_old = octantOf(p_old, centre);
        const int o_new = octantOf(p_new, centre);
        t.compute(insertLevelCost);
        if (o_old != o_new) {
            child.put(t, 8ull * cur + o_old, old_ref);
            child.put(t, 8ull * cur + o_new, particleRef(new_particle));
            break;
        }
        if (++d > maxDepth)
            SWSM_PANIC("barnes tree too deep (coincident particles?)");
        const std::uint32_t deeper = allocCell(t, chunk_next, chunk_end);
        if (locked)
            t.acquire(cellLocks[deeper]);
        chain.push_back(deeper);
        child.put(t, 8ull * cur + o_old, static_cast<std::int32_t>(deeper));
        centre = octantCentre(centre, half, o_old);
        half /= 2.0;
        cur = deeper;
    }
    child.put(t, 8ull * cell + oct, static_cast<std::int32_t>(first));
    if (locked) {
        for (auto it = chain.rbegin(); it != chain.rend(); ++it)
            t.release(cellLocks[*it]);
    }
}

void
BarnesWorkload::insertLocked(Thread &t, std::uint32_t i, const Vec3 &p,
                             std::uint32_t &chunk_next,
                             std::uint32_t &chunk_end)
{
    std::uint32_t cur = 1;
    Vec3 centre{0, 0, 0};
    double half = boxHalf;
    int depth = 1;
    for (;;) {
        const int oct = octantOf(p, centre);
        t.compute(insertLevelCost);
        std::int32_t v = child.get(t, 8ull * cur + oct);
        if (v > 0) {
            centre = octantCentre(centre, half, oct);
            half /= 2.0;
            ++depth;
            cur = static_cast<std::uint32_t>(v);
            continue;
        }
        // Empty or particle: take the cell lock and re-validate (the
        // unsynchronized read above may have been stale under LRC).
        t.acquire(cellLocks[cur]);
        v = child.get(t, 8ull * cur + oct);
        if (v > 0) {
            t.release(cellLocks[cur]);
            centre = octantCentre(centre, half, oct);
            half /= 2.0;
            ++depth;
            cur = static_cast<std::uint32_t>(v);
            continue;
        }
        if (v == emptySlot) {
            child.put(t, 8ull * cur + oct, particleRef(i));
            t.release(cellLocks[cur]);
            return;
        }
        splitSlot(t, cur, oct, v, i, octantCentre(centre, half, oct),
                  half / 2.0, depth + 1, chunk_next, chunk_end);
        t.release(cellLocks[cur]);
        return;
    }
}

void
BarnesWorkload::insertOwned(Thread &t, std::uint32_t i, const Vec3 &p,
                            std::uint32_t root_cell,
                            const Vec3 &root_centre, double root_half,
                            int root_depth, std::uint32_t &chunk_next,
                            std::uint32_t &chunk_end)
{
    std::uint32_t cur = root_cell;
    Vec3 centre = root_centre;
    double half = root_half;
    int depth = root_depth;
    for (;;) {
        const int oct = octantOf(p, centre);
        t.compute(insertLevelCost);
        const std::int32_t v = child.get(t, 8ull * cur + oct);
        if (v > 0) {
            centre = octantCentre(centre, half, oct);
            half /= 2.0;
            ++depth;
            cur = static_cast<std::uint32_t>(v);
            continue;
        }
        if (v == emptySlot) {
            child.put(t, 8ull * cur + oct, particleRef(i));
            return;
        }
        splitSlot(t, cur, oct, v, i, octantCentre(centre, half, oct),
                  half / 2.0, depth + 1, chunk_next, chunk_end);
        return;
    }
}

void
BarnesWorkload::resetTree(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    // Clear the slots used in the previous step. The original build
    // partitions the shared allocation cursor's range; the spatial
    // build clears each processor's private cell range (its cursor is
    // private) plus the pre-built levels.
    Range rng;
    if (spatial) {
        const std::uint32_t pool = maxCells - prebuiltCells - 1;
        const Range mine = blockRange(pool, np, me);
        rng = Range{prebuiltCells + 1 + mine.begin,
                    prebuiltCells + 1 + mine.end};
        if (me == 0)
            rng.begin = 0; // also clear root + pre-built levels
    } else {
        const std::uint32_t used = nextCell.get(t, 0);
        rng = blockRange(used, np, me);
    }
    if (rng.size() > 0) {
        std::vector<std::int32_t> zeros(8 * rng.size(), emptySlot);
        t.writeBytes(child.addr(8ull * rng.begin), zeros.data(),
                     zeros.size() * sizeof(std::int32_t));
    }
    t.barrier(bar);
    if (me == 0) {
        if (spatial) {
            // Pre-build three levels: root -> 8 -> 64 -> 512 octant
            // roots (cells 74..585). One level-2 octant can hold a
            // whole particle cluster; splitting once more spreads the
            // hot region over several owners while keeping the
            // restructured version's static, lock-free assignment.
            for (int o = 0; o < 8; ++o) {
                child.put(t, 8ull * 1 + o, 2 + o);
                cellDepth.put(t, 2 + o, 2);
                for (int o2 = 0; o2 < 8; ++o2) {
                    const int c2 = 10 + o * 8 + o2;
                    child.put(t, 8ull * (2 + o) + o2, c2);
                    cellDepth.put(t, c2, 3);
                    for (int o3 = 0; o3 < 8; ++o3) {
                        const int c3 = 74 + (o * 8 + o2) * 8 + o3;
                        child.put(t, 8ull * c2 + o3, c3);
                        cellDepth.put(t, c3, 4);
                    }
                }
            }
            nextCell.put(t, 0, prebuiltCells + 1);
        } else {
            nextCell.put(t, 0, 2);
        }
        cellDepth.put(t, 1, 1);
    }
    t.barrier(bar);
}

void
BarnesWorkload::buildTree(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    std::uint32_t chunk_next = 0;
    std::uint32_t chunk_end = 0;

    if (!spatial) {
        const Range blk = blockRange(n, np, me);
        for (std::uint64_t i = blk.begin; i < blk.end; ++i) {
            const Vec3 p = readParticlePos(
                t, static_cast<std::uint32_t>(i));
            insertLocked(t, static_cast<std::uint32_t>(i), p, chunk_next,
                         chunk_end);
        }
        t.barrier(bar);
        return;
    }

    // Spatial: private cell range, lock-free inserts into owned octants.
    const std::uint32_t pool = maxCells - prebuiltCells - 1;
    chunk_next = prebuiltCells + 1 +
        static_cast<std::uint32_t>(
            blockRange(pool, np, me).begin);
    chunk_end = prebuiltCells + 1 +
        static_cast<std::uint32_t>(blockRange(pool, np, me).end);

    for (std::uint64_t i = 0; i < n; ++i) {
        const Vec3 p = readParticlePos(t, static_cast<std::uint32_t>(i));
        const int o1 = octantOf(p, Vec3{0, 0, 0});
        const Vec3 c1 = octantCentre(Vec3{0, 0, 0}, boxHalf, o1);
        const int o2 = octantOf(p, c1);
        const Vec3 c2 = octantCentre(c1, boxHalf / 2.0, o2);
        const int o3 = octantOf(p, c2);
        const int o512 = (o1 * 8 + o2) * 8 + o3;
        if (o512 % np != me)
            continue;
        insertOwned(t, static_cast<std::uint32_t>(i), p,
                    static_cast<std::uint32_t>(74 + o512),
                    octantCentre(c2, boxHalf / 4.0, o3), boxHalf / 8.0, 4,
                    chunk_next, chunk_end);
    }
    t.barrier(bar);
}

void
BarnesWorkload::cellCom(Thread &t, std::uint32_t cell)
{
    double m = 0, cx = 0, cy = 0, cz = 0;
    for (int o = 0; o < 8; ++o) {
        const std::int32_t v = child.get(t, 8ull * cell + o);
        if (v == emptySlot)
            continue;
        if (v < 0) {
            const std::uint32_t i = particleOf(v);
            const Vec3 p = readParticlePos(t, i);
            m += pmass;
            cx += pmass * p.x;
            cy += pmass * p.y;
            cz += pmass * p.z;
        } else {
            const auto c = static_cast<std::uint32_t>(v);
            const double cm = cellMass.get(t, c);
            m += cm;
            cx += cm * comX.get(t, c);
            cy += cm * comY.get(t, c);
            cz += cm * comZ.get(t, c);
        }
    }
    t.compute(comCost);
    cellMass.put(t, cell, m);
    if (m > 0) {
        comX.put(t, cell, cx / m);
        comY.put(t, cell, cy / m);
        comZ.put(t, cell, cz / m);
    }
}

void
BarnesWorkload::computeComs(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();

    if (spatial) {
        // Each processor finishes its own octants' subtrees bottom-up
        // (post-order, no synchronization needed inside owned trees);
        // processor 0 then folds the two pre-built levels.
        std::function<void(std::uint32_t)> down = [&](std::uint32_t cell) {
            for (int o = 0; o < 8; ++o) {
                const std::int32_t v = child.get(t, 8ull * cell + o);
                if (v > 0)
                    down(static_cast<std::uint32_t>(v));
            }
            cellCom(t, cell);
        };
        for (int o512 = 0; o512 < 512; ++o512) {
            if (o512 % np == me)
                down(static_cast<std::uint32_t>(74 + o512));
        }
        t.barrier(bar);
        if (me == 0) {
            for (int o64 = 0; o64 < 64; ++o64)
                cellCom(t, 10 + o64);
            for (int o = 0; o < 8; ++o)
                cellCom(t, 2 + o);
            cellCom(t, 1);
        }
        t.barrier(bar);
        return;
    }

    // Original: level-synchronized bottom-up pass over scattered cells.
    const std::uint32_t used = nextCell.get(t, 0);
    std::vector<std::vector<std::uint32_t>> by_depth(maxDepth + 1);
    for (std::uint32_t c = 1; c < used; ++c) {
        if (c % static_cast<std::uint32_t>(np) !=
            static_cast<std::uint32_t>(me))
            continue;
        const std::int32_t d = cellDepth.get(t, c);
        if (d > 0 && d <= maxDepth)
            by_depth[d].push_back(c);
    }
    for (int d = maxDepth; d >= 1; --d) {
        for (const std::uint32_t c : by_depth[d])
            cellCom(t, c);
        t.barrier(bar);
    }
}

BarnesWorkload::Vec3
BarnesWorkload::forceOn(Thread &t, std::uint32_t i, const Vec3 &p,
                        std::uint32_t cell, const Vec3 &centre,
                        double half, std::uint64_t &interactions)
{
    Vec3 f{};
    for (int o = 0; o < 8; ++o) {
        const std::int32_t v = child.get(t, 8ull * cell + o);
        if (v == emptySlot)
            continue;
        if (v < 0) {
            const std::uint32_t j = particleOf(v);
            if (j == i)
                continue;
            const Vec3 q = readParticlePos(t, j);
            gravAdd(p.x, p.y, p.z, q.x, q.y, q.z, pmass, f.x, f.y, f.z);
            ++interactions;
            continue;
        }
        const auto c = static_cast<std::uint32_t>(v);
        const Vec3 cc = octantCentre(centre, half, o);
        const double ch = half / 2.0;
        const double m = cellMass.get(t, c);
        const double qx = comX.get(t, c);
        const double qy = comY.get(t, c);
        const double qz = comZ.get(t, c);
        const double dx = qx - p.x;
        const double dy = qy - p.y;
        const double dz = qz - p.z;
        const double dist =
            std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-12;
        if (2.0 * ch / dist < theta) {
            gravAdd(p.x, p.y, p.z, qx, qy, qz, m, f.x, f.y, f.z);
            ++interactions;
        } else {
            const Vec3 sub = forceOn(t, i, p, c, cc, ch, interactions);
            f.x += sub.x;
            f.y += sub.y;
            f.z += sub.z;
        }
    }
    return f;
}

void
BarnesWorkload::computeForces(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    std::uint64_t interactions = 0;

    auto do_particle = [&](std::uint32_t i) {
        const Vec3 p = readParticlePos(t, i);
        const Vec3 f =
            forceOn(t, i, p, 1, Vec3{0, 0, 0}, boxHalf, interactions);
        fx.put(t, i, f.x);
        fy.put(t, i, f.y);
        fz.put(t, i, f.z);
        t.compute(interactions * interactionCost);
        interactions = 0;
    };

    if (!spatial) {
        const Range blk = blockRange(n, np, me);
        for (std::uint64_t i = blk.begin; i < blk.end; ++i)
            do_particle(static_cast<std::uint32_t>(i));
    } else {
        // Owner-computes by octant: imbalanced for clustered inputs.
        for (std::uint64_t i = 0; i < n; ++i) {
            const Vec3 p =
                readParticlePos(t, static_cast<std::uint32_t>(i));
            const int o1 = octantOf(p, Vec3{0, 0, 0});
            const Vec3 c1 = octantCentre(Vec3{0, 0, 0}, boxHalf, o1);
            const int o2 = octantOf(p, c1);
            const Vec3 c2 = octantCentre(c1, boxHalf / 2.0, o2);
            const int o512 = (o1 * 8 + o2) * 8 + octantOf(p, c2);
            if (o512 % np == me)
                do_particle(static_cast<std::uint32_t>(i));
        }
    }
    t.barrier(bar);
}

void
BarnesWorkload::integrate(Thread &t)
{
    const Range blk = blockRange(n, t.nprocs(), t.id());
    for (std::uint64_t i = blk.begin; i < blk.end; ++i) {
        const double ax = fx.get(t, i) / pmass;
        const double ay = fy.get(t, i) / pmass;
        const double az = fz.get(t, i) / pmass;
        double nvx = vx.get(t, i) + ax * timeStep;
        double nvy = vy.get(t, i) + ay * timeStep;
        double nvz = vz.get(t, i) + az * timeStep;
        auto clamp = [this](double v) {
            return std::min(std::max(v, -boxHalf + 0.01), boxHalf - 0.01);
        };
        px.put(t, i, clamp(px.get(t, i) + nvx * timeStep));
        py.put(t, i, clamp(py.get(t, i) + nvy * timeStep));
        pz.put(t, i, clamp(pz.get(t, i) + nvz * timeStep));
        vx.put(t, i, nvx);
        vy.put(t, i, nvy);
        vz.put(t, i, nvz);
        t.compute(20);
    }
    t.barrier(bar);
}

void
BarnesWorkload::body(Thread &t)
{
    for (int s = 0; s < steps; ++s) {
        resetTree(t);
        buildTree(t);
        computeComs(t);
        computeForces(t);
        integrate(t);
    }
}

bool
BarnesWorkload::verify(Cluster &cluster)
{
    // Native sequential Barnes-Hut with identical tree-shape semantics
    // (the octree is position-determined, so results must match to
    // floating-point accumulation order, which octant-order traversal
    // also fixes).
    struct Node
    {
        std::int64_t child[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        double m = 0, cx = 0, cy = 0, cz = 0;
    };
    std::vector<double> qx = ipx, qy = ipy, qz = ipz;
    std::vector<double> wx = ivx, wy = ivy, wz = ivz;

    for (int s = 0; s < steps; ++s) {
        std::vector<Node> tree(2); // node 1 = root
        auto insert_ref = [&](std::int64_t ref, double x, double y,
                              double z) {
            std::uint64_t cur = 1;
            Vec3 centre{0, 0, 0};
            double half = boxHalf;
            int depth = 1;
            for (;;) {
                const int oct =
                    octantOf(Vec3{x, y, z}, centre);
                std::int64_t v = tree[cur].child[oct];
                if (v > 0) {
                    centre = octantCentre(centre, half, oct);
                    half /= 2.0;
                    ++depth;
                    cur = static_cast<std::uint64_t>(v);
                    continue;
                }
                if (v == 0) {
                    tree[cur].child[oct] = ref;
                    return;
                }
                // Split: push the old particle down with the new one.
                const std::uint64_t i_old =
                    static_cast<std::uint64_t>(-v - 1);
                Vec3 centre2 = octantCentre(centre, half, oct);
                double half2 = half / 2.0;
                std::uint64_t parent = cur;
                int slot = oct;
                int d = depth + 1;
                for (;;) {
                    tree.push_back(Node{});
                    const std::uint64_t nc = tree.size() - 1;
                    tree[parent].child[slot] =
                        static_cast<std::int64_t>(nc);
                    const int o_old = octantOf(
                        Vec3{qx[i_old], qy[i_old], qz[i_old]}, centre2);
                    const int o_new = octantOf(Vec3{x, y, z}, centre2);
                    if (o_old != o_new) {
                        tree[nc].child[o_old] = v;
                        tree[nc].child[o_new] = ref;
                        return;
                    }
                    if (++d > maxDepth)
                        SWSM_PANIC("reference tree too deep");
                    parent = nc;
                    slot = o_old;
                    centre2 = octantCentre(centre2, half2, o_old);
                    half2 /= 2.0;
                }
            }
        };
        for (std::uint64_t i = 0; i < n; ++i)
            insert_ref(-static_cast<std::int64_t>(i) - 1, qx[i], qy[i],
                       qz[i]);

        std::function<void(std::uint64_t)> com = [&](std::uint64_t c) {
            double m = 0, cx = 0, cy = 0, cz = 0;
            for (int o = 0; o < 8; ++o) {
                const std::int64_t v = tree[c].child[o];
                if (v == 0)
                    continue;
                if (v < 0) {
                    const auto i = static_cast<std::uint64_t>(-v - 1);
                    m += pmass;
                    cx += pmass * qx[i];
                    cy += pmass * qy[i];
                    cz += pmass * qz[i];
                } else {
                    com(static_cast<std::uint64_t>(v));
                    const Node &nd = tree[static_cast<std::uint64_t>(v)];
                    m += nd.m;
                    cx += nd.m * nd.cx;
                    cy += nd.m * nd.cy;
                    cz += nd.m * nd.cz;
                }
            }
            tree[c].m = m;
            if (m > 0) {
                tree[c].cx = cx / m;
                tree[c].cy = cy / m;
                tree[c].cz = cz / m;
            }
        };
        com(1);

        std::function<void(std::uint64_t, std::uint64_t, Vec3, double,
                           double &, double &, double &)>
            force = [&](std::uint64_t i, std::uint64_t c, Vec3 centre,
                        double half, double &gx, double &gy, double &gz) {
                for (int o = 0; o < 8; ++o) {
                    const std::int64_t v = tree[c].child[o];
                    if (v == 0)
                        continue;
                    if (v < 0) {
                        const auto j = static_cast<std::uint64_t>(-v - 1);
                        if (j == i)
                            continue;
                        gravAdd(qx[i], qy[i], qz[i], qx[j], qy[j], qz[j],
                                pmass, gx, gy, gz);
                        continue;
                    }
                    const auto cc = static_cast<std::uint64_t>(v);
                    const Vec3 sc = octantCentre(centre, half, o);
                    const double sh = half / 2.0;
                    const Node &nd = tree[cc];
                    const double dx = nd.cx - qx[i];
                    const double dy = nd.cy - qy[i];
                    const double dz = nd.cz - qz[i];
                    const double dist =
                        std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-12;
                    if (2.0 * sh / dist < theta) {
                        gravAdd(qx[i], qy[i], qz[i], nd.cx, nd.cy, nd.cz,
                                nd.m, gx, gy, gz);
                    } else {
                        force(i, cc, sc, sh, gx, gy, gz);
                    }
                }
            };

        auto clamp = [this](double v) {
            return std::min(std::max(v, -boxHalf + 0.01), boxHalf - 0.01);
        };
        // Forces first (from pre-step positions), then integrate.
        std::vector<double> gx(n, 0.0), gy(n, 0.0), gz(n, 0.0);
        for (std::uint64_t i = 0; i < n; ++i)
            force(i, 1, Vec3{0, 0, 0}, boxHalf, gx[i], gy[i], gz[i]);
        for (std::uint64_t i = 0; i < n; ++i) {
            wx[i] += gx[i] / pmass * timeStep;
            wy[i] += gy[i] / pmass * timeStep;
            wz[i] += gz[i] / pmass * timeStep;
            qx[i] = clamp(qx[i] + wx[i] * timeStep);
            qy[i] = clamp(qy[i] + wy[i] * timeStep);
            qz[i] = clamp(qz[i] + wz[i] * timeStep);
        }
    }

    for (std::uint64_t i = 0; i < n; ++i) {
        const double gx = px.peek(cluster, i);
        const double gy = py.peek(cluster, i);
        const double gz = pz.peek(cluster, i);
        if (std::abs(gx - qx[i]) > 1e-9 || std::abs(gy - qy[i]) > 1e-9 ||
            std::abs(gz - qz[i]) > 1e-9) {
            SWSM_WARN("barnes mismatch at %llu: (%g,%g,%g) vs (%g,%g,%g)",
                      static_cast<unsigned long long>(i), gx, gy, gz,
                      qx[i], qy[i], qz[i]);
            return false;
        }
    }
    return true;
}

} // namespace swsm
