#include "volrend.hh"

#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace swsm
{

namespace
{

constexpr float isoThreshold = 0.25f;
constexpr double earlyExitOpacity = 0.95;

/**
 * Ray casting core, templated over the volume accessor so the
 * simulated and reference paths share the arithmetic.
 */
template <typename Reader>
std::uint32_t
castRay(Reader &rd, std::uint32_t x, std::uint32_t y,
        std::uint32_t vol_dim, std::uint32_t macro_dim)
{
    const std::uint32_t macros = (vol_dim + macro_dim - 1) / macro_dim;
    double acc = 0.0;
    double lum = 0.0;
    std::uint32_t z = 0;
    while (z < vol_dim) {
        // Empty-space skip through the min/max macro grid.
        const std::uint32_t mc =
            ((x / macro_dim) * macros + (y / macro_dim)) * macros +
            z / macro_dim;
        rd.charge(20);
        if (rd.macroMax(mc) < isoThreshold) {
            z = (z / macro_dim + 1) * macro_dim;
            continue;
        }
        const std::uint32_t zend =
            std::min(vol_dim, (z / macro_dim + 1) * macro_dim);
        for (; z < zend; ++z) {
            const float sigma = rd.voxel(
                (static_cast<std::uint64_t>(x) * vol_dim + y) * vol_dim +
                z);
            rd.charge(60);
            if (sigma < isoThreshold)
                continue;
            const double alpha =
                std::min(1.0, (sigma - isoThreshold) * 2.0);
            // Depth-cued front-to-back compositing.
            const double shade =
                1.0 - 0.7 * static_cast<double>(z) / vol_dim;
            lum += (1.0 - acc) * alpha * shade;
            acc += (1.0 - acc) * alpha;
            if (acc > earlyExitOpacity) {
                z = vol_dim;
                break;
            }
        }
    }
    const auto v = static_cast<std::uint32_t>(
        std::min(255.0, std::max(0.0, lum * 255.0)));
    return (v << 16) | (v << 8) | v;
}

} // namespace

VolrendWorkload::VolrendWorkload(SizeClass size, bool restructured)
    : restructured(restructured)
{
    switch (size) {
      case SizeClass::Tiny:
        volDim = 32;
        width = 32;
        break;
      case SizeClass::Small:
        volDim = 64;
        width = 128;
        break;
      case SizeClass::Medium:
        volDim = 96;
        width = 192;
        break;
      case SizeClass::Paper:
        volDim = 128; // the paper's 128^3 head volume
        width = 256;
        break;
    }
    tile = restructured ? 8 : 4;
}

std::uint64_t
VolrendWorkload::pixelIndex(std::uint32_t x, std::uint32_t y) const
{
    if (!restructured)
        return static_cast<std::uint64_t>(y) * width + x;
    // Tile-blocked layout: a tile's pixels are contiguous.
    const std::uint32_t tiles_x = width / tile;
    const std::uint32_t tid = (y / tile) * tiles_x + x / tile;
    return static_cast<std::uint64_t>(tid) * tile * tile +
           (y % tile) * tile + (x % tile);
}

void
VolrendWorkload::setup(Cluster &cluster)
{
    const int np = cluster.numProcs();
    const std::uint32_t page = cluster.params().pageBytes;

    // Procedural volume: a few dense blobs clustered toward one image
    // corner (so naive band assignment is badly imbalanced).
    struct Blob
    {
        double x, y, z, sigma, amp;
    };
    const Blob blobs[4] = {
        {0.25, 0.25, 0.4, 0.12, 1.2},
        {0.3, 0.45, 0.6, 0.10, 1.0},
        {0.45, 0.3, 0.5, 0.15, 0.9},
        {0.75, 0.7, 0.5, 0.06, 0.8},
    };
    const std::uint64_t voxels =
        static_cast<std::uint64_t>(volDim) * volDim * volDim;
    volume.resize(voxels);
    for (std::uint32_t x = 0; x < volDim; ++x) {
        for (std::uint32_t y = 0; y < volDim; ++y) {
            for (std::uint32_t z = 0; z < volDim; ++z) {
                const double fx = (x + 0.5) / volDim;
                const double fy = (y + 0.5) / volDim;
                const double fz = (z + 0.5) / volDim;
                double v = 0.0;
                for (const Blob &b : blobs) {
                    const double d2 = (fx - b.x) * (fx - b.x) +
                        (fy - b.y) * (fy - b.y) + (fz - b.z) * (fz - b.z);
                    v += b.amp *
                         std::exp(-d2 / (2.0 * b.sigma * b.sigma));
                }
                volume[(static_cast<std::uint64_t>(x) * volDim + y) *
                           volDim +
                       z] = static_cast<float>(v);
            }
        }
    }

    // Min/max macro grid (max only; min unused by this transfer func).
    const std::uint32_t macros = (volDim + macroDim - 1) / macroDim;
    macroMax.assign(static_cast<std::size_t>(macros) * macros * macros,
                    0.0f);
    for (std::uint32_t x = 0; x < volDim; ++x) {
        for (std::uint32_t y = 0; y < volDim; ++y) {
            for (std::uint32_t z = 0; z < volDim; ++z) {
                const std::size_t mc =
                    ((x / macroDim) * macros + (y / macroDim)) * macros +
                    z / macroDim;
                macroMax[mc] = std::max(
                    macroMax[mc],
                    volume[(static_cast<std::uint64_t>(x) * volDim + y) *
                               volDim +
                           z]);
            }
        }
    }

    vol = SharedArray<float>(cluster, voxels, page);
    macro = SharedArray<float>(cluster, macroMax.size(), page);
    image = SharedArray<std::uint32_t>(
        cluster, static_cast<std::uint64_t>(width) * width, page);
    for (std::uint64_t i = 0; i < voxels; ++i)
        vol.init(cluster, i, volume[i]);
    for (std::size_t i = 0; i < macroMax.size(); ++i)
        macro.init(cluster, i, macroMax[i]);

    // Task queues.
    const std::uint32_t tiles_x = width / tile;
    const std::uint32_t num_tiles = tiles_x * tiles_x;
    tilesPerProcCap = num_tiles;
    qItems = SharedArray<std::uint32_t>(
        cluster, static_cast<std::uint64_t>(np) * tilesPerProcCap, page);
    qHead = SharedArray<std::uint32_t>(cluster, np, page);
    qTail = SharedArray<std::uint32_t>(cluster, np, page);
    std::vector<std::uint32_t> counts(np, 0);
    for (std::uint32_t i = 0; i < num_tiles; ++i) {
        // Original: contiguous bands (imbalanced for clustered data).
        // Restructured: round-robin deal (cost-balancing assignment).
        const std::uint32_t band =
            std::max<std::uint32_t>(1, (num_tiles + np - 1) / np);
        const int p = restructured
            ? static_cast<int>(i % static_cast<std::uint32_t>(np))
            : static_cast<int>(std::min<std::uint32_t>(i / band, np - 1));
        qItems.init(cluster,
                    static_cast<std::uint64_t>(p) * tilesPerProcCap +
                        counts[p],
                    i);
        ++counts[p];
    }
    for (int p = 0; p < np; ++p) {
        qHead.init(cluster, p, 0);
        qTail.init(cluster, p, counts[p]);
    }
    qLocks.resize(np);
    for (auto &l : qLocks)
        l = cluster.allocLock();
    bar = cluster.allocBarrier();
}

namespace
{

/** Shared-memory accessor. */
struct SimVolReader
{
    Thread &t;
    const SharedArray<float> &vol;
    const SharedArray<float> &macro;

    float voxel(std::uint64_t i) { return vol.get(t, i); }
    float macroMax(std::uint64_t i) { return macro.get(t, i); }
    void charge(Cycles c) { t.compute(c); }
};

/** Native accessor. */
struct RefVolReader
{
    const std::vector<float> &vol;
    const std::vector<float> &macro;

    float voxel(std::uint64_t i) { return vol[i]; }
    float macroMax(std::uint64_t i) { return macro[i]; }
    void charge(Cycles) {}
};

} // namespace

void
VolrendWorkload::body(Thread &t)
{
    const int me = t.id();
    const int np = t.nprocs();
    SimVolReader rd{t, vol, macro};
    const std::uint32_t tiles_x = width / tile;

    for (;;) {
        std::int64_t tile_id = -1;
        t.acquire(qLocks[me]);
        {
            const std::uint32_t h = qHead.get(t, me);
            const std::uint32_t tl = qTail.get(t, me);
            if (h < tl) {
                tile_id = qItems.get(
                    t,
                    static_cast<std::uint64_t>(me) * tilesPerProcCap + h);
                qHead.put(t, me, h + 1);
            }
        }
        t.release(qLocks[me]);

        for (int k = 1; k < np && tile_id < 0; ++k) {
            const int v = (me + k) % np;
            t.acquire(qLocks[v]);
            const std::uint32_t h = qHead.get(t, v);
            const std::uint32_t tl = qTail.get(t, v);
            if (h < tl) {
                tile_id = qItems.get(
                    t,
                    static_cast<std::uint64_t>(v) * tilesPerProcCap + tl -
                        1);
                qTail.put(t, v, tl - 1);
            }
            t.release(qLocks[v]);
        }
        if (tile_id < 0)
            break;

        const std::uint32_t tx =
            static_cast<std::uint32_t>(tile_id) % tiles_x;
        const std::uint32_t ty =
            static_cast<std::uint32_t>(tile_id) / tiles_x;
        for (std::uint32_t y = ty * tile; y < (ty + 1) * tile; ++y) {
            for (std::uint32_t x = tx * tile; x < (tx + 1) * tile; ++x) {
                const std::uint32_t rgb =
                    castRay(rd, x * volDim / width, y * volDim / width,
                            volDim, macroDim);
                image.put(t, pixelIndex(x, y), rgb);
            }
        }
    }
    t.barrier(bar);
}

bool
VolrendWorkload::verify(Cluster &cluster)
{
    RefVolReader rd{volume, macroMax};
    for (std::uint32_t y = 0; y < width; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            const std::uint32_t want =
                castRay(rd, x * volDim / width, y * volDim / width,
                        volDim, macroDim);
            const std::uint32_t got =
                image.peek(cluster, pixelIndex(x, y));
            if (got != want) {
                SWSM_WARN("volrend mismatch at (%u,%u): %08x vs %08x", x,
                          y, got, want);
                return false;
            }
        }
    }
    return true;
}

} // namespace swsm
