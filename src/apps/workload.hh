/**
 * @file
 * The application-layer interface of the study.
 *
 * A Workload is one application version (original or restructured): it
 * allocates and initializes its shared data on a Cluster, provides the
 * SPMD thread body that every simulated processor executes, and
 * verifies its numerical output afterwards (through the protocol's
 * consistent debug view — so every run doubles as an end-to-end
 * coherence test).
 *
 * Problem sizes are selected by a SizeClass so the same code serves
 * quick unit tests, the benchmark harness, and larger validation runs.
 */

#ifndef SWSM_APPS_WORKLOAD_HH
#define SWSM_APPS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>

#include "machine/cluster.hh"
#include "machine/thread.hh"

namespace swsm
{

/** Problem size selector. */
enum class SizeClass
{
    Tiny,    ///< seconds-scale unit tests
    Small,   ///< default benchmark harness size
    Medium,  ///< closer to the paper's sizes; minutes-scale
    Paper,   ///< the paper's published problem sizes (Table 4)
};

/** One application version (original or restructured). */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name, e.g. "fft" or "barnes-spatial". */
    virtual const char *name() const = 0;

    /** Allocate and (untimed) initialize shared data. */
    virtual void setup(Cluster &cluster) = 0;

    /** SPMD thread body; runs on every simulated processor. */
    virtual void body(Thread &t) = 0;

    /** Verify the result against a sequential reference (untimed). */
    virtual bool verify(Cluster &cluster) = 0;
};

/** Creates a fresh workload instance for one run. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(SizeClass)>;

} // namespace swsm

#endif // SWSM_APPS_WORKLOAD_HH
