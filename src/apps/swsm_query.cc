/**
 * @file
 * swsm_query: client CLI for the sweep server (serve/server.hh).
 *
 *   swsm_query [--sock=PATH] [--out=FILE] [--timeout=MS] [--retries=N]
 *              <verb> [key=value]...
 *
 * Verbs mirror the wire protocol: ping, stats, shutdown,
 * run app=fft proto=hlrc comm=A cost=O size=small procs=16,
 * grid bench=fig3 size=tiny procs=8 [full=1] [apps=a,b],
 * shard peers=host:port,... (fan a grid out over TCP peers).
 *
 * --timeout bounds every socket read/write so a wedged server yields a
 * diagnostic instead of a hang; --retries re-attempts the initial
 * connect with exponential backoff (a server still starting up).
 *
 * Event lines stream to stderr as they arrive; the BENCH report (run,
 * grid and shard verbs) goes to stdout or --out=FILE. Exits non-zero
 * on transport or server errors.
 */

#include <cstdio>
#include <string>

#include "serve/client.hh"
#include "sim/env.hh"
#include "sim/log.hh"

int
main(int argc, char **argv)
{
    using namespace swsm;

    std::string sock = wire::defaultSockPath();
    std::string outPath;
    ClientOptions copts;
    wire::Request req;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        int parsed = 0;
        if (arg.rfind("--sock=", 0) == 0) {
            sock = arg.substr(7);
        } else if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg.rfind("--timeout=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(10), 1, 86400000, parsed)) {
                std::fprintf(stderr,
                             "swsm_query: bad --timeout (1..86400000 "
                             "ms)\n");
                return 1;
            }
            copts.timeoutMs = parsed;
        } else if (arg.rfind("--retries=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(10), 0, 1000, parsed)) {
                std::fprintf(stderr,
                             "swsm_query: bad --retries (0..1000)\n");
                return 1;
            }
            copts.retries = parsed;
        } else if (req.verb.empty() &&
                   arg.find('=') == std::string::npos) {
            req.verb = arg;
        } else if (!req.verb.empty()) {
            const std::size_t eq = arg.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "swsm_query: bad parameter \"%s\" "
                             "(want key=value)\n",
                             arg.c_str());
                return 1;
            }
            req.params[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else {
            std::fprintf(
                stderr,
                "usage: swsm_query [--sock=PATH] [--out=FILE] "
                "[--timeout=MS] [--retries=N] "
                "<ping|stats|run|grid|shard|shutdown> "
                "[key=value]...\n");
            return arg == "--help" ? 0 : 1;
        }
    }
    if (req.verb.empty()) {
        std::fprintf(stderr, "swsm_query: missing verb\n");
        return 1;
    }

    const ServeResponse resp = serveRequest(
        sock, req,
        [](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        },
        copts);
    if (!resp.ok) {
        std::fprintf(stderr, "swsm_query: %s\n", resp.error.c_str());
        return 1;
    }

    if (!resp.report.empty()) {
        if (outPath.empty()) {
            std::fwrite(resp.report.data(), 1, resp.report.size(),
                        stdout);
        } else {
            std::FILE *f = std::fopen(outPath.c_str(), "w");
            if (!f) {
                std::fprintf(stderr, "swsm_query: cannot write %s\n",
                             outPath.c_str());
                return 1;
            }
            const bool ok = std::fwrite(resp.report.data(), 1,
                                        resp.report.size(),
                                        f) == resp.report.size();
            std::fclose(f);
            if (!ok) {
                std::fprintf(stderr, "swsm_query: short write to %s\n",
                             outPath.c_str());
                return 1;
            }
        }
    }
    return 0;
}
