/**
 * @file
 * Idealized shared-memory "protocol" — the paper's PRAM-like limit.
 *
 * Provides the algorithmic-speedup reference bars ("Ideal" in Figure 3):
 * every shared access costs only its local cache behaviour (no access
 * control, no remote transfers), and synchronization costs nothing
 * beyond its inherent serialization (lock mutual exclusion and barrier
 * waiting still apply, because they are properties of the algorithm).
 * Also used with one processor as the sequential baseline that all
 * speedups are measured against.
 */

#ifndef SWSM_PROTO_IDEAL_HH
#define SWSM_PROTO_IDEAL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "proto/address_space.hh"
#include "proto/protocol.hh"

namespace swsm
{

/** Zero-cost shared memory: the algorithmic performance limit. */
class IdealProtocol : public Protocol
{
  public:
    /**
     * @param space shared address space (single backing store)
     * @param procs per-node fiber environments
     */
    IdealProtocol(AddressSpace &space, std::vector<ProcEnv *> procs);

    const char *name() const override { return "ideal"; }

    void read(ProcEnv &env, GlobalAddr addr, void *out,
              std::uint32_t bytes) override;
    void write(ProcEnv &env, GlobalAddr addr, const void *in,
               std::uint32_t bytes) override;
    void readRange(ProcEnv &env, GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                    std::uint64_t bytes) override;
    void acquire(ProcEnv &env, LockId lock) override;
    void release(ProcEnv &env, LockId lock) override;
    void barrier(ProcEnv &env, BarrierId barrier) override;
    void debugRead(GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void checkQuiescent() const override;

  private:
    struct LockState
    {
        bool held = false;
        std::deque<NodeId> queue;
    };

    struct BarrierState
    {
        int arrived = 0;
        std::vector<NodeId> waiting;
    };

    LockState &lockState(LockId l);
    BarrierState &barrierState(BarrierId b);

    /**
     * Publish the whole backing store to node @p n's fast path. One
     * global entry fills every TLB slot, so after the first slow
     * access all later accesses — including arbitrarily long ranges —
     * resolve inline in a single chunk.
     */
    void installFastGlobal(NodeId n);

    AddressSpace &space;
    std::vector<ProcEnv *> procs;
    int numNodes;

    std::vector<std::unique_ptr<LockState>> locks;
    std::vector<std::unique_ptr<BarrierState>> barriers;
};

} // namespace swsm

#endif // SWSM_PROTO_IDEAL_HH
