#include "proto_params.hh"

#include <cmath>

#include "sim/log.hh"

namespace swsm
{

ProtoParams
ProtoParams::halfway()
{
    return original().interpolate(best(), 0.5);
}

ProtoParams
ProtoParams::best()
{
    ProtoParams p;
    p.pageProtectPerPage = 0;
    p.pageProtectCall = 0;
    p.diffComparePerWord = 0;
    p.diffWritePerWord = 0;
    p.diffApplyPerWord = 0;
    p.twinPerWord = 0;
    p.handlerBase = 0;
    p.listPerElem = 0;
    return p;
}

ProtoParams
ProtoParams::fromName(char name)
{
    switch (name) {
      case 'O':
        return original();
      case 'H':
        return halfway();
      case 'B':
        return best();
      default:
        SWSM_FATAL("unknown protocol parameter set '%c'", name);
    }
}

ProtoParams
ProtoParams::interpolate(const ProtoParams &other, double f) const
{
    auto mix = [f](Cycles a, Cycles b) {
        return static_cast<Cycles>(
            std::llround(static_cast<double>(a) * (1.0 - f) +
                         static_cast<double>(b) * f));
    };
    ProtoParams p;
    p.pageProtectPerPage = mix(pageProtectPerPage, other.pageProtectPerPage);
    p.pageProtectCall = mix(pageProtectCall, other.pageProtectCall);
    p.diffComparePerWord = mix(diffComparePerWord, other.diffComparePerWord);
    p.diffWritePerWord = mix(diffWritePerWord, other.diffWritePerWord);
    p.diffApplyPerWord = mix(diffApplyPerWord, other.diffApplyPerWord);
    p.twinPerWord = mix(twinPerWord, other.twinPerWord);
    p.handlerBase = mix(handlerBase, other.handlerBase);
    p.listPerElem = mix(listPerElem, other.listPerElem);
    return p;
}

} // namespace swsm
