/**
 * @file
 * The global shared address space and its home distribution.
 *
 * Both protocols operate on one flat, byte-addressed shared space carved
 * out by a bump allocator. Every page has a *home* node; fine-grained
 * blocks inherit the home of the page containing them (homes are
 * distributed at page granularity, as in Typhoon-zero-style systems).
 * The address space also owns the authoritative *home store* — the byte
 * contents of every page as seen at its home — which the protocols keep
 * coherent. Applications place data via explicit home hints (mirroring
 * the data distribution the SPLASH-2 programs perform) or round-robin.
 */

#ifndef SWSM_PROTO_ADDRESS_SPACE_HH
#define SWSM_PROTO_ADDRESS_SPACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace swsm
{

/** Flat shared address space with per-page homes and home storage. */
class AddressSpace
{
  public:
    /**
     * @param num_nodes cluster size (homes range over [0, num_nodes))
     * @param page_bytes SVM page size (power of two)
     * @param block_bytes fine-grained coherence block size (power of two,
     *                    <= page_bytes or a multiple of it)
     */
    AddressSpace(int num_nodes, std::uint32_t page_bytes,
                 std::uint32_t block_bytes);

    /**
     * Allocate @p bytes, aligned to @p align (power of two; at least the
     * natural alignment callers need). Newly covered pages get
     * round-robin homes unless setRangeHome overrides them.
     * @return base address of the allocation
     */
    GlobalAddr alloc(std::uint64_t bytes, std::uint64_t align = 64);

    /**
     * Allocate @p bytes in whole pages homed entirely at @p home
     * (distribution hint for partitioned data).
     */
    GlobalAddr allocAt(std::uint64_t bytes, NodeId home);

    /** Override the home of every page overlapping [addr, addr+bytes). */
    void setRangeHome(GlobalAddr addr, std::uint64_t bytes, NodeId home);

    std::uint32_t pageBytes() const { return pageBytes_; }
    std::uint32_t blockBytes() const { return blockBytes_; }
    int numNodes() const { return numNodes_; }

    /** Total allocated bytes (the extent of the space). */
    std::uint64_t size() const { return brk; }
    /** Number of pages covering the allocated space. */
    std::uint64_t numPages() const { return pageHomes.size(); }
    /** Number of blocks covering the allocated space. */
    std::uint64_t
    numBlocks() const
    {
        return (size() + blockBytes_ - 1) / blockBytes_;
    }

    PageId pageOf(GlobalAddr a) const { return a / pageBytes_; }
    BlockId blockOf(GlobalAddr a) const { return a / blockBytes_; }
    GlobalAddr pageBase(PageId p) const { return p * pageBytes_; }
    GlobalAddr blockBase(BlockId b) const { return b * blockBytes_; }

    /** Home node of page @p p. @pre p covers allocated space */
    NodeId pageHome(PageId p) const { return pageHomes.at(p); }
    /** Home node of block @p b (inherited from its page). */
    NodeId
    blockHome(BlockId b) const
    {
        return pageHomes.at(blockBase(b) / pageBytes_);
    }

    /** Authoritative home-store bytes (protocols read/write these). */
    std::uint8_t *homeBytes(GlobalAddr a) { return &store.at(a); }
    const std::uint8_t *homeBytes(GlobalAddr a) const { return &store.at(a); }

    /** Untimed initialization write into the home store. */
    void initWrite(GlobalAddr a, const void *src, std::uint64_t bytes);
    /** Untimed read from the home store (for debugging/verification). */
    void initRead(GlobalAddr a, void *dst, std::uint64_t bytes) const;

  private:
    void growTo(std::uint64_t new_brk);

    int numNodes_;
    std::uint32_t pageBytes_;
    std::uint32_t blockBytes_;
    std::uint64_t brk = 0;
    std::vector<NodeId> pageHomes;
    std::vector<std::uint8_t> store;
    NodeId nextHome = 0;
};

} // namespace swsm

#endif // SWSM_PROTO_ADDRESS_SPACE_HH
