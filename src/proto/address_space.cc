#include "address_space.hh"

#include <cstring>

#include "sim/log.hh"

namespace swsm
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

AddressSpace::AddressSpace(int num_nodes, std::uint32_t page_bytes,
                           std::uint32_t block_bytes)
    : numNodes_(num_nodes), pageBytes_(page_bytes), blockBytes_(block_bytes)
{
    if (num_nodes <= 0)
        SWSM_FATAL("address space needs at least one node");
    if (!isPow2(page_bytes) || !isPow2(block_bytes))
        SWSM_FATAL("page and block sizes must be powers of two");
    if (block_bytes > page_bytes && block_bytes % page_bytes != 0)
        SWSM_FATAL("blocks larger than a page must be page multiples");
}

void
AddressSpace::growTo(std::uint64_t new_brk)
{
    const std::uint64_t pages = (new_brk + pageBytes_ - 1) / pageBytes_;
    while (pageHomes.size() < pages) {
        pageHomes.push_back(nextHome);
        nextHome = (nextHome + 1) % numNodes_;
    }
    store.resize(pages * pageBytes_, 0);
    brk = new_brk;
}

GlobalAddr
AddressSpace::alloc(std::uint64_t bytes, std::uint64_t align)
{
    if (!isPow2(align))
        SWSM_FATAL("allocation alignment must be a power of two");
    const GlobalAddr base = (brk + align - 1) & ~(align - 1);
    growTo(base + bytes);
    return base;
}

GlobalAddr
AddressSpace::allocAt(std::uint64_t bytes, NodeId home)
{
    const GlobalAddr base = alloc(bytes, pageBytes_);
    setRangeHome(base, bytes, home);
    return base;
}

void
AddressSpace::setRangeHome(GlobalAddr addr, std::uint64_t bytes,
                           NodeId home)
{
    if (home < 0 || home >= numNodes_)
        SWSM_FATAL("invalid home node %d", home);
    if (bytes == 0)
        return;
    const PageId first = pageOf(addr);
    const PageId last = pageOf(addr + bytes - 1);
    for (PageId p = first; p <= last; ++p)
        pageHomes.at(p) = home;
}

void
AddressSpace::initWrite(GlobalAddr a, const void *src, std::uint64_t bytes)
{
    if (a + bytes > store.size())
        SWSM_PANIC("initWrite beyond allocated space");
    std::memcpy(&store[a], src, bytes);
}

void
AddressSpace::initRead(GlobalAddr a, void *dst, std::uint64_t bytes) const
{
    if (a + bytes > store.size())
        SWSM_PANIC("initRead beyond allocated space");
    std::memcpy(dst, &store[a], bytes);
}

} // namespace swsm
