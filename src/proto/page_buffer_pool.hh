/**
 * @file
 * Free-list recycling of page-sized buffers and diff word vectors.
 *
 * HLRC's twin/diff lifecycle used to allocate a fresh page buffer at
 * every write fault and release it (clear + shrink_to_fit) at every
 * interval flush, and to allocate a fresh diff word vector per diff.
 * On diff-heavy runs that is two allocator round trips per page per
 * interval on the simulator's hottest path. The pool keeps returned
 * buffers (with their capacity) on per-node free lists so steady-state
 * twin creation and diffing perform no heap allocation at all.
 *
 * Purely a host-side optimization: buffer contents are always
 * (re)initialized by the caller, so simulated behaviour is unchanged.
 * One simulation runs single-threaded, so the pool needs no locking.
 */

#ifndef SWSM_PROTO_PAGE_BUFFER_POOL_HH
#define SWSM_PROTO_PAGE_BUFFER_POOL_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace swsm
{

/** Per-node free lists for twin buffers and diff word vectors. */
class PageBufferPool
{
  public:
    using Bytes = std::vector<std::uint8_t>;
    using DiffWords = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

    /**
     * An empty byte buffer, reusing a returned one (and its capacity)
     * when available.
     */
    Bytes
    acquirePage()
    {
        if (pages_.empty()) {
            ++pageAllocs_;
            return Bytes{};
        }
        ++pageReuses_;
        Bytes b = std::move(pages_.back());
        pages_.pop_back();
        return b;
    }

    /** Return a byte buffer to the free list. */
    void
    releasePage(Bytes b)
    {
        b.clear();
        pages_.push_back(std::move(b));
    }

    /** An empty diff word vector, reusing capacity when available. */
    DiffWords
    acquireWords()
    {
        if (words_.empty()) {
            ++wordAllocs_;
            return DiffWords{};
        }
        ++wordReuses_;
        DiffWords w = std::move(words_.back());
        words_.pop_back();
        return w;
    }

    /** Return a diff word vector to the free list. */
    void
    releaseWords(DiffWords w)
    {
        w.clear();
        words_.push_back(std::move(w));
    }

    std::uint64_t pageAllocs() const { return pageAllocs_; }
    std::uint64_t pageReuses() const { return pageReuses_; }
    std::uint64_t wordAllocs() const { return wordAllocs_; }
    std::uint64_t wordReuses() const { return wordReuses_; }
    std::size_t freePages() const { return pages_.size(); }
    std::size_t freeWordVectors() const { return words_.size(); }

  private:
    std::vector<Bytes> pages_;
    std::vector<DiffWords> words_;
    std::uint64_t pageAllocs_ = 0;
    std::uint64_t pageReuses_ = 0;
    std::uint64_t wordAllocs_ = 0;
    std::uint64_t wordReuses_ = 0;
};

} // namespace swsm

#endif // SWSM_PROTO_PAGE_BUFFER_POOL_HH
