/**
 * @file
 * Free-list recycling of page-sized buffers, diff word vectors and
 * write-notice page lists.
 *
 * HLRC's twin/diff lifecycle used to allocate a fresh page buffer at
 * every write fault and release it (clear + shrink_to_fit) at every
 * interval flush, to allocate a fresh diff word vector per diff, and a
 * fresh page-id vector per interval record. On diff-heavy runs that is
 * several allocator round trips per page per interval on the
 * simulator's hottest path. The pool keeps returned buffers (with
 * their capacity) on per-node free lists so steady-state twin
 * creation, diffing and page fetching perform no heap allocation at
 * all; the NoticeArena slab-allocates interval page lists (which live
 * until the end of the run) at stable addresses.
 *
 * Page buffers are 32-byte aligned (mem/aligned.hh) so the SIMD diff
 * and twin kernels never see a cache-line-splitting load; the HLRC
 * twin path asserts the contract under SWSM_CHECK.
 *
 * Purely a host-side optimization: buffer contents are always
 * (re)initialized by the caller, so simulated behaviour is unchanged.
 * One simulation runs single-threaded per node partition, so the pool
 * needs no locking. The alloc/reuse split each pool reports is
 * deterministic — it depends only on the per-node sequence of protocol
 * events, which is bit-identical across host modes (fast path, SIMD,
 * serial vs. partitioned kernel) — so the proto.pool_* metrics built
 * from these counters participate in the equivalence checks.
 */

#ifndef SWSM_PROTO_PAGE_BUFFER_POOL_HH
#define SWSM_PROTO_PAGE_BUFFER_POOL_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/aligned.hh"
#include "sim/types.hh"

namespace swsm
{

/** Per-node free lists for twin buffers and diff word vectors. */
class PageBufferPool
{
  public:
    using Bytes = AlignedBytes;
    using DiffWords = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

    /**
     * An empty byte buffer, reusing a returned one (and its capacity)
     * when available.
     */
    Bytes
    acquirePage()
    {
        if (pages_.empty()) {
            ++pageAllocs_;
            return Bytes{};
        }
        ++pageReuses_;
        Bytes b = std::move(pages_.back());
        pages_.pop_back();
        return b;
    }

    /** Return a byte buffer to the free list. */
    void
    releasePage(Bytes b)
    {
        b.clear();
        pages_.push_back(std::move(b));
    }

    /** An empty diff word vector, reusing capacity when available. */
    DiffWords
    acquireWords()
    {
        if (words_.empty()) {
            ++wordAllocs_;
            return DiffWords{};
        }
        ++wordReuses_;
        DiffWords w = std::move(words_.back());
        words_.pop_back();
        return w;
    }

    /** Return a diff word vector to the free list. */
    void
    releaseWords(DiffWords w)
    {
        w.clear();
        words_.push_back(std::move(w));
    }

    std::uint64_t pageAllocs() const { return pageAllocs_; }
    std::uint64_t pageReuses() const { return pageReuses_; }
    std::uint64_t wordAllocs() const { return wordAllocs_; }
    std::uint64_t wordReuses() const { return wordReuses_; }
    std::size_t freePages() const { return pages_.size(); }
    std::size_t freeWordVectors() const { return words_.size(); }

    /**
     * Checkpoint of the pool's observable state, for machine-level
     * speculation rollback. Buffer *contents* never matter (callers
     * always resize and overwrite an acquired buffer), so the mark only
     * records the counters and free-list depths; restoreToMark trims
     * free lists grown past the mark and pads lists that shrank with
     * fresh empty buffers. Capacity differences are invisible to the
     * simulation, but the alloc/reuse counters — which feed the
     * equivalence-checked proto.pool_* metrics — are restored exactly.
     */
    struct Mark
    {
        std::uint64_t pageAllocs;
        std::uint64_t pageReuses;
        std::uint64_t wordAllocs;
        std::uint64_t wordReuses;
        std::size_t freePages;
        std::size_t freeWordVectors;
    };

    Mark
    mark() const
    {
        return Mark{pageAllocs_, pageReuses_, wordAllocs_, wordReuses_,
                    pages_.size(), words_.size()};
    }

    void
    restoreToMark(const Mark &m)
    {
        pageAllocs_ = m.pageAllocs;
        pageReuses_ = m.pageReuses;
        wordAllocs_ = m.wordAllocs;
        wordReuses_ = m.wordReuses;
        pages_.resize(m.freePages);
        words_.resize(m.freeWordVectors);
    }

  private:
    std::vector<Bytes> pages_;
    std::vector<DiffWords> words_;
    std::uint64_t pageAllocs_ = 0;
    std::uint64_t pageReuses_ = 0;
    std::uint64_t wordAllocs_ = 0;
    std::uint64_t wordReuses_ = 0;
};

/**
 * Slab allocator for interval-record page lists (write notices).
 *
 * An HLRC interval record names the pages its interval dirtied; the
 * record lives until the end of the run and is read by other nodes
 * (below vector-clock counts they learned from its writer), so its
 * page list needs a stable address but never individual deallocation.
 * The arena packs the lists into large slabs: one bump-pointer
 * allocation per interval instead of one heap vector, and a new slab
 * only every few thousand notices. Slabs are never moved or freed
 * until the arena dies, giving the same stability guarantee as the
 * StableVector holding the records themselves.
 */
class NoticeArena
{
  public:
    /**
     * Stable storage for @p count page ids (nullptr when count == 0).
     * The caller fills the returned array; it stays valid for the
     * arena's lifetime.
     */
    PageId *
    alloc(std::size_t count)
    {
        if (count == 0)
            return nullptr;
        if (used_ + count > cap_) {
            cap_ = std::max(count, minSlabIds);
            slabs_.push_back(std::make_unique<PageId[]>(cap_));
            used_ = 0;
            ++slabAllocs_;
        } else {
            ++slabReuses_;
        }
        PageId *out = slabs_.back().get() + used_;
        used_ += count;
        return out;
    }

    /** Slabs allocated (one heap allocation each). */
    std::uint64_t slabAllocs() const { return slabAllocs_; }
    /** Interval lists served from an already-allocated slab. */
    std::uint64_t slabReuses() const { return slabReuses_; }

  private:
    static constexpr std::size_t minSlabIds = 4096;

    std::vector<std::unique_ptr<PageId[]>> slabs_;
    std::size_t used_ = 0;
    std::size_t cap_ = 0;
    std::uint64_t slabAllocs_ = 0;
    std::uint64_t slabReuses_ = 0;
};

} // namespace swsm

#endif // SWSM_PROTO_PAGE_BUFFER_POOL_HH
