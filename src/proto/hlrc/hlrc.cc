#include "hlrc.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "check/check.hh"
#include "mem/simd.hh"
#include "proto/hlrc/diff.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{
/** Non-VC bytes of small protocol payloads (ids, counts). */
constexpr std::uint32_t smallPayload = 8;
} // namespace

HlrcProtocol::HlrcProtocol(AddressSpace &space, const ProtoParams &params,
                           std::vector<ProcEnv *> procs)
    : space(space), params(params), procs(std::move(procs)),
      numNodes(space.numNodes()), pageBytes(space.pageBytes()),
      wordsPerPage(space.pageBytes() / wordBytes)
{
    if (static_cast<int>(this->procs.size()) != numNodes)
        SWSM_FATAL("HLRC needs one ProcEnv per node");
    nodes.resize(numNodes);
    intervals.resize(numNodes);
    for (auto &ns : nodes)
        ns.vc.assign(numNodes, 0);

    // Page-indexed fast paths; HLRC pre-charges the access before
    // touching data (charge-first), which is safe because page-state
    // downgrades only ever happen on the app fiber itself.
    for (ProcEnv *pe : this->procs) {
        if (FastPath *f = pe->fastPath())
            f->configure(std::countr_zero(pageBytes), false);
    }
    hostFastDiff_ = this->procs[0]->fastPath() != nullptr;
    diffChunkShift_ = hlrcdiff::chunkShift(pageBytes);
}

void
HlrcProtocol::prepareRun(int partitions, int num_locks, int num_barriers)
{
    (void)partitions;
    // Pre-size every lazily-grown shared table so no run — parallel or
    // serial — ever regrows one mid-flight. The accessors' lazy paths
    // remain as fallbacks for ids beyond the declared bounds (which
    // only the serial engine can serve safely). Creation is idempotent
    // and identical to the lazy path, so simulated behavior and stats
    // are unchanged.
    for (auto &ns : nodes)
        ns.pages.resize(space.numPages());
    lastDiffSeq.resize(
        space.numPages() * static_cast<std::size_t>(numNodes), 0);
    for (LockId l = 0; l < num_locks; ++l)
        lockState(l);
    for (BarrierId b = 0; b < num_barriers; ++b)
        barrierState(b);
}

std::uint32_t &
HlrcProtocol::lastDiffSeqAt(PageId p, NodeId n)
{
    const std::size_t need = std::max<std::size_t>(
        space.numPages() * numNodes,
        (p + 1) * static_cast<std::size_t>(numNodes));
    if (lastDiffSeq.size() < need)
        lastDiffSeq.resize(need, 0);
    return lastDiffSeq[p * numNodes + n];
}

void
HlrcProtocol::installFast(NodeId n, PageId p, PageCopy &pc)
{
    FastPath *f = fastPath(n);
    if (!f)
        return;
    const GlobalAddr base = space.pageBase(p);
    const bool writable = pc.state == PState::ReadWrite;
    // Writable copies feed the dirty-chunk bitmap so fast-path stores
    // keep the diff accelerator exact.
    f->install(base, base + pageBytes, pc.data.data(), writable,
               writable ? &pc.dirtyChunks : nullptr, diffChunkShift_);
}

void
HlrcProtocol::installFastHome(NodeId n, PageId p, bool writable)
{
    FastPath *f = fastPath(n);
    if (!f)
        return;
    const GlobalAddr base = space.pageBase(p);
    // Writable only while ReadWrite: the first store to a clean home
    // page must still take the slow path so enableWrite records the
    // interval's write notice. No dirty mask — home pages never diff.
    f->install(base, base + pageBytes, space.homeBytes(base), writable);
}

void
HlrcProtocol::invalidateFastPage(NodeId n, PageId p)
{
    if (FastPath *f = fastPath(n)) {
        const GlobalAddr base = space.pageBase(p);
        f->invalidateRange(base, base + pageBytes);
    }
}

HlrcProtocol::PageCopy &
HlrcProtocol::pageCopy(NodeId n, PageId p)
{
    auto &pages = nodes.at(n).pages;
    if (pages.size() <= p) {
        // The space is fixed once threads run (allocations precede run),
        // so one full-size resize keeps references stable across blocks.
        pages.resize(std::max<std::size_t>(space.numPages(), p + 1));
    }
    return pages[p];
}

HlrcProtocol::NodeState &
HlrcProtocol::nodeState(NodeId n)
{
    return nodes.at(n);
}

HlrcProtocol::LockState &
HlrcProtocol::lockState(LockId l)
{
    if (locks.size() <= static_cast<std::size_t>(l))
        locks.resize(l + 1);
    if (!locks[l]) {
        auto state = std::make_unique<LockState>();
        state->node.resize(numNodes);
        const NodeId mgr = lockManager(l);
        state->node[mgr].holdsToken = true;
        state->lastRequester = mgr;
        locks[l] = std::move(state);
    }
    return *locks[l];
}

HlrcProtocol::BarrierState &
HlrcProtocol::barrierState(BarrierId b)
{
    if (barriers.size() <= static_cast<std::size_t>(b))
        barriers.resize(b + 1);
    if (!barriers[b]) {
        auto state = std::make_unique<BarrierState>();
        state->arrivedVc.resize(numNodes);
        state->prevMerged.assign(numNodes, 0);
        barriers[b] = std::move(state);
    }
    return *barriers[b];
}

NodeId
HlrcProtocol::lockManager(LockId l) const
{
    return static_cast<NodeId>(l % numNodes);
}

NodeId
HlrcProtocol::barrierManager(BarrierId b) const
{
    return static_cast<NodeId>(b % numNodes);
}

GlobalAddr
HlrcProtocol::twinAddr(PageId p) const
{
    return (1ULL << 40) + p * static_cast<GlobalAddr>(pageBytes);
}

void
HlrcProtocol::chargeProtect(NodeEnv &env, std::uint64_t num_pages)
{
    if (num_pages == 0)
        return;
    env.charge(params.pageProtectCall +
                   num_pages * params.pageProtectPerPage,
               TimeBucket::ProtoProtect);
}

void
HlrcProtocol::sendReq(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                      HandlerFn fn, TimeBucket bucket)
{
    stats_.protoMsgs.inc();
    stats_.protoBytes.inc(bytes);
    env.sendRequest(dst, bytes, std::move(fn), bucket);
}

void
HlrcProtocol::sendDat(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                      DataFn fn, TimeBucket bucket)
{
    stats_.protoMsgs.inc();
    stats_.protoBytes.inc(bytes);
    env.sendData(dst, bytes, std::move(fn), bucket);
}

// ---------------------------------------------------------------------
// Data access
// ---------------------------------------------------------------------

void
HlrcProtocol::fetchPage(ProcEnv &env, PageId p)
{
    const NodeId n = env.node();
    const NodeId home = space.pageHome(p);
    const GlobalAddr base = space.pageBase(p);
    const Cycles fetch_start = env.now();
    stats_.pageFetches.inc();

    sendReq(env, home, smallPayload,
            [this, p, n, base](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.handlerBase, TimeBucket::ProtoHandler);
                // Snapshot the home copy; the NI will DMA it out. The
                // buffer comes from the *home's* pool (this handler runs
                // on the home's partition) and is recycled through the
                // requester's pool by the deposit closure (which runs on
                // the requester's partition) — each mutation stays
                // partition-local.
                PageBufferPool::Bytes snap =
                    nodeState(henv.node()).pool.acquirePage();
                snap.resize(pageBytes);
                simd::copyBytes(snap.data(), space.homeBytes(base),
                                pageBytes);
                simdStats_.pageCopyCalls.inc();
                simdStats_.pageCopyBytes.inc(pageBytes);
                sendDat(henv, n, pageBytes,
                        [this, p, n, base,
                         snap = std::move(snap)](Cycles t) mutable {
                            PageCopy &pc = pageCopy(n, p);
                            // Deposit runs in the requester's context
                            // and may execute speculatively; log the
                            // page copy's pre-image once.
                            specSnapshot(specLog_, pc);
                            pc.data.resize(pageBytes);
                            simd::copyBytes(pc.data.data(), snap.data(),
                                            pageBytes);
                            simdStats_.pageCopyCalls.inc();
                            simdStats_.pageCopyBytes.inc(pageBytes);
                            nodeState(n).pool.releasePage(std::move(snap));
                            // Coherent DMA: stale cached lines of the
                            // page are invalidated by the deposit.
                            procs[n]->invalidateCacheRange(base, pageBytes);
                            procs[n]->unblock(t);
                        },
                        TimeBucket::ProtoHandler);
            },
            TimeBucket::ProtoOther);

    env.block(TimeBucket::DataWait);

    PageCopy &pc = pageCopy(n, p);
    pc.state = PState::ReadOnly;
    chargeProtect(env, 1);

    if (trace_) {
        trace_->complete("page_fetch", "proto", n, fetch_start, env.now(),
                         TraceArg{"page", p},
                         TraceArg{"home",
                                  static_cast<std::uint64_t>(home)});
    }
}

void
HlrcProtocol::makeTwin(ProcEnv &env, PageId p, PageCopy &pc)
{
    SWSM_INVARIANT(pc.twin.empty(),
                   "twin of page %llu recreated while live on node %d",
                   static_cast<unsigned long long>(p), env.node());
    SWSM_INVARIANT(space.pageHome(p) != env.node(),
                   "twin created for home page %llu on node %d",
                   static_cast<unsigned long long>(p), env.node());
    pc.twin = nodeState(env.node()).pool.acquirePage();
    pc.twin.resize(pc.data.size());
    if (check::enabled()) {
        SWSM_INVARIANT(simdAligned(pc.twin.data()) &&
                           simdAligned(pc.data.data()),
                       "unaligned twin/data buffer for page %llu on "
                       "node %d (SIMD contract)",
                       static_cast<unsigned long long>(p), env.node());
    }
    simd::copyBytes(pc.twin.data(), pc.data.data(),
                    static_cast<std::uint32_t>(pc.data.size()));
    simdStats_.twinCopyCalls.inc();
    simdStats_.twinCopyBytes.inc(pc.data.size());
    pc.dirtyChunks = 0;
    stats_.twinsCreated.inc();
    env.charge(static_cast<Cycles>(wordsPerPage) * params.twinPerWord,
               TimeBucket::ProtoTwin);
    // Twinning streams the page through the cache and writes the twin.
    // With idealized (zero) twin cost the paper's hypothetical hardware
    // does the copy without touching the processor cache.
    if (params.twinPerWord > 0) {
        env.chargeCacheRange(space.pageBase(p), pageBytes, false,
                             TimeBucket::ProtoTwin);
        env.chargeCacheRange(twinAddr(p), pageBytes, true,
                             TimeBucket::ProtoTwin);
    }
}

void
HlrcProtocol::discardTwin(NodeId n, PageCopy &pc)
{
    nodeState(n).pool.releasePage(std::move(pc.twin));
    pc.twin.clear();
    pc.dirtyChunks = 0;
}

void
HlrcProtocol::enableWrite(ProcEnv &env, PageId p, PageCopy &pc)
{
    const NodeId n = env.node();
    SWSM_INVARIANT(pc.state != PState::ReadWrite,
                   "write-enable of already writable page %llu on node %d",
                   static_cast<unsigned long long>(p), n);
    stats_.writeFaults.inc();
    if (space.pageHome(p) != n)
        makeTwin(env, p, pc);
    chargeProtect(env, 1);
    pc.state = PState::ReadWrite;
    pc.dirty = true;
    nodeState(n).dirtyPages.push_back(p);
}

void
HlrcProtocol::read(ProcEnv &env, GlobalAddr addr, void *out,
                   std::uint32_t bytes)
{
    const PageId p = space.pageOf(addr);
    const NodeId n = env.node();
    if (space.pageHome(p) == n) {
        env.chargeSharedAccess(addr, false);
        std::memcpy(out, space.homeBytes(addr), bytes);
        installFastHome(n, p,
                        pageCopy(n, p).state == PState::ReadWrite);
        return;
    }
    PageCopy &pc = pageCopy(n, p);
    if (pc.state == PState::Invalid) {
        stats_.readFaults.inc();
        fetchPage(env, p);
    }
    env.chargeSharedAccess(addr, false);
    std::memcpy(out, pc.data.data() + (addr - space.pageBase(p)), bytes);
    installFast(n, p, pc);
}

void
HlrcProtocol::write(ProcEnv &env, GlobalAddr addr, const void *in,
                    std::uint32_t bytes)
{
    const PageId p = space.pageOf(addr);
    const NodeId n = env.node();
    const bool is_home = space.pageHome(p) == n;
    PageCopy &pc = pageCopy(n, p);
    if (!is_home && pc.state == PState::Invalid) {
        stats_.readFaults.inc();
        fetchPage(env, p);
    }
    if (pc.state != PState::ReadWrite)
        enableWrite(env, p, pc);
    env.chargeSharedAccess(addr, true);
    std::uint8_t *dst = is_home
        ? space.homeBytes(addr)
        : pc.data.data() + (addr - space.pageBase(p));
    if (!is_home) {
        pc.dirtyChunks |= FastPath::dirtyBits(
            addr - space.pageBase(p), bytes, diffChunkShift_);
    }
    std::memcpy(dst, in, bytes);
    if (is_home)
        installFastHome(n, p, true);
    else
        installFast(n, p, pc);
}

void
HlrcProtocol::readRange(ProcEnv &env, GlobalAddr addr, void *out,
                        std::uint64_t bytes)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const PageId p = space.pageOf(a);
        const NodeId n = env.node();
        const GlobalAddr page_end = space.pageBase(p) + pageBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(bytes - done, page_end - a);
        const std::uint8_t *src;
        if (space.pageHome(p) == n) {
            src = space.homeBytes(a);
            installFastHome(n, p,
                            pageCopy(n, p).state == PState::ReadWrite);
        } else {
            PageCopy &pc = pageCopy(n, p);
            if (pc.state == PState::Invalid) {
                stats_.readFaults.inc();
                fetchPage(env, p);
            }
            src = pc.data.data() + (a - space.pageBase(p));
            installFast(n, p, pc);
        }
        env.charge((chunk + wordBytes - 1) / wordBytes, TimeBucket::Busy);
        env.chargeCacheRange(a, chunk, false, TimeBucket::StallLocal);
        std::memcpy(dst + done, src, chunk);
        done += chunk;
    }
}

void
HlrcProtocol::writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                         std::uint64_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const PageId p = space.pageOf(a);
        const NodeId n = env.node();
        const bool is_home = space.pageHome(p) == n;
        const GlobalAddr page_end = space.pageBase(p) + pageBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(bytes - done, page_end - a);
        PageCopy &pc = pageCopy(n, p);
        if (!is_home && pc.state == PState::Invalid) {
            stats_.readFaults.inc();
            fetchPage(env, p);
        }
        if (pc.state != PState::ReadWrite)
            enableWrite(env, p, pc);
        std::uint8_t *dst = is_home
            ? space.homeBytes(a)
            : pc.data.data() + (a - space.pageBase(p));
        if (!is_home) {
            pc.dirtyChunks |= FastPath::dirtyBits(
                a - space.pageBase(p), chunk, diffChunkShift_);
            installFast(n, p, pc);
        } else {
            installFastHome(n, p, true);
        }
        env.charge((chunk + wordBytes - 1) / wordBytes, TimeBucket::Busy);
        env.chargeCacheRange(a, chunk, true, TimeBucket::StallLocal);
        std::memcpy(dst, src + done, chunk);
        done += chunk;
    }
}

// ---------------------------------------------------------------------
// Diffs
// ---------------------------------------------------------------------

void
HlrcProtocol::sendDiff(NodeEnv &env, NodeId n, PageId p, PageCopy &pc)
{
    const GlobalAddr base = space.pageBase(p);
    const NodeId home = space.pageHome(p);

    SWSM_INVARIANT(pc.dirty,
                   "diff of clean page %llu on node %d",
                   static_cast<unsigned long long>(p), n);
    SWSM_INVARIANT(home != n,
                   "diff of home page %llu on node %d",
                   static_cast<unsigned long long>(p), n);
    SWSM_INVARIANT(pc.twin.size() == pageBytes,
                   "diff of page %llu on node %d with %zu-byte twin "
                   "(expected %u)",
                   static_cast<unsigned long long>(p), n, pc.twin.size(),
                   pageBytes);

    // Comparison against the twin, on real bytes. The simulated cost
    // below is always the full word-by-word scan; on the host, the
    // fast-path build skips chunks the write path never marked (they
    // are guaranteed identical to the twin) and compares the marked
    // ones 64 bits at a time. Both scans yield the same word list.
    PageBufferPool::DiffWords words = nodeState(n).pool.acquireWords();
    if (check::enabled()) {
        SWSM_INVARIANT(simdAligned(pc.data.data()) &&
                           simdAligned(pc.twin.data()),
                       "unaligned twin/data buffer for page %llu on "
                       "node %d (SIMD contract)",
                       static_cast<unsigned long long>(p), n);
    }
    if (hostFastDiff_) {
        if (check::enabled()) {
            SWSM_INVARIANT(
                hlrcdiff::cleanChunksMatch(pc.data.data(), pc.twin.data(),
                                           pageBytes, diffChunkShift_,
                                           pc.dirtyChunks),
                "dirty-chunk bitmap of page %llu on node %d missed a "
                "modified chunk",
                static_cast<unsigned long long>(p), n);
        }
        hlrcdiff::scanChunks(pc.data.data(), pc.twin.data(), pageBytes,
                             diffChunkShift_, pc.dirtyChunks, words);
        simdStats_.diffScanBytes.inc(std::min<std::uint64_t>(
            pageBytes,
            static_cast<std::uint64_t>(std::popcount(pc.dirtyChunks))
                << diffChunkShift_));
    } else {
        hlrcdiff::scanFull(pc.data.data(), pc.twin.data(), pageBytes,
                           words);
        simdStats_.diffScanBytes.inc(pageBytes);
    }
    simdStats_.diffScanCalls.inc();
    stats_.diffsCreated.inc();
    stats_.diffWordsCompared.inc(wordsPerPage);
    stats_.diffWordsWritten.inc(words.size());

    if (trace_) {
        trace_->instant("diff", "proto", n, env.now(),
                        TraceArg{"page", p},
                        TraceArg{"words", words.size()});
    }

    env.charge(static_cast<Cycles>(wordsPerPage) *
                       params.diffComparePerWord +
                   static_cast<Cycles>(words.size()) *
                       params.diffWritePerWord,
               TimeBucket::ProtoDiff);
    if (params.diffComparePerWord > 0) {
        env.chargeCacheRange(base, pageBytes, false,
                             TimeBucket::ProtoDiff);
        env.chargeCacheRange(twinAddr(p), pageBytes, false,
                             TimeBucket::ProtoDiff);
    }

    auto &ns = nodeState(n);
    ++ns.pendingAcks;

    // The sequence number of the interval this diff belongs to; the
    // home checks diffs from one writer arrive in interval order.
    // Non-strict: an early flush (false sharing) and a later re-dirty
    // can produce two diffs within the same open interval.
    const std::uint32_t diff_seq =
        static_cast<std::uint32_t>(intervals[n].size());

    const std::uint32_t diff_bytes =
        smallPayload + 8 * static_cast<std::uint32_t>(words.size());
    sendReq(env, home, diff_bytes,
            [this, p, n, diff_seq,
             words = std::move(words)](NodeEnv &henv) mutable {
                stats_.handlersRun.inc();
                stats_.diffsApplied.inc();
                henv.charge(params.handlerBase +
                                static_cast<Cycles>(words.size()) *
                                    params.diffApplyPerWord,
                            TimeBucket::ProtoHandler);
                if (check::enabled()) {
                    auto &last = lastDiffSeqAt(p, n);
                    SWSM_INVARIANT(
                        diff_seq >= last,
                        "diff for page %llu from node %d arrived out of "
                        "interval order (seq %u after %u)",
                        static_cast<unsigned long long>(p), n, diff_seq,
                        last);
                    specSnapshot(specLog_, last);
                    last = diff_seq;
                }
                applyDiff(henv, p, words);
                // The word vector's capacity is recycled through the
                // *home's* pool — this closure runs in the home node's
                // context, and pools are partition-owned (releasing to
                // the writer's pool would mutate another partition's
                // state under the parallel engine). Which pool recycles
                // the capacity is invisible to the simulation.
                nodeState(henv.node()).pool.releaseWords(std::move(words));
                sendDat(henv, n, smallPayload,
                        [this, n](Cycles t) {
                            auto &rns = nodeState(n);
                            if (--rns.pendingAcks == 0 && rns.waitingAcks) {
                                rns.waitingAcks = false;
                                procs[n]->unblock(t);
                            }
                        },
                        TimeBucket::ProtoHandler);
            },
            TimeBucket::ProtoDiff);
}

void
HlrcProtocol::applyDiff(
    NodeEnv &env, PageId p,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &words)
{
    if (check::faultPlan().dropDiffApply)
        return; // fault injection: lose the diff's words (harness only)
    const GlobalAddr base = space.pageBase(p);
    // Charges first (same per-word order as before, so the cache model
    // sees the identical reference stream), then one vectorized store
    // pass over the home copy — the page is contiguous in the home
    // store, so word w lives at homeBytes(base) + w * wordBytes.
    if (params.diffApplyPerWord > 0) {
        for (const auto &[w, value] : words) {
            (void)value;
            env.chargeCacheRange(
                base + w * static_cast<GlobalAddr>(wordBytes), wordBytes,
                true, TimeBucket::ProtoDiff);
        }
    }
    // COW pre-image of the home frame: the diff handler runs in the
    // home's context and may execute speculatively; a rollback copies
    // the page back. Deduplicated per page per speculation.
    if (specLog_ && specLog_->active())
        specLog_->willWriteBytes(space.homeBytes(base), pageBytes);
    simd::applyWords(space.homeBytes(base), words.data(), words.size());
    simdStats_.applyCalls.inc();
    simdStats_.applyWords.inc(words.size());
}

void
HlrcProtocol::waitForAcks(ProcEnv &env, TimeBucket wait_bucket)
{
    auto &ns = nodeState(env.node());
    SWSM_INVARIANT(ns.pendingAcks >= 0,
                   "negative pending diff acks (%d) on node %d",
                   ns.pendingAcks, env.node());
    if (ns.pendingAcks > 0) {
        ns.waitingAcks = true;
        env.block(wait_bucket);
    }
}

void
HlrcProtocol::flushInterval(ProcEnv &env, TimeBucket wait_bucket)
{
    const NodeId n = env.node();
    auto &ns = nodeState(n);
    if (ns.dirtyPages.empty() && ns.earlyFlushed.empty())
        return;

    // The interval's page list goes straight into the node's notice
    // arena: one bump-pointer allocation, stable for the run (other
    // nodes read it through the interval log).
    const std::size_t count =
        ns.dirtyPages.size() + ns.earlyFlushed.size();
    PageId *list = ns.noticeArena.alloc(count);
    std::size_t filled = 0;
    std::uint64_t reprotect = 0;
    for (PageId p : ns.dirtyPages) {
        PageCopy &pc = pageCopy(n, p);
        list[filled++] = p;
        if (space.pageHome(p) != n) {
            sendDiff(env, n, p, pc);
            discardTwin(n, pc);
        }
        pc.dirty = false;
        pc.state = PState::ReadOnly;
        // The RW→RO downgrade must kill any writable fast-path entry;
        // the next access reinstalls a read-only one.
        invalidateFastPage(n, p);
        ++reprotect;
    }
    for (PageId p : ns.earlyFlushed)
        list[filled++] = p;
    ns.dirtyPages.clear();
    ns.earlyFlushed.clear();
    chargeProtect(env, reprotect);

    waitForAcks(env, wait_bucket);

    ns.vc[n] += 1;
    intervals[n].push_back(
        IntervalRec{list, static_cast<std::uint32_t>(count)});
}

// ---------------------------------------------------------------------
// Write notices
// ---------------------------------------------------------------------

std::uint64_t
HlrcProtocol::countMissingNotices(const Vc &have, const Vc &upto) const
{
    std::uint64_t count = 0;
    for (NodeId j = 0; j < numNodes; ++j) {
        for (std::uint32_t k = have[j]; k < upto[j]; ++k)
            count += intervals[j][k].numPages;
    }
    return count;
}

void
HlrcProtocol::applyNotices(ProcEnv &env, const Vc &new_vc,
                           TimeBucket wait_bucket)
{
    const NodeId n = env.node();
    auto &ns = nodeState(n);

    std::vector<PageId> &to_invalidate = ns.noticeScratch;
    to_invalidate.clear();
    std::uint64_t processed = 0;
    for (NodeId j = 0; j < numNodes; ++j) {
        if (j == n)
            continue;
        for (std::uint32_t k = ns.vc[j];
             k < new_vc[j] && k < intervals[j].size(); ++k) {
            for (PageId p : intervals[j][k]) {
                ++processed;
                if (space.pageHome(p) == n)
                    continue; // the home copy is always current
                to_invalidate.push_back(p);
            }
        }
    }
    stats_.writeNotices.inc(processed);
    env.charge(processed * params.listPerElem, TimeBucket::ProtoOther);

    std::sort(to_invalidate.begin(), to_invalidate.end());
    to_invalidate.erase(
        std::unique(to_invalidate.begin(), to_invalidate.end()),
        to_invalidate.end());

    std::uint64_t protect_pages = 0;
    for (PageId p : to_invalidate) {
        PageCopy &pc = pageCopy(n, p);
        if (pc.state == PState::Invalid)
            continue;
        if (pc.dirty) {
            // False sharing: our own concurrent words must reach the
            // home before we drop the copy.
            sendDiff(env, n, p, pc);
            discardTwin(n, pc);
            pc.dirty = false;
            auto &dp = ns.dirtyPages;
            dp.erase(std::remove(dp.begin(), dp.end(), p), dp.end());
            ns.earlyFlushed.push_back(p);
        }
        pc.state = PState::Invalid;
        invalidateFastPage(n, p);
        stats_.invalidations.inc();
        ++protect_pages;
    }
    chargeProtect(env, protect_pages);

    for (NodeId j = 0; j < numNodes; ++j)
        ns.vc[j] = std::max(ns.vc[j], new_vc[j]);

    waitForAcks(env, wait_bucket);
}

// ---------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------

void
HlrcProtocol::tryGrant(NodeEnv &env, LockId lock)
{
    auto &ls = lockState(lock);
    auto &lns = ls.node.at(env.node());
    if (!lns.holdsToken || lns.inCs || lns.pending.empty())
        return;

    // Reachable from the chase handler inside a speculation window
    // (no-op when called from the fiber-side release path).
    specSnapshot(specLog_, lns);
    Handoff h = std::move(lns.pending.front());
    lns.pending.pop_front();
    lns.holdsToken = false;

    auto &grantor = nodeState(env.node());
    Vc grant_vc = grantor.vc;
    const std::uint64_t notices = countMissingNotices(h.vc, grant_vc);
    env.charge(notices * params.listPerElem, TimeBucket::ProtoOther);
    stats_.lockHandoffs.inc();

    const std::uint32_t bytes = smallPayload + vcBytes() +
        8 * static_cast<std::uint32_t>(notices);
    const NodeId r = h.requester;
    sendDat(env, r, bytes,
            [this, r, grant_vc = std::move(grant_vc)](Cycles t) {
                nodeState(r).stashedVc = grant_vc;
                procs[r]->unblock(t);
            },
            TimeBucket::ProtoOther);
}

void
HlrcProtocol::acquire(ProcEnv &env, LockId lock)
{
    const NodeId n = env.node();
    auto &ls = lockState(lock);
    auto &lns = ls.node.at(n);

    if (lns.holdsToken) {
        // Token cached from our last use and nobody asked for it since.
        lns.inCs = true;
        env.charge(10, TimeBucket::Busy);
        return;
    }

    stats_.lockRequests.inc();
    const Cycles acquire_start = env.now();
    Vc my_vc = nodeState(n).vc;
    const NodeId mgr = lockManager(lock);
    sendReq(env, mgr, smallPayload + vcBytes(),
            [this, lock, n, my_vc = std::move(my_vc)](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.handlerBase, TimeBucket::ProtoHandler);
                auto &ls = lockState(lock);
                const NodeId target = ls.lastRequester;
                specSnapshot(specLog_, ls.lastRequester);
                ls.lastRequester = n;
                // Chase the token: forward the handoff to the queue
                // tail; it grants after its own acquire+release.
                sendReq(henv, target, smallPayload + vcBytes(),
                        [this, lock, n, my_vc](NodeEnv &henv2) {
                            stats_.handlersRun.inc();
                            henv2.charge(params.handlerBase,
                                         TimeBucket::ProtoHandler);
                            auto &ls2 = lockState(lock);
                            auto &tail = ls2.node.at(henv2.node());
                            // Pre-image before the push so a rollback
                            // drops the queued handoff too (tryGrant's
                            // own snapshot dedups against this one).
                            specSnapshot(specLog_, tail);
                            tail.pending.push_back(Handoff{n, my_vc});
                            tryGrant(henv2, lock);
                        },
                        TimeBucket::ProtoHandler);
            },
            TimeBucket::ProtoOther);

    env.block(TimeBucket::LockWait);

    auto &ns = nodeState(n);
    lns.holdsToken = true;
    lns.inCs = true;
    applyNotices(env, ns.stashedVc, TimeBucket::LockWait);

    if (trace_) {
        trace_->complete("lock_acquire", "sync", n, acquire_start,
                         env.now(),
                         TraceArg{"lock",
                                  static_cast<std::uint64_t>(lock)});
    }
}

void
HlrcProtocol::release(ProcEnv &env, LockId lock)
{
    auto &ls = lockState(lock);
    auto &lns = ls.node.at(env.node());
    if (!lns.inCs)
        SWSM_FATAL("release of lock %d not held by node %d", lock,
                   env.node());
    flushInterval(env, TimeBucket::LockWait);
    lns.inCs = false;
    tryGrant(env, lock);
}

// ---------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------

void
HlrcProtocol::barrier(ProcEnv &env, BarrierId barrier)
{
    const NodeId n = env.node();
    const NodeId mgr = barrierManager(barrier);
    const Cycles barrier_start = env.now();
    flushInterval(env, TimeBucket::BarrierWait);

    auto &ns = nodeState(n);
    Vc my_vc = ns.vc;
    // The arrive message carries the write notices of our intervals the
    // manager has not merged yet.
    const BarrierState &pre = barrierState(barrier);
    std::uint64_t fresh = 0;
    for (std::uint32_t k = pre.prevMerged[n]; k < my_vc[n]; ++k)
        fresh += intervals[n][k].numPages;
    const std::uint32_t arrive_bytes = smallPayload + vcBytes() +
        8 * static_cast<std::uint32_t>(fresh);

    sendReq(env, mgr, arrive_bytes,
            [this, barrier, n, fresh,
             my_vc = std::move(my_vc)](NodeEnv &henv) {
                stats_.handlersRun.inc();
                auto &bs = barrierState(barrier);
                henv.charge(params.handlerBase +
                                fresh * params.listPerElem,
                            TimeBucket::ProtoHandler);
                // Arrive handlers run at the manager and may execute
                // speculatively; snapshot the whole episode record.
                specSnapshot(specLog_, bs);
                bs.arrivedVc.at(n) = my_vc;
                if (++bs.arrived < numNodes)
                    return;

                // Last arrival: merge, then release everyone with the
                // notices they lack.
                stats_.barrierEpisodes.inc();
                Vc merged(numNodes, 0);
                for (NodeId j = 0; j < numNodes; ++j)
                    for (NodeId i = 0; i < numNodes; ++i)
                        merged[i] = std::max(merged[i],
                                             bs.arrivedVc[j][i]);
                for (NodeId j = 0; j < numNodes; ++j) {
                    const std::uint64_t lack =
                        countMissingNotices(bs.arrivedVc[j], merged);
                    henv.charge(lack * params.listPerElem,
                                TimeBucket::ProtoHandler);
                    const std::uint32_t bytes = smallPayload + vcBytes() +
                        8 * static_cast<std::uint32_t>(lack);
                    sendDat(henv, j, bytes,
                            [this, j, merged](Cycles t) {
                                nodeState(j).stashedVc = merged;
                                procs[j]->unblock(t);
                            },
                            TimeBucket::ProtoHandler);
                }
                bs.arrived = 0;
                bs.prevMerged = merged;
            },
            TimeBucket::ProtoOther);

    env.block(TimeBucket::BarrierWait);
    applyNotices(env, ns.stashedVc, TimeBucket::BarrierWait);

    if (trace_) {
        trace_->complete("barrier", "sync", n, barrier_start, env.now(),
                         TraceArg{"barrier",
                                  static_cast<std::uint64_t>(barrier)});
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

void
HlrcProtocol::registerMetrics(MetricsRegistry &registry) const
{
    Protocol::registerMetrics(registry);

    // Pool and arena hit rates, summed over nodes. Deterministic
    // across host modes (see page_buffer_pool.hh), so they participate
    // in the cross-mode equivalence checks.
    const auto pool = [this, &registry](const char *name, auto get) {
        registry.addCounter(std::string("proto.") + name, [this, get] {
            std::uint64_t total = 0;
            for (const NodeState &ns : nodes)
                total += get(ns);
            return total;
        });
    };
    pool("pool_page_allocs",
         [](const NodeState &ns) { return ns.pool.pageAllocs(); });
    pool("pool_page_reuses",
         [](const NodeState &ns) { return ns.pool.pageReuses(); });
    pool("pool_word_allocs",
         [](const NodeState &ns) { return ns.pool.wordAllocs(); });
    pool("pool_word_reuses",
         [](const NodeState &ns) { return ns.pool.wordReuses(); });
    pool("pool_notice_slabs",
         [](const NodeState &ns) { return ns.noticeArena.slabAllocs(); });
    pool("pool_notice_reuses",
         [](const NodeState &ns) { return ns.noticeArena.slabReuses(); });

    // Host SIMD telemetry. Mode-dependent by design (SWSM_SIMD,
    // SWSM_FASTPATH change what the kernels see), hence the mem.simd_
    // prefix that tools/bench_diff.py ignores.
    const auto kernel = [&registry](const char *name,
                                    const ShardedCounter &c) {
        registry.addCounter(std::string("mem.simd_") + name,
                            [&c] { return c.value(); });
    };
    registry.addCounter("mem.simd_level", [] {
        return static_cast<std::uint64_t>(simd::activeLevel());
    });
    kernel("diff_scan_calls", simdStats_.diffScanCalls);
    kernel("diff_scan_bytes", simdStats_.diffScanBytes);
    kernel("twin_copy_calls", simdStats_.twinCopyCalls);
    kernel("twin_copy_bytes", simdStats_.twinCopyBytes);
    kernel("apply_calls", simdStats_.applyCalls);
    kernel("apply_words", simdStats_.applyWords);
    kernel("page_copy_calls", simdStats_.pageCopyCalls);
    kernel("page_copy_bytes", simdStats_.pageCopyBytes);
}

// ---------------------------------------------------------------------
// Machine-level speculation checkpoints
// ---------------------------------------------------------------------

void
HlrcProtocol::saveSpecState(int partition, const std::vector<NodeId> &owned)
{
    Protocol::saveSpecState(partition, owned);
    auto &snap = specNodeSnap_[partition];
    snap.clear();
    for (NodeId n : owned) {
        NodeState &ns = nodeState(n);
        snap.push_back(SpecNodeSnap{ns.pendingAcks, ns.waitingAcks,
                                    ns.stashedVc, ns.pool.mark()});
    }
    std::size_t i = 0;
    forEachSimdCounter([&](ShardedCounter &c) {
        specSimdSnap_[partition][i++] = c.shardValue(partition);
    });
}

void
HlrcProtocol::restoreSpecState(int partition,
                               const std::vector<NodeId> &owned)
{
    Protocol::restoreSpecState(partition, owned);
    const auto &snap = specNodeSnap_[partition];
    for (std::size_t k = 0; k < owned.size(); ++k) {
        NodeState &ns = nodeState(owned[k]);
        ns.pendingAcks = snap[k].pendingAcks;
        ns.waitingAcks = snap[k].waitingAcks;
        ns.stashedVc = snap[k].stashedVc;
        ns.pool.restoreToMark(snap[k].pool);
    }
    std::size_t i = 0;
    forEachSimdCounter([&](ShardedCounter &c) {
        c.setShardValue(partition, specSimdSnap_[partition][i++]);
    });
}

// ---------------------------------------------------------------------
// Verification access
// ---------------------------------------------------------------------

void
HlrcProtocol::debugRead(GlobalAddr addr, void *out, std::uint64_t bytes)
{
    // After a barrier every diff has been applied at the homes, so the
    // home store is the consistent view.
    space.initRead(addr, out, bytes);
}

void
HlrcProtocol::checkQuiescent() const
{
    for (NodeId n = 0; n < numNodes; ++n) {
        const NodeState &ns = nodes[n];
        SWSM_INVARIANT(ns.pendingAcks == 0,
                       "node %d ended with %d pending diff acks", n,
                       ns.pendingAcks);
        SWSM_INVARIANT(!ns.waitingAcks,
                       "node %d ended while waiting for diff acks", n);
        for (std::size_t p = 0; p < ns.pages.size(); ++p) {
            const PageCopy &pc = ns.pages[p];
            SWSM_INVARIANT(pc.twin.empty() || pc.dirty,
                           "node %d ended with a live twin of clean "
                           "page %llu",
                           n, static_cast<unsigned long long>(p));
        }
    }
    for (const auto &ls : locks) {
        if (!ls)
            continue;
        int holders = 0;
        for (NodeId n = 0; n < numNodes; ++n) {
            const LockNodeState &lns = ls->node[n];
            if (lns.holdsToken)
                ++holders;
            SWSM_INVARIANT(!lns.inCs,
                           "node %d ended inside a critical section", n);
            SWSM_INVARIANT(lns.pending.empty(),
                           "node %d ended with %zu queued lock handoffs",
                           n, lns.pending.size());
        }
        SWSM_INVARIANT(holders == 1,
                       "lock token held by %d nodes at end of run "
                       "(expected 1)",
                       holders);
    }
    for (const auto &bs : barriers) {
        if (!bs)
            continue;
        SWSM_INVARIANT(bs->arrived == 0,
                       "barrier ended with %d arrivals pending",
                       bs->arrived);
    }
}

} // namespace swsm
