#include "diff.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sim/types.hh"

namespace swsm::hlrcdiff
{

std::uint32_t
chunkShift(std::uint32_t page_bytes)
{
    // 64 chunks per page (one bitmap word), but never smaller than
    // one 8-byte compare unit.
    const auto page_shift =
        static_cast<std::uint32_t>(std::countr_zero(page_bytes));
    return page_shift > 9 ? page_shift - 6 : 3;
}

void
scanFull(const std::uint8_t *cur, const std::uint8_t *twin,
         std::uint32_t page_bytes, DiffWords &out)
{
    const std::uint32_t words = page_bytes / wordBytes;
    for (std::uint32_t w = 0; w < words; ++w) {
        std::uint32_t a, b;
        std::memcpy(&a, cur + w * wordBytes, wordBytes);
        std::memcpy(&b, twin + w * wordBytes, wordBytes);
        if (a != b)
            out.emplace_back(w, a);
    }
}

void
scanChunks(const std::uint8_t *cur, const std::uint8_t *twin,
           std::uint32_t page_bytes, std::uint32_t chunk_shift,
           std::uint64_t dirty_chunks, DiffWords &out)
{
    const std::uint32_t chunk_bytes = 1u << chunk_shift;
    std::uint64_t mask = dirty_chunks;
    while (mask) {
        const auto c = static_cast<std::uint32_t>(std::countr_zero(mask));
        mask &= mask - 1;
        const std::uint32_t begin = c << chunk_shift;
        if (begin >= page_bytes)
            break;
        const std::uint32_t end =
            std::min(begin + chunk_bytes, page_bytes);
        for (std::uint32_t off = begin; off < end; off += 8) {
            std::uint64_t a8, b8;
            std::memcpy(&a8, cur + off, 8);
            std::memcpy(&b8, twin + off, 8);
            if (a8 == b8)
                continue;
            for (std::uint32_t o = off; o < off + 8; o += wordBytes) {
                std::uint32_t a, b;
                std::memcpy(&a, cur + o, wordBytes);
                std::memcpy(&b, twin + o, wordBytes);
                if (a != b)
                    out.emplace_back(o / wordBytes, a);
            }
        }
    }
}

bool
cleanChunksMatch(const std::uint8_t *cur, const std::uint8_t *twin,
                 std::uint32_t page_bytes, std::uint32_t chunk_shift,
                 std::uint64_t dirty_chunks)
{
    const std::uint32_t chunk_bytes = 1u << chunk_shift;
    for (std::uint32_t begin = 0, c = 0; begin < page_bytes;
         begin += chunk_bytes, ++c) {
        if (dirty_chunks & (std::uint64_t{1} << c))
            continue;
        const std::uint32_t end =
            std::min(begin + chunk_bytes, page_bytes);
        if (std::memcmp(cur + begin, twin + begin, end - begin) != 0)
            return false;
    }
    return true;
}

} // namespace swsm::hlrcdiff
