#include "diff.hh"

#include <algorithm>
#include <bit>

#include "mem/simd.hh"
#include "sim/types.hh"

namespace swsm::hlrcdiff
{

std::uint32_t
chunkShift(std::uint32_t page_bytes)
{
    // 64 chunks per page (one bitmap word), but never smaller than
    // one 8-byte compare unit.
    const auto page_shift =
        static_cast<std::uint32_t>(std::countr_zero(page_bytes));
    return page_shift > 9 ? page_shift - 6 : 3;
}

void
scanFull(const std::uint8_t *cur, const std::uint8_t *twin,
         std::uint32_t page_bytes, DiffWords &out)
{
    simd::diffWords(cur, twin, page_bytes, 0, out);
}

void
scanChunks(const std::uint8_t *cur, const std::uint8_t *twin,
           std::uint32_t page_bytes, std::uint32_t chunk_shift,
           std::uint64_t dirty_chunks, DiffWords &out)
{
    // Merge adjacent dirty chunks into maximal runs before scanning:
    // sequential writers dirty long contiguous spans, and one wide
    // SIMD sweep over a run beats per-chunk kernel entry (the 64-byte
    // chunks of a 4K page are exactly two 256-bit compares each).
    std::uint64_t mask = dirty_chunks;
    while (mask) {
        const auto c = static_cast<std::uint32_t>(std::countr_zero(mask));
        const std::uint64_t from_c = mask >> c;
        const auto len = static_cast<std::uint32_t>(
            std::countr_one(from_c));
        mask = len >= 64
                   ? 0
                   : mask & ~(((std::uint64_t{1} << len) - 1) << c);
        const std::uint32_t begin = c << chunk_shift;
        if (begin >= page_bytes)
            break;
        const std::uint32_t end = std::min(
            begin + (len << chunk_shift), page_bytes);
        simd::diffWords(cur + begin, twin + begin, end - begin,
                        begin / wordBytes, out);
    }
}

bool
cleanChunksMatch(const std::uint8_t *cur, const std::uint8_t *twin,
                 std::uint32_t page_bytes, std::uint32_t chunk_shift,
                 std::uint64_t dirty_chunks)
{
    const std::uint32_t chunk_bytes = 1u << chunk_shift;
    std::uint32_t run_begin = 0;
    bool in_run = false;
    for (std::uint32_t begin = 0, c = 0; begin < page_bytes;
         begin += chunk_bytes, ++c) {
        const bool clean = !(dirty_chunks & (std::uint64_t{1} << c));
        if (clean && !in_run) {
            run_begin = begin;
            in_run = true;
        } else if (!clean && in_run) {
            if (!simd::rangesEqual(cur + run_begin, twin + run_begin,
                                   begin - run_begin))
                return false;
            in_run = false;
        }
    }
    if (in_run) {
        return simd::rangesEqual(cur + run_begin, twin + run_begin,
                                 page_bytes - run_begin);
    }
    return true;
}

} // namespace swsm::hlrcdiff
