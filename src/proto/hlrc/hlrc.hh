/**
 * @file
 * Home-based Lazy Release Consistency (HLRC) page-grained SVM protocol.
 *
 * The protocol of Zhou, Iftode and Li as used in the paper:
 *
 *  - lazy release consistency with vector timestamps, intervals and
 *    write notices (the multiple-writer LRC model of TreadMarks);
 *  - software twins and word-granularity diffs to support multiple
 *    concurrent writers of a page;
 *  - *home-based* diff handling: at a release, the writer eagerly sends
 *    each dirty page's diff to the page's home, where it is applied to
 *    the home copy, which is therefore always up to date with respect to
 *    the consistency model; a page fault fetches the whole page from the
 *    home instead of collecting distributed diffs;
 *  - distributed-queue locks whose grant messages carry the write
 *    notices the acquirer lacks, and a centralized barrier whose release
 *    messages do the same.
 *
 * Diffs, twins and page copies operate on real bytes, so applications
 * produce correct results only if the protocol is correct.
 */

#ifndef SWSM_PROTO_HLRC_HLRC_HH
#define SWSM_PROTO_HLRC_HLRC_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "machine/fast_path.hh"
#include "mem/aligned.hh"
#include "proto/address_space.hh"
#include "proto/page_buffer_pool.hh"
#include "proto/proto_params.hh"
#include "proto/protocol.hh"
#include "sim/stable_vector.hh"
#include "sim/stats.hh"

namespace swsm
{

/** The paper's page-based SVM protocol. */
class HlrcProtocol : public Protocol
{
  public:
    /**
     * @param space shared address space (homes + home store)
     * @param params protocol layer costs (Table 3 knobs)
     * @param procs per-node fiber environments, indexed by NodeId
     */
    HlrcProtocol(AddressSpace &space, const ProtoParams &params,
                 std::vector<ProcEnv *> procs);

    const char *name() const override { return "hlrc"; }

    void read(ProcEnv &env, GlobalAddr addr, void *out,
              std::uint32_t bytes) override;
    void write(ProcEnv &env, GlobalAddr addr, const void *in,
               std::uint32_t bytes) override;
    void readRange(ProcEnv &env, GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                    std::uint64_t bytes) override;
    void acquire(ProcEnv &env, LockId lock) override;
    void release(ProcEnv &env, LockId lock) override;
    void barrier(ProcEnv &env, BarrierId barrier) override;
    void debugRead(GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void checkQuiescent() const override;

    /**
     * Every HLRC action mutates only the state of the node it runs on;
     * the only cross-node *reads* (interval records during notice
     * counting) follow message-carried vector clocks, which the
     * parallel engine's window barriers turn into real happens-before
     * edges (and StableVector keeps the records at stable addresses).
     */
    bool partitionSafe() const override { return true; }
    void prepareRun(int partitions, int num_locks,
                    int num_barriers) override;

    /**
     * proto.* counters plus the HLRC-specific pooling and SIMD
     * telemetry: proto.pool_* (buffer-pool and notice-arena hit rates,
     * deterministic across host modes) and mem.simd_* (host kernel
     * activity — legitimately differs between SWSM_SIMD / fast-path
     * modes, so tools/bench_diff.py ignores the prefix).
     */
    void registerMetrics(MetricsRegistry &registry) const override;

    /**
     * Machine-level speculation checkpoint. Bulky state (home page
     * frames under a diff apply, page copies under a deposit, lock and
     * barrier manager records) is captured lazily through the
     * SpecWriteLog at the handler/delivery mutation sites; the eager
     * snapshot covers only what every speculation window plausibly
     * touches — the base ProtoStats shard, the SIMD telemetry shard
     * and, per owned node, the diff-ack words, the stashed sync VC and
     * a buffer-pool mark. Fiber-only state (twins, dirty sets,
     * intervals, the notice arena) needs nothing: fibers never run
     * inside a speculation window (machine/node.cc specBarrier).
     */
    void saveSpecState(int partition,
                       const std::vector<NodeId> &owned) override;
    void restoreSpecState(int partition,
                          const std::vector<NodeId> &owned) override;

  private:
    /** Vector timestamp: per node, the number of its intervals seen. */
    using Vc = std::vector<std::uint32_t>;

    /** Page access state on one node. */
    enum class PState : std::uint8_t { Invalid, ReadOnly, ReadWrite };

    /** One node's copy of one page. Home nodes use the home store. */
    struct PageCopy
    {
        PState state = PState::Invalid;
        bool dirty = false;
        /** Empty on the page's home. 32-byte aligned (SIMD contract). */
        AlignedBytes data;
        AlignedBytes twin; ///< non-empty while writable; 32-byte aligned
        /**
         * Which chunks of the page were written since the twin was
         * made (host-side diff accelerator; bit c covers bytes
         * [c << chunkShift, (c+1) << chunkShift)). Chunks with a clear
         * bit are guaranteed byte-identical to the twin, so the diff
         * scan skips them. Reset whenever the twin is discarded.
         */
        std::uint64_t dirtyChunks = 0;
    };

    /**
     * A closed interval: the pages its node dirtied. The page list is
     * a view into the writing node's NoticeArena (stable for the run),
     * so appending an interval record costs no heap allocation.
     */
    struct IntervalRec
    {
        const PageId *pages = nullptr;
        std::uint32_t numPages = 0;

        const PageId *begin() const { return pages; }
        const PageId *end() const { return pages + numPages; }
    };

    /** Per-node protocol state. */
    struct NodeState
    {
        std::vector<PageCopy> pages;
        Vc vc;                         ///< seen intervals (own included)
        std::vector<PageId> dirtyPages;///< current interval's dirty set
        /** Pages force-flushed early at an acquire (false sharing);
         *  still announced in the next interval's write notices. */
        std::vector<PageId> earlyFlushed;
        /** Outstanding diff acks the node is waiting for. */
        int pendingAcks = 0;
        bool waitingAcks = false;
        /** Grant/barrier-release payload stashed by data closures. */
        Vc stashedVc;
        /** Recycles twin buffers and diff word vectors (host-side). */
        PageBufferPool pool;
        /** Slab storage for this node's interval page lists. */
        NoticeArena noticeArena;
        /** Scratch page list reused across applyNotices calls. */
        std::vector<PageId> noticeScratch;
    };

    /** A queued lock handoff: who wants the token, with their VC. */
    struct Handoff
    {
        NodeId requester;
        Vc vc;
    };

    /** Per-(lock, node) token state. */
    struct LockNodeState
    {
        bool holdsToken = false;
        bool inCs = false;
        std::deque<Handoff> pending;
    };

    /** Per-lock manager state (lives at lock % numNodes). */
    struct LockState
    {
        NodeId lastRequester = invalidNode; ///< queue tail the token chases
        std::vector<LockNodeState> node;
    };

    /** Per-barrier manager state (lives at barrier % numNodes). */
    struct BarrierState
    {
        int arrived = 0;
        std::vector<Vc> arrivedVc;
        Vc prevMerged; ///< merged VC at the previous episode
    };

    PageCopy &pageCopy(NodeId n, PageId p);
    NodeState &nodeState(NodeId n);
    LockState &lockState(LockId l);
    BarrierState &barrierState(BarrierId b);

    NodeId lockManager(LockId l) const;
    NodeId barrierManager(BarrierId b) const;

    /** Synthetic address of the twin buffer (cache pollution model). */
    GlobalAddr twinAddr(PageId p) const;

    /** Charge a batched mprotect covering @p num_pages pages. */
    void chargeProtect(NodeEnv &env, std::uint64_t num_pages);

    /** Fetch page @p p from its home into @p n's copy; blocks. */
    void fetchPage(ProcEnv &env, PageId p);

    /** Create the twin of page @p p on node env.node(). */
    void makeTwin(ProcEnv &env, PageId p, PageCopy &pc);

    /** Return @p pc's twin to @p n's pool and clear the dirty bitmap. */
    void discardTwin(NodeId n, PageCopy &pc);

    /** Node @p n's access fast path, or nullptr when disabled. */
    FastPath *fastPath(NodeId n) { return procs[n]->fastPath(); }

    /** Publish @p n's resolved copy of @p p to its fast path. */
    void installFast(NodeId n, PageId p, PageCopy &pc);
    /** Publish a home-store mapping of @p p on its home node @p n. */
    void installFastHome(NodeId n, PageId p, bool writable);
    /** Drop any fast-path entry covering @p p on node @p n. */
    void invalidateFastPage(NodeId n, PageId p);

    /** Transition @p p to ReadWrite on env.node(), twinning if needed. */
    void enableWrite(ProcEnv &env, PageId p, PageCopy &pc);

    /**
     * Compute @p p's diff on node @p n against its twin (charging env),
     * send it to the home, and count one pending ack.
     * @pre the page is dirty and not homed at n
     */
    void sendDiff(NodeEnv &env, NodeId n, PageId p, PageCopy &pc);

    /** Apply @p words (offset, value) pairs to @p p's home copy. */
    void applyDiff(NodeEnv &env, PageId p,
                   const std::vector<std::pair<std::uint32_t,
                                               std::uint32_t>> &words);

    /**
     * Close the current interval: diff every dirty page to its home,
     * wait for acks, append the interval record and advance the VC.
     * Wait time lands in @p wait_bucket.
     */
    void flushInterval(ProcEnv &env, TimeBucket wait_bucket);

    /** Block @p env until all pending diff acks arrive. */
    void waitForAcks(ProcEnv &env, TimeBucket wait_bucket);

    /** Count write-notice pages node @p n lacks relative to @p have. */
    std::uint64_t countMissingNotices(const Vc &have, const Vc &upto) const;

    /**
     * Invalidate the pages named by notices in (ns.vc, new_vc],
     * force-flushing dirty falsely-shared pages, then merge VCs.
     */
    void applyNotices(ProcEnv &env, const Vc &new_vc,
                      TimeBucket wait_bucket);

    /** Grant the lock token to the head waiter if possible. */
    void tryGrant(NodeEnv &env, LockId lock);

    /** Statistics/size helper: wrap sendRequest with byte accounting. */
    void sendReq(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                 HandlerFn fn, TimeBucket bucket);
    /** Statistics/size helper: wrap sendData with byte accounting. */
    void sendDat(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                 DataFn fn, TimeBucket bucket);

    AddressSpace &space;
    ProtoParams params;
    std::vector<ProcEnv *> procs;
    int numNodes;
    std::uint32_t pageBytes;
    std::uint32_t wordsPerPage;

    std::vector<NodeState> nodes;
    /**
     * Global interval log: intervals[n][k] is node n's interval k+1.
     * Appended only by node n; other nodes read records below counts
     * they learned from n's vector clocks, so the inner container must
     * keep elements at stable addresses while n appends (StableVector).
     */
    std::vector<StableVector<IntervalRec>> intervals;
    /**
     * Invariant-checker state (SWSM_CHECK): per (page, writer), the
     * interval sequence number of the last diff applied at the home —
     * diffs must arrive in interval order (FIFO channel semantics).
     * Flat array keyed page-index × node (grown on demand); the old
     * std::map cost a red-black-tree walk per diff on the hot path.
     */
    std::vector<std::uint32_t> lastDiffSeq;
    /** The lastDiffSeq slot for (@p p, @p n), growing the array. */
    std::uint32_t &lastDiffSeqAt(PageId p, NodeId n);
    std::vector<std::unique_ptr<LockState>> locks;
    std::vector<std::unique_ptr<BarrierState>> barriers;

    /** VC bytes on the wire (paper-faithful sizing of sync messages). */
    std::uint32_t vcBytes() const { return 4u * numNodes; }

    /**
     * Host-side SIMD kernel telemetry (mem.simd_*). Counts calls and
     * bytes handed to the dispatched diff/twin/apply kernels; sharded
     * because diff application runs on the home node's partition.
     * These legitimately differ between host modes (SWSM_FASTPATH
     * changes how many bytes the diff scan visits), so bench_diff.py
     * ignores the mem.simd_ prefix in equivalence checks.
     */
    struct SimdStats
    {
        ShardedCounter diffScanCalls;
        ShardedCounter diffScanBytes;
        ShardedCounter twinCopyCalls;
        ShardedCounter twinCopyBytes;
        ShardedCounter applyCalls;
        ShardedCounter applyWords;
        ShardedCounter pageCopyCalls;
        ShardedCounter pageCopyBytes;
    };
    SimdStats simdStats_;

    /** One node's slice of the eager speculation checkpoint. */
    struct SpecNodeSnap
    {
        int pendingAcks;
        bool waitingAcks;
        Vc stashedVc;
        PageBufferPool::Mark pool;
    };
    /** Per-partition checkpoints (parallel to the owned-node list). */
    std::array<std::vector<SpecNodeSnap>, ShardedCounter::maxStatShards>
        specNodeSnap_;
    std::array<std::array<std::uint64_t, 8>, ShardedCounter::maxStatShards>
        specSimdSnap_{};

    /** Apply @p fn to every SimdStats counter, in declaration order. */
    template <typename Fn>
    void
    forEachSimdCounter(Fn &&fn)
    {
        fn(simdStats_.diffScanCalls);
        fn(simdStats_.diffScanBytes);
        fn(simdStats_.twinCopyCalls);
        fn(simdStats_.twinCopyBytes);
        fn(simdStats_.applyCalls);
        fn(simdStats_.applyWords);
        fn(simdStats_.pageCopyCalls);
        fn(simdStats_.pageCopyBytes);
    }

    /** log2 of the dirty-chunk size (64 chunks per page, min 8 B). */
    std::uint32_t diffChunkShift_ = 0;
    /**
     * Use the chunk-skipping diff scan. Tied to the fast path being on
     * so SWSM_FASTPATH=0 exercises the reference word loop end to end.
     */
    bool hostFastDiff_ = false;
};

} // namespace swsm

#endif // SWSM_PROTO_HLRC_HLRC_HH
