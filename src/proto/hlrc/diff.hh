/**
 * @file
 * Twin-vs-data diff scan kernels for HLRC.
 *
 * Two host implementations of the same simulated operation (comparing
 * a page against its twin word by word and collecting the words that
 * changed):
 *
 *  - scanFull: a dense sweep of the whole page, used when the fast
 *    path is disabled (SWSM_FASTPATH=0);
 *  - scanChunks: visits only the chunks the write path marked in the
 *    page's dirty-chunk bitmap (merging adjacent dirty chunks into
 *    maximal runs), so clean regions of a mostly-clean page are never
 *    touched.
 *
 * Both delegate the byte work to the runtime-dispatched SIMD kernels
 * of mem/simd.hh (AVX2 with a bit-equivalent scalar fallback,
 * SWSM_SIMD=0 forcing scalar), and both produce the identical word
 * list (ascending offsets), so the diff message bytes, apply order and
 * every simulated charge are the same; only host time differs.
 * bench/micro_hotpath measures the variants head to head.
 */

#ifndef SWSM_PROTO_HLRC_DIFF_HH
#define SWSM_PROTO_HLRC_DIFF_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace swsm::hlrcdiff
{

using DiffWords = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/** log2 of the dirty-chunk size for @p page_bytes (<= 64 chunks). */
std::uint32_t chunkShift(std::uint32_t page_bytes);

/** Full word-wise scan of @p page_bytes; appends (word, value). */
void scanFull(const std::uint8_t *cur, const std::uint8_t *twin,
              std::uint32_t page_bytes, DiffWords &out);

/**
 * Chunk-skipping scan restricted to the chunks set in
 * @p dirty_chunks; appends (word, value) in ascending word order.
 * @pre every word differing from the twin lies in a marked chunk
 */
void scanChunks(const std::uint8_t *cur, const std::uint8_t *twin,
                std::uint32_t page_bytes, std::uint32_t chunk_shift,
                std::uint64_t dirty_chunks, DiffWords &out);

/**
 * True if the chunks NOT set in @p dirty_chunks are byte-identical to
 * the twin (the precondition scanChunks relies on; checked under
 * SWSM_CHECK).
 */
bool cleanChunksMatch(const std::uint8_t *cur, const std::uint8_t *twin,
                      std::uint32_t page_bytes, std::uint32_t chunk_shift,
                      std::uint64_t dirty_chunks);

} // namespace swsm::hlrcdiff

#endif // SWSM_PROTO_HLRC_DIFF_HH
