#include "ideal.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "check/check.hh"
#include "machine/fast_path.hh"
#include "sim/log.hh"

namespace swsm
{

IdealProtocol::IdealProtocol(AddressSpace &space,
                             std::vector<ProcEnv *> procs)
    : space(space), procs(std::move(procs)),
      numNodes(space.numNodes())
{
    if (static_cast<int>(this->procs.size()) != numNodes)
        SWSM_FATAL("Ideal protocol needs one ProcEnv per node");
    // Copy-first to match the access sequence below (memcpy, then
    // chargeSharedAccess). The backing store is still empty here;
    // installFastGlobal publishes it on the first slow access.
    for (ProcEnv *pe : this->procs) {
        if (FastPath *f = pe->fastPath())
            f->configure(std::countr_zero(space.pageBytes()), true);
    }
}

void
IdealProtocol::installFastGlobal(NodeId n)
{
    FastPath *f = procs[n]->fastPath();
    if (!f || space.size() == 0)
        return;
    f->installGlobal(0, space.size(), space.homeBytes(0), true);
}

IdealProtocol::LockState &
IdealProtocol::lockState(LockId l)
{
    if (locks.size() <= static_cast<std::size_t>(l))
        locks.resize(l + 1);
    if (!locks[l])
        locks[l] = std::make_unique<LockState>();
    return *locks[l];
}

IdealProtocol::BarrierState &
IdealProtocol::barrierState(BarrierId b)
{
    if (barriers.size() <= static_cast<std::size_t>(b))
        barriers.resize(b + 1);
    if (!barriers[b])
        barriers[b] = std::make_unique<BarrierState>();
    return *barriers[b];
}

void
IdealProtocol::read(ProcEnv &env, GlobalAddr addr, void *out,
                    std::uint32_t bytes)
{
    std::memcpy(out, space.homeBytes(addr), bytes);
    installFastGlobal(env.node());
    env.chargeSharedAccess(addr, false);
}

void
IdealProtocol::write(ProcEnv &env, GlobalAddr addr, const void *in,
                     std::uint32_t bytes)
{
    std::memcpy(space.homeBytes(addr), in, bytes);
    installFastGlobal(env.node());
    env.chargeSharedAccess(addr, true);
}

void
IdealProtocol::readRange(ProcEnv &env, GlobalAddr addr, void *out,
                         std::uint64_t bytes)
{
    std::memcpy(out, space.homeBytes(addr), bytes);
    installFastGlobal(env.node());
    env.charge((bytes + wordBytes - 1) / wordBytes, TimeBucket::Busy);
    env.chargeCacheRange(addr, bytes, false, TimeBucket::StallLocal);
}

void
IdealProtocol::writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                          std::uint64_t bytes)
{
    std::memcpy(space.homeBytes(addr), in, bytes);
    installFastGlobal(env.node());
    env.charge((bytes + wordBytes - 1) / wordBytes, TimeBucket::Busy);
    env.chargeCacheRange(addr, bytes, true, TimeBucket::StallLocal);
}

void
IdealProtocol::acquire(ProcEnv &env, LockId lock)
{
    stats_.lockRequests.inc();
    LockState &ls = lockState(lock);
    if (!ls.held) {
        ls.held = true;
        env.charge(1, TimeBucket::Busy);
        return;
    }
    ls.queue.push_back(env.node());
    env.block(TimeBucket::LockWait);
}

void
IdealProtocol::release(ProcEnv &env, LockId lock)
{
    LockState &ls = lockState(lock);
    if (!ls.held)
        SWSM_PANIC("ideal lock %d released while free", lock);
    env.charge(1, TimeBucket::Busy);
    if (ls.queue.empty()) {
        ls.held = false;
        return;
    }
    const NodeId next = ls.queue.front();
    ls.queue.pop_front();
    stats_.lockHandoffs.inc();
    procs[next]->unblock(env.now());
}

void
IdealProtocol::barrier(ProcEnv &env, BarrierId barrier)
{
    BarrierState &bs = barrierState(barrier);
    env.charge(1, TimeBucket::Busy);
    if (++bs.arrived < numNodes) {
        bs.waiting.push_back(env.node());
        env.block(TimeBucket::BarrierWait);
        return;
    }
    stats_.barrierEpisodes.inc();
    bs.arrived = 0;
    for (NodeId w : bs.waiting)
        procs[w]->unblock(env.now());
    bs.waiting.clear();
}

void
IdealProtocol::debugRead(GlobalAddr addr, void *out, std::uint64_t bytes)
{
    space.initRead(addr, out, bytes);
}

void
IdealProtocol::checkQuiescent() const
{
    for (std::size_t l = 0; l < locks.size(); ++l) {
        if (!locks[l])
            continue;
        SWSM_INVARIANT(!locks[l]->held,
                       "ideal lock %zu still held at end of run", l);
        SWSM_INVARIANT(locks[l]->queue.empty(),
                       "ideal lock %zu ended with %zu queued waiters", l,
                       locks[l]->queue.size());
    }
    for (const auto &bs : barriers) {
        if (!bs)
            continue;
        SWSM_INVARIANT(bs->arrived == 0 && bs->waiting.empty(),
                       "ideal barrier ended with %d arrivals and %zu "
                       "waiters pending",
                       bs->arrived, bs->waiting.size());
    }
}

} // namespace swsm
