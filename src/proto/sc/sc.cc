#include "sc.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "check/check.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{
constexpr std::uint32_t smallPayload = 8;
} // namespace

ScProtocol::ScProtocol(AddressSpace &space, const ProtoParams &params,
                       std::vector<ProcEnv *> procs,
                       Cycles access_check_cycles)
    : space(space), params(params), procs(std::move(procs)),
      numNodes(space.numNodes()), blockBytes(space.blockBytes()),
      accessCheckCycles(access_check_cycles)
{
    if (static_cast<int>(this->procs.size()) != numNodes)
        SWSM_FATAL("SC needs one ProcEnv per node");
    if (numNodes > 32)
        SWSM_FATAL("SC directory sharer bitmask supports up to 32 nodes");
    nodeBlocks.resize(numNodes);
    pendingApply.resize(numNodes);

    // Block-indexed fast paths, copy-first to match the hit sequence
    // (memcpy, then chargeSharedAccess). See useFastPath_ for why a
    // nonzero access-check cost disables installs.
    useFastPath_ = accessCheckCycles == 0;
    if (useFastPath_) {
        for (ProcEnv *pe : this->procs) {
            if (FastPath *f = pe->fastPath())
                f->configure(std::countr_zero(blockBytes), true);
        }
    }
}

void
ScProtocol::installFast(NodeId n, BlockId b)
{
    if (!useFastPath_)
        return;
    FastPath *f = procs[n]->fastPath();
    if (!f)
        return;
    const GlobalAddr base = space.blockBase(b);
    f->install(base, base + blockBytes, localBytes(n, base),
               writeHit(n, b));
}

void
ScProtocol::invalidateFast(NodeId n, BlockId b)
{
    if (!useFastPath_)
        return;
    if (FastPath *f = procs[n]->fastPath()) {
        const GlobalAddr base = space.blockBase(b);
        f->invalidateRange(base, base + blockBytes);
    }
}

void
ScProtocol::prepareRun(int partitions, int num_locks, int num_barriers)
{
    partitions_ = partitions;
    // Pre-size every lazily-grown table: under the parallel engine the
    // home's grant decision inspects the requester's copy state, and
    // that lookup must never regrow the requester's block vector from
    // another partition. Creation matches the lazy paths exactly, so
    // simulated behavior and stats are unchanged.
    for (auto &blocks : nodeBlocks)
        blocks.resize(space.numBlocks());
    dir.resize(space.numBlocks());
    for (LockId l = 0; l < num_locks; ++l)
        lockState(l);
    for (BarrierId b = 0; b < num_barriers; ++b)
        barrierState(b);
}

ScProtocol::BlockCopy &
ScProtocol::blockCopy(NodeId n, BlockId b)
{
    auto &blocks = nodeBlocks.at(n);
    if (blocks.size() <= b)
        blocks.resize(std::max<std::size_t>(space.numBlocks(), b + 1));
    return blocks[b];
}

ScProtocol::DirEntry &
ScProtocol::dirEntry(BlockId b)
{
    if (dir.size() <= b)
        dir.resize(std::max<std::size_t>(space.numBlocks(), b + 1));
    return dir[b];
}

ScProtocol::LockState &
ScProtocol::lockState(LockId l)
{
    if (locks.size() <= static_cast<std::size_t>(l))
        locks.resize(l + 1);
    if (!locks[l])
        locks[l] = std::make_unique<LockState>();
    return *locks[l];
}

ScProtocol::BarrierState &
ScProtocol::barrierState(BarrierId b)
{
    if (barriers.size() <= static_cast<std::size_t>(b))
        barriers.resize(b + 1);
    if (!barriers[b])
        barriers[b] = std::make_unique<BarrierState>();
    return *barriers[b];
}

std::uint8_t *
ScProtocol::localBytes(NodeId n, GlobalAddr addr)
{
    const BlockId b = space.blockOf(addr);
    if (space.blockHome(b) == n)
        return space.homeBytes(addr);
    BlockCopy &bc = blockCopy(n, b);
    return bc.data.data() + (addr - space.blockBase(b));
}

bool
ScProtocol::readHit(NodeId n, BlockId b)
{
    if (space.blockHome(b) == n) {
        const DirEntry &d = dirEntry(b);
        return !d.busy &&
               !(d.state == DirEntry::DState::Excl && d.owner != n);
    }
    return blockCopy(n, b).state != BState::Invalid;
}

bool
ScProtocol::writeHit(NodeId n, BlockId b)
{
    if (space.blockHome(b) == n) {
        const DirEntry &d = dirEntry(b);
        return !d.busy &&
               (d.state == DirEntry::DState::Idle ||
                (d.state == DirEntry::DState::Excl && d.owner == n));
    }
    return blockCopy(n, b).state == BState::Excl;
}

void
ScProtocol::chargeAccessCheck(ProcEnv &env)
{
    if (accessCheckCycles)
        env.charge(accessCheckCycles, TimeBucket::ProtoOther);
}

void
ScProtocol::sendReq(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                    HandlerFn fn, TimeBucket bucket)
{
    stats_.protoMsgs.inc();
    stats_.protoBytes.inc(bytes);
    env.sendRequest(dst, bytes, std::move(fn), bucket);
}

void
ScProtocol::sendDat(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                    DataFn fn, TimeBucket bucket)
{
    stats_.protoMsgs.inc();
    stats_.protoBytes.inc(bytes);
    env.sendData(dst, bytes, std::move(fn), bucket);
}

// ---------------------------------------------------------------------
// Miss transactions
// ---------------------------------------------------------------------

void
ScProtocol::runPendingApply(NodeId n)
{
    if (pendingApply[n]) {
        specSnapshot(specLog_, pendingApply[n]);
        pendingApply[n]();
        pendingApply[n] = nullptr;
    }
}

void
ScProtocol::grant(NodeEnv &henv, BlockId b, bool with_data)
{
    DirEntry &d = dirEntry(b);
    const NodeId n = d.requester;
    const bool write = d.reqWrite;
    const GlobalAddr base = space.blockBase(b);
    const NodeId home = space.blockHome(b);

    if (with_data && n != home) {
        std::vector<std::uint8_t> snap(space.homeBytes(base),
                                       space.homeBytes(base) + blockBytes);
        sendDat(henv, n, blockBytes,
                [this, n, b, base, write,
                 snap = std::move(snap)](Cycles t) {
                    BlockCopy &bc = blockCopy(n, b);
                    specSnapshot(specLog_, bc);
                    bc.data.assign(snap.begin(), snap.end());
                    bc.state = write ? BState::Excl : BState::Shared;
                    procs[n]->invalidateCacheRange(base, blockBytes);
                    runPendingApply(n);
                    procs[n]->unblock(t);
                },
                TimeBucket::ProtoHandler);
    } else {
        // Permission-only grant (upgrade, or the requester is the home).
        sendDat(henv, n, smallPayload,
                [this, n, b, base, write, home](Cycles t) {
                    if (n != home) {
                        BlockCopy &bc = blockCopy(n, b);
                        specSnapshot(specLog_, bc);
                        bc.state = write ? BState::Excl : BState::Shared;
                    } else if (specLog_ && specLog_->active()) {
                        // The home's pending apply writes straight into
                        // the backing store.
                        specLog_->willWriteBytes(space.homeBytes(base),
                                                 blockBytes);
                    }
                    runPendingApply(n);
                    procs[n]->unblock(t);
                },
                TimeBucket::ProtoHandler);
    }
}

void
ScProtocol::checkDirInvariant(BlockId b) const
{
    if (!check::enabled())
        return;
    const DirEntry &d = dir[b];
    const NodeId home = space.blockHome(b);
    const auto bid = static_cast<unsigned long long>(b);

    switch (d.state) {
      case DirEntry::DState::Idle:
        SWSM_INVARIANT(d.sharers == 0 && d.owner == invalidNode,
                       "idle directory entry for block %llu has "
                       "sharers %#x owner %d",
                       bid, d.sharers, d.owner);
        break;
      case DirEntry::DState::Shared:
        SWSM_INVARIANT(d.owner == invalidNode,
                       "shared block %llu has an owner (%d)", bid,
                       d.owner);
        SWSM_INVARIANT(d.sharers != 0,
                       "shared block %llu has an empty sharer set", bid);
        SWSM_INVARIANT(!(d.sharers & (1u << home)),
                       "home %d of block %llu is in its own sharer set",
                       home, bid);
        break;
      case DirEntry::DState::Excl:
        SWSM_INVARIANT(d.sharers == 0,
                       "exclusive block %llu has sharers %#x", bid,
                       d.sharers);
        SWSM_INVARIANT(d.owner >= 0 && d.owner < numNodes,
                       "exclusive block %llu has invalid owner %d", bid,
                       d.owner);
        break;
    }

    // Every valid remote copy must be covered by the directory. A copy
    // granted by the just-finished transaction installs at delivery
    // time, so a Shared copy under an Excl entry owned by the same
    // node (upgrade grant in flight) is legal.
    //
    // Scanning all nodes' copies from the home is only race-free when
    // the run is single-partition (an unrelated in-flight grant may be
    // installing a copy concurrently); partitioned runs defer this
    // direction to the post-run checkQuiescent pass, which runs after
    // prepareRun(1, ...) restores the serial view.
    if (partitions_ > 1)
        return;
    for (NodeId n = 0; n < numNodes; ++n) {
        if (n == home || b >= nodeBlocks[n].size())
            continue;
        const BlockCopy &bc = nodeBlocks[n][b];
        if (bc.state == BState::Excl) {
            SWSM_INVARIANT(d.state == DirEntry::DState::Excl &&
                               d.owner == n,
                           "node %d holds an exclusive copy of block "
                           "%llu the directory does not record",
                           n, bid);
        } else if (bc.state == BState::Shared) {
            SWSM_INVARIANT((d.state == DirEntry::DState::Shared &&
                            (d.sharers & (1u << n))) ||
                               (d.state == DirEntry::DState::Excl &&
                                d.owner == n),
                           "node %d holds a shared copy of block %llu "
                           "the directory does not record",
                           n, bid);
        }
    }
}

void
ScProtocol::finish(NodeEnv &henv, BlockId b)
{
    checkDirInvariant(b);
    DirEntry &d = dirEntry(b);
    specSnapshot(specLog_, d);
    d.busy = false;
    d.requester = invalidNode;
    if (!d.waiters.empty()) {
        auto [n, write] = d.waiters.front();
        d.waiters.pop_front();
        handleRequest(henv, b, n, write);
    }
}

void
ScProtocol::handleRequest(NodeEnv &henv, BlockId b, NodeId requester,
                          bool write)
{
    DirEntry &d = dirEntry(b);
    specSnapshot(specLog_, d);
    if (d.busy) {
        d.waiters.emplace_back(requester, write);
        return;
    }
    d.busy = true;
    d.requester = requester;
    d.reqWrite = write;
    const NodeId home = space.blockHome(b);
    const GlobalAddr base = space.blockBase(b);
    // A busy directory entry makes home accesses miss, so the home's
    // inline fast path must stop hitting for the transaction's
    // duration (and until a later hit reinstalls).
    invalidateFast(home, b);

    if (d.state == DirEntry::DState::Excl && d.owner != requester) {
        // Home-centric recall: the owner writes back through the home,
        // and the home issues the grant. Routing every grant through
        // the home keeps grants and later invalidations/recalls to the
        // same node on one FIFO channel, so a grant can never be
        // overtaken by an invalidation for the same block (the classic
        // 3-hop forwarding race).
        const NodeId o = d.owner;
        sendReq(henv, o, smallPayload,
                [this, b, base, write, home](NodeEnv &oenv) {
                    stats_.handlersRun.inc();
                    oenv.charge(params.scHandlerBase,
                                TimeBucket::ProtoHandler);
                    const NodeId o2 = oenv.node();
                    std::uint8_t *src = localBytes(o2, base);
                    std::vector<std::uint8_t> snap(src, src + blockBytes);
                    oenv.chargeCacheRange(base, blockBytes, false,
                                          TimeBucket::ProtoHandler);
                    if (o2 != home) {
                        BlockCopy &obc = blockCopy(o2, b);
                        specSnapshot(specLog_, obc);
                        obc.state = write ? BState::Invalid
                                          : BState::Shared;
                        // Recalls downgrade the owner; a writable
                        // fast-path entry must not survive either way.
                        invalidateFast(o2, b);
                        if (write)
                            oenv.invalidateCacheRange(base, blockBytes);
                    }

                    // Writeback to the home, which updates the
                    // directory and issues the grant.
                    sendReq(oenv, home, smallPayload + blockBytes,
                            [this, b, base, o2,
                             write, snap](NodeEnv &henv2) {
                                stats_.handlersRun.inc();
                                henv2.charge(params.scHandlerBase,
                                             TimeBucket::ProtoHandler);
                                if (specLog_ && specLog_->active()) {
                                    specLog_->willWriteBytes(
                                        space.homeBytes(base), blockBytes);
                                }
                                std::memcpy(space.homeBytes(base),
                                            snap.data(), snap.size());
                                henv2.chargeCacheRange(
                                    base, blockBytes, true,
                                    TimeBucket::ProtoHandler);
                                DirEntry &d2 = dirEntry(b);
                                specSnapshot(specLog_, d2);
                                const NodeId r = d2.requester;
                                const NodeId h2 = space.blockHome(b);
                                if (write) {
                                    d2.state = DirEntry::DState::Excl;
                                    d2.owner = r;
                                    d2.sharers = 0;
                                } else {
                                    d2.state = DirEntry::DState::Shared;
                                    d2.owner = invalidNode;
                                    d2.sharers = 0;
                                    if (o2 != h2)
                                        d2.sharers |= 1u << o2;
                                    if (r != h2)
                                        d2.sharers |= 1u << r;
                                }
                                grant(henv2, b, r != h2);
                                finish(henv2, b);
                            },
                            TimeBucket::ProtoHandler);
                },
                TimeBucket::ProtoHandler);
        return;
    }

    if (!write) {
        // Read from Idle/Shared: the home store is valid.
        if (requester != home) {
            d.state = DirEntry::DState::Shared;
            d.sharers |= 1u << requester;
        }
        grant(henv, b, requester != home);
        finish(henv, b);
        return;
    }

    // Write to Idle/Shared (or upgrade): invalidate other sharers.
    const std::uint32_t targets = d.sharers & ~(1u << requester);
    if (targets == 0) {
        const bool with_data = requester != home &&
            blockCopy(requester, b).state == BState::Invalid;
        d.state = DirEntry::DState::Excl;
        d.owner = requester;
        d.sharers = 0;
        grant(henv, b, with_data);
        finish(henv, b);
        return;
    }

    d.pendingAcks = std::popcount(targets);
    henv.charge(static_cast<Cycles>(d.pendingAcks) * params.listPerElem,
                TimeBucket::ProtoHandler);
    stats_.invalidations.inc(d.pendingAcks);
    for (NodeId s = 0; s < numNodes; ++s) {
        if (!(targets & (1u << s)))
            continue;
        sendReq(henv, s, smallPayload,
                [this, b, base, home](NodeEnv &senv) {
                    stats_.handlersRun.inc();
                    senv.charge(params.scHandlerBase,
                                TimeBucket::ProtoHandler);
                    const NodeId s2 = senv.node();
                    // Fault injection (harness only): keep the stale
                    // copy readable but still ack, breaking SC.
                    if (!check::faultPlan().skipScInvalidate) {
                        if (s2 != home) {
                            BlockCopy &bc = blockCopy(s2, b);
                            specSnapshot(specLog_, bc);
                            bc.state = BState::Invalid;
                            invalidateFast(s2, b);
                        }
                        senv.invalidateCacheRange(base, blockBytes);
                    }
                    // Ack back to the home.
                    sendReq(senv, home, smallPayload,
                            [this, b](NodeEnv &henv2) {
                                stats_.handlersRun.inc();
                                henv2.charge(params.scHandlerBase,
                                             TimeBucket::ProtoHandler);
                                DirEntry &d2 = dirEntry(b);
                                specSnapshot(specLog_, d2);
                                SWSM_INVARIANT(
                                    d2.pendingAcks > 0,
                                    "unexpected invalidation ack for "
                                    "block %llu",
                                    static_cast<unsigned long long>(b));
                                if (--d2.pendingAcks > 0)
                                    return;
                                const NodeId r = d2.requester;
                                const NodeId h2 =
                                    space.blockHome(b);
                                const bool with_data = r != h2 &&
                                    blockCopy(r, b).state ==
                                        BState::Invalid;
                                d2.state = DirEntry::DState::Excl;
                                d2.owner = r;
                                d2.sharers = 0;
                                grant(henv2, b, with_data);
                                finish(henv2, b);
                            },
                            TimeBucket::ProtoHandler);
                },
                TimeBucket::ProtoHandler);
    }
}

void
ScProtocol::miss(ProcEnv &env, BlockId b, bool write,
                 std::function<void()> apply)
{
    const NodeId n = env.node();
    const NodeId home = space.blockHome(b);
    if (write)
        stats_.writeFaults.inc();
    else
        stats_.readFaults.inc();
    stats_.pageFetches.inc();
    pendingApply.at(n) = std::move(apply);

    const Cycles fetch_start = env.now();
    sendReq(env, home, smallPayload,
            [this, b, n, write](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.scHandlerBase, TimeBucket::ProtoHandler);
                handleRequest(henv, b, n, write);
            },
            TimeBucket::ProtoOther);
    env.block(TimeBucket::DataWait);
    if (trace_)
        trace_->complete("block_fetch", "proto", n, fetch_start, env.now(),
                         TraceArg{"block", b},
                         TraceArg{"home", static_cast<std::uint64_t>(home)});
}

// ---------------------------------------------------------------------
// Data access
// ---------------------------------------------------------------------

void
ScProtocol::read(ProcEnv &env, GlobalAddr addr, void *out,
                 std::uint32_t bytes)
{
    const BlockId b = space.blockOf(addr);
    const NodeId n = env.node();
    chargeAccessCheck(env);
    if (readHit(n, b)) {
        std::memcpy(out, localBytes(n, addr), bytes);
        // Install before the charge: the charge may yield into
        // handlers whose invalidation hooks must win over this entry.
        installFast(n, b);
    } else {
        miss(env, b, false, [this, n, addr, out, bytes] {
            std::memcpy(out, localBytes(n, addr), bytes);
        });
    }
    env.chargeSharedAccess(addr, false);
}

void
ScProtocol::write(ProcEnv &env, GlobalAddr addr, const void *in,
                  std::uint32_t bytes)
{
    const BlockId b = space.blockOf(addr);
    const NodeId n = env.node();
    chargeAccessCheck(env);
    if (writeHit(n, b)) {
        std::memcpy(localBytes(n, addr), in, bytes);
        installFast(n, b);
    } else {
        // The store is bound to the grant: it is performed the moment
        // ownership is installed, before anyone can steal the block.
        miss(env, b, true, [this, n, addr, in, bytes] {
            std::memcpy(localBytes(n, addr), in, bytes);
        });
    }
    env.chargeSharedAccess(addr, true);
}

void
ScProtocol::readRange(ProcEnv &env, GlobalAddr addr, void *out,
                      std::uint64_t bytes)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const BlockId b = space.blockOf(a);
        const NodeId n = env.node();
        const GlobalAddr block_end = space.blockBase(b) + blockBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(bytes - done, block_end - a);
        chargeAccessCheck(env);
        if (readHit(n, b)) {
            std::memcpy(dst + done, localBytes(n, a), chunk);
            installFast(n, b);
        } else {
            std::uint8_t *chunk_dst = dst + done;
            miss(env, b, false, [this, n, a, chunk_dst, chunk] {
                std::memcpy(chunk_dst, localBytes(n, a), chunk);
            });
        }
        env.charge((chunk + wordBytes - 1) / wordBytes, TimeBucket::Busy);
        env.chargeCacheRange(a, chunk, false, TimeBucket::StallLocal);
        done += chunk;
    }
}

void
ScProtocol::writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                       std::uint64_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const BlockId b = space.blockOf(a);
        const NodeId n = env.node();
        const GlobalAddr block_end = space.blockBase(b) + blockBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(bytes - done, block_end - a);
        chargeAccessCheck(env);
        if (writeHit(n, b)) {
            std::memcpy(localBytes(n, a), src + done, chunk);
            installFast(n, b);
        } else {
            const std::uint8_t *chunk_src = src + done;
            miss(env, b, true, [this, n, a, chunk_src, chunk] {
                std::memcpy(localBytes(n, a), chunk_src, chunk);
            });
        }
        env.charge((chunk + wordBytes - 1) / wordBytes, TimeBucket::Busy);
        env.chargeCacheRange(a, chunk, true, TimeBucket::StallLocal);
        done += chunk;
    }
}

// ---------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------

void
ScProtocol::acquire(ProcEnv &env, LockId lock)
{
    const NodeId n = env.node();
    const NodeId mgr = static_cast<NodeId>(lock % numNodes);
    stats_.lockRequests.inc();

    const Cycles acquire_start = env.now();
    sendReq(env, mgr, smallPayload,
            [this, lock, n](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.scHandlerBase, TimeBucket::ProtoHandler);
                LockState &ls = lockState(lock);
                specSnapshot(specLog_, ls);
                if (!ls.held) {
                    ls.held = true;
                    ls.holder = n;
                    stats_.lockHandoffs.inc();
                    sendDat(henv, n, smallPayload,
                            [this, n](Cycles t) { procs[n]->unblock(t); },
                            TimeBucket::ProtoHandler);
                } else {
                    ls.queue.push_back(n);
                }
            },
            TimeBucket::ProtoOther);

    env.block(TimeBucket::LockWait);
    if (trace_)
        trace_->complete("lock_acquire", "sync", n, acquire_start, env.now(),
                         TraceArg{"lock", static_cast<std::uint64_t>(lock)});
}

void
ScProtocol::release(ProcEnv &env, LockId lock)
{
    const NodeId n = env.node();
    const NodeId mgr = static_cast<NodeId>(lock % numNodes);

    // SC makes writes visible eagerly, so release is just the lock op
    // (asynchronous: the releaser does not wait for the manager).
    sendReq(env, mgr, smallPayload,
            [this, lock, n](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.scHandlerBase, TimeBucket::ProtoHandler);
                LockState &ls = lockState(lock);
                specSnapshot(specLog_, ls);
                if (!ls.held || ls.holder != n) {
                    SWSM_PANIC("lock %d released by non-holder %d", lock,
                               n);
                }
                if (ls.queue.empty()) {
                    ls.held = false;
                    ls.holder = invalidNode;
                    return;
                }
                const NodeId next = ls.queue.front();
                ls.queue.pop_front();
                ls.holder = next;
                stats_.lockHandoffs.inc();
                sendDat(henv, next, smallPayload,
                        [this, next](Cycles t) {
                            procs[next]->unblock(t);
                        },
                        TimeBucket::ProtoHandler);
            },
            TimeBucket::ProtoOther);
}

void
ScProtocol::barrier(ProcEnv &env, BarrierId barrier)
{
    const NodeId mgr = static_cast<NodeId>(barrier % numNodes);

    const Cycles barrier_start = env.now();
    sendReq(env, mgr, smallPayload,
            [this, barrier](NodeEnv &henv) {
                stats_.handlersRun.inc();
                henv.charge(params.scHandlerBase, TimeBucket::ProtoHandler);
                BarrierState &bs = barrierState(barrier);
                specSnapshot(specLog_, bs);
                if (++bs.arrived < numNodes)
                    return;
                stats_.barrierEpisodes.inc();
                bs.arrived = 0;
                for (NodeId j = 0; j < numNodes; ++j) {
                    sendDat(henv, j, smallPayload,
                            [this, j](Cycles t) { procs[j]->unblock(t); },
                            TimeBucket::ProtoHandler);
                }
            },
            TimeBucket::ProtoOther);

    env.block(TimeBucket::BarrierWait);
    if (trace_)
        trace_->complete("barrier", "sync", env.node(), barrier_start,
                         env.now(),
                         TraceArg{"barrier",
                                  static_cast<std::uint64_t>(barrier)});
}

// ---------------------------------------------------------------------
// Verification access
// ---------------------------------------------------------------------

void
ScProtocol::debugRead(GlobalAddr addr, void *out, std::uint64_t bytes)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const BlockId b = space.blockOf(a);
        const GlobalAddr block_end = space.blockBase(b) + blockBytes;
        const std::uint64_t chunk =
            std::min<std::uint64_t>(bytes - done, block_end - a);
        const bool excl_remote = b < dir.size() &&
            dir[b].state == DirEntry::DState::Excl &&
            dir[b].owner != space.blockHome(b);
        if (excl_remote) {
            const DirEntry &d = dir[b];
            const BlockCopy &bc = blockCopy(d.owner, b);
            std::memcpy(dst + done,
                        bc.data.data() + (a - space.blockBase(b)), chunk);
        } else {
            std::memcpy(dst + done, space.homeBytes(a), chunk);
        }
        done += chunk;
    }
}

void
ScProtocol::checkQuiescent() const
{
    for (std::size_t b = 0; b < dir.size(); ++b) {
        const DirEntry &d = dir[b];
        const auto bid = static_cast<unsigned long long>(b);
        SWSM_INVARIANT(!d.busy,
                       "block %llu ended with a transaction in flight",
                       bid);
        SWSM_INVARIANT(d.waiters.empty(),
                       "block %llu ended with %zu queued requests", bid,
                       d.waiters.size());
        SWSM_INVARIANT(d.pendingAcks == 0,
                       "block %llu ended awaiting %d invalidation acks",
                       bid, d.pendingAcks);
        checkDirInvariant(b);
    }
    for (NodeId n = 0; n < numNodes; ++n) {
        SWSM_INVARIANT(!pendingApply[n],
                       "node %d ended with an uninstalled access", n);
    }
    for (std::size_t l = 0; l < locks.size(); ++l) {
        if (!locks[l])
            continue;
        SWSM_INVARIANT(!locks[l]->held,
                       "lock %zu still held by node %d at end of run", l,
                       locks[l]->holder);
        SWSM_INVARIANT(locks[l]->queue.empty(),
                       "lock %zu ended with %zu queued waiters", l,
                       locks[l]->queue.size());
    }
    for (const auto &bs : barriers) {
        if (!bs)
            continue;
        SWSM_INVARIANT(bs->arrived == 0,
                       "barrier ended with %d arrivals pending",
                       bs->arrived);
    }
}

} // namespace swsm
