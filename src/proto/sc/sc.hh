/**
 * @file
 * Fine-/variable-grained sequentially consistent protocol (SC).
 *
 * A Stache-like directory protocol in the style of many hardware DSM
 * implementations, as used in the paper: sequential consistency at a
 * per-application power-of-two block granularity, software handlers on
 * the main processor, and — following the paper's explicit assumption —
 * *zero-cost* hardware access control (the state check itself is free;
 * an optional per-access instrumentation cost is provided as an
 * extension for Shasta-style software access control studies).
 *
 * Directory (at each block's home): Idle / Shared(sharers) /
 * Excl(owner), with forwarding for 3-hop misses, invalidation-ack
 * collection for writes, and a busy/waiter queue serializing racing
 * requests per block. Caches of remote data live in node memory and are
 * unbounded (Stache uses local DRAM as the cache).
 */

#ifndef SWSM_PROTO_SC_SC_HH
#define SWSM_PROTO_SC_SC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "machine/fast_path.hh"
#include "proto/address_space.hh"
#include "proto/proto_params.hh"
#include "proto/protocol.hh"

namespace swsm
{

/** The paper's fine-grained sequentially consistent protocol. */
class ScProtocol : public Protocol
{
  public:
    /**
     * @param space shared address space (block homes + home store)
     * @param params protocol costs (handler cost; the rest unused by SC)
     * @param procs per-node fiber environments
     * @param access_check_cycles optional per-reference instrumentation
     *        cost (0 = the paper's hardware access control assumption)
     */
    ScProtocol(AddressSpace &space, const ProtoParams &params,
               std::vector<ProcEnv *> procs,
               Cycles access_check_cycles = 0);

    const char *name() const override { return "sc"; }

    void read(ProcEnv &env, GlobalAddr addr, void *out,
              std::uint32_t bytes) override;
    void write(ProcEnv &env, GlobalAddr addr, const void *in,
               std::uint32_t bytes) override;
    void readRange(ProcEnv &env, GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                    std::uint64_t bytes) override;
    void acquire(ProcEnv &env, LockId lock) override;
    void release(ProcEnv &env, LockId lock) override;
    void barrier(ProcEnv &env, BarrierId barrier) override;
    void debugRead(GlobalAddr addr, void *out,
                   std::uint64_t bytes) override;
    void checkQuiescent() const override;

    /**
     * Every SC action executes at the node whose state it touches: the
     * directory is touched only in home handlers, block copies only by
     * the copy's node (handlers and grant deliveries run there), and
     * the home's reads of a requester's copy *state* (grant-with-data
     * decisions) are ordered behind the request/ack message chain the
     * parallel engine turns into a happens-before edge.
     */
    bool partitionSafe() const override { return true; }
    void prepareRun(int partitions, int num_locks,
                    int num_barriers) override;

  private:
    /** Block access state on one node. */
    enum class BState : std::uint8_t { Invalid, Shared, Excl };

    /** One node's cached copy of one block (homes use the home store). */
    struct BlockCopy
    {
        BState state = BState::Invalid;
        std::vector<std::uint8_t> data;
    };

    /** Directory entry at a block's home. */
    struct DirEntry
    {
        enum class DState : std::uint8_t { Idle, Shared, Excl };

        DState state = DState::Idle;
        std::uint32_t sharers = 0; ///< bitmask; numNodes <= 32
        NodeId owner = invalidNode;
        bool busy = false;         ///< a transaction is in flight
        int pendingAcks = 0;
        NodeId requester = invalidNode;
        bool reqWrite = false;
        std::deque<std::pair<NodeId, bool>> waiters;
    };

    /** Per-lock manager state (centralized FIFO queue lock). */
    struct LockState
    {
        bool held = false;
        NodeId holder = invalidNode;
        std::deque<NodeId> queue;
    };

    /** Per-barrier manager state (centralized counter). */
    struct BarrierState
    {
        int arrived = 0;
    };

    BlockCopy &blockCopy(NodeId n, BlockId b);
    DirEntry &dirEntry(BlockId b);
    LockState &lockState(LockId l);
    BarrierState &barrierState(BarrierId b);

    /** Pointer to the current bytes of @p b as seen by node @p n. */
    std::uint8_t *localBytes(NodeId n, GlobalAddr addr);

    /** True if node @p n may read @p b without a transaction. */
    bool readHit(NodeId n, BlockId b);
    /** True if node @p n may write @p b without a transaction. */
    bool writeHit(NodeId n, BlockId b);

    /**
     * Run a miss transaction for (env.node(), b); blocks the fiber.
     * @p apply performs the faulting access and runs at install time
     * (when the grant reaches the node), which guarantees every miss
     * completes its access even under heavy block ping-pong — a
     * blocking-SC processor cannot be starved by invalidations racing
     * its resumption.
     */
    void miss(ProcEnv &env, BlockId b, bool write,
              std::function<void()> apply);

    /** Run and clear node @p n's pending install-time access. */
    void runPendingApply(NodeId n);

    /** Home-side request processing (may start or queue a transaction). */
    void handleRequest(NodeEnv &henv, BlockId b, NodeId requester,
                       bool write);

    /** Complete the current transaction and start a queued waiter. */
    void finish(NodeEnv &henv, BlockId b);

    /**
     * Directory consistency invariants for @p b, checked when a
     * transaction finishes (SWSM_CHECK). Only the grant for the
     * finishing transaction may still be in flight, so the safe
     * direction is "a valid remote copy must be covered by the
     * directory", never the converse.
     */
    void checkDirInvariant(BlockId b) const;

    /** Send the grant (data or permission) to the current requester. */
    void grant(NodeEnv &henv, BlockId b, bool with_data);

    /** Per-reference access-control charge (0 under the paper's model). */
    void chargeAccessCheck(ProcEnv &env);

    /** Publish node @p n's resolved copy of @p b to its fast path. */
    void installFast(NodeId n, BlockId b);
    /** Drop any fast-path entry covering @p b on node @p n. */
    void invalidateFast(NodeId n, BlockId b);

    void sendReq(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                 HandlerFn fn, TimeBucket bucket);
    void sendDat(NodeEnv &env, NodeId dst, std::uint32_t bytes,
                 DataFn fn, TimeBucket bucket);

    AddressSpace &space;
    ProtoParams params;
    std::vector<ProcEnv *> procs;
    int numNodes;
    std::uint32_t blockBytes;
    Cycles accessCheckCycles;
    /**
     * Fast-path installs are enabled only under the paper's zero-cost
     * access-control assumption: a nonzero per-reference check charge
     * must precede the hit test, and a pre-hit charge can yield into
     * handlers, which the inline fast path does not model.
     */
    bool useFastPath_ = false;

    /**
     * Partition count of the current run (see prepareRun); mid-run
     * directory checks that scan all nodes' copies are confined to
     * single-partition runs — the full check still runs post-run via
     * checkQuiescent once the machine resets to the serial view.
     */
    int partitions_ = 1;

    std::vector<std::vector<BlockCopy>> nodeBlocks;
    std::vector<DirEntry> dir;
    /** One outstanding install-time access per (blocking) processor. */
    std::vector<std::function<void()>> pendingApply;
    std::vector<std::unique_ptr<LockState>> locks;
    std::vector<std::unique_ptr<BarrierState>> barriers;
};

} // namespace swsm

#endif // SWSM_PROTO_SC_SC_HH
