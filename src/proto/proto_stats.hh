/**
 * @file
 * Event counters common to the coherence protocols.
 *
 * Time accounting lives in the processors' TimeBucket breakdowns; these
 * counters record protocol *events* (faults, diffs, invalidations,
 * messages by type) used by Table 4 and by the analysis sections.
 */

#ifndef SWSM_PROTO_PROTO_STATS_HH
#define SWSM_PROTO_PROTO_STATS_HH

#include "sim/stats.hh"

namespace swsm
{

/** Protocol event counters (one instance per protocol object). */
struct ProtoStats
{
    Counter readFaults;       ///< read access faults / misses
    Counter writeFaults;      ///< write access faults / misses
    Counter pageFetches;      ///< whole page/block data fetches
    Counter diffsCreated;     ///< diffs computed at releases
    Counter diffWordsCompared;///< words compared during diff creation
    Counter diffWordsWritten; ///< changed words placed into diffs
    Counter diffsApplied;     ///< diffs merged at homes
    Counter twinsCreated;     ///< twins copied
    Counter invalidations;    ///< page/block invalidations performed
    Counter writeNotices;     ///< write notices sent/applied
    Counter lockRequests;     ///< remote lock acquire requests
    Counter lockHandoffs;     ///< lock grants between nodes
    Counter barrierEpisodes;  ///< completed barrier episodes
    Counter handlersRun;      ///< protocol handlers executed
    Counter protoMsgs;        ///< protocol messages sent (all kinds)
    Counter protoBytes;       ///< payload bytes in protocol messages

    void
    reset()
    {
        *this = ProtoStats{};
    }
};

} // namespace swsm

#endif // SWSM_PROTO_PROTO_STATS_HH
