/**
 * @file
 * Event counters common to the coherence protocols.
 *
 * Time accounting lives in the processors' TimeBucket breakdowns; these
 * counters record protocol *events* (faults, diffs, invalidations,
 * messages by type) used by Table 4 and by the analysis sections.
 */

#ifndef SWSM_PROTO_PROTO_STATS_HH
#define SWSM_PROTO_PROTO_STATS_HH

#include "sim/stats.hh"

namespace swsm
{

/**
 * Protocol event counters (one instance per protocol object).
 *
 * Sharded: protocol actions execute on whichever node's context fires
 * the event, so under the parallel engine (sim/pdes.hh) different
 * partitions increment concurrently; the per-thread shards make that
 * race-free and the summed totals are identical to a serial run.
 */
struct ProtoStats
{
    ShardedCounter readFaults;       ///< read access faults / misses
    ShardedCounter writeFaults;      ///< write access faults / misses
    ShardedCounter pageFetches;      ///< whole page/block data fetches
    ShardedCounter diffsCreated;     ///< diffs computed at releases
    ShardedCounter diffWordsCompared;///< words compared during diff creation
    ShardedCounter diffWordsWritten; ///< changed words placed into diffs
    ShardedCounter diffsApplied;     ///< diffs merged at homes
    ShardedCounter twinsCreated;     ///< twins copied
    ShardedCounter invalidations;    ///< page/block invalidations performed
    ShardedCounter writeNotices;     ///< write notices sent/applied
    ShardedCounter lockRequests;     ///< remote lock acquire requests
    ShardedCounter lockHandoffs;     ///< lock grants between nodes
    ShardedCounter barrierEpisodes;  ///< completed barrier episodes
    ShardedCounter handlersRun;      ///< protocol handlers executed
    ShardedCounter protoMsgs;        ///< protocol messages sent (all kinds)
    ShardedCounter protoBytes;       ///< payload bytes in protocol messages

    void
    reset()
    {
        *this = ProtoStats{};
    }

    /**
     * Apply @p fn to every counter, in declaration order. The
     * machine-level speculation saver uses this to checkpoint and
     * restore one partition's shard of every counter without naming
     * them all again (the list must stay in sync with the members).
     */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn)
    {
        fn(readFaults);
        fn(writeFaults);
        fn(pageFetches);
        fn(diffsCreated);
        fn(diffWordsCompared);
        fn(diffWordsWritten);
        fn(diffsApplied);
        fn(twinsCreated);
        fn(invalidations);
        fn(writeNotices);
        fn(lockRequests);
        fn(lockHandoffs);
        fn(barrierEpisodes);
        fn(handlersRun);
        fn(protoMsgs);
        fn(protoBytes);
    }
};

} // namespace swsm

#endif // SWSM_PROTO_PROTO_STATS_HH
