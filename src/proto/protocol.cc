#include "protocol.hh"

#include <algorithm>
#include <cstring>

namespace swsm
{

void
Protocol::readRange(ProcEnv &env, GlobalAddr addr, void *out,
                    std::uint64_t bytes)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        // Stay within one word-aligned word so single-access invariants
        // hold for any protocol granularity.
        const std::uint32_t in_word =
            wordBytes - static_cast<std::uint32_t>(a % wordBytes);
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(in_word, bytes - done));
        read(env, a, dst + done, n);
        done += n;
    }
}

void
Protocol::writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                     std::uint64_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t done = 0;
    while (done < bytes) {
        const GlobalAddr a = addr + done;
        const std::uint32_t in_word =
            wordBytes - static_cast<std::uint32_t>(a % wordBytes);
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(in_word, bytes - done));
        write(env, a, src + done, n);
        done += n;
    }
}

void
Protocol::registerMetrics(MetricsRegistry &registry) const
{
    const auto add = [&registry](const char *name,
                                 const ShardedCounter &c) {
        registry.addCounter(std::string("proto.") + name,
                            [&c] { return c.value(); });
    };
    add("read_faults", stats_.readFaults);
    add("write_faults", stats_.writeFaults);
    add("page_fetches", stats_.pageFetches);
    add("diffs_created", stats_.diffsCreated);
    add("diff_words_compared", stats_.diffWordsCompared);
    add("diff_words_written", stats_.diffWordsWritten);
    add("diffs_applied", stats_.diffsApplied);
    add("twins_created", stats_.twinsCreated);
    add("invalidations", stats_.invalidations);
    add("write_notices", stats_.writeNotices);
    add("lock_requests", stats_.lockRequests);
    add("lock_handoffs", stats_.lockHandoffs);
    add("barrier_episodes", stats_.barrierEpisodes);
    add("handlers_run", stats_.handlersRun);
    add("msgs", stats_.protoMsgs);
    add("bytes", stats_.protoBytes);
}

void
Protocol::saveSpecState(int partition, const std::vector<NodeId> &owned)
{
    (void)owned;
    auto &snap = specStatSnap_[partition];
    snap.clear();
    stats_.forEachCounter(
        [&](ShardedCounter &c) { snap.push_back(c.shardValue(partition)); });
}

void
Protocol::restoreSpecState(int partition, const std::vector<NodeId> &owned)
{
    (void)owned;
    const auto &snap = specStatSnap_[partition];
    std::size_t i = 0;
    stats_.forEachCounter(
        [&](ShardedCounter &c) { c.setShardValue(partition, snap[i++]); });
}

} // namespace swsm
