/**
 * @file
 * Protocol layer cost parameters (the paper's Table 3).
 *
 * All values in cycles of the modeled 1-IPC processor. The named sets:
 *
 *   O = original (measured on the authors' real HLRC implementation)
 *   H = halfway  (every cost halved)
 *   B = best     (every cost zero — idealized hardware protocol support)
 *
 * As with Table 2, the OCR of the paper text dropped digits; the O values
 * are restored from the in-text units and the authors' related work
 * (see DESIGN.md §4.2). Every experiment sweeps these costs, so the
 * conclusions depend on the sweep, not the exact base digits.
 */

#ifndef SWSM_PROTO_PROTO_PARAMS_HH
#define SWSM_PROTO_PROTO_PARAMS_HH

#include "sim/types.hh"

namespace swsm
{

/** Tunable costs of the software coherence protocol layer. */
struct ProtoParams
{
    /** Per-page cost of a protection change (mprotect). */
    Cycles pageProtectPerPage = 200;
    /** Fixed kernel-entry cost per mprotect call (covers a page range). */
    Cycles pageProtectCall = 500;
    /** Diff creation: cost per word compared against the twin. */
    Cycles diffComparePerWord = 10;
    /** Diff creation: additional cost per word written into the diff. */
    Cycles diffWritePerWord = 10;
    /** Diff application at the home: cost per word applied. */
    Cycles diffApplyPerWord = 10;
    /** Twin creation: cost per word copied. */
    Cycles twinPerWord = 10;
    /** Basic protocol handler execution cost. */
    Cycles handlerBase = 1000;
    /** Additional handler cost per traversed list element
     *  (write-notice lists, sharer lists). */
    Cycles listPerElem = 20;
    /**
     * SC protocol handler cost. SC handlers are "very simple" (paper
     * §4.3) and the paper does not run protocol cost variants for SC
     * ("changing the cost of handlers will not really affect
     * performance"), so this cost is fixed and NOT varied by the
     * O/H/B sets.
     */
    Cycles scHandlerBase = 200;

    /** The measured base costs (set O). */
    static ProtoParams original() { return ProtoParams{}; }
    /** All costs halved (set H). */
    static ProtoParams halfway();
    /** All costs zero (set B). */
    static ProtoParams best();

    /** Parameter set from its one-letter name (O/H/B). */
    static ProtoParams fromName(char name);

    /** Interpolate each cost between this and @p other (0 → this). */
    ProtoParams interpolate(const ProtoParams &other, double f) const;
};

} // namespace swsm

#endif // SWSM_PROTO_PROTO_PARAMS_HH
