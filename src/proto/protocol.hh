/**
 * @file
 * The coherence protocol interface between machine and protocol layers.
 *
 * A Protocol implements the shared-address-space programming model on a
 * cluster: timed reads/writes with access control, and lock/barrier
 * synchronization. Calls run on the application fiber of the invoking
 * processor, receive a ProcEnv for time charging / blocking / messaging,
 * and move real bytes (applications compute correct results only if the
 * protocol is correct).
 */

#ifndef SWSM_PROTO_PROTOCOL_HH
#define SWSM_PROTO_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "comm/handler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "proto/proto_stats.hh"
#include "sim/spec_log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{

class FastPath;

/**
 * Application-fiber execution environment: NodeEnv plus the ability to
 * block the calling thread and model its shared-reference costs.
 * Implemented by the machine layer's Node.
 */
class ProcEnv : public NodeEnv
{
  public:
    /**
     * Charge one shared memory reference at @p addr: the 1-IPC issue
     * cycle (Busy) plus any local cache stall (StallLocal).
     */
    virtual void chargeSharedAccess(GlobalAddr addr, bool write) = 0;

    /**
     * Block the calling fiber; time until unblock() is attributed to
     * @p wait_kind (minus protocol handler time stolen meanwhile).
     * Pending handlers are drained before blocking.
     */
    virtual void block(TimeBucket wait_kind) = 0;

    /**
     * Resume the fiber no earlier than @p t (and no earlier than any
     * handler occupancy of the processor). Callable from handler or
     * data-delivery context.
     */
    virtual void unblock(Cycles t) = 0;

    /**
     * The node's access fast path (machine/fast_path.hh), or null when
     * disabled. Protocols that support it configure the table at
     * construction, install entries on slow-path hits and invalidate
     * them on every state transition; protocols that return entries
     * here must keep them coherent or not install at all.
     */
    virtual FastPath *fastPath() { return nullptr; }
};

/** Abstract software shared-memory protocol. */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    /** Protocol name ("hlrc", "sc", "ideal"). */
    virtual const char *name() const = 0;

    /**
     * Timed read of @p bytes at @p addr into @p out. @p bytes must not
     * cross a coherence-unit boundary for the single-access form; use
     * readRange for arbitrary extents.
     */
    virtual void read(ProcEnv &env, GlobalAddr addr, void *out,
                      std::uint32_t bytes) = 0;

    /** Timed write; the mirror of read(). */
    virtual void write(ProcEnv &env, GlobalAddr addr, const void *in,
                       std::uint32_t bytes) = 0;

    /**
     * Timed bulk read of an arbitrary extent; default implementation
     * loops word-wise, protocols override with per-unit fast paths.
     */
    virtual void readRange(ProcEnv &env, GlobalAddr addr, void *out,
                           std::uint64_t bytes);

    /** Timed bulk write; see readRange(). */
    virtual void writeRange(ProcEnv &env, GlobalAddr addr, const void *in,
                            std::uint64_t bytes);

    /** Acquire lock @p lock (blocking). */
    virtual void acquire(ProcEnv &env, LockId lock) = 0;

    /** Release lock @p lock. */
    virtual void release(ProcEnv &env, LockId lock) = 0;

    /** Enter barrier @p barrier; returns when all threads arrived. */
    virtual void barrier(ProcEnv &env, BarrierId barrier) = 0;

    /**
     * Untimed, globally consistent read for verification; gathers the
     * current value wherever it lives (home or owner copy).
     * @pre the machine is quiescent (e.g. after a barrier)
     */
    virtual void debugRead(GlobalAddr addr, void *out,
                           std::uint64_t bytes) = 0;

    /**
     * Verify end-of-run quiescence invariants (no transaction in
     * flight, no pending acks, sync state drained). Called by the
     * machine layer after the event queue drains when invariant
     * checking is enabled (SWSM_CHECK); throws
     * check::InvariantViolation on failure.
     */
    virtual void checkQuiescent() const {}

    /**
     * True when every protocol action touches only the state of the
     * node it executes on (cross-node effects flow exclusively through
     * simulated messages). Required for the parallel event engine
     * (sim/pdes.hh); protocols that reach across nodes directly (Ideal)
     * return false and always run serially.
     */
    virtual bool partitionSafe() const { return false; }

    /**
     * Prepare shared tables for a partitioned run: pre-size every
     * lazily-grown container whose *growth* would race across
     * partitions (directory/page tables, per-lock and per-barrier
     * state for ids below the given bounds), and remember the partition
     * count so checks that legitimately scan other nodes' state can be
     * confined to single-partition runs. Called by the machine layer
     * before every run (with partitions == 1 for serial runs, and again
     * after a parallel run completes so post-run verification sees the
     * serial view).
     */
    virtual void prepareRun(int partitions, int num_locks,
                            int num_barriers)
    {
        (void)partitions;
        (void)num_locks;
        (void)num_barriers;
    }

    /** Protocol event counters. */
    const ProtoStats &stats() const { return stats_; }

    /** Reset event counters (harness: between warmup and timed phase). */
    void resetStats() { stats_.reset(); }

    /**
     * Enable event tracing (faults, fetches, diffs, sync episodes).
     * Null (the default) disables it; emission sites branch on the
     * pointer, so a disabled tracer costs nothing measurable.
     */
    void setTracer(Tracer *tracer) { trace_ = tracer; }

    /**
     * Register every ProtoStats counter under "proto.*". Protocols
     * override to append protocol-specific metrics (calling the base
     * first so the common counters keep their names).
     */
    virtual void registerMetrics(MetricsRegistry &registry) const;

    /**
     * Machine-level speculation support (sim/spec_log.hh). The saver
     * installs the log for the duration of a partitioned run; handler
     * and delivery paths that mutate protocol state consult it so a
     * rollback can undo them. Null outside speculative runs.
     */
    void setSpecLog(SpecWriteLog *log) { specLog_ = log; }

    /**
     * Checkpoint partition @p partition's slice of protocol state —
     * the base implementation snapshots its shard of every ProtoStats
     * counter; protocols with per-node state cheap enough to copy
     * eagerly (HLRC's pending-ack words, pool marks) override and call
     * the base. Rare or bulky state is captured lazily through the
     * SpecWriteLog at the mutation sites instead. Called only from the
     * partition's worker thread, for the nodes in @p owned.
     */
    virtual void saveSpecState(int partition,
                               const std::vector<NodeId> &owned);

    /** Roll partition @p partition back to its last saveSpecState. */
    virtual void restoreSpecState(int partition,
                                  const std::vector<NodeId> &owned);

  protected:
    ProtoStats stats_;
    Tracer *trace_ = nullptr;
    SpecWriteLog *specLog_ = nullptr;

  private:
    /** Per-partition ProtoStats shard checkpoints (declaration order). */
    std::array<std::vector<std::uint64_t>, ShardedCounter::maxStatShards>
        specStatSnap_;
};

} // namespace swsm

#endif // SWSM_PROTO_PROTOCOL_HH
