#include "cluster.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

#include "check/check.hh"
#include "machine/thread.hh"
#include "proto/hlrc/hlrc.hh"
#include "proto/ideal.hh"
#include "proto/sc/sc.hh"
#include "sim/env.hh"
#include "sim/log.hh"

namespace swsm
{

const char *
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Hlrc:
        return "hlrc";
      case ProtocolKind::Sc:
        return "sc";
      case ProtocolKind::Ideal:
        return "ideal";
      default:
        return "unknown";
    }
}

bool
defaultFastPath()
{
    // Validated flag parse: "SWSM_FASTPATH=off" disables the fast path
    // (it used to silently *enable* it — only the literal "0" was
    // recognized) and garbage values warn and keep the default.
    return envFlag("SWSM_FASTPATH", true);
}

int
defaultSimThreads()
{
    // SWSM_PDES=0 is the kill switch that forces the serial kernel
    // regardless of SWSM_SIM_THREADS.
    if (!envFlag("SWSM_PDES", true))
        return 1;
    // Malformed values used to strtol() to 0 and silently fall back to
    // serial; now they warn. The engine's partition limit clamps above.
    return envBoundedInt("SWSM_SIM_THREADS", 1, PdesEngine::maxPartitions,
                         1);
}

bool
defaultPdesPerDest()
{
    return envFlag("SWSM_PDES_PER_DEST", true);
}

int
defaultPdesOptimism()
{
    return envBoundedInt("SWSM_PDES_OPTIMISM", 0, 4096, 0);
}

Cluster::Cluster(const MachineParams &params) : params_(params)
{
    if (params.numProcs <= 0)
        SWSM_FATAL("cluster needs at least one processor");

    // One execution slot per node: every event carries the slot of the
    // node whose state it touches, which is what the parallel engine
    // partitions (and what stamps tie-break on).
    eq.setNumSlots(static_cast<std::uint32_t>(params.numProcs));

    network_ = std::make_unique<Network>(eq, params.numProcs, params.comm);
    msg = std::make_unique<MsgLayer>(*network_);
    space_ = std::make_unique<AddressSpace>(
        params.numProcs, params.pageBytes, params.blockBytes);

    nodes.reserve(params.numProcs);
    std::vector<ProcEnv *> envs;
    for (NodeId n = 0; n < params.numProcs; ++n) {
        nodes.push_back(std::make_unique<Node>(
            n, eq, *msg, params.mem, params.quantum, params.stackBytes,
            params.seed * 0x9e3779b97f4a7c15ULL + n, params.fastPath));
        msg->attachSink(n, nodes.back().get());
        envs.push_back(nodes.back().get());
    }

    switch (params.protocol) {
      case ProtocolKind::Hlrc:
        protocol_ = std::make_unique<HlrcProtocol>(*space_, params.proto,
                                                   envs);
        break;
      case ProtocolKind::Sc:
        protocol_ = std::make_unique<ScProtocol>(
            *space_, params.proto, envs, params.accessCheckCycles);
        break;
      case ProtocolKind::Ideal:
        protocol_ = std::make_unique<IdealProtocol>(*space_, envs);
        break;
      default:
        SWSM_FATAL("unknown protocol kind");
    }

    if (params.trace) {
        tracer_ = std::make_unique<Tracer>();
        network_->setTracer(tracer_.get());
        protocol_->setTracer(tracer_.get());
        for (auto &node : nodes)
            node->setTracer(tracer_.get());
    }

    eq.registerMetrics(registry_);
    network_->registerMetrics(registry_);
    msg->registerMetrics(registry_);
    protocol_->registerMetrics(registry_);
    for (int b = 0; b < numTimeBuckets; ++b) {
        const auto bucket = static_cast<TimeBucket>(b);
        registry_.addCounter(
            std::string("time.") + timeBucketName(bucket),
            [this, bucket] {
                std::uint64_t sum = 0;
                for (const auto &node : nodes)
                    sum += node->bucket(bucket);
                return sum;
            });
    }
    registry_.addCounter("time.total", [this] {
        std::uint64_t sum = 0;
        for (const auto &node : nodes)
            for (int b = 0; b < numTimeBuckets; ++b)
                sum += node->bucket(static_cast<TimeBucket>(b));
        return sum;
    });
    registry_.addCounter("sim.total_cycles", [this] {
        Cycles finish = 0;
        for (const auto &node : nodes)
            finish = std::max(finish, node->finishTime());
        return finish;
    });
    // Host-side fast-path effectiveness. These are the only counters
    // that legitimately differ between fast-path-on and -off runs of
    // the same configuration (tools/bench_diff.py ignores them).
    registry_.addCounter("machine.fastpath_hits", [this] {
        std::uint64_t sum = 0;
        for (const auto &node : nodes)
            sum += node->fastPathTable().hits();
        return sum;
    });
    registry_.addCounter("machine.fastpath_misses", [this] {
        std::uint64_t sum = 0;
        for (const auto &node : nodes)
            sum += node->fastPathTable().misses();
        return sum;
    });
    registry_.addCounter("machine.fastpath_installs", [this] {
        std::uint64_t sum = 0;
        for (const auto &node : nodes)
            sum += node->fastPathTable().installs();
        return sum;
    });
    registry_.addCounter("machine.fastpath_invalidations", [this] {
        std::uint64_t sum = 0;
        for (const auto &node : nodes)
            sum += node->fastPathTable().invalidations();
        return sum;
    });
    // Parallel-engine shape of the last run. Deterministic for a given
    // (config, simThreads), but a serial run reports zeros, so — like
    // machine.fastpath_* — equivalence comparisons ignore sim.pdes_*.
    registry_.addCounter("sim.pdes_partitions",
                         [this] { return pdesStats_.partitions; });
    registry_.addCounter("sim.pdes_windows",
                         [this] { return pdesStats_.windows; });
    registry_.addCounter("sim.pdes_mailbox_events",
                         [this] { return pdesStats_.mailboxEvents; });
    registry_.addCounter("sim.pdes_max_partition_events",
                         [this] { return pdesStats_.maxPartitionEvents; });
    registry_.addCounter("sim.pdes_window_widened",
                         [this] { return pdesStats_.widenedWindows; });
    registry_.addCounter("sim.pdes_speculated",
                         [this] { return pdesStats_.speculated; });
    registry_.addCounter("sim.pdes_rollbacks",
                         [this] { return pdesStats_.rollbacks; });
    registry_.addCounter("sim.pdes_commits",
                         [this] { return pdesStats_.commits; });
    // Machine-level checkpoint traffic (machine/pdes_saver.hh). Zeros
    // unless the run speculated; like sim.pdes_*, equivalence
    // comparisons ignore machine.saver_*.
    registry_.addCounter("machine.saver_saves",
                         [this] { return saverStats_.saves; });
    registry_.addCounter("machine.saver_restores",
                         [this] { return saverStats_.restores; });
    registry_.addCounter("machine.saver_discards",
                         [this] { return saverStats_.discards; });
    registry_.addCounter("machine.saver_snapshot_bytes",
                         [this] { return saverStats_.snapshotBytes; });
    registry_.addCounter("machine.saver_pages_copied",
                         [this] { return saverStats_.pagesCopied; });
    registry_.addCounter("machine.saver_undo_entries",
                         [this] { return saverStats_.undoEntries; });
}

Cluster::~Cluster() = default;

GlobalAddr
Cluster::alloc(std::uint64_t bytes, std::uint64_t align)
{
    if (ran)
        SWSM_FATAL("shared allocation after run() is not supported");
    return space_->alloc(bytes, align);
}

GlobalAddr
Cluster::allocAt(std::uint64_t bytes, NodeId home)
{
    if (ran)
        SWSM_FATAL("shared allocation after run() is not supported");
    return space_->allocAt(bytes, home);
}

void
Cluster::initWrite(GlobalAddr addr, const void *src, std::uint64_t bytes)
{
    space_->initWrite(addr, src, bytes);
}

void
Cluster::debugRead(GlobalAddr addr, void *dst, std::uint64_t bytes)
{
    protocol_->debugRead(addr, dst, bytes);
}

void
Cluster::run(std::function<void(Thread &)> body)
{
    if (ran)
        SWSM_FATAL("a Cluster can run() only once; build a new one");
    ran = true;

    // Decide the engine. Tracing interleaves a global buffer, Ideal
    // reaches across nodes directly, and a one-node cluster has nothing
    // to partition — all fall back to the serial kernel. SWSM_PDES=0 is
    // the kill switch, honored here too so callers that set simThreads
    // programmatically (not via SWSM_SIM_THREADS) are also covered.
    int partitions = std::clamp(params_.simThreads, 1,
                                std::min(params_.numProcs,
                                         PdesEngine::maxPartitions));
    if (params_.trace || !protocol_->partitionSafe() ||
        params_.numProcs < 2 || !envFlag("SWSM_PDES", true)) {
        partitions = 1;
    }
    protocol_->prepareRun(partitions, nextLock, nextBarrier);

    // Exceptions cannot unwind across a fiber switch; capture them at
    // the fiber boundary, one slot per node (so concurrent partitions
    // never race on the store), and rethrow the first by node index.
    std::vector<std::exception_ptr> errors(params_.numProcs);
    for (NodeId n = 0; n < params_.numProcs; ++n) {
        Node *node_ptr = nodes[n].get();
        std::exception_ptr &err = errors[n];
        node_ptr->start([this, node_ptr, &body, &err] {
            try {
                Thread t(*this, *node_ptr);
                body(t);
            } catch (...) {
                if (!err)
                    err = std::current_exception();
            }
        });
    }

    if (partitions > 1) {
        std::vector<int> partition_of(params_.numProcs);
        for (NodeId n = 0; n < params_.numProcs; ++n) {
            partition_of[n] = static_cast<int>(
                static_cast<std::int64_t>(n) * partitions /
                params_.numProcs);
        }
        if (envFlag("SWSM_PDES_UNSOUND_WIDEN", false)) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                SWSM_WARN(
                    "SWSM_PDES_UNSOUND_WIDEN is retired and ignored: "
                    "the per-destination lookahead windows "
                    "(SWSM_PDES_PER_DEST, on by default) are a sound "
                    "superset of the old min-over-others widening");
            }
        }
        PdesConfig config;
        // Partition-to-partition minimum hop cost: the least lookahead
        // over the node pairs that cross the partition boundary. The
        // contiguous-block partition map keeps island geometries
        // aligned with partitions, which is what makes the
        // per-destination windows wide for asymmetric topologies.
        config.lookahead.assign(
            static_cast<std::size_t>(partitions) * partitions,
            PdesEngine::noEvent);
        for (NodeId a = 0; a < params_.numProcs; ++a) {
            for (NodeId b = 0; b < params_.numProcs; ++b) {
                if (a == b || partition_of[a] == partition_of[b])
                    continue;
                auto &entry =
                    config.lookahead[static_cast<std::size_t>(
                                         partition_of[a]) *
                                         partitions +
                                     partition_of[b]];
                entry = std::min(entry, network_->crossLookahead(a, b));
            }
        }
        config.policy = params_.pdesPerDest ? PdesWindowPolicy::PerDest
                                            : PdesWindowPolicy::GlobalMin;
        config.optimism = params_.pdesOptimism;
        std::unique_ptr<MachineStateSaver> saver;
        if (config.optimism > 0) {
            // Machine-level checkpointing: the saver snapshots each
            // partition's nodes, channels, counter shards and protocol
            // scalars, and collects copy-on-write undo entries from
            // the layers' mutation sites (machine/pdes_saver.hh).
            // Fiber switches stay speculation barriers, so fiber
            // stacks never need saving.
            std::vector<Node *> node_ptrs;
            node_ptrs.reserve(nodes.size());
            for (auto &node : nodes)
                node_ptrs.push_back(node.get());
            saver = std::make_unique<MachineStateSaver>(
                std::move(node_ptrs), *network_, *msg, *protocol_,
                partition_of, partitions);
            saver->attach();
            config.saver = saver.get();
        }
        PdesEngine engine(eq, std::move(partition_of), partitions,
                          std::move(config));
        engine.run();
        pdesStats_ = engine.stats();
        if (saver) {
            saverStats_ = saver->stats();
            saver->detach();
        }
        if (check::enabled())
            engine.checkDrained();
        // Restore the serial view for post-run verification (e.g. SC's
        // full directory-coverage sweep is confined to partitions == 1).
        protocol_->prepareRun(1, nextLock, nextBarrier);
    } else {
        eq.run();
    }

    for (const std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }

    for (NodeId n = 0; n < params_.numProcs; ++n) {
        if (!nodes[n]->done()) {
            std::ostringstream os;
            os << "deadlock: event queue drained with node states:";
            for (NodeId j = 0; j < params_.numProcs; ++j)
                os << " n" << j << "=" << nodes[j]->stateName();
            fatal(os.str());
        }
    }

    // End-of-run invariant sweep: the machine is quiescent, so every
    // message must be delivered and every protocol drained.
    if (check::enabled()) {
        network_->checkDrained();
        protocol_->checkQuiescent();
    }

    // Collect results.
    stats_ = RunStats{};
    stats_.finishTimes.reserve(params_.numProcs);
    stats_.perProc.reserve(params_.numProcs);
    for (auto &node : nodes) {
        stats_.finishTimes.push_back(node->finishTime());
        stats_.perProc.push_back(node->allBuckets());
        stats_.totalCycles =
            std::max(stats_.totalCycles, node->finishTime());
    }
    // The registry is the single source: freeze it, then fill the
    // legacy scalar fields from the snapshot.
    stats_.metrics = registry_.snapshot();
    const MetricsSnapshot &m = stats_.metrics;
    stats_.readFaults = m.counter("proto.read_faults");
    stats_.writeFaults = m.counter("proto.write_faults");
    stats_.pageFetches = m.counter("proto.page_fetches");
    stats_.diffsCreated = m.counter("proto.diffs_created");
    stats_.diffWordsWritten = m.counter("proto.diff_words_written");
    stats_.invalidations = m.counter("proto.invalidations");
    stats_.writeNotices = m.counter("proto.write_notices");
    stats_.lockRequests = m.counter("proto.lock_requests");
    stats_.lockHandoffs = m.counter("proto.lock_handoffs");
    stats_.handlersRun = m.counter("proto.handlers_run");
    stats_.protoMsgs = m.counter("proto.msgs");
    stats_.protoBytes = m.counter("proto.bytes");
    stats_.netMessages = m.counter("net.messages");
    stats_.netBytes = m.counter("net.bytes");
}

std::shared_ptr<const TraceBuffer>
Cluster::takeTrace()
{
    if (!tracer_)
        return std::make_shared<const TraceBuffer>();
    return std::make_shared<const TraceBuffer>(tracer_->take());
}

} // namespace swsm
