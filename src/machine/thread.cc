#include "thread.hh"

#include <algorithm>

namespace swsm
{

void
Thread::compute(Cycles cycles)
{
    const Cycles slice = cluster_.params().quantum;
    while (cycles > 0) {
        const Cycles c = std::min(cycles, slice);
        node_.charge(c, TimeBucket::Busy);
        cycles -= c;
    }
}

} // namespace swsm
