/**
 * @file
 * Machine-level checkpointing for bounded-optimism speculation.
 *
 * MachineStateSaver is the PdesStateSaver the cluster machine hands the
 * parallel engine (sim/pdes.hh), and at the same time the SpecWriteLog
 * the layers' mutation sites log into. Together they make every side
 * effect of a speculated event reversible:
 *
 *   - save(p) eagerly snapshots the *small, always-touched* state of
 *     partition p: each owned node's status word, clock, time buckets
 *     and pending-handler queue; the owned NICs and the partition's
 *     halves of the FIFO channels (following the Channel ownership
 *     split); the partition's shard of every sharded counter; and the
 *     protocol's per-owned-node scalars (HLRC pending acks, stashed
 *     vector clocks, page-pool marks).
 *   - Bulky or rarely-touched state — home page frames and block
 *     frames, directory entries, lock queues, the cache model's tag
 *     arrays, per-message completion trackers — is captured lazily by
 *     the mutation sites through the SpecWriteLog hooks: byte-span
 *     pre-images for frame writes, first-touch object copies for the
 *     rest (sim/spec_log.hh).
 *   - restore(p) runs the lazy undo entries in reverse, copies the
 *     byte pre-images back, then reinstates the eager snapshots.
 *   - discard(p) drops everything on commit.
 *
 * What needs NO checkpoint, and why it stays correct:
 *
 *   - Fiber stacks: every fiber resume is scheduled through
 *     specBarrier (sim/event_queue.hh), whose event is not clonable,
 *     so the engine never speculates past a fiber switch. Speculated
 *     events are handlers, data deliveries and network pipeline
 *     stages only — all of which run to completion on the partition's
 *     worker thread without touching a fiber.
 *   - Cross-partition state: speculated events execute only in their
 *     own partition, and outgoing cross-partition mail is held by the
 *     engine until commit (dropped on rollback).
 *
 * All save/restore/discard calls for partition p, and all SpecWriteLog
 * calls logged during p's speculation, happen on p's worker thread;
 * per-partition state needs no locking.
 */

#ifndef SWSM_MACHINE_PDES_SAVER_HH
#define SWSM_MACHINE_PDES_SAVER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/pdes.hh"
#include "sim/spec_log.hh"
#include "sim/types.hh"

namespace swsm
{

class MsgLayer;
class Network;
class Node;
class Protocol;

/** Checkpoint traffic of one run, summed over partitions. */
struct MachineSaverStats
{
    /** Checkpoints taken (one per speculation episode). */
    std::uint64_t saves = 0;
    /** Checkpoints rolled back (straggler forced re-execution). */
    std::uint64_t restores = 0;
    /** Checkpoints dropped on commit. */
    std::uint64_t discards = 0;
    /** Byte-span pre-image volume recorded by willWriteBytes. */
    std::uint64_t snapshotBytes = 0;
    /** Frame pre-images taken (page/block copy-on-write spans). */
    std::uint64_t pagesCopied = 0;
    /** Lazy first-touch undo closures recorded. */
    std::uint64_t undoEntries = 0;
};

/** Machine-layer PdesStateSaver + per-partition speculation undo log. */
class MachineStateSaver : public PdesStateSaver, public SpecWriteLog
{
  public:
    /**
     * @param nodes one pointer per node, indexed by NodeId
     * @param partition_of the engine's node-to-partition map
     * @param partitions number of partitions in the run
     */
    MachineStateSaver(std::vector<Node *> nodes, Network &net,
                      MsgLayer &msg, Protocol &proto,
                      const std::vector<int> &partition_of, int partitions);

    /** Point every layer's SpecWriteLog hook at this saver. */
    void attach();
    /** Null the layers' hooks again (call before the saver dies). */
    void detach();

    // PdesStateSaver — called from partition worker threads.
    void save(int partition) override;
    void restore(int partition) override;
    void discard(int partition) override;

    // SpecWriteLog — called from mutation sites during speculation.
    bool active() const override;
    bool needsUndo(const void *key) override;
    void willWriteBytes(void *dst, std::size_t bytes) override;
    void pushUndo(std::function<void()> undo) override;

    /** Totals over all partitions; call after the engine drains. */
    MachineSaverStats stats() const;

  private:
    /** A recorded byte-span pre-image (copy-on-write frame undo). */
    struct ByteSpan
    {
        std::uint8_t *dst;
        std::vector<std::uint8_t> pre;
    };

    /**
     * One partition's live log. Cache-line aligned: partitions log
     * concurrently, each strictly on its own worker thread.
     */
    struct alignas(64) PartState
    {
        bool active = false;
        std::vector<std::function<void()>> undos;
        std::vector<ByteSpan> spans;
        /** First-touch keys seen this speculation (needsUndo). */
        std::vector<const void *> keys;
        MachineSaverStats stats;
    };

    PartState &part(int partition) { return parts_[partition]; }

    std::vector<Node *> nodes_;
    Network &net_;
    MsgLayer &msg_;
    Protocol &proto_;
    /** Owned node ids per partition, ascending. */
    std::vector<std::vector<NodeId>> owned_;
    std::vector<PartState> parts_;
};

} // namespace swsm

#endif // SWSM_MACHINE_PDES_SAVER_HH
