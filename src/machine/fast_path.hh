/**
 * @file
 * Per-node software TLB for the simulation data path.
 *
 * Every shared access an application makes normally goes through a
 * virtual Protocol::read/write with a page-table lookup before any
 * cycle is charged. Following the Wisconsin Wind Tunnel / Shasta
 * split, the FastPath caches the *resolved* outcome of that lookup —
 * "this address range is directly accessible at these host bytes" —
 * so the common hit case is handled inline by Thread without virtual
 * dispatch. Only host-side lookup work is elided: the latency recipe
 * (chargeSharedAccess, or the bulk Busy + cache-range charges) is
 * invoked exactly as the slow path would, in the same order, so
 * simulated time and all protocol counters are bit-identical with the
 * fast path on or off (tests/test_fastpath.cc enforces this).
 *
 * The table is direct-mapped over the protocol's coherence-unit index
 * (page for HLRC/Ideal, block for SC). Protocols install entries on
 * their slow-path hit/fill paths and must invalidate on *every* state
 * transition that could revoke access (invalidate, downgrade, busy
 * directory, ...); a missing install only costs speed, a missing
 * invalidation costs correctness.
 *
 * Header-only and dependent only on sim/types.hh so the protocol
 * layer can include it without linking the machine library.
 */

#ifndef SWSM_MACHINE_FAST_PATH_HH
#define SWSM_MACHINE_FAST_PATH_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace swsm
{

/** Direct-mapped access-resolution cache for one node. */
class FastPath
{
  public:
    /**
     * One resolved mapping: addresses in [base, limit) may be
     * accessed directly at data + (addr - base). An empty range
     * (base > limit) marks the slot invalid.
     */
    struct Entry
    {
        GlobalAddr base = 1;  ///< inclusive; base > limit = invalid
        GlobalAddr limit = 0; ///< exclusive
        std::uint8_t *data = nullptr; ///< host bytes backing the range
        /** Per-page dirty-chunk bitmap to mark on writes (HLRC
         *  non-home writable entries), or null. */
        std::uint64_t *dirtyMask = nullptr;
        std::uint32_t chunkShift = 0; ///< log2 of the dirty-chunk size
        bool writable = false;
    };

    static constexpr std::uint32_t logSlots = 8;
    static constexpr std::size_t numSlots = std::size_t{1} << logSlots;

    /**
     * Bind the table to a protocol's geometry.
     * @param index_shift log2 of the coherence unit (slot index bits)
     * @param copy_first  true if the protocol's slow path copies bytes
     *        before charging (SC, Ideal); false if it charges first
     *        (HLRC). Thread replicates the order exactly.
     */
    void
    configure(std::uint32_t index_shift, bool copy_first)
    {
        indexShift_ = index_shift;
        copyFirst_ = copy_first;
        invalidateAll();
    }

    bool copyFirst() const { return copyFirst_; }
    std::uint32_t indexShift() const { return indexShift_; }

    /**
     * Resolve an access of @p bytes at @p addr. Returns the covering
     * entry on a hit (range covered, and writable if @p write), null
     * on a miss. Counts hits/misses.
     */
    Entry *
    lookup(GlobalAddr addr, std::uint32_t bytes, bool write)
    {
        Entry &e = slots_[slotOf(addr)];
        if (addr >= e.base && addr + bytes <= e.limit &&
            (!write || e.writable)) {
            ++hits_;
            return &e;
        }
        ++misses_;
        return nullptr;
    }

    /**
     * Install a mapping for one coherence unit ([base, limit) must not
     * span slot-index boundaries; it lands in base's slot, evicting
     * whatever was there).
     */
    void
    install(GlobalAddr base, GlobalAddr limit, std::uint8_t *data,
            bool writable, std::uint64_t *dirty_mask = nullptr,
            std::uint32_t chunk_shift = 0)
    {
        Entry &e = slots_[slotOf(base)];
        e.base = base;
        e.limit = limit;
        e.data = data;
        e.dirtyMask = dirty_mask;
        e.chunkShift = chunk_shift;
        e.writable = writable;
        ++installs_;
    }

    /**
     * Install one mapping covering the whole space into every slot
     * (Ideal: the home store is one contiguous always-valid buffer, so
     * any address hits from its own slot and bulk ranges resolve as a
     * single run).
     */
    void
    installGlobal(GlobalAddr base, GlobalAddr limit, std::uint8_t *data,
                  bool writable)
    {
        for (Entry &e : slots_) {
            e.base = base;
            e.limit = limit;
            e.data = data;
            e.dirtyMask = nullptr;
            e.chunkShift = 0;
            e.writable = writable;
        }
        ++installs_;
    }

    /** Drop every entry overlapping [base, limit). */
    void
    invalidateRange(GlobalAddr base, GlobalAddr limit)
    {
        // One coherence unit maps to one slot; hit it directly and
        // fall back to a sweep only for multi-slot ranges.
        if (limit - base <= (GlobalAddr{1} << indexShift_)) {
            Entry &e = slots_[slotOf(base)];
            if (e.base < limit && base < e.limit)
                reset(e);
            return;
        }
        for (Entry &e : slots_) {
            if (e.base < limit && base < e.limit)
                reset(e);
        }
    }

    /** Drop every entry. */
    void
    invalidateAll()
    {
        for (Entry &e : slots_)
            reset(e);
    }

    /**
     * Bit mask of the dirty chunks an access of @p bytes at entry
     * offset @p off touches (bytes <= chunk size, so at most two).
     */
    static std::uint64_t
    dirtyBits(std::uint64_t off, std::uint64_t bytes,
              std::uint32_t chunk_shift)
    {
        const std::uint64_t first = off >> chunk_shift;
        const std::uint64_t last = (off + bytes - 1) >> chunk_shift;
        return (~std::uint64_t{0} >> (63 - (last - first))) << first;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t installs() const { return installs_; }
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    std::size_t
    slotOf(GlobalAddr addr) const
    {
        return (addr >> indexShift_) & (numSlots - 1);
    }

    void
    reset(Entry &e)
    {
        if (e.base < e.limit)
            ++invalidations_;
        e.base = 1;
        e.limit = 0;
        e.data = nullptr;
        e.dirtyMask = nullptr;
        e.writable = false;
    }

    std::array<Entry, numSlots> slots_{};
    std::uint32_t indexShift_ = 12;
    bool copyFirst_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t installs_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace swsm

#endif // SWSM_MACHINE_FAST_PATH_HH
