#include "pdes_saver.hh"

#include <cstring>

#include "check/check.hh"
#include "comm/msg_layer.hh"
#include "machine/node.hh"
#include "net/network.hh"
#include "proto/protocol.hh"

namespace swsm
{

MachineStateSaver::MachineStateSaver(std::vector<Node *> nodes,
                                     Network &net, MsgLayer &msg,
                                     Protocol &proto,
                                     const std::vector<int> &partition_of,
                                     int partitions)
    : nodes_(std::move(nodes)), net_(net), msg_(msg), proto_(proto),
      owned_(partitions), parts_(partitions)
{
    SWSM_INVARIANT(partition_of.size() == nodes_.size(),
                   "partition map covers %zu nodes, machine has %zu",
                   partition_of.size(), nodes_.size());
    for (NodeId n = 0; n < static_cast<NodeId>(partition_of.size()); ++n)
        owned_.at(partition_of[n]).push_back(n);
}

void
MachineStateSaver::attach()
{
    for (Node *n : nodes_)
        n->setSpecLog(this);
    net_.setSpecLog(this);
    proto_.setSpecLog(this);
}

void
MachineStateSaver::detach()
{
    for (Node *n : nodes_)
        n->setSpecLog(nullptr);
    net_.setSpecLog(nullptr);
    proto_.setSpecLog(nullptr);
}

void
MachineStateSaver::save(int partition)
{
    PartState &ps = part(partition);
    ps.undos.clear();
    ps.spans.clear();
    ps.keys.clear();
    for (NodeId n : owned_[partition])
        nodes_[n]->saveSpecState();
    net_.saveSpecState(partition, owned_[partition]);
    msg_.saveSpecState(partition);
    proto_.saveSpecState(partition, owned_[partition]);
    ps.active = true;
    ps.stats.saves++;
}

void
MachineStateSaver::restore(int partition)
{
    PartState &ps = part(partition);
    // Deactivate first so nothing re-logs while we unwind.
    ps.active = false;
    // Lazy entries unwind newest-first; each restores its object to
    // the pre-speculation value, so relative order between closures
    // and byte spans does not matter (disjoint objects), but reverse
    // order is the safe contract for any future overlapping use.
    for (auto it = ps.undos.rbegin(); it != ps.undos.rend(); ++it)
        (*it)();
    for (auto it = ps.spans.rbegin(); it != ps.spans.rend(); ++it)
        std::memcpy(it->dst, it->pre.data(), it->pre.size());
    for (NodeId n : owned_[partition])
        nodes_[n]->restoreSpecState();
    net_.restoreSpecState(partition, owned_[partition]);
    msg_.restoreSpecState(partition);
    proto_.restoreSpecState(partition, owned_[partition]);
    ps.undos.clear();
    ps.spans.clear();
    ps.keys.clear();
    ps.stats.restores++;
}

void
MachineStateSaver::discard(int partition)
{
    PartState &ps = part(partition);
    ps.active = false;
    ps.undos.clear();
    ps.spans.clear();
    ps.keys.clear();
    ps.stats.discards++;
}

bool
MachineStateSaver::active() const
{
    const int p = PdesEngine::currentPartition();
    return p >= 0 && parts_[p].active;
}

bool
MachineStateSaver::needsUndo(const void *key)
{
    PartState &ps = part(PdesEngine::currentPartition());
    // Linear scan: speculations are K events deep (K small), and each
    // touches a handful of distinct objects.
    for (const void *k : ps.keys) {
        if (k == key)
            return false;
    }
    ps.keys.push_back(key);
    return true;
}

void
MachineStateSaver::willWriteBytes(void *dst, std::size_t bytes)
{
    PartState &ps = part(PdesEngine::currentPartition());
    for (const ByteSpan &s : ps.spans) {
        if (s.dst == dst)
            return;
    }
    auto *p = static_cast<std::uint8_t *>(dst);
    ps.spans.push_back(ByteSpan{p, std::vector<std::uint8_t>(p, p + bytes)});
    ps.stats.snapshotBytes += bytes;
    ps.stats.pagesCopied++;
}

void
MachineStateSaver::pushUndo(std::function<void()> undo)
{
    PartState &ps = part(PdesEngine::currentPartition());
    ps.undos.push_back(std::move(undo));
    ps.stats.undoEntries++;
}

MachineSaverStats
MachineStateSaver::stats() const
{
    MachineSaverStats sum;
    for (const PartState &ps : parts_) {
        sum.saves += ps.stats.saves;
        sum.restores += ps.stats.restores;
        sum.discards += ps.stats.discards;
        sum.snapshotBytes += ps.stats.snapshotBytes;
        sum.pagesCopied += ps.stats.pagesCopied;
        sum.undoEntries += ps.stats.undoEntries;
    }
    return sum;
}

} // namespace swsm
