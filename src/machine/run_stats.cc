#include "run_stats.hh"

namespace swsm
{

double
RunStats::avgBucket(TimeBucket b) const
{
    if (perProc.empty())
        return 0.0;
    return static_cast<double>(sumBucket(b)) /
           static_cast<double>(perProc.size());
}

Cycles
RunStats::sumBucket(TimeBucket b) const
{
    Cycles sum = 0;
    for (const auto &p : perProc)
        sum += p[static_cast<int>(b)];
    return sum;
}

Cycles
RunStats::sumAllBuckets() const
{
    Cycles sum = 0;
    for (int b = 0; b < numTimeBuckets; ++b)
        sum += sumBucket(static_cast<TimeBucket>(b));
    return sum;
}

double
RunStats::protoTimeFraction() const
{
    const Cycles total = sumAllBuckets();
    if (total == 0)
        return 0.0;
    Cycles proto = 0;
    for (int b = 0; b < numTimeBuckets; ++b) {
        if (isProtoBucket(static_cast<TimeBucket>(b)))
            proto += sumBucket(static_cast<TimeBucket>(b));
    }
    return static_cast<double>(proto) / static_cast<double>(total);
}

double
RunStats::bucketFraction(TimeBucket b) const
{
    const Cycles total = sumAllBuckets();
    if (total == 0)
        return 0.0;
    return static_cast<double>(sumBucket(b)) / static_cast<double>(total);
}

} // namespace swsm
