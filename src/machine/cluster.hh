/**
 * @file
 * The simulated cluster machine: the library's main entry point.
 *
 * A Cluster wires together the event queue, the interconnect, the
 * message layer, the shared address space and a coherence protocol, and
 * runs one SPMD application body on every node's fiber. Shared data is
 * allocated and initialized before run(); results are verified with
 * untimed debug reads afterwards.
 *
 * Typical use:
 * @code
 *   MachineParams mp;                     // 16 nodes, HLRC, set A/O
 *   Cluster cluster(mp);
 *   SharedArray<double> a(cluster, n);    // allocate + init shared data
 *   ...
 *   cluster.run([&](Thread &t) { ... }); // SPMD body on every node
 *   RunStats stats = cluster.stats();     // time + breakdowns
 * @endcode
 */

#ifndef SWSM_MACHINE_CLUSTER_HH
#define SWSM_MACHINE_CLUSTER_HH

#include <functional>
#include <memory>
#include <vector>

#include "comm/msg_layer.hh"
#include "machine/machine_params.hh"
#include "machine/node.hh"
#include "machine/pdes_saver.hh"
#include "machine/run_stats.hh"
#include "net/network.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "proto/address_space.hh"
#include "proto/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"

namespace swsm
{

class Thread;

/** A simulated software-shared-memory cluster. */
class Cluster
{
  public:
    explicit Cluster(const MachineParams &params);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const MachineParams &params() const { return params_; }
    int numProcs() const { return params_.numProcs; }

    /** The shared address space (for allocation and home placement). */
    AddressSpace &space() { return *space_; }

    /** Allocate shared memory (round-robin page homes). */
    GlobalAddr alloc(std::uint64_t bytes, std::uint64_t align = 64);
    /** Allocate page-aligned shared memory homed at @p home. */
    GlobalAddr allocAt(std::uint64_t bytes, NodeId home);

    /** Allocate a lock id. */
    LockId allocLock() { return nextLock++; }
    /** Allocate a barrier id. */
    BarrierId allocBarrier() { return nextBarrier++; }

    /** Untimed initialization write (before run()). */
    void initWrite(GlobalAddr addr, const void *src, std::uint64_t bytes);
    /** Untimed, globally consistent read (after run()). */
    void debugRead(GlobalAddr addr, void *dst, std::uint64_t bytes);

    /**
     * Run @p body as an SPMD program: one thread per node. Returns when
     * every thread finished. Fails (FatalError) on deadlock.
     *
     * Taken by value so callers can move a closure in; run() outlives
     * every use of the body, which each node's fiber borrows.
     *
     * When params().simThreads > 1 and the run qualifies (see
     * MachineParams::simThreads), the event queue is driven by the
     * parallel engine (sim/pdes.hh) with nodes partitioned across
     * worker threads; results are bit-identical to a serial run.
     */
    void run(std::function<void(Thread &)> body);

    /** Results of the last run(). */
    const RunStats &stats() const { return stats_; }

    /** The active protocol (tests inspect its counters). */
    Protocol &protocol() { return *protocol_; }

    /** Node access for tests/instrumentation. */
    Node &node(NodeId n) { return *nodes.at(n); }

    /** The cluster's network (endpoint contention statistics). */
    Network &network() { return *network_; }

    /** The machine-wide metrics registry (snapshotted into stats()). */
    MetricsRegistry &metricsRegistry() { return registry_; }

    /** The event tracer, or null when params().trace is off. */
    Tracer *tracer() { return tracer_.get(); }

    /**
     * Move the recorded trace out (empty buffer when tracing was off).
     * The shared_ptr form lets results outlive the cluster cheaply.
     */
    std::shared_ptr<const TraceBuffer> takeTrace();

  private:
    MachineParams params_;
    EventQueue eq;
    std::unique_ptr<Network> network_;
    std::unique_ptr<MsgLayer> msg;
    std::unique_ptr<AddressSpace> space_;
    std::vector<std::unique_ptr<Node>> nodes;
    std::unique_ptr<Protocol> protocol_;
    LockId nextLock = 0;
    BarrierId nextBarrier = 0;
    MetricsRegistry registry_;
    std::unique_ptr<Tracer> tracer_;
    RunStats stats_;
    /** Parallel-engine stats of the last run (zeros for serial runs). */
    PdesRunStats pdesStats_;
    /** Checkpoint traffic of the last run (zeros unless it speculated). */
    MachineSaverStats saverStats_;
    bool ran = false;
};

} // namespace swsm

#endif // SWSM_MACHINE_CLUSTER_HH
