#include "node.hh"

#include <algorithm>

#include "sim/log.hh"

namespace swsm
{

/**
 * Execution context of one protocol handler invocation. Charging
 * advances a private time cursor (handlers occupy the processor) and
 * accumulates into the node's buckets.
 */
class HandlerEnv : public NodeEnv
{
  public:
    HandlerEnv(Node &node, Cycles start) : n(node), now_(start) {}

    NodeId node() const override { return n.id; }
    Cycles now() const override { return now_; }

    void
    charge(Cycles cycles, TimeBucket bucket) override
    {
        now_ += cycles;
        n.buckets[static_cast<int>(bucket)] += cycles;
    }

    void
    sendRequest(NodeId dst, std::uint32_t payload_bytes, HandlerFn fn,
                TimeBucket bucket) override
    {
        charge(n.msg.params().hostOverhead, bucket);
        n.msg.sendRequest(n.id, dst, payload_bytes, now_, std::move(fn));
    }

    void
    sendData(NodeId dst, std::uint32_t payload_bytes, DataFn fn,
             TimeBucket bucket) override
    {
        charge(n.msg.params().hostOverhead, bucket);
        n.msg.sendData(n.id, dst, payload_bytes, now_, std::move(fn));
    }

    void
    chargeCacheRange(GlobalAddr addr, std::uint64_t bytes, bool write,
                     TimeBucket bucket) override
    {
        n.specTouchCache();
        charge(n.cacheModel.accessRange(addr, bytes, write), bucket);
    }

    void
    invalidateCacheRange(GlobalAddr addr, std::uint64_t bytes) override
    {
        n.specTouchCache();
        n.cacheModel.invalidateRange(addr, bytes);
    }

  private:
    Node &n;
    Cycles now_;
};

Node::Node(NodeId id, EventQueue &eq, MsgLayer &msg,
           const MemoryParams &mem, Cycles quantum,
           std::size_t stack_bytes, std::uint64_t seed, bool fast_path)
    : id(id), eq(eq), msg(msg), cacheModel(mem), quantum(quantum),
      rng_(seed), fastPathEnabled(fast_path)
{
    if (quantum == 0)
        SWSM_FATAL("node quantum must be positive");
    fiberStackBytes = stack_bytes;
}

void
Node::start(std::function<void()> body)
{
    if (state != State::Created)
        SWSM_PANIC("node %d started twice", id);
    fiber = std::make_unique<Fiber>(std::move(body), fiberStackBytes);
    state = State::Ready;
    // Route the first resume to this node's execution slot so the
    // parallel engine can place it on the right partition; every later
    // event the node schedules inherits the slot. specBarrier: fiber
    // stacks are not checkpointable, so no resume may run speculatively.
    eq.scheduleTo(static_cast<std::uint32_t>(id), 0,
                  specBarrier([this] { resumeFiber(0); }));
}

void
Node::charge(Cycles cycles, TimeBucket bucket)
{
    clock += cycles;
    buckets[static_cast<int>(bucket)] += cycles;
    if (!inDrain && state == State::Running &&
        clock - lastYield >= quantum) {
        quantumYield();
    }
}

void
Node::sendRequest(NodeId dst, std::uint32_t payload_bytes, HandlerFn fn,
                  TimeBucket bucket)
{
    charge(msg.params().hostOverhead, bucket);
    msg.sendRequest(id, dst, payload_bytes, clock, std::move(fn));
}

void
Node::sendData(NodeId dst, std::uint32_t payload_bytes, DataFn fn,
               TimeBucket bucket)
{
    charge(msg.params().hostOverhead, bucket);
    msg.sendData(id, dst, payload_bytes, clock, std::move(fn));
}

void
Node::chargeCacheRange(GlobalAddr addr, std::uint64_t bytes, bool write,
                       TimeBucket bucket)
{
    charge(cacheModel.accessRange(addr, bytes, write), bucket);
}

void
Node::invalidateCacheRange(GlobalAddr addr, std::uint64_t bytes)
{
    // Also reachable from data-delivery closures, which can run inside
    // a speculation window.
    specTouchCache();
    cacheModel.invalidateRange(addr, bytes);
}

void
Node::chargeSharedAccess(GlobalAddr addr, bool write)
{
    const Cycles stall = cacheModel.access(addr, write);
    charge(1, TimeBucket::Busy);
    if (stall)
        charge(stall, TimeBucket::StallLocal);
}

void
Node::block(TimeBucket wait_kind)
{
    if (state != State::Running)
        SWSM_PANIC("node %d blocking while not running", id);
    drainHandlers();
    state = State::Blocked;
    blockBucket = wait_kind;
    blockStart = clock;
    busyUntil = clock;
    stolen = 0;
    Fiber::yield();
    // resumeFiber() performed the wait accounting and set the clock.
}

void
Node::unblock(Cycles t)
{
    if (state != State::Blocked)
        SWSM_PANIC("node %d unblocked while %s", id, stateName());
    const Cycles resume_at = std::max({t, busyUntil, blockStart});
    const Cycles window = resume_at - blockStart;
    const Cycles waited = window >= stolen ? window - stolen : 0;
    buckets[static_cast<int>(blockBucket)] += waited;
    if (trace_ && resume_at > blockStart)
        trace_->complete(timeBucketName(blockBucket), "wait", id,
                         blockStart, resume_at,
                         TraceArg{"stolen", stolen});
    clock = resume_at;
    state = State::Ready;
    // specBarrier keeps the resume out of speculation windows (fiber
    // stacks cannot roll back).
    auto resume = specBarrier([this, resume_at] { resumeFiber(resume_at); });
    // Every block/unblock cycle schedules one of these; if it outgrows
    // the inline store, every synchronization op heap-allocates.
    static_assert(sizeof(resume) <= EventFn::inlineBytes,
                  "unblock closure no longer fits EventFn's inline "
                  "storage");
    eq.schedule(resume_at, std::move(resume));
}

void
Node::postHandler(Cycles ready, HandlerFn fn)
{
    handlers.push_back(PendingHandler{ready, std::move(fn)});
    auto tick = [this] { handlerTick(); };
    static_assert(sizeof(tick) <= EventFn::inlineBytes,
                  "handler-tick closure no longer fits EventFn's "
                  "inline storage");
    eq.schedule(ready, std::move(tick));
}

void
Node::postData(Cycles delivered, DataFn fn)
{
    // The NI deposits directly into host memory; no processor cost.
    fn(delivered);
}

Cycles
Node::runHandler(HandlerFn &fn, Cycles start)
{
    HandlerEnv env(*this, start);
    fn(env);
    return env.now();
}

void
Node::drainHandlers()
{
    if (handlers.empty())
        return;
    inDrain = true;
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = handlers.begin(); it != handlers.end(); ++it) {
            if (it->ready <= clock) {
                PendingHandler h = std::move(*it);
                handlers.erase(it);
                clock = runHandler(h.fn, clock);
                progress = true;
                break;
            }
        }
    }
    inDrain = false;
}

void
Node::handlerTick()
{
    if (state == State::Running || state == State::Ready ||
        state == State::Created) {
        // The fiber will poll (drain) at its next yield point.
        return;
    }
    // Blocked or Done: the processor is available; run ripe handlers.
    const Cycles now = eq.now();
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = handlers.begin(); it != handlers.end(); ++it) {
            if (it->ready <= now) {
                PendingHandler h = std::move(*it);
                handlers.erase(it);
                const Cycles start = std::max(h.ready, busyUntil);
                const Cycles end = runHandler(h.fn, start);
                if (state == State::Blocked)
                    stolen += end - start;
                busyUntil = std::max(busyUntil, end);
                progress = true;
                break;
            }
        }
    }
}

void
Node::quantumYield()
{
    drainHandlers();
    lastYield = clock;
    state = State::Ready;
    auto resume = specBarrier([this, t = clock] { resumeFiber(t); });
    static_assert(sizeof(resume) <= EventFn::inlineBytes,
                  "quantum-yield closure no longer fits EventFn's "
                  "inline storage");
    eq.schedule(clock, std::move(resume));
    Fiber::yield();
}

void
Node::resumeFiber(Cycles t)
{
    if (state != State::Ready)
        SWSM_PANIC("node %d resumed while %s", id, stateName());
    if (clock < t)
        clock = t;
    state = State::Running;
    inDrain = false;
    drainHandlers();
    lastYield = clock;
    fiber->resume();
    if (fiber->finished()) {
        state = State::Done;
        finishTime_ = clock;
        busyUntil = clock;
    }
}

void
Node::specTouchCache()
{
    // The cache model's tag arrays are big enough that copying them at
    // every checkpoint would dominate save cost; most speculations
    // never touch the cache (pure network/bookkeeping events), so the
    // copy is taken lazily on the first speculative access instead.
    if (specLog_ && specLog_->active() && specLog_->needsUndo(&cacheModel)) {
        specLog_->pushUndo([this, copy = cacheModel]() mutable {
            cacheModel = std::move(copy);
        });
    }
}

void
Node::saveSpecState()
{
    specSnap_.state = state;
    specSnap_.clock = clock;
    specSnap_.lastYield = lastYield;
    specSnap_.blockBucket = blockBucket;
    specSnap_.blockStart = blockStart;
    specSnap_.busyUntil = busyUntil;
    specSnap_.stolen = stolen;
    specSnap_.finishTime = finishTime_;
    specSnap_.handlers = handlers;
    specSnap_.buckets = buckets;
}

void
Node::restoreSpecState()
{
    state = specSnap_.state;
    clock = specSnap_.clock;
    lastYield = specSnap_.lastYield;
    blockBucket = specSnap_.blockBucket;
    blockStart = specSnap_.blockStart;
    busyUntil = specSnap_.busyUntil;
    stolen = specSnap_.stolen;
    finishTime_ = specSnap_.finishTime;
    handlers = specSnap_.handlers;
    buckets = specSnap_.buckets;
    // The fast path may hold entries installed by speculated protocol
    // actions that the rollback just undid. Dropping the whole table is
    // always safe: a missing entry only costs host-side lookup speed,
    // and simulated behaviour is fast-path-invariant (PR 4 contract).
    fastPath_.invalidateAll();
}

const char *
Node::stateName() const
{
    switch (state) {
      case State::Created:
        return "created";
      case State::Ready:
        return "ready";
      case State::Running:
        return "running";
      case State::Blocked:
        return "blocked";
      case State::Done:
        return "done";
      default:
        return "unknown";
    }
}

} // namespace swsm
