/**
 * @file
 * Typed shared array helpers over the global address space.
 *
 * SharedArray<T> owns a contiguous shared allocation of @c count
 * elements. Elements are padded to a power-of-two slot so that a single
 * element never straddles a coherence-unit boundary. Initialization and
 * verification use the untimed init/debug paths; timed accesses go
 * through a Thread.
 */

#ifndef SWSM_MACHINE_SHARED_ARRAY_HH
#define SWSM_MACHINE_SHARED_ARRAY_HH

#include <cstdint>

#include "machine/cluster.hh"
#include "machine/thread.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace swsm
{

/** Smallest power of two >= v. */
constexpr std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** A shared, typed, bounds-checked array in the global address space. */
template <typename T>
class SharedArray
{
  public:
    static_assert(std::is_trivially_copyable_v<T>,
                  "shared elements must be trivially copyable");

    SharedArray() = default;

    /**
     * Allocate @p count elements with round-robin page homes.
     * @param align allocation alignment (defaults to the element slot;
     *        pass the page size when page-aligned home placement of
     *        sub-ranges will follow)
     */
    SharedArray(Cluster &cluster, std::uint64_t count,
                std::uint64_t align = 0)
        : count_(count), slot(nextPow2(sizeof(T)))
    {
        base_ = cluster.alloc(count * slot, align ? align : slot);
    }

    /** Allocate @p count elements in pages homed entirely at @p home. */
    static SharedArray
    homedAt(Cluster &cluster, std::uint64_t count, NodeId home)
    {
        SharedArray a;
        a.count_ = count;
        a.slot = nextPow2(sizeof(T));
        a.base_ = cluster.allocAt(count * a.slot, home);
        return a;
    }

    std::uint64_t size() const { return count_; }
    GlobalAddr base() const { return base_; }
    /** Bytes per element slot (power of two >= sizeof(T)). */
    std::uint64_t slotBytes() const { return slot; }

    /** Address of element @p i. */
    GlobalAddr
    addr(std::uint64_t i) const
    {
#ifndef NDEBUG
        if (i >= count_)
            SWSM_PANIC("shared array index %llu out of range",
                       static_cast<unsigned long long>(i));
#endif
        return base_ + i * slot;
    }

    /** Timed read of element @p i. */
    T get(Thread &t, std::uint64_t i) const { return t.get<T>(addr(i)); }

    /** Timed write of element @p i. */
    void
    put(Thread &t, std::uint64_t i, const T &v) const
    {
        t.put<T>(addr(i), v);
    }

    /** Timed bulk read of elements [first, first+n). */
    void
    read(Thread &t, std::uint64_t first, std::uint64_t n, T *out) const
    {
        if (slot == sizeof(T)) {
            t.readBytes(addr(first), out, n * sizeof(T));
        } else {
            for (std::uint64_t i = 0; i < n; ++i)
                out[i] = get(t, first + i);
        }
    }

    /** Timed bulk write of elements [first, first+n). */
    void
    write(Thread &t, std::uint64_t first, std::uint64_t n,
          const T *in) const
    {
        if (slot == sizeof(T)) {
            t.writeBytes(addr(first), in, n * sizeof(T));
        } else {
            for (std::uint64_t i = 0; i < n; ++i)
                put(t, first + i, in[i]);
        }
    }

    /** Untimed initialization of element @p i (before run()). */
    void
    init(Cluster &cluster, std::uint64_t i, const T &v) const
    {
        cluster.initWrite(addr(i), &v, sizeof(T));
    }

    /** Untimed, consistent read of element @p i (after run()). */
    T
    peek(Cluster &cluster, std::uint64_t i) const
    {
        T v;
        cluster.debugRead(addr(i), &v, sizeof(T));
        return v;
    }

  private:
    GlobalAddr base_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t slot = 0;
};

} // namespace swsm

#endif // SWSM_MACHINE_SHARED_ARRAY_HH
