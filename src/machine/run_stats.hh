/**
 * @file
 * Results of one simulated application run.
 */

#ifndef SWSM_MACHINE_RUN_STATS_HH
#define SWSM_MACHINE_RUN_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.hh"
#include "proto/proto_stats.hh"
#include "sim/types.hh"

namespace swsm
{

/** Per-run timing breakdowns and protocol/network event counts. */
struct RunStats
{
    /** Parallel execution time: the last processor's finish time. */
    Cycles totalCycles = 0;
    /** Per-processor finish times. */
    std::vector<Cycles> finishTimes;
    /** Per-processor time-bucket breakdowns. */
    std::vector<std::array<Cycles, numTimeBuckets>> perProc;

    /** Protocol event counters (copied from the protocol). */
    std::uint64_t readFaults = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t pageFetches = 0;
    std::uint64_t diffsCreated = 0;
    std::uint64_t diffWordsWritten = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t writeNotices = 0;
    std::uint64_t lockRequests = 0;
    std::uint64_t lockHandoffs = 0;
    std::uint64_t handlersRun = 0;
    std::uint64_t protoMsgs = 0;
    std::uint64_t protoBytes = 0;

    /** Network totals. */
    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;

    /**
     * The full metrics registry snapshot. The scalar counters above are
     * populated from it (legacy accessors); the snapshot additionally
     * carries kernel scheduling stats, per-resource histograms and the
     * Figure 4 time buckets, and is what BenchReport serializes.
     */
    MetricsSnapshot metrics;

    /** Mean over processors of bucket @p b, in cycles. */
    double avgBucket(TimeBucket b) const;
    /** Sum over processors of bucket @p b, in cycles. */
    Cycles sumBucket(TimeBucket b) const;
    /** Sum over processors of all buckets, in cycles. */
    Cycles sumAllBuckets() const;
    /** Fraction of aggregate processor time spent in protocol buckets. */
    double protoTimeFraction() const;
    /** Fraction of aggregate time in one bucket. */
    double bucketFraction(TimeBucket b) const;
};

} // namespace swsm

#endif // SWSM_MACHINE_RUN_STATS_HH
