/**
 * @file
 * Configuration of a simulated cluster machine.
 */

#ifndef SWSM_MACHINE_MACHINE_PARAMS_HH
#define SWSM_MACHINE_MACHINE_PARAMS_HH

#include <cstdint>

#include "mem/memory_params.hh"
#include "net/comm_params.hh"
#include "proto/proto_params.hh"
#include "sim/types.hh"

namespace swsm
{

/** Which software shared-memory protocol the machine runs. */
enum class ProtocolKind
{
    Hlrc,  ///< page-based SVM (home-based lazy release consistency)
    Sc,    ///< fine-/variable-grained sequentially consistent protocol
    Ideal, ///< zero-cost shared memory (algorithmic limit / sequential)
};

/** Printable protocol name. */
const char *protocolKindName(ProtocolKind kind);

/**
 * Default for MachineParams::fastPath: true unless the environment
 * sets SWSM_FASTPATH=0 (the escape hatch for A/B timing comparisons
 * and for bisecting a suspected fast-path divergence).
 */
bool defaultFastPath();

/**
 * Default for MachineParams::simThreads: SWSM_SIM_THREADS if set (and
 * SWSM_PDES is not 0 — the escape hatch that forces the serial event
 * kernel), else 1. Values are clamped to the parallel engine's
 * partition limit (sim/pdes.hh).
 */
int defaultSimThreads();

/**
 * Default for MachineParams::pdesPerDest: true unless the environment
 * sets SWSM_PDES_PER_DEST=0 (the A/B escape hatch selecting the legacy
 * global-minimum parallel windows).
 */
bool defaultPdesPerDest();

/**
 * Default for MachineParams::pdesOptimism: SWSM_PDES_OPTIMISM if set
 * (max events a partition speculates past its sound window), else 0.
 */
int defaultPdesOptimism();

/** Full configuration of one simulated cluster. */
struct MachineParams
{
    /** Cluster size (uniprocessor nodes). The paper uses 16. */
    int numProcs = 16;
    /** Protocol selection. */
    ProtocolKind protocol = ProtocolKind::Hlrc;
    /** Communication layer costs (Table 2). */
    CommParams comm;
    /** Protocol layer costs (Table 3). */
    ProtoParams proto;
    /** Node memory hierarchy (fixed across the paper's experiments). */
    MemoryParams mem;
    /** SVM page size. */
    std::uint32_t pageBytes = 4096;
    /** SC coherence block size (per-application best granularity). */
    std::uint32_t blockBytes = 64;
    /**
     * Local-execution quantum: a fiber yields to the event loop at
     * least this often, which is also the polling granularity for
     * incoming request handlers (back-edge polling model).
     */
    Cycles quantum = 1000;
    /**
     * Optional per-reference software access-control (instrumentation)
     * cost for SC; 0 reproduces the paper's hardware-access-control
     * assumption.
     */
    Cycles accessCheckCycles = 0;
    /**
     * Record protocol/network/sync events for Chrome trace_event
     * export. Off by default: emission sites then see a null tracer
     * and cost nothing measurable.
     */
    bool trace = false;
    /**
     * Per-node access fast path (software TLB caching resolved page /
     * block lookups; see machine/fast_path.hh). Purely a host-side
     * optimization: simulated cycles and protocol counters are
     * bit-identical either way. Defaults from SWSM_FASTPATH.
     */
    bool fastPath = defaultFastPath();
    /**
     * Worker threads for the parallel event kernel (sim/pdes.hh): the
     * cluster's nodes are partitioned across this many host threads
     * within one run. Purely a host-side optimization — simulated
     * cycles, protocol counters and emitted bytes are bit-identical to
     * a serial run. Clamped to numProcs; runs that cannot be
     * partitioned (tracing on, protocol not partition-safe, fewer than
     * two nodes) fall back to the serial kernel. Defaults from
     * SWSM_SIM_THREADS / SWSM_PDES.
     */
    int simThreads = defaultSimThreads();
    /**
     * Window policy of the parallel kernel: per-destination lookahead
     * (the sound fixpoint bound, default) vs the legacy global-minimum
     * window (SWSM_PDES_PER_DEST=0, kept for A/B measurement). Results
     * are bit-identical either way; only host time and the sim.pdes_*
     * shape counters differ.
     */
    bool pdesPerDest = defaultPdesPerDest();
    /**
     * Bounded-optimism budget: max events a partition may execute past
     * its sound window per speculation, rolled back on a straggler
     * (sim/pdes.hh). Partitioned cluster runs check speculation state
     * with the machine-level MachineStateSaver (machine/pdes_saver.hh);
     * rollbacks restore byte-identical state, so results stay
     * bit-identical to a serial run — only host time and the
     * sim.pdes_* / machine.saver_* shape counters change. Defaults
     * from SWSM_PDES_OPTIMISM.
     */
    int pdesOptimism = defaultPdesOptimism();
    /** Seed for all randomized decisions (bit-reproducible runs). */
    std::uint64_t seed = 12345;
    /** Application fiber stack size. */
    std::size_t stackBytes = 1024 * 1024;
};

} // namespace swsm

#endif // SWSM_MACHINE_MACHINE_PARAMS_HH
