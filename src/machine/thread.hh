/**
 * @file
 * The application-facing thread handle (SPMD programming model).
 *
 * Each simulated processor runs the application body with a Thread bound
 * to its node. Shared loads/stores, synchronization, and explicit
 * compute charges go through the Thread into the machine; everything
 * else in the body is ordinary C++ running natively (private data).
 */

#ifndef SWSM_MACHINE_THREAD_HH
#define SWSM_MACHINE_THREAD_HH

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "machine/cluster.hh"
#include "machine/fast_path.hh"
#include "machine/node.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace swsm
{

/** Handle through which application code drives one simulated CPU. */
class Thread
{
  public:
    Thread(Cluster &cluster, Node &node)
        : cluster_(cluster), node_(node),
          protocol_(cluster.protocol())
    {}

    /** This thread's processor id, in [0, nprocs()). */
    int id() const { return node_.node(); }
    /** Number of processors in the machine. */
    int nprocs() const { return cluster_.numProcs(); }
    /** Owning cluster. */
    Cluster &cluster() { return cluster_; }
    /** Current simulated time on this processor. */
    Cycles now() const { return node_.now(); }

    /**
     * Timed shared read of a trivially copyable value. Values up to a
     * power-of-two size 8 use the single-reference fast path; larger
     * or odd-sized types go through the bulk path. A fast-path TLB hit
     * resolves the access inline — no virtual dispatch, no page-table
     * lookup — while charging exactly what the protocol would.
     */
    template <typename T>
    T
    get(GlobalAddr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        if constexpr (sizeof(T) <= 8 &&
                      (sizeof(T) & (sizeof(T) - 1)) == 0) {
            if (FastPath *fp = node_.fastPathPtr()) {
                if (FastPath::Entry *e =
                        fp->lookup(addr, sizeof(T), false)) {
                    // Capture the resolved pointer before charging: a
                    // charge can quantum-yield into handlers, and the
                    // backing buffers outlive any entry eviction.
                    const std::uint8_t *p = e->data + (addr - e->base);
                    if (fp->copyFirst()) {
                        std::memcpy(&v, p, sizeof(T));
                        node_.chargeSharedAccess(addr, false);
                    } else {
                        node_.chargeSharedAccess(addr, false);
                        std::memcpy(&v, p, sizeof(T));
                    }
                    return v;
                }
            }
            protocol_.read(node_, addr, &v, sizeof(T));
        } else {
            readBytes(addr, &v, sizeof(T));
        }
        return v;
    }

    /** Timed shared write; the mirror of get(). */
    template <typename T>
    void
    put(GlobalAddr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if constexpr (sizeof(T) <= 8 &&
                      (sizeof(T) & (sizeof(T) - 1)) == 0) {
            if (FastPath *fp = node_.fastPathPtr()) {
                if (FastPath::Entry *e =
                        fp->lookup(addr, sizeof(T), true)) {
                    std::uint8_t *p = e->data + (addr - e->base);
                    if (e->dirtyMask) {
                        *e->dirtyMask |= FastPath::dirtyBits(
                            addr - e->base, sizeof(T), e->chunkShift);
                    }
                    if (fp->copyFirst()) {
                        std::memcpy(p, &v, sizeof(T));
                        node_.chargeSharedAccess(addr, true);
                    } else {
                        node_.chargeSharedAccess(addr, true);
                        std::memcpy(p, &v, sizeof(T));
                    }
                    return;
                }
            }
            protocol_.write(node_, addr, &v, sizeof(T));
        } else {
            writeBytes(addr, &v, sizeof(T));
        }
    }

    /**
     * Timed bulk read of an arbitrary extent. Whole in-page (or
     * in-block) runs resolve through one fast-path check each, with
     * the same per-chunk charge sequence as the protocol's range loop;
     * the first miss hands the remainder to the protocol, whose loop
     * chunks at the same boundaries.
     */
    void
    readBytes(GlobalAddr addr, void *dst, std::uint64_t bytes)
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        std::uint64_t done = 0;
        if (FastPath *fp = node_.fastPathPtr()) {
            while (done < bytes) {
                const GlobalAddr a = addr + done;
                FastPath::Entry *e = fp->lookup(a, 1, false);
                if (!e)
                    break;
                const std::uint64_t chunk =
                    std::min<std::uint64_t>(bytes - done, e->limit - a);
                const std::uint8_t *p = e->data + (a - e->base);
                if (fp->copyFirst()) {
                    std::memcpy(out + done, p, chunk);
                    node_.charge((chunk + wordBytes - 1) / wordBytes,
                                 TimeBucket::Busy);
                    node_.chargeCacheRange(a, chunk, false,
                                           TimeBucket::StallLocal);
                } else {
                    node_.charge((chunk + wordBytes - 1) / wordBytes,
                                 TimeBucket::Busy);
                    node_.chargeCacheRange(a, chunk, false,
                                           TimeBucket::StallLocal);
                    std::memcpy(out + done, p, chunk);
                }
                done += chunk;
            }
        }
        if (done < bytes)
            protocol_.readRange(node_, addr + done, out + done,
                                bytes - done);
    }

    /** Timed bulk write of an arbitrary extent; see readBytes(). */
    void
    writeBytes(GlobalAddr addr, const void *src, std::uint64_t bytes)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        std::uint64_t done = 0;
        if (FastPath *fp = node_.fastPathPtr()) {
            while (done < bytes) {
                const GlobalAddr a = addr + done;
                FastPath::Entry *e = fp->lookup(a, 1, true);
                if (!e)
                    break;
                const std::uint64_t chunk =
                    std::min<std::uint64_t>(bytes - done, e->limit - a);
                std::uint8_t *p = e->data + (a - e->base);
                if (e->dirtyMask) {
                    *e->dirtyMask |= FastPath::dirtyBits(
                        a - e->base, chunk, e->chunkShift);
                }
                if (fp->copyFirst()) {
                    std::memcpy(p, in + done, chunk);
                    node_.charge((chunk + wordBytes - 1) / wordBytes,
                                 TimeBucket::Busy);
                    node_.chargeCacheRange(a, chunk, true,
                                           TimeBucket::StallLocal);
                } else {
                    node_.charge((chunk + wordBytes - 1) / wordBytes,
                                 TimeBucket::Busy);
                    node_.chargeCacheRange(a, chunk, true,
                                           TimeBucket::StallLocal);
                    std::memcpy(p, in + done, chunk);
                }
                done += chunk;
            }
        }
        if (done < bytes)
            protocol_.writeRange(node_, addr + done, in + done,
                                 bytes - done);
    }

    /**
     * Charge @p cycles of private computation (1-IPC busy time).
     * Split into quantum-sized slices so the node keeps polling for
     * incoming protocol requests, as instrumented code would.
     */
    void compute(Cycles cycles);

    /** Acquire a lock (blocking). */
    void acquire(LockId lock) { protocol_.acquire(node_, lock); }
    /** Release a lock. */
    void release(LockId lock) { protocol_.release(node_, lock); }
    /** Wait at a barrier until all nprocs() threads arrive. */
    void barrier(BarrierId b) { protocol_.barrier(node_, b); }

    /** Deterministic per-thread random stream. */
    Rng &rng() { return node_.rng(); }

  private:
    Cluster &cluster_;
    Node &node_;
    Protocol &protocol_;
};

} // namespace swsm

#endif // SWSM_MACHINE_THREAD_HH
