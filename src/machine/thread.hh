/**
 * @file
 * The application-facing thread handle (SPMD programming model).
 *
 * Each simulated processor runs the application body with a Thread bound
 * to its node. Shared loads/stores, synchronization, and explicit
 * compute charges go through the Thread into the machine; everything
 * else in the body is ordinary C++ running natively (private data).
 */

#ifndef SWSM_MACHINE_THREAD_HH
#define SWSM_MACHINE_THREAD_HH

#include <type_traits>

#include "machine/cluster.hh"
#include "machine/node.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace swsm
{

/** Handle through which application code drives one simulated CPU. */
class Thread
{
  public:
    Thread(Cluster &cluster, Node &node)
        : cluster_(cluster), node_(node),
          protocol_(cluster.protocol())
    {}

    /** This thread's processor id, in [0, nprocs()). */
    int id() const { return node_.node(); }
    /** Number of processors in the machine. */
    int nprocs() const { return cluster_.numProcs(); }
    /** Owning cluster. */
    Cluster &cluster() { return cluster_; }
    /** Current simulated time on this processor. */
    Cycles now() const { return node_.now(); }

    /**
     * Timed shared read of a trivially copyable value. Values up to a
     * power-of-two size 8 use the single-reference fast path; larger
     * or odd-sized types go through the bulk path.
     */
    template <typename T>
    T
    get(GlobalAddr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        if constexpr (sizeof(T) <= 8 &&
                      (sizeof(T) & (sizeof(T) - 1)) == 0) {
            protocol_.read(node_, addr, &v, sizeof(T));
        } else {
            protocol_.readRange(node_, addr, &v, sizeof(T));
        }
        return v;
    }

    /** Timed shared write; the mirror of get(). */
    template <typename T>
    void
    put(GlobalAddr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if constexpr (sizeof(T) <= 8 &&
                      (sizeof(T) & (sizeof(T) - 1)) == 0) {
            protocol_.write(node_, addr, &v, sizeof(T));
        } else {
            protocol_.writeRange(node_, addr, &v, sizeof(T));
        }
    }

    /** Timed bulk read of an arbitrary extent. */
    void
    readBytes(GlobalAddr addr, void *dst, std::uint64_t bytes)
    {
        protocol_.readRange(node_, addr, dst, bytes);
    }

    /** Timed bulk write of an arbitrary extent. */
    void
    writeBytes(GlobalAddr addr, const void *src, std::uint64_t bytes)
    {
        protocol_.writeRange(node_, addr, src, bytes);
    }

    /**
     * Charge @p cycles of private computation (1-IPC busy time).
     * Split into quantum-sized slices so the node keeps polling for
     * incoming protocol requests, as instrumented code would.
     */
    void compute(Cycles cycles);

    /** Acquire a lock (blocking). */
    void acquire(LockId lock) { protocol_.acquire(node_, lock); }
    /** Release a lock. */
    void release(LockId lock) { protocol_.release(node_, lock); }
    /** Wait at a barrier until all nprocs() threads arrive. */
    void barrier(BarrierId b) { protocol_.barrier(node_, b); }

    /** Deterministic per-thread random stream. */
    Rng &rng() { return node_.rng(); }

  private:
    Cluster &cluster_;
    Node &node_;
    Protocol &protocol_;
};

} // namespace swsm

#endif // SWSM_MACHINE_THREAD_HH
