/**
 * @file
 * One cluster node: a uniprocessor, its caches, and its fiber.
 *
 * The Node is the machine layer's implementation of the two execution
 * environments protocol software runs in:
 *
 *  - ProcEnv, for the application fiber (faults, synchronization): the
 *    fiber runs ahead of global simulated time on a local clock and
 *    yields at blocking operations or at quantum expiry;
 *  - HandlerSink + per-invocation handler environments, for protocol
 *    request handlers: a handler runs on the main processor at the
 *    node's next poll point (fiber yield) or, when the fiber is blocked
 *    or finished, as soon as it is ready — its cycles occupy the
 *    processor and delay the fiber's resumption.
 *
 * Every cycle of wall time is attributed to exactly one TimeBucket;
 * waiting windows are reduced by the handler time "stolen" within them
 * so that buckets sum to total time (the paper's Figure 4 breakdowns).
 */

#ifndef SWSM_MACHINE_NODE_HH
#define SWSM_MACHINE_NODE_HH

#include <array>
#include <deque>
#include <memory>

#include "comm/msg_layer.hh"
#include "fiber/fiber.hh"
#include "machine/fast_path.hh"
#include "mem/cache_model.hh"
#include "proto/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace swsm
{

/** A uniprocessor cluster node (processor + caches + handler queue). */
class Node : public ProcEnv, public HandlerSink
{
  public:
    /**
     * @param id node id
     * @param eq the cluster's event queue
     * @param msg the cluster's message layer
     * @param mem node memory hierarchy parameters
     * @param quantum fiber yield / polling quantum in cycles
     * @param stack_bytes fiber stack size
     * @param seed RNG seed for this node's application thread
     * @param fast_path enable the access fast path (software TLB)
     */
    Node(NodeId id, EventQueue &eq, MsgLayer &msg,
         const MemoryParams &mem, Cycles quantum, std::size_t stack_bytes,
         std::uint64_t seed, bool fast_path = true);

    // NodeEnv / ProcEnv interface (application fiber context)
    NodeId node() const override { return id; }
    Cycles now() const override { return clock; }
    void charge(Cycles cycles, TimeBucket bucket) override;
    void sendRequest(NodeId dst, std::uint32_t payload_bytes,
                     HandlerFn fn, TimeBucket bucket) override;
    void sendData(NodeId dst, std::uint32_t payload_bytes, DataFn fn,
                  TimeBucket bucket) override;
    void chargeCacheRange(GlobalAddr addr, std::uint64_t bytes, bool write,
                          TimeBucket bucket) override;
    void invalidateCacheRange(GlobalAddr addr,
                              std::uint64_t bytes) override;
    void chargeSharedAccess(GlobalAddr addr, bool write) override;
    void block(TimeBucket wait_kind) override;
    void unblock(Cycles t) override;

    // HandlerSink interface (message layer)
    void postHandler(Cycles ready, HandlerFn fn) override;
    void postData(Cycles delivered, DataFn fn) override;

    /** Start the application thread body; schedules the first resume. */
    void start(std::function<void()> body);

    /** True once the thread body returned. */
    bool done() const { return state == State::Done; }
    /** Local time at which the thread finished. */
    Cycles finishTime() const { return finishTime_; }

    /** Time attributed to @p b so far. */
    Cycles bucket(TimeBucket b) const
    {
        return buckets[static_cast<int>(b)];
    }
    /** All buckets. */
    const std::array<Cycles, numTimeBuckets> &allBuckets() const
    {
        return buckets;
    }

    CacheModel &cache() { return cacheModel; }
    Rng &rng() { return rng_; }

    /** Access fast path, or null when disabled (ProcEnv interface). */
    FastPath *fastPath() override { return fastPathPtr(); }
    /** Non-virtual form for Thread's inline hit check. */
    FastPath *fastPathPtr()
    {
        return fastPathEnabled ? &fastPath_ : nullptr;
    }
    /** The table itself (counters stay readable when disabled). */
    const FastPath &fastPathTable() const { return fastPath_; }

    /**
     * Enable wait-window tracing: every blocked window emits a span
     * named after its TimeBucket. Null (the default) disables it.
     */
    void setTracer(Tracer *tracer) { trace_ = tracer; }

    /** Debug: printable state name (deadlock reports). */
    const char *stateName() const;

    /**
     * Machine-level speculation support. The fiber itself never runs
     * inside a speculation window (every resume event is a specBarrier,
     * so the kernel stops speculating at it); what speculated events
     * can touch is the handler/delivery side of the node — the pending
     * handler queue, the block/steal bookkeeping, the time buckets and
     * the cache model. save/restore checkpoint exactly that slice.
     * Called only from the node's owning partition's worker thread.
     */
    void setSpecLog(SpecWriteLog *log) { specLog_ = log; }
    void saveSpecState();
    void restoreSpecState();

  private:
    enum class State
    {
        Created, ///< start() not called yet
        Ready,   ///< a resume event is scheduled
        Running, ///< the fiber is the current context
        Blocked, ///< waiting for unblock()
        Done,    ///< thread body returned
    };

    struct PendingHandler
    {
        Cycles ready;
        HandlerFn fn;
    };

    /** Handler execution context; see HandlerEnv in node.cc. */
    friend class HandlerEnv;

    /** Resume-event body. */
    void resumeFiber(Cycles t);
    /** Yield because the local quantum expired. */
    void quantumYield();
    /** Run all queued handlers with ready <= clock (fiber context). */
    void drainHandlers();
    /** Event: run ripe handlers while blocked/done. */
    void handlerTick();
    /** Execute one handler starting at @p start; returns its end time. */
    Cycles runHandler(HandlerFn &fn, Cycles start);
    /** Lazily snapshot the cache model on first speculative touch. */
    void specTouchCache();

    NodeId id;
    EventQueue &eq;
    MsgLayer &msg;
    CacheModel cacheModel;
    Cycles quantum;
    Rng rng_;
    FastPath fastPath_;
    bool fastPathEnabled;

    std::unique_ptr<Fiber> fiber;
    State state = State::Created;
    Cycles clock = 0;      ///< processor-local time
    Cycles lastYield = 0;  ///< clock at the last yield (quantum basis)
    bool inDrain = false;  ///< guards recursive quantum yields

    // Blocking bookkeeping
    TimeBucket blockBucket = TimeBucket::DataWait;
    Cycles blockStart = 0;
    Cycles busyUntil = 0;  ///< handler occupancy while blocked/done
    Cycles stolen = 0;     ///< handler cycles inside the block window

    Tracer *trace_ = nullptr;

    std::deque<PendingHandler> handlers;
    std::array<Cycles, numTimeBuckets> buckets{};
    Cycles finishTime_ = 0;
    std::size_t fiberStackBytes = 1024 * 1024;

    /** Speculation undo log (null outside optimistic parallel runs). */
    SpecWriteLog *specLog_ = nullptr;

    /** Checkpoint taken by saveSpecState. */
    struct SpecSnapshot
    {
        State state;
        Cycles clock;
        Cycles lastYield;
        TimeBucket blockBucket;
        Cycles blockStart;
        Cycles busyUntil;
        Cycles stolen;
        Cycles finishTime;
        std::deque<PendingHandler> handlers;
        std::array<Cycles, numTimeBuckets> buckets;
    };
    SpecSnapshot specSnap_;
};

} // namespace swsm

#endif // SWSM_MACHINE_NODE_HH
