#include "litmus.hh"

#include <cstring>
#include <sstream>
#include <vector>

#include "machine/cluster.hh"
#include "machine/thread.hh"
#include "sim/log.hh"

namespace swsm
{
namespace check
{

namespace
{

MachineParams
makeParams(const LitmusConfig &cfg)
{
    MachineParams mp;
    mp.numProcs = cfg.numProcs;
    mp.protocol = cfg.protocol;
    mp.comm = cfg.comm;
    mp.proto = cfg.proto;
    mp.pageBytes = cfg.pageBytes;
    mp.blockBytes = cfg.blockBytes;
    mp.quantum = cfg.quantum;
    mp.seed = cfg.seed;
    return mp;
}

LitmusResult
pass(const char *name)
{
    return LitmusResult{true, name, ""};
}

LitmusResult
fail(const char *name, std::string detail)
{
    return LitmusResult{false, name, std::move(detail)};
}

/** Allocate @p words shared words on their own page(s), zeroed. */
GlobalAddr
allocWords(Cluster &c, std::uint32_t words, std::uint32_t page_bytes)
{
    const GlobalAddr a = c.alloc(words * wordBytes, page_bytes);
    const std::vector<std::uint8_t> zeros(words * wordBytes, 0);
    c.initWrite(a, zeros.data(), zeros.size());
    return a;
}

/** Small random compute delay to vary the interleaving. */
void
jitter(Thread &t, Cycles max_cycles)
{
    const Cycles j = t.rng().nextBounded(max_cycles + 1);
    if (j > 0)
        t.compute(j);
}

/** True when the SC-only oracles apply to this protocol. */
bool
oracleIsSc(const LitmusConfig &cfg)
{
    return cfg.protocol != ProtocolKind::Hlrc;
}

// ---------------------------------------------------------------------
// SC-only tests (racy programs; forbidden outcomes under SC)
// ---------------------------------------------------------------------

/** mp: w(data); w(flag) || r(flag); r(data). Forbidden: flag=1,data=0 */
LitmusResult
runMessagePassing(const LitmusConfig &cfg)
{
    constexpr int iters = 24;
    Cluster c(makeParams(cfg));
    const GlobalAddr data = allocWords(c, iters, cfg.pageBytes);
    const GlobalAddr flag = allocWords(c, iters, cfg.pageBytes);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> seen(iters);
    c.run([&](Thread &t) {
        for (int i = 0; i < iters; ++i) {
            const GlobalAddr d = data + i * wordBytes;
            const GlobalAddr f = flag + i * wordBytes;
            if (t.id() == 0) {
                jitter(t, 400);
                t.put<std::uint32_t>(d, 1);
                t.put<std::uint32_t>(f, 1);
            } else if (t.id() == 1) {
                jitter(t, 400);
                const auto fv = t.get<std::uint32_t>(f);
                const auto dv = t.get<std::uint32_t>(d);
                seen[i] = {fv, dv};
            }
        }
    });

    if (oracleIsSc(cfg)) {
        for (int i = 0; i < iters; ++i) {
            if (seen[i].first == 1 && seen[i].second == 0) {
                std::ostringstream os;
                os << "iteration " << i
                   << ": flag=1 observed with data=0 (forbidden by SC)";
                return fail("mp", os.str());
            }
        }
    }
    return pass("mp");
}

/** sb: w(x); r(y) || w(y); r(x). Forbidden: both loads return 0. */
LitmusResult
runStoreBuffering(const LitmusConfig &cfg)
{
    constexpr int iters = 24;
    Cluster c(makeParams(cfg));
    const GlobalAddr x = allocWords(c, iters, cfg.pageBytes);
    const GlobalAddr y = allocWords(c, iters, cfg.pageBytes);

    std::vector<std::uint32_t> r0(iters, 9), r1(iters, 9);
    c.run([&](Thread &t) {
        for (int i = 0; i < iters; ++i) {
            const GlobalAddr xa = x + i * wordBytes;
            const GlobalAddr ya = y + i * wordBytes;
            if (t.id() == 0) {
                jitter(t, 400);
                t.put<std::uint32_t>(xa, 1);
                r0[i] = t.get<std::uint32_t>(ya);
            } else if (t.id() == 1) {
                jitter(t, 400);
                t.put<std::uint32_t>(ya, 1);
                r1[i] = t.get<std::uint32_t>(xa);
            }
        }
    });

    if (oracleIsSc(cfg)) {
        for (int i = 0; i < iters; ++i) {
            if (r0[i] == 0 && r1[i] == 0) {
                std::ostringstream os;
                os << "iteration " << i
                   << ": both threads read 0 (forbidden by SC)";
                return fail("sb", os.str());
            }
        }
    }
    return pass("sb");
}

/**
 * iriw: w(x)=1 || w(y)=1 || r(x);r(y) || r(y);r(x). Forbidden: the two
 * readers observe the writes in opposite orders.
 */
LitmusResult
runIriw(const LitmusConfig &cfg)
{
    if (cfg.numProcs < 4)
        return pass("iriw"); // needs two writers and two readers

    constexpr int iters = 24;
    Cluster c(makeParams(cfg));
    const GlobalAddr x = allocWords(c, iters, cfg.pageBytes);
    const GlobalAddr y = allocWords(c, iters, cfg.pageBytes);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> rdr2(iters);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> rdr3(iters);
    c.run([&](Thread &t) {
        for (int i = 0; i < iters; ++i) {
            const GlobalAddr xa = x + i * wordBytes;
            const GlobalAddr ya = y + i * wordBytes;
            switch (t.id()) {
              case 0:
                jitter(t, 400);
                t.put<std::uint32_t>(xa, 1);
                break;
              case 1:
                jitter(t, 400);
                t.put<std::uint32_t>(ya, 1);
                break;
              case 2:
                jitter(t, 400);
                rdr2[i].first = t.get<std::uint32_t>(xa);
                rdr2[i].second = t.get<std::uint32_t>(ya);
                break;
              case 3:
                jitter(t, 400);
                rdr3[i].first = t.get<std::uint32_t>(ya);
                rdr3[i].second = t.get<std::uint32_t>(xa);
                break;
              default:
                break;
            }
        }
    });

    if (oracleIsSc(cfg)) {
        for (int i = 0; i < iters; ++i) {
            const bool two_saw_x_first =
                rdr2[i].first == 1 && rdr2[i].second == 0;
            const bool three_saw_y_first =
                rdr3[i].first == 1 && rdr3[i].second == 0;
            if (two_saw_x_first && three_saw_y_first) {
                std::ostringstream os;
                os << "iteration " << i
                   << ": readers observed the writes in opposite "
                      "orders (forbidden by SC)";
                return fail("iriw", os.str());
            }
        }
    }
    return pass("iriw");
}

// ---------------------------------------------------------------------
// DRF tests (properly synchronized; one legal outcome everywhere)
// ---------------------------------------------------------------------

/** Lock-protected counter: final value must be nprocs * increments. */
LitmusResult
runLockCounter(const LitmusConfig &cfg)
{
    constexpr int increments = 6;
    Cluster c(makeParams(cfg));
    const GlobalAddr counter = allocWords(c, 1, cfg.pageBytes);
    const LockId lock = c.allocLock();
    const BarrierId done = c.allocBarrier();

    c.run([&](Thread &t) {
        for (int i = 0; i < increments; ++i) {
            jitter(t, 300);
            t.acquire(lock);
            const auto v = t.get<std::uint32_t>(counter);
            t.put<std::uint32_t>(counter, v + 1);
            t.release(lock);
        }
        t.barrier(done);
    });

    std::uint32_t final_value = 0;
    c.debugRead(counter, &final_value, sizeof(final_value));
    const auto expect =
        static_cast<std::uint32_t>(cfg.numProcs) * increments;
    if (final_value != expect) {
        std::ostringstream os;
        os << "counter ended at " << final_value << ", expected "
           << expect << " (lost updates)";
        return fail("lock_counter", os.str());
    }
    return pass("lock_counter");
}

/**
 * Barrier reduction: per phase, each thread publishes a slot, crosses
 * a barrier and sums everyone's slots. Every sum must be exact.
 */
LitmusResult
runBarrierReduction(const LitmusConfig &cfg)
{
    constexpr int phases = 4;
    Cluster c(makeParams(cfg));
    const GlobalAddr slots =
        allocWords(c, static_cast<std::uint32_t>(cfg.numProcs),
                   cfg.pageBytes);
    const BarrierId bar = c.allocBarrier();

    std::vector<std::string> errors(cfg.numProcs);
    c.run([&](Thread &t) {
        for (int ph = 0; ph < phases; ++ph) {
            const auto mine = static_cast<std::uint32_t>(
                (ph + 1) * 1000 + t.id());
            jitter(t, 300);
            t.put<std::uint32_t>(slots + t.id() * wordBytes, mine);
            t.barrier(bar);
            std::uint64_t sum = 0, expect = 0;
            for (int j = 0; j < t.nprocs(); ++j) {
                sum += t.get<std::uint32_t>(slots + j * wordBytes);
                expect += static_cast<std::uint32_t>(
                    (ph + 1) * 1000 + j);
            }
            if (sum != expect && errors[t.id()].empty()) {
                std::ostringstream os;
                os << "thread " << t.id() << " phase " << ph
                   << ": reduced " << sum << ", expected " << expect;
                errors[t.id()] = os.str();
            }
            t.barrier(bar);
        }
    });

    for (const auto &e : errors) {
        if (!e.empty())
            return fail("barrier_reduction", e);
    }
    return pass("barrier_reduction");
}

/**
 * False-sharing writer pair: threads 0 and 1 concurrently write
 * disjoint words of one page each round; after the barrier both must
 * see the full merged page (HLRC multiple-writer diffs).
 */
LitmusResult
runFalseSharingPair(const LitmusConfig &cfg)
{
    constexpr int rounds = 4;
    constexpr std::uint32_t words = 32;
    Cluster c(makeParams(cfg));
    const GlobalAddr page = allocWords(c, words, cfg.pageBytes);
    const BarrierId bar = c.allocBarrier();

    std::vector<std::string> errors(cfg.numProcs);
    c.run([&](Thread &t) {
        for (int r = 0; r < rounds; ++r) {
            if (t.id() < 2) {
                jitter(t, 300);
                // Thread 0 owns the even words, thread 1 the odd ones.
                for (std::uint32_t w = t.id(); w < words; w += 2) {
                    t.put<std::uint32_t>(
                        page + w * wordBytes,
                        static_cast<std::uint32_t>((r + 1) * 100 + w));
                }
            }
            t.barrier(bar);
            if (t.id() < 2 && errors[t.id()].empty()) {
                for (std::uint32_t w = 0; w < words; ++w) {
                    const auto got =
                        t.get<std::uint32_t>(page + w * wordBytes);
                    const auto expect = static_cast<std::uint32_t>(
                        (r + 1) * 100 + w);
                    if (got != expect) {
                        std::ostringstream os;
                        os << "thread " << t.id() << " round " << r
                           << ": word " << w << " = " << got
                           << ", expected " << expect
                           << " (concurrent write lost)";
                        errors[t.id()] = os.str();
                        break;
                    }
                }
            }
            t.barrier(bar);
        }
    });

    for (const auto &e : errors) {
        if (!e.empty())
            return fail("false_sharing_pair", e);
    }
    return pass("false_sharing_pair");
}

/**
 * Lock-synchronized message passing: flag and data both accessed under
 * the lock, so once the consumer sees the flag it must see the data.
 */
LitmusResult
runSyncMessagePassing(const LitmusConfig &cfg)
{
    constexpr std::uint32_t payload = 0xfeedbeef;
    constexpr int spin_limit = 100000;
    Cluster c(makeParams(cfg));
    const GlobalAddr data = allocWords(c, 1, cfg.pageBytes);
    const GlobalAddr flag = allocWords(c, 1, cfg.pageBytes);
    const LockId lock = c.allocLock();
    const BarrierId done = c.allocBarrier();

    std::string error;
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            jitter(t, 500);
            t.acquire(lock);
            t.put<std::uint32_t>(data, payload);
            t.put<std::uint32_t>(flag, 1);
            t.release(lock);
        } else if (t.id() == 1) {
            bool delivered = false;
            for (int i = 0; i < spin_limit && !delivered; ++i) {
                t.acquire(lock);
                if (t.get<std::uint32_t>(flag) == 1) {
                    const auto d = t.get<std::uint32_t>(data);
                    if (d != payload) {
                        std::ostringstream os;
                        os << "flag visible but data = 0x" << std::hex
                           << d << " (release/acquire ordering broken)";
                        error = os.str();
                    }
                    delivered = true;
                }
                t.release(lock);
                jitter(t, 200);
            }
            if (!delivered && error.empty())
                error = "consumer never observed the flag";
        }
        t.barrier(done);
    });

    if (!error.empty())
        return fail("sync_mp", error);
    return pass("sync_mp");
}

} // namespace

const std::vector<LitmusTest> &
litmusTests()
{
    static const std::vector<LitmusTest> tests = {
        {"mp", true, runMessagePassing},
        {"sb", true, runStoreBuffering},
        {"iriw", true, runIriw},
        {"lock_counter", false, runLockCounter},
        {"barrier_reduction", false, runBarrierReduction},
        {"false_sharing_pair", false, runFalseSharingPair},
        {"sync_mp", false, runSyncMessagePassing},
    };
    return tests;
}

LitmusResult
runLitmus(const LitmusTest &test, const LitmusConfig &config)
{
    ScopedFaultPlan faults(config.faults);
    try {
        return test.run(config);
    } catch (const InvariantViolation &e) {
        return LitmusResult{false, test.name, e.what()};
    } catch (const FatalError &e) {
        return LitmusResult{false, test.name,
                            std::string("simulator error: ") + e.what()};
    }
}

std::vector<LitmusResult>
runAllLitmus(const LitmusConfig &config)
{
    std::vector<LitmusResult> results;
    results.reserve(litmusTests().size());
    for (const LitmusTest &test : litmusTests())
        results.push_back(runLitmus(test, config));
    return results;
}

} // namespace check
} // namespace swsm
