#include "check.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace swsm
{
namespace check
{

namespace
{
bool runtime_enabled = true;
FaultPlan fault_plan;
} // namespace

bool
runtimeEnabled()
{
    return runtime_enabled;
}

void
setRuntimeEnabled(bool on)
{
    runtime_enabled = on;
}

void
violation(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::vector<char> buf(n > 0 ? n + 1 : 1, '\0');
    if (n > 0)
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    throw InvariantViolation(std::string("invariant violated: ") +
                             buf.data());
}

FaultPlan &
faultPlan()
{
    return fault_plan;
}

} // namespace check
} // namespace swsm
