/**
 * @file
 * Schedule fuzzer of the protocol conformance harness.
 *
 * A protocol bug that hides under one timing often shows under
 * another. The fuzzer derives a whole LitmusConfig — host overhead, NI
 * occupancy, handler cost jitter, quantum, page size and block
 * granularity — from a single seed via the simulator's deterministic
 * RNG, so every seed names one exact interleaving of every litmus
 * test. A failure report carries its seed; replaying the seed (same
 * binary, `--replay-seed=` in test_litmus) reproduces the run
 * bit-for-bit.
 */

#ifndef SWSM_CHECK_FUZZ_HH
#define SWSM_CHECK_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/litmus.hh"

namespace swsm
{
namespace check
{

/** What to fuzz and how hard. */
struct FuzzOptions
{
    ProtocolKind protocol = ProtocolKind::Sc;
    std::uint64_t baseSeed = 1;
    int numSeeds = 50;
    /** Protocol mutations injected into every run (self-test mode). */
    FaultPlan faults;
};

/** One fuzz failure: the seed is sufficient to replay it. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    std::string test;
    std::string detail;
};

/**
 * The deterministic seed → configuration map. Same (protocol, seed)
 * always yields the same timing parameters, page size and granularity.
 */
LitmusConfig configForSeed(ProtocolKind protocol, std::uint64_t seed);

/**
 * The parallel-schedule fuzzer's seed → machine map: the timing
 * perturbations of configForSeed() plus a randomized island topology
 * (cluster size, nodes per island, inter-island latency/bandwidth) —
 * the asymmetric geometries the per-destination lookahead matrix
 * (sim/pdes.hh) exploits. Deterministic per (protocol, seed); the
 * caller sweeps simThreads / pdesPerDest / pdesOptimism over the
 * returned params and asserts bit-equivalence against a serial run
 * (tests/test_pdes_fuzz.cc).
 */
MachineParams pdesMachineForSeed(ProtocolKind protocol,
                                 std::uint64_t seed);

/**
 * Run the litmus suite under numSeeds perturbed configurations,
 * seeds [baseSeed, baseSeed + numSeeds). Returns every failure.
 */
std::vector<FuzzFailure> fuzz(const FuzzOptions &opts);

/**
 * Replay exactly one seed through the same code path as fuzz();
 * returns that seed's failures (empty when it passes).
 */
std::vector<FuzzFailure> replaySeed(ProtocolKind protocol,
                                    std::uint64_t seed,
                                    const FaultPlan &faults = {});

} // namespace check
} // namespace swsm

#endif // SWSM_CHECK_FUZZ_HH
