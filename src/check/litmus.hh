/**
 * @file
 * Litmus-test library of the protocol conformance harness.
 *
 * Each litmus test is a tiny SPMD program with a known set of legal
 * outcomes, run on the real simulator (real Cluster, real protocol,
 * real bytes). Two families:
 *
 *  - SC-only tests (message passing, store buffering, IRIW): their
 *    forbidden outcomes must never appear under a sequentially
 *    consistent protocol. Under HLRC the programs are racy, so any
 *    outcome is legal and the oracle is vacuous — the tests still run
 *    to exercise the protocol under the end-of-run invariant sweep.
 *  - DRF tests (lock-protected counter, barrier reduction, false
 *    sharing writer pair, lock-synchronized message passing): properly
 *    synchronized programs whose single legal outcome every protocol
 *    must produce.
 *
 * The harness's own correctness is demonstrated by fault injection
 * (check::FaultPlan): a targeted protocol mutation must make at least
 * one oracle or invariant fire.
 */

#ifndef SWSM_CHECK_LITMUS_HH
#define SWSM_CHECK_LITMUS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/check.hh"
#include "machine/machine_params.hh"
#include "net/comm_params.hh"
#include "proto/proto_params.hh"
#include "sim/types.hh"

namespace swsm
{
namespace check
{

/** Everything that shapes one litmus run's timing and semantics. */
struct LitmusConfig
{
    ProtocolKind protocol = ProtocolKind::Sc;
    int numProcs = 4;
    std::uint32_t pageBytes = 4096;
    std::uint32_t blockBytes = 64;
    CommParams comm;   ///< defaults to the achievable set (A)
    ProtoParams proto; ///< defaults to the original set (O)
    Cycles quantum = 1000;
    /** Machine seed: drives the per-thread jitter streams. */
    std::uint64_t seed = 12345;
    /** Protocol mutations to inject (harness self-test). */
    FaultPlan faults;
};

/** Outcome of one litmus run. */
struct LitmusResult
{
    bool passed = true;
    std::string test;
    std::string detail; ///< empty on pass; forbidden outcome / invariant
};

/** A named litmus test. */
struct LitmusTest
{
    std::string name;
    /** True if the oracle only holds under a sequentially consistent
     *  protocol (the program is racy); DRF oracles hold everywhere. */
    bool requiresSc = false;
    LitmusResult (*run)(const LitmusConfig &);
};

/** The full litmus suite. */
const std::vector<LitmusTest> &litmusTests();

/**
 * Run one test under @p config with config.faults installed,
 * converting InvariantViolation / simulator errors into a failed
 * result instead of propagating.
 */
LitmusResult runLitmus(const LitmusTest &test, const LitmusConfig &config);

/** Run the whole suite; returns one result per test. */
std::vector<LitmusResult> runAllLitmus(const LitmusConfig &config);

} // namespace check
} // namespace swsm

#endif // SWSM_CHECK_LITMUS_HH
