/**
 * @file
 * Core of the protocol conformance harness: runtime invariant checking
 * and deterministic fault injection.
 *
 * Invariant checks live inside the protocol and network layers behind
 * the SWSM_INVARIANT macro. They are compiled in only under the
 * SWSM_CHECK CMake option (-DSWSM_CHECK=ON); without it the macro
 * expands to nothing and the condition is never evaluated, so release
 * builds pay zero cost. A violated invariant throws InvariantViolation,
 * which the litmus/fuzz drivers (check/litmus.hh, check/fuzz.hh) turn
 * into a replayable failure report.
 *
 * Fault injection is the harness's self-test: a FaultPlan asks a
 * protocol to misbehave in a targeted way (drop diff application, skip
 * an invalidation) so tests can demonstrate that the litmus oracles and
 * invariant checkers actually catch real coherence bugs. The plan is
 * always compiled (it is one branch on a cold path) so the mutation
 * tests run in every build, with or without SWSM_CHECK.
 */

#ifndef SWSM_CHECK_CHECK_HH
#define SWSM_CHECK_CHECK_HH

#include <stdexcept>
#include <string>

namespace swsm
{
namespace check
{

/** True when the SWSM_CHECK CMake option compiled the checkers in. */
#ifdef SWSM_CHECK
inline constexpr bool compiledIn = true;
#else
inline constexpr bool compiledIn = false;
#endif

/** Thrown when a runtime invariant check fails (a protocol bug). */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Runtime toggle for the compiled-in checkers (default on). */
bool runtimeEnabled();
void setRuntimeEnabled(bool on);

/** True when invariants are compiled in and enabled. */
inline bool
enabled()
{
    return compiledIn && runtimeEnabled();
}

/** Format a message and throw InvariantViolation. */
[[noreturn]] void violation(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Deterministic protocol mutations for harness self-tests. Each flag
 * makes one protocol skip one semantic step while keeping all timing
 * and message flow intact, so a correct harness must detect the
 * resulting data corruption (oracle) or state inconsistency
 * (invariant checker).
 */
struct FaultPlan
{
    /** HLRC: receive diffs at the home but never apply their words. */
    bool dropDiffApply = false;
    /** SC: ack invalidations without actually invalidating the copy. */
    bool skipScInvalidate = false;
    /**
     * PDES: treat each partition's first speculation resolution as a
     * straggler, forcing the rollback path (sim/pdes.cc). Unlike the
     * protocol faults above this is not a misbehavior — rollback must
     * restore bit-identical state, which is exactly what tests assert.
     */
    bool pdesForceStraggler = false;

    bool
    any() const
    {
        return dropDiffApply || skipScInvalidate || pdesForceStraggler;
    }
};

/** The process-wide fault plan (default: no faults). */
FaultPlan &faultPlan();

/** RAII: install a fault plan, restore the previous one on scope exit. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan) : saved(faultPlan())
    {
        faultPlan() = plan;
    }
    ~ScopedFaultPlan() { faultPlan() = saved; }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    FaultPlan saved;
};

} // namespace check
} // namespace swsm

/**
 * Check a protocol/network invariant. Compiled in only under the
 * SWSM_CHECK CMake option; otherwise the condition is never evaluated.
 * On failure throws check::InvariantViolation with the printf-style
 * message.
 */
#define SWSM_INVARIANT(cond, ...)                                       \
    do {                                                                \
        if (::swsm::check::enabled() && !(cond))                        \
            ::swsm::check::violation(__VA_ARGS__);                      \
    } while (0)

#endif // SWSM_CHECK_CHECK_HH
