#include "fuzz.hh"

#include "sim/rng.hh"

namespace swsm
{
namespace check
{

LitmusConfig
configForSeed(ProtocolKind protocol, std::uint64_t seed)
{
    // Distinct stream per (protocol, seed); the golden-ratio multiply
    // decorrelates consecutive seeds.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(protocol) + 1);

    LitmusConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcs = 4;
    cfg.seed = seed;

    static constexpr std::uint32_t page_sizes[] = {1024, 2048, 4096};
    static constexpr std::uint32_t block_sizes[] = {32, 64, 128, 256};
    cfg.pageBytes = page_sizes[rng.nextBounded(3)];
    cfg.blockBytes = block_sizes[rng.nextBounded(4)];
    cfg.quantum = 200 + rng.nextBounded(3800);

    cfg.comm = CommParams::achievable();
    cfg.comm.hostOverhead = rng.nextBounded(1501);
    cfg.comm.niOccupancyPerPacket = rng.nextBounded(2001);
    cfg.comm.handlingCost = rng.nextBounded(801);
    cfg.comm.linkLatency = 1 + rng.nextBounded(100);

    cfg.proto = ProtoParams::original();
    cfg.proto.handlerBase = rng.nextBounded(3001);
    cfg.proto.pageProtectPerPage = rng.nextBounded(501);
    cfg.proto.pageProtectCall = rng.nextBounded(1001);
    cfg.proto.diffComparePerWord = rng.nextBounded(21);
    cfg.proto.diffWritePerWord = rng.nextBounded(21);
    cfg.proto.diffApplyPerWord = rng.nextBounded(21);
    cfg.proto.twinPerWord = rng.nextBounded(21);
    return cfg;
}

MachineParams
pdesMachineForSeed(ProtocolKind protocol, std::uint64_t seed)
{
    const LitmusConfig cfg = configForSeed(protocol, seed);
    // Independent stream for the topology axes, so adding one does not
    // shift the timing parameters an existing seed maps to.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL +
            static_cast<std::uint64_t>(protocol));

    MachineParams mp;
    mp.protocol = protocol;
    mp.pageBytes = cfg.pageBytes;
    mp.blockBytes = cfg.blockBytes;
    mp.quantum = cfg.quantum;
    mp.comm = cfg.comm;
    mp.proto = cfg.proto;
    mp.seed = cfg.seed;
    static constexpr int procs[] = {4, 6, 8};
    mp.numProcs = procs[rng.nextBounded(3)];
    static constexpr double bw_factors[] = {1.0, 0.5, 0.25};
    switch (rng.nextBounded(3)) {
      case 0: // flat
        break;
      case 1: // small islands (pairs)
        mp.comm = mp.comm.withIslands(
            2, 1 + rng.nextBounded(5000),
            bw_factors[rng.nextBounded(3)]);
        break;
      default: // two halves
        mp.comm = mp.comm.withIslands(
            mp.numProcs / 2, 1 + rng.nextBounded(5000),
            bw_factors[rng.nextBounded(3)]);
        break;
    }
    return mp;
}

std::vector<FuzzFailure>
replaySeed(ProtocolKind protocol, std::uint64_t seed,
           const FaultPlan &faults)
{
    LitmusConfig cfg = configForSeed(protocol, seed);
    cfg.faults = faults;
    std::vector<FuzzFailure> failures;
    for (const LitmusResult &r : runAllLitmus(cfg)) {
        if (!r.passed)
            failures.push_back(FuzzFailure{seed, r.test, r.detail});
    }
    return failures;
}

std::vector<FuzzFailure>
fuzz(const FuzzOptions &opts)
{
    std::vector<FuzzFailure> failures;
    for (int i = 0; i < opts.numSeeds; ++i) {
        const std::uint64_t seed = opts.baseSeed + i;
        auto f = replaySeed(opts.protocol, seed, opts.faults);
        failures.insert(failures.end(), f.begin(), f.end());
    }
    return failures;
}

} // namespace check
} // namespace swsm
