/**
 * @file
 * Execution environment interfaces for protocol software.
 *
 * Protocol code runs in two situations: on the application fiber (the
 * fault/synchronization path of the local processor) and in request
 * handlers dispatched on a node's main processor (the paper assumes no
 * protocol co-processor). Both see the same NodeEnv services: the current
 * time, time charging into breakdown buckets, message sends (which charge
 * the host send overhead to the running processor), and cache-pollution
 * modeling for protocol data operations.
 *
 * Request messages invoke handlers after the parameterized message
 * handling cost; handlers never block. Data messages are deposited
 * directly into host memory with no processor involvement.
 */

#ifndef SWSM_COMM_HANDLER_HH
#define SWSM_COMM_HANDLER_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace swsm
{

class NodeEnv;

/** A protocol request handler. Handlers never block. */
using HandlerFn = std::function<void(NodeEnv &)>;

/** Callback for a delivered data message (runs at delivery time). */
using DataFn = std::function<void(Cycles delivered)>;

/**
 * Services available to protocol code executing on a node.
 *
 * Implemented by the machine layer, once for the application-fiber
 * context (where now() is the fiber's local clock) and once per handler
 * invocation (where now() advances as the handler charges time).
 */
class NodeEnv
{
  public:
    virtual ~NodeEnv() = default;

    /** Node this code executes on. */
    virtual NodeId node() const = 0;

    /** Current simulated time of this execution context. */
    virtual Cycles now() const = 0;

    /** Consume @p cycles of processor time, attributed to @p bucket. */
    virtual void charge(Cycles cycles, TimeBucket bucket) = 0;

    /**
     * Send a request; @p fn runs as a handler on @p dst. Charges the
     * host send overhead to this processor in @p bucket.
     */
    virtual void sendRequest(NodeId dst, std::uint32_t payload_bytes,
                             HandlerFn fn,
                             TimeBucket bucket = TimeBucket::ProtoOther)
        = 0;

    /** Send a data message; @p fn runs at delivery (no handler cost). */
    virtual void sendData(NodeId dst, std::uint32_t payload_bytes,
                          DataFn fn,
                          TimeBucket bucket = TimeBucket::ProtoOther)
        = 0;

    /**
     * Walk [addr, addr+bytes) through this node's cache (protocol data
     * operations pollute the cache); stall cycles are charged to
     * @p bucket.
     */
    virtual void chargeCacheRange(GlobalAddr addr, std::uint64_t bytes,
                                  bool write, TimeBucket bucket) = 0;

    /** Discard cached lines of [addr, addr+bytes) on this node. */
    virtual void invalidateCacheRange(GlobalAddr addr,
                                      std::uint64_t bytes) = 0;
};

/**
 * Destination-side dispatch interface, implemented by the machine
 * layer's Node. The message layer posts work here.
 */
class HandlerSink
{
  public:
    virtual ~HandlerSink() = default;

    /**
     * Queue a handler that became ready at @p ready (delivery time plus
     * the message handling cost). It runs on the node's main processor
     * at its next poll point.
     */
    virtual void postHandler(Cycles ready, HandlerFn fn) = 0;

    /** Deliver a data message at @p delivered (no processor cost). */
    virtual void postData(Cycles delivered, DataFn fn) = 0;
};

} // namespace swsm

#endif // SWSM_COMM_HANDLER_HH
