/**
 * @file
 * VMMC-like user-level messaging library.
 *
 * Two message classes, matching the paper's communication model:
 *
 *  - requests: carry protocol operations; on delivery they wait the
 *    parameterized "message handling cost" and then run a software
 *    handler on the destination's main processor (polling model);
 *  - data messages: deposited directly into destination host memory by
 *    the NI — no interrupt, no receive operation, no handler.
 *
 * Sends are asynchronous: the sender pays only the host overhead, which
 * is charged by the calling processor before the message enters the
 * network (the caller passes a ready time that includes it).
 */

#ifndef SWSM_COMM_MSG_LAYER_HH
#define SWSM_COMM_MSG_LAYER_HH

#include <cstdint>
#include <vector>

#include "comm/handler.hh"
#include "net/network.hh"
#include "sim/stats.hh"

namespace swsm
{

/** Fixed per-message header bytes (VMMC-like small header). */
constexpr std::uint32_t msgHeaderBytes = 16;

/** User-level messaging over the cluster network. */
class MsgLayer
{
  public:
    explicit MsgLayer(Network &net);

    /** Register node @p n's handler sink (machine layer Node). */
    void attachSink(NodeId n, HandlerSink *sink);

    /**
     * Send a request of @p payload_bytes; @p fn runs as a handler on
     * @p dst. @p ready must include the sender's host overhead.
     */
    void sendRequest(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                     Cycles ready, HandlerFn fn);

    /**
     * Send a data message of @p payload_bytes; @p fn runs at delivery
     * with no destination processor cost.
     */
    void sendData(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                  Cycles ready, std::function<void(Cycles)> fn);

    const CommParams &params() const { return net.params(); }

    const ShardedCounter &requestsSent() const { return requests; }
    const ShardedCounter &dataSent() const { return data; }

    /** Register message-class counters under "comm.*". */
    void registerMetrics(MetricsRegistry &registry) const;

    /**
     * Machine-level speculation checkpoint: the layer's only mutable
     * state is its counters, so save/restore snapshot one partition's
     * shard of each (machine/pdes_saver.hh).
     */
    void
    saveSpecState(int partition)
    {
        specSnap_[partition][0] = requests.shardValue(partition);
        specSnap_[partition][1] = data.shardValue(partition);
    }

    void
    restoreSpecState(int partition)
    {
        requests.setShardValue(partition, specSnap_[partition][0]);
        data.setShardValue(partition, specSnap_[partition][1]);
    }

  private:
    Network &net;
    std::vector<HandlerSink *> sinks;

    // Sharded: sends execute on the sender's partition when the run
    // is partitioned (sim/pdes.hh).
    ShardedCounter requests;
    ShardedCounter data;

    std::uint64_t specSnap_[ShardedCounter::maxStatShards][2] = {};
};

} // namespace swsm

#endif // SWSM_COMM_MSG_LAYER_HH
