#include "msg_layer.hh"

#include "sim/log.hh"

namespace swsm
{

MsgLayer::MsgLayer(Network &net) : net(net)
{
    sinks.assign(net.numNodes(), nullptr);
}

void
MsgLayer::attachSink(NodeId n, HandlerSink *sink)
{
    sinks.at(n) = sink;
}

void
MsgLayer::registerMetrics(MetricsRegistry &registry) const
{
    registry.addCounter("comm.requests",
                        [this] { return requests.value(); });
    registry.addCounter("comm.data", [this] { return data.value(); });
}

void
MsgLayer::sendRequest(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                      Cycles ready, HandlerFn fn)
{
    if (!sinks.at(dst))
        SWSM_PANIC("request sent to node %d with no handler sink", dst);
    requests.inc();
    const Cycles handling = net.params().handlingCost;
    const Cycles interrupt = net.params().interruptCost;
    HandlerSink *sink = sinks[dst];
    HandlerFn dispatch = std::move(fn);
    if (interrupt > 0) {
        // Interrupt-driven handling: the dispatch itself burns
        // processor time before the handler body runs.
        dispatch = [interrupt, fn = std::move(dispatch)](NodeEnv &env) {
            env.charge(interrupt, TimeBucket::ProtoHandler);
            fn(env);
        };
    }
    net.send(src, dst, msgHeaderBytes + payload_bytes, ready,
             [sink, handling, fn = std::move(dispatch)](Cycles delivered) {
                 sink->postHandler(delivered + handling, fn);
             });
}

void
MsgLayer::sendData(NodeId src, NodeId dst, std::uint32_t payload_bytes,
                   Cycles ready, std::function<void(Cycles)> fn)
{
    if (!sinks.at(dst))
        SWSM_PANIC("data sent to node %d with no handler sink", dst);
    data.inc();
    HandlerSink *sink = sinks[dst];
    net.send(src, dst, msgHeaderBytes + payload_bytes, ready,
             [sink, fn = std::move(fn)](Cycles delivered) {
                 sink->postData(delivered, fn);
             });
}

} // namespace swsm
