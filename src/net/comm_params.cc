#include "comm_params.hh"

#include <cmath>

#include "sim/log.hh"

namespace swsm
{

CommParams
CommParams::achievable()
{
    return CommParams{};
}

CommParams
CommParams::halfway()
{
    return achievable().interpolate(best(), 0.5);
}

CommParams
CommParams::best()
{
    CommParams p;
    p.hostOverhead = 0;
    p.ioBusBytesPerCycle = 2.0; // memory-bus rate; still finite
    p.niOccupancyPerPacket = 0;
    p.handlingCost = 0;
    // Link latency stays at the small constant value, as in the paper.
    return p;
}

CommParams
CommParams::worse()
{
    CommParams p;
    p.hostOverhead = 1200;
    p.ioBusBytesPerCycle = 0.25;
    p.niOccupancyPerPacket = 2000;
    p.handlingCost = 400;
    return p;
}

CommParams
CommParams::betterThanBest()
{
    CommParams p = best();
    p.linkLatency = 0;
    p.ioBusBytesPerCycle = 4.0; // twice the memory bus bandwidth
    p.linkBytesPerCycle = 4.0;
    return p;
}

CommParams
CommParams::fromName(char name)
{
    switch (name) {
      case 'A':
        return achievable();
      case 'H':
        return halfway();
      case 'B':
        return best();
      case 'W':
        return worse();
      case 'X':
        return betterThanBest();
      default:
        SWSM_FATAL("unknown communication parameter set '%c'", name);
    }
}

CommParams
CommParams::withIslands(int nodes_per_island, Cycles extra_latency,
                        double bandwidth_factor) const
{
    if (nodes_per_island < 0)
        SWSM_FATAL("island size must be >= 0, got %d", nodes_per_island);
    if (bandwidth_factor <= 0.0)
        SWSM_FATAL("inter-island bandwidth factor must be positive");
    CommParams p = *this;
    p.islandNodes = nodes_per_island;
    p.interIslandExtraLatency = extra_latency;
    p.interIslandBandwidthFactor = bandwidth_factor;
    return p;
}

CommParams
CommParams::interpolate(const CommParams &other, double f) const
{
    auto mixCycles = [f](Cycles a, Cycles b) {
        return static_cast<Cycles>(
            std::llround(static_cast<double>(a) * (1.0 - f) +
                         static_cast<double>(b) * f));
    };
    CommParams p;
    p.hostOverhead = mixCycles(hostOverhead, other.hostOverhead);
    p.ioBusBytesPerCycle = ioBusBytesPerCycle * (1.0 - f) +
                           other.ioBusBytesPerCycle * f;
    p.niOccupancyPerPacket =
        mixCycles(niOccupancyPerPacket, other.niOccupancyPerPacket);
    p.handlingCost = mixCycles(handlingCost, other.handlingCost);
    p.interruptCost = mixCycles(interruptCost, other.interruptCost);
    p.linkLatency = mixCycles(linkLatency, other.linkLatency);
    p.linkBytesPerCycle = linkBytesPerCycle * (1.0 - f) +
                          other.linkBytesPerCycle * f;
    p.maxPacketBytes = maxPacketBytes;
    p.islandNodes = islandNodes;
    p.interIslandExtraLatency = interIslandExtraLatency;
    p.interIslandBandwidthFactor = interIslandBandwidthFactor;
    return p;
}

} // namespace swsm
