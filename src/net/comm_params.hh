/**
 * @file
 * Communication layer cost parameters (the paper's Table 2).
 *
 * All values are in cycles of the modeled 1-IPC 200 MHz processor, or in
 * bytes/cycle for bandwidths. The named factory functions reproduce the
 * paper's parameter sets:
 *
 *   A = achievable   (PentiumPro + Myrinet + VMMC, the base system)
 *   H = halfway      (every cost halved, bandwidth doubled)
 *   B = best         (all parameterized costs zero; bandwidths finite)
 *   W = worse        (all costs doubled, bandwidth halved — a 2x-faster
 *                     processor with an unimproved network)
 *   X = better than best ("BB" in the paper's prose: link latency zero and
 *                     I/O bandwidth raised to twice the memory bus)
 *
 * The OCR of the paper text lost most digits of Table 2; the A values are
 * restored from the in-text units ("3 us, 1xx MB/s, x us and 1 us") and
 * the companion study (Bilas & Singh). See DESIGN.md §2.1/§4.
 */

#ifndef SWSM_NET_COMM_PARAMS_HH
#define SWSM_NET_COMM_PARAMS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace swsm
{

/** Tunable costs of the communication layer. */
struct CommParams
{
    /** Host processor busy time to start an asynchronous send. */
    Cycles hostOverhead = 600;
    /** Host-to-NI (and NI-to-host) I/O bus bandwidth, bytes/cycle. */
    double ioBusBytesPerCycle = 0.5;
    /** NI processor time per packet (prepare + enqueue / receive). */
    Cycles niOccupancyPerPacket = 1000;
    /**
     * Time from a request reaching the head of the NI incoming queue
     * until its handler may begin (the polling-based handling cost).
     */
    Cycles handlingCost = 200;
    /**
     * Per-request interrupt dispatch cost. 0 selects the paper's
     * polling model (handlers wait for the handling cost and run at
     * the node's next poll point). A non-zero value models
     * interrupt-driven message handling: each request charges this
     * additional processor cost before its handler — the alternative
     * the paper rejected because "when interrupts are used their cost
     * is the most significant cost in the communication architecture".
     */
    Cycles interruptCost = 0;
    /** Fixed hardware link latency (small; paper keeps it constant). */
    Cycles linkLatency = 20;
    /** Link bandwidth, bytes/cycle (Myrinet-like byte-wide link). */
    double linkBytesPerCycle = 1.0;
    /** Maximum packet payload (Myrinet-like; a page fits one packet). */
    std::uint32_t maxPacketBytes = 4096;

    /**
     * Nodes per island for non-uniform "island" geometries (racks or
     * chassis joined by a slower spine): nodes n and m share an island
     * iff n / islandNodes == m / islandNodes. 0 keeps the classic flat
     * network of the paper. Intra-island hops use the base
     * linkLatency / linkBytesPerCycle; inter-island hops add
     * interIslandExtraLatency and scale link bandwidth by
     * interIslandBandwidthFactor. Asymmetric geometries are what the
     * parallel engine's per-destination lookahead exploits
     * (sim/pdes.hh): islands aligned with partitions make the
     * cross-partition lookahead large even when the intra-island
     * latency — and with it the global minimum — is tiny.
     */
    int islandNodes = 0;
    /** Extra wire latency of an inter-island hop, cycles. */
    Cycles interIslandExtraLatency = 0;
    /** Inter-island link bandwidth multiplier, > 0 (1.0 = no change). */
    double interIslandBandwidthFactor = 1.0;

    /** The base, currently-achievable system (set A). */
    static CommParams achievable();
    /** All parameterized costs halved / bandwidth doubled (set H). */
    static CommParams halfway();
    /** All parameterized costs zero (set B). */
    static CommParams best();
    /** All costs doubled / bandwidth halved (set W). */
    static CommParams worse();
    /** Better-than-best: B plus zero link latency, 4 B/cycle I/O (X). */
    static CommParams betterThanBest();

    /** Parameter set from its one-letter name (A/H/B/W/X). */
    static CommParams fromName(char name);

    /** Copy of this set with an island topology applied. */
    CommParams withIslands(int nodes_per_island, Cycles extra_latency,
                           double bandwidth_factor = 1.0) const;

    /**
     * Interpolate each cost between this and @p other (0 → this). The
     * topology (island fields) is not a cost and is taken from this.
     */
    CommParams interpolate(const CommParams &other, double f) const;
};

} // namespace swsm

#endif // SWSM_NET_COMM_PARAMS_HH
