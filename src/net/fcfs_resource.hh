/**
 * @file
 * First-come-first-served contention resource.
 *
 * Models a serially-reusable hardware unit (I/O bus, NI processor) at
 * cluster network end points. Requests acquired in event order queue
 * behind the resource's next-free time; utilization statistics feed the
 * harness's contention reports. The paper models contention "in great
 * detail at all levels, including the network end-points, except in the
 * network links and switches themselves" — FCFS endpoint resources plus
 * contention-free wires implement exactly that.
 */

#ifndef SWSM_NET_FCFS_RESOURCE_HH
#define SWSM_NET_FCFS_RESOURCE_HH

#include <algorithm>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{

/** Serially-reusable resource with FCFS queueing. */
class FcfsResource
{
  public:
    explicit FcfsResource(std::string name = "resource")
        : name_(std::move(name))
    {}

    /**
     * Occupy the resource for @p duration starting no earlier than
     * @p request_time.
     * @return completion time (>= request_time + duration).
     */
    Cycles
    acquire(Cycles request_time, Cycles duration)
    {
        const Cycles start = std::max(request_time, nextFree);
        queueing.sample(static_cast<double>(start - request_time));
        busyCycles.inc(duration);
        uses.inc();
        nextFree = start + duration;
        return nextFree;
    }

    /** Time at which the resource next becomes free. */
    Cycles nextFreeTime() const { return nextFree; }

    /** Reset queueing state and statistics. */
    void
    reset()
    {
        nextFree = 0;
        queueing.reset();
        busyCycles.reset();
        uses.reset();
    }

    const std::string &name() const { return name_; }
    /** Cycles requests spent waiting for the resource. */
    const Accumulator &queueingDelay() const { return queueing; }
    /** Total occupied cycles (for utilization). */
    const Counter &totalBusyCycles() const { return busyCycles; }
    /** Number of acquisitions. */
    const Counter &totalUses() const { return uses; }

  private:
    std::string name_;
    Cycles nextFree = 0;
    Accumulator queueing;
    Counter busyCycles;
    Counter uses;
};

} // namespace swsm

#endif // SWSM_NET_FCFS_RESOURCE_HH
