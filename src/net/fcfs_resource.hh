/**
 * @file
 * First-come-first-served contention resource.
 *
 * Models a serially-reusable hardware unit (I/O bus, NI processor) at
 * cluster network end points. Requests acquired in event order queue
 * behind the resource's next-free time; utilization statistics feed the
 * harness's contention reports. The paper models contention "in great
 * detail at all levels, including the network end-points, except in the
 * network links and switches themselves" — FCFS endpoint resources plus
 * contention-free wires implement exactly that.
 *
 * Besides the running counters, each resource keeps power-of-two
 * histograms of queueing delay and of occupancy per acquisition, which
 * it contributes to the run's metrics registry (net.<prefix>.*).
 */

#ifndef SWSM_NET_FCFS_RESOURCE_HH
#define SWSM_NET_FCFS_RESOURCE_HH

#include <algorithm>
#include <string>

#include "obs/metrics.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{

/** Serially-reusable resource with FCFS queueing. */
class FcfsResource
{
  public:
    explicit FcfsResource(std::string name = "resource")
        : name_(std::move(name))
    {}

    /**
     * Occupy the resource for @p duration starting no earlier than
     * @p request_time.
     * @return completion time (>= request_time + duration).
     */
    Cycles
    acquire(Cycles request_time, Cycles duration)
    {
        const Cycles start = std::max(request_time, nextFree);
        queueing.sample(static_cast<double>(start - request_time));
        queueHist_.sample(start - request_time);
        busyHist_.sample(duration);
        busyCycles.inc(duration);
        uses.inc();
        nextFree = start + duration;
        return nextFree;
    }

    /** Time at which the resource next becomes free. */
    Cycles nextFreeTime() const { return nextFree; }

    /** Reset queueing state and statistics. */
    void
    reset()
    {
        nextFree = 0;
        queueing.reset();
        busyCycles.reset();
        uses.reset();
        queueHist_.reset();
        busyHist_.reset();
    }

    const std::string &name() const { return name_; }
    /** Cycles requests spent waiting for the resource. */
    const Accumulator &queueingDelay() const { return queueing; }
    /** Total occupied cycles (for utilization). */
    const Counter &totalBusyCycles() const { return busyCycles; }
    /** Number of acquisitions. */
    const Counter &totalUses() const { return uses; }
    /** Distribution of per-acquisition queueing delays. */
    const Histogram &queueDelayHist() const { return queueHist_; }
    /** Distribution of per-acquisition occupancy durations. */
    const Histogram &occupancyHist() const { return busyHist_; }

    /** Snapshot @p h into the registry's frozen histogram form. */
    static HistogramData
    histogramData(const Histogram &h)
    {
        HistogramData out;
        out.total = h.totalSamples();
        out.buckets.resize(h.numBuckets());
        for (unsigned i = 0; i < h.numBuckets(); ++i)
            out.buckets[i] = h.bucketCount(i);
        return out;
    }

    /**
     * Register this resource's metrics under "<prefix>.*": busy_cycles,
     * uses, queue_cycles plus the queueing/occupancy histograms.
     */
    void
    registerMetrics(MetricsRegistry &registry,
                    const std::string &prefix) const
    {
        registry.addCounter(prefix + ".busy_cycles", [this] {
            return busyCycles.value();
        });
        registry.addCounter(prefix + ".uses",
                            [this] { return uses.value(); });
        registry.addGauge(prefix + ".queue_cycles",
                          [this] { return queueing.sum(); });
        registry.addHistogram(prefix + ".queue_delay", [this] {
            return histogramData(queueHist_);
        });
        registry.addHistogram(prefix + ".occupancy", [this] {
            return histogramData(busyHist_);
        });
    }

  private:
    std::string name_;
    Cycles nextFree = 0;
    Accumulator queueing;
    Counter busyCycles;
    Counter uses;
    Histogram queueHist_;
    Histogram busyHist_;
};

} // namespace swsm

#endif // SWSM_NET_FCFS_RESOURCE_HH
