#include "network.hh"

#include <algorithm>
#include <cmath>

#include "check/check.hh"
#include "sim/log.hh"

namespace swsm
{

Network::Network(EventQueue &eq, int num_nodes, const CommParams &params)
    : eq(eq), params_(params)
{
    if (num_nodes <= 0)
        SWSM_FATAL("network needs at least one node");
    if (params.ioBusBytesPerCycle <= 0 || params.linkBytesPerCycle <= 0)
        SWSM_FATAL("network bandwidths must be positive");
    if (params.maxPacketBytes == 0)
        SWSM_FATAL("maximum packet size must be positive");
    if (params.islandNodes < 0)
        SWSM_FATAL("island size must be >= 0, got %d", params.islandNodes);
    if (params.interIslandBandwidthFactor <= 0)
        SWSM_FATAL("inter-island bandwidth factor must be positive");
    // The wire hop targets one execution slot per node; declare them so
    // standalone Network users get valid tie-break stamps without
    // having to know about the queue's slot machinery.
    if (eq.numSlots() < static_cast<std::uint32_t>(num_nodes))
        eq.setNumSlots(static_cast<std::uint32_t>(num_nodes));
    nics.reserve(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n)
        nics.push_back(std::make_unique<Nic>(n));
    channels.resize(static_cast<std::size_t>(num_nodes) * num_nodes);
}

void
Network::complete(Channel &ch, std::uint64_t seq, Cycles t, DeliverFn cb)
{
    ch.done.emplace(seq, std::make_pair(t, std::move(cb)));
    while (true) {
        auto it = ch.done.find(ch.nextDeliver);
        if (it == ch.done.end())
            break;
        const Cycles when = std::max(it->second.first, ch.lastTime);
        ch.lastTime = when;
        DeliverFn fn = std::move(it->second.second);
        ch.done.erase(it);
        ++ch.nextDeliver;
        eq.schedule(when, [this, when, fn = std::move(fn)] {
            delivered_.inc();
            fn(when);
        });
    }
}

void
Network::checkDrained() const
{
    SWSM_INVARIANT(messages.value() == delivered_.value(),
                   "network lost messages: %llu sent, %llu delivered",
                   static_cast<unsigned long long>(messages.value()),
                   static_cast<unsigned long long>(delivered_.value()));
    for (std::size_t c = 0; c < channels.size(); ++c) {
        const Channel &ch = channels[c];
        SWSM_INVARIANT(
            ch.done.empty(),
            "channel %d->%d ended with %zu undelivered messages",
            static_cast<int>(c / nics.size()),
            static_cast<int>(c % nics.size()), ch.done.size());
        SWSM_INVARIANT(
            ch.nextAssign == ch.nextDeliver,
            "channel %d->%d ended mid-stream: assigned %llu, "
            "delivered %llu",
            static_cast<int>(c / nics.size()),
            static_cast<int>(c % nics.size()),
            static_cast<unsigned long long>(ch.nextAssign),
            static_cast<unsigned long long>(ch.nextDeliver));
    }
}

void
Network::saveSpecState(int partition, const std::vector<NodeId> &owned)
{
    SpecState &s = spec_[partition];
    s.nics.clear();
    s.recv.clear();
    s.send.clear();
    const std::size_t n_nodes = static_cast<std::size_t>(numNodes());
    for (NodeId n : owned) {
        s.nics.push_back(*nics[n]);
        for (std::size_t m = 0; m < n_nodes; ++m) {
            // Sender half of n -> m: written only by send() in n's
            // context.
            const std::size_t out = n * n_nodes + m;
            s.send.emplace_back(out, channels[out].nextAssign);
            // Receiver half of m -> n: written only by complete() in
            // n's context.
            const std::size_t in = m * n_nodes + n;
            const Channel &ch = channels[in];
            s.recv.push_back(SpecState::RecvHalf{in, ch.nextDeliver,
                                                 ch.lastTime, ch.done});
        }
    }
    s.messagesShard = messages.shardValue(partition);
    s.bytesShard = bytes_.shardValue(partition);
    s.deliveredShard = delivered_.shardValue(partition);
}

void
Network::restoreSpecState(int partition, const std::vector<NodeId> &owned)
{
    SpecState &s = spec_[partition];
    for (std::size_t i = 0; i < owned.size(); ++i)
        *nics[owned[i]] = s.nics[i];
    for (const auto &[idx, next_assign] : s.send)
        channels[idx].nextAssign = next_assign;
    for (const SpecState::RecvHalf &half : s.recv) {
        Channel &ch = channels[half.idx];
        ch.nextDeliver = half.nextDeliver;
        ch.lastTime = half.lastTime;
        ch.done = half.done;
    }
    messages.setShardValue(partition, s.messagesShard);
    bytes_.setShardValue(partition, s.bytesShard);
    delivered_.setShardValue(partition, s.deliveredShard);
}

Cycles
Network::transferCycles(std::uint32_t bytes, double bytes_per_cycle)
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
}

Cycles
Network::crossLookahead(NodeId from, NodeId to) const
{
    // Every remote packet is scheduled for arrival from an event
    // executing at ni_done, and arrive >= ni_done + NI occupancy + the
    // hop's link latency + at least one wire cycle (bandwidth is
    // finite, so a 1-byte transfer costs >= 1 cycle). This bound holds
    // for every CommParams set and is computed once per run.
    return params_.niOccupancyPerPacket + linkLatency(from, to) +
           transferCycles(1, linkBandwidth(from, to));
}

Cycles
Network::crossLookahead() const
{
    if (numNodes() < 2)
        return crossLookahead(0, 0);
    Cycles min_l = ~static_cast<Cycles>(0);
    for (NodeId a = 0; a < numNodes(); ++a) {
        for (NodeId b = 0; b < numNodes(); ++b) {
            if (a != b)
                min_l = std::min(min_l, crossLookahead(a, b));
        }
    }
    return min_l;
}

void
Network::registerMetrics(MetricsRegistry &registry) const
{
    registry.addCounter("net.messages",
                        [this] { return messages.value(); });
    registry.addCounter("net.bytes", [this] { return bytes_.value(); });

    struct Kind
    {
        const char *prefix;
        const FcfsResource &(*pick)(const Nic &);
    };
    static constexpr Kind kinds[] = {
        {"net.iobus",
         [](const Nic &n) -> const FcfsResource & { return n.ioBus; }},
        {"net.ni",
         [](const Nic &n) -> const FcfsResource & { return n.niProc; }},
    };
    for (const Kind &kind : kinds) {
        const std::string prefix = kind.prefix;
        auto pick = kind.pick;
        registry.addCounter(prefix + ".busy_cycles", [this, pick] {
            std::uint64_t sum = 0;
            for (const auto &nic : nics)
                sum += pick(*nic).totalBusyCycles().value();
            return sum;
        });
        registry.addCounter(prefix + ".uses", [this, pick] {
            std::uint64_t sum = 0;
            for (const auto &nic : nics)
                sum += pick(*nic).totalUses().value();
            return sum;
        });
        registry.addGauge(prefix + ".queue_cycles", [this, pick] {
            double sum = 0.0;
            for (const auto &nic : nics)
                sum += pick(*nic).queueingDelay().sum();
            return sum;
        });
        registry.addHistogram(prefix + ".queue_delay", [this, pick] {
            HistogramData merged;
            for (const auto &nic : nics)
                merged.merge(FcfsResource::histogramData(
                    pick(*nic).queueDelayHist()));
            return merged;
        });
        registry.addHistogram(prefix + ".occupancy", [this, pick] {
            HistogramData merged;
            for (const auto &nic : nics)
                merged.merge(FcfsResource::histogramData(
                    pick(*nic).occupancyHist()));
            return merged;
        });
    }
}

void
Network::send(NodeId src, NodeId dst, std::uint32_t bytes,
              Cycles ready_time, DeliverFn on_delivered)
{
    if (src < 0 || src >= numNodes() || dst < 0 || dst >= numNodes())
        SWSM_PANIC("send between invalid nodes %d -> %d", src, dst);
    messages.inc();
    bytes_.inc(bytes);

    if (trace_) {
        // Wrap the delivery callback so the message shows up as a span
        // from injection to last-byte delivery on the sender's track.
        on_delivered = [this, src, dst, bytes, ready_time,
                        cb = std::move(on_delivered)](Cycles t) {
            trace_->complete("msg", "net", src, ready_time, t,
                             TraceArg{"dst",
                                      static_cast<std::uint64_t>(dst)},
                             TraceArg{"bytes", bytes});
            cb(t);
        };
    }

    Channel &channel =
        channels[static_cast<std::size_t>(src) * numNodes() + dst];
    const std::uint64_t seq = channel.nextAssign++;

    if (src == dst) {
        // Local dispatch: no NIC involvement, but keep FIFO order.
        auto local = [this, &channel, seq, ready_time,
                      cb = std::move(on_delivered)]() mutable {
            complete(channel, seq, ready_time, std::move(cb));
        };
        // This is the closure EventFn::inlineBytes is sized for; if it
        // grows past the inline store, every local message starts heap
        // allocating — resize one or shrink the other.
        static_assert(sizeof(local) <= EventFn::inlineBytes,
                      "local-dispatch closure no longer fits EventFn's "
                      "inline storage");
        eq.schedule(ready_time, std::move(local));
        return;
    }

    // Per-message completion tracker shared by the packet pipelines.
    struct Tracker
    {
        std::uint32_t remaining;
        Cycles latest = 0;
        DeliverFn cb;
    };
    const std::uint32_t num_packets =
        (bytes + params_.maxPacketBytes - 1) / params_.maxPacketBytes;
    auto tracker = std::make_shared<Tracker>();
    tracker->remaining = std::max(num_packets, 1u);
    tracker->cb = std::move(on_delivered);

    std::uint32_t remaining = bytes;
    for (std::uint32_t p = 0; p < tracker->remaining; ++p) {
        const std::uint32_t pkt =
            std::min(remaining, params_.maxPacketBytes);
        remaining -= pkt;

        // Stage 1 at ready_time: cross the sender's I/O bus. Scheduling
        // every packet's first stage at the same time preserves packet
        // order via FCFS acquisition and lets packets pipeline through
        // the later stages. Stages 1-2 execute in the sender's context;
        // stage 2's dispatch is the one cross-node hop (scheduleTo), so
        // stages 3-5 and the delivery execute in the receiver's context
        // — the partition-ownership split the parallel engine needs.
        auto stage1 = [this, src, dst, pkt, &channel, seq, tracker] {
            Nic &snic = *nics[src];
            const Cycles io_done = snic.ioBus.acquire(
                eq.now(), transferCycles(pkt, params_.ioBusBytesPerCycle));

            auto stage2 = [this, src, dst, pkt, &channel, seq, tracker] {
                Nic &snic = *nics[src];
                const Cycles ni_done = snic.niProc.acquire(
                    eq.now(), params_.niOccupancyPerPacket);
                // Island-aware hop costs: crossLookahead(src, dst)
                // lower-bounds (arrive - ni_done) per pair, which is
                // what makes the per-destination lookahead matrix
                // sound.
                const Cycles arrive = ni_done + linkLatency(src, dst) +
                    transferCycles(pkt, linkBandwidth(src, dst));

                auto stage3 = [this, dst, pkt, &channel, seq, tracker] {
                    Nic &dnic = *nics[dst];
                    const Cycles rni_done = dnic.niProc.acquire(
                        eq.now(), params_.niOccupancyPerPacket);

                    auto stage4 = [this, dst, pkt, &channel, seq,
                                   tracker] {
                        Nic &dnic = *nics[dst];
                        const Cycles rio_done = dnic.ioBus.acquire(
                            eq.now(),
                            transferCycles(pkt,
                                           params_.ioBusBytesPerCycle));

                        auto stage5 = [this, &channel, seq, tracker] {
                            // Stage 5 is the only tracker mutator and
                            // runs in the receiver's context, so it may
                            // execute inside a speculation window; log
                            // a one-shot pre-image for rollback.
                            if (specLog_ && specLog_->active() &&
                                specLog_->needsUndo(tracker.get())) {
                                specLog_->pushUndo(
                                    [t = tracker,
                                     remaining = tracker->remaining,
                                     latest = tracker->latest,
                                     cb = tracker->cb]() mutable {
                                        t->remaining = remaining;
                                        t->latest = latest;
                                        t->cb = std::move(cb);
                                    });
                            }
                            tracker->latest =
                                std::max(tracker->latest, eq.now());
                            if (--tracker->remaining == 0) {
                                complete(channel, seq, tracker->latest,
                                         std::move(tracker->cb));
                            }
                        };
                        static_assert(sizeof(stage5) <=
                                          EventFn::inlineBytes,
                                      "packet stage closure outgrew "
                                      "EventFn's inline storage");
                        eq.schedule(rio_done, std::move(stage5));
                    };
                    static_assert(sizeof(stage4) <= EventFn::inlineBytes,
                                  "packet stage closure outgrew "
                                  "EventFn's inline storage");
                    eq.schedule(rni_done, std::move(stage4));
                };
                static_assert(sizeof(stage3) <= EventFn::inlineBytes,
                              "packet stage closure outgrew EventFn's "
                              "inline storage");
                // The wire hop: this is the only cross-node schedule in
                // the simulator, and crossLookahead() lower-bounds
                // (arrive - now) for the parallel engine's windows.
                eq.scheduleTo(static_cast<std::uint32_t>(dst), arrive,
                              std::move(stage3));
            };
            static_assert(sizeof(stage2) <= EventFn::inlineBytes,
                          "packet stage closure outgrew EventFn's "
                          "inline storage");
            eq.schedule(io_done, std::move(stage2));
        };
        static_assert(sizeof(stage1) <= EventFn::inlineBytes,
                      "packet stage closure outgrew EventFn's inline "
                      "storage");
        eq.schedule(ready_time, std::move(stage1));
    }
}

} // namespace swsm
