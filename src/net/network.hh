/**
 * @file
 * Myrinet-like cluster interconnect with endpoint contention.
 *
 * Each node owns a NIC with an I/O bus and an NI processor, both modeled
 * as FCFS resources. A message moves through a per-packet pipeline:
 *
 *   sender I/O bus -> sender NI occupancy -> wire (fixed latency +
 *   bandwidth, contention-free) -> receiver NI occupancy -> receiver
 *   I/O bus -> delivery callback
 *
 * Host overhead (the CPU-side send cost) is charged by the *caller* (the
 * sending processor's fiber), because it occupies the host CPU, not the
 * network; the network receives the message once the overhead has been
 * paid. Packets of one message are pipelined; messages between the same
 * (src, dst) pair are delivered in FIFO order (VMMC channel semantics),
 * which the coherence protocols rely on.
 */

#ifndef SWSM_NET_NETWORK_HH
#define SWSM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <array>

#include "net/comm_params.hh"
#include "net/fcfs_resource.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/spec_log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace swsm
{

/** Invoked when the last byte of a message lands in host memory. */
using DeliverFn = std::function<void(Cycles delivery_time)>;

/** Per-node network interface state. */
class Nic
{
  public:
    explicit Nic(NodeId node)
        : ioBus("node" + std::to_string(node) + ".iobus"),
          niProc("node" + std::to_string(node) + ".ni")
    {}

    /** Shared host-to-NI I/O bus (both directions contend). */
    FcfsResource ioBus;
    /** The NI's (slow) packet processor; one per NIC, as in Myrinet. */
    FcfsResource niProc;

    void
    reset()
    {
        ioBus.reset();
        niProc.reset();
    }
};

/**
 * The cluster interconnect: N NICs plus contention-free wires.
 */
class Network
{
  public:
    /**
     * @param eq event queue driving the simulation
     * @param num_nodes cluster size
     * @param params communication cost parameters
     */
    Network(EventQueue &eq, int num_nodes, const CommParams &params);

    /**
     * Inject a message. @p ready_time must already include the sender's
     * host overhead (charged to the sending processor by the caller).
     * @param on_delivered runs when the full message is in dst's memory.
     */
    void send(NodeId src, NodeId dst, std::uint32_t bytes,
              Cycles ready_time, DeliverFn on_delivered);

    /** Loopback-free check; self-sends bypass the wire (local dispatch). */
    int numNodes() const { return static_cast<int>(nics.size()); }

    const CommParams &params() const { return params_; }
    Nic &nic(NodeId node) { return *nics.at(node); }

    const ShardedCounter &messagesSent() const { return messages; }
    const ShardedCounter &bytesSent() const { return bytes_; }
    /** Messages whose delivery callback has run (conservation check). */
    const ShardedCounter &messagesDelivered() const { return delivered_; }

    /** True when @p a and @p b sit on the same island (flat: always). */
    bool
    sameIsland(NodeId a, NodeId b) const
    {
        return params_.islandNodes <= 0 ||
               a / params_.islandNodes == b / params_.islandNodes;
    }

    /** Wire latency of the @p src -> @p dst hop (island-aware). */
    Cycles
    linkLatency(NodeId src, NodeId dst) const
    {
        return sameIsland(src, dst)
                   ? params_.linkLatency
                   : params_.linkLatency +
                         params_.interIslandExtraLatency;
    }

    /** Wire bandwidth of the @p src -> @p dst hop, bytes/cycle. */
    double
    linkBandwidth(NodeId src, NodeId dst) const
    {
        return sameIsland(src, dst)
                   ? params_.linkBytesPerCycle
                   : params_.linkBytesPerCycle *
                         params_.interIslandBandwidthFactor;
    }

    /**
     * Minimum gap, in cycles, between the sender-side dispatch event
     * (the moment a packet leaves @p from's NI pipeline stage) and the
     * receiver-side arrival it schedules at @p to: NI occupancy + the
     * hop's link latency + the smallest possible wire transfer over
     * the hop's bandwidth. This per-destination lookahead feeds the
     * parallel event engine's partition lookahead matrix (sim/pdes.hh);
     * it is >= 1 because link bandwidth is finite.
     */
    Cycles crossLookahead(NodeId from, NodeId to) const;

    /**
     * Global minimum of crossLookahead(from, to) over distinct node
     * pairs — the scalar lookahead that bounded the legacy global-min
     * windows. For flat networks every pair is equal.
     */
    Cycles crossLookahead() const;

    /**
     * Verify end-of-run conservation: every injected message was
     * delivered and every FIFO channel drained in order. Called by the
     * machine layer after the event queue drains when invariant
     * checking is enabled (SWSM_CHECK); throws
     * check::InvariantViolation on failure.
     */
    void checkDrained() const;

    /**
     * Enable event tracing: every message becomes a complete event on
     * the sender's track (injection to last-byte delivery). Null (the
     * default) disables tracing at the cost of one branch per send.
     */
    void setTracer(Tracer *tracer) { trace_ = tracer; }

    /**
     * Register network totals and endpoint-resource metrics under
     * "net.*". Per-node resources are aggregated across the (symmetric)
     * NICs: net.iobus.* and net.ni.* carry cluster-wide sums and merged
     * histograms.
     */
    void registerMetrics(MetricsRegistry &registry) const;

    /**
     * Machine-level speculation support. The undo log covers the
     * per-message completion trackers (mutated by pipeline stage 5
     * inside speculation windows); save/restore checkpoint everything
     * else a partition's events can touch: the owned nodes' NICs, the
     * partition's shard of the message counters, and — following the
     * Channel ownership split — the sender halves of the owned nodes'
     * outgoing channels plus the receiver halves of their incoming
     * ones. Called only from the partition's worker thread.
     */
    void setSpecLog(SpecWriteLog *log) { specLog_ = log; }
    void saveSpecState(int partition, const std::vector<NodeId> &owned);
    void restoreSpecState(int partition, const std::vector<NodeId> &owned);

  private:
    /** Cycles to move @p bytes over a bandwidth in bytes/cycle. */
    static Cycles transferCycles(std::uint32_t bytes, double bytes_per_cycle);

    /** Advance one packet of a message through the pipeline. */
    void sendPacket(NodeId src, NodeId dst, std::uint32_t pkt_bytes,
                    std::uint32_t remaining, Cycles ready_time,
                    std::shared_ptr<DeliverFn> on_delivered);

    /**
     * Per-(src, dst) FIFO channel: messages are delivered in injection
     * order even when a small message would overtake a large one on the
     * contention-free wire (VMMC/wormhole channel semantics).
     *
     * Partition ownership under the parallel engine: nextAssign is
     * written only by send() (the sender's context); nextDeliver,
     * lastTime and done are written only by complete() (the receiver's
     * context) — disjoint fields, so the struct needs no locking.
     */
    struct Channel
    {
        std::uint64_t nextAssign = 0;
        std::uint64_t nextDeliver = 0;
        Cycles lastTime = 0;
        /** Completed-but-unordered messages keyed by sequence. */
        std::map<std::uint64_t, std::pair<Cycles, DeliverFn>> done;
    };

    /** Message pipeline finished; deliver respecting channel order. */
    void complete(Channel &ch, std::uint64_t seq, Cycles t, DeliverFn cb);

    EventQueue &eq;
    CommParams params_;
    std::vector<std::unique_ptr<Nic>> nics;
    std::vector<Channel> channels;

    // Sharded: sends execute on the sender's partition and deliveries
    // on the receiver's when the run is partitioned (sim/pdes.hh).
    ShardedCounter messages;
    ShardedCounter bytes_;
    ShardedCounter delivered_;
    Tracer *trace_ = nullptr;

    /** Speculation undo log (null outside optimistic parallel runs). */
    SpecWriteLog *specLog_ = nullptr;

    /** One partition's saveSpecState checkpoint. */
    struct SpecState
    {
        /** NIC copies, parallel to the owned-node list. */
        std::vector<Nic> nics;
        /** Receiver half of an incoming channel (complete()'s fields). */
        struct RecvHalf
        {
            std::size_t idx;
            std::uint64_t nextDeliver;
            Cycles lastTime;
            std::map<std::uint64_t, std::pair<Cycles, DeliverFn>> done;
        };
        std::vector<RecvHalf> recv;
        /** (channel index, nextAssign) sender halves. */
        std::vector<std::pair<std::size_t, std::uint64_t>> send;
        std::uint64_t messagesShard = 0;
        std::uint64_t bytesShard = 0;
        std::uint64_t deliveredShard = 0;
    };
    std::array<SpecState, ShardedCounter::maxStatShards> spec_;
};

} // namespace swsm

#endif // SWSM_NET_NETWORK_HH
