/**
 * @file
 * Cooperative fibers (ucontext-based) for execution-driven simulation.
 *
 * Each simulated processor runs its application thread on a Fiber; the
 * discrete-event scheduler resumes fibers in simulated-time order. This
 * plays the role the augmint execution-driven front end plays in the
 * paper: application code runs natively and interacts with the timing
 * model only at shared accesses and synchronization points.
 *
 * Fibers are strictly cooperative and single-OS-thread; there is no
 * preemption and no locking, which keeps simulations deterministic.
 */

#ifndef SWSM_FIBER_FIBER_HH
#define SWSM_FIBER_FIBER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace swsm
{

/**
 * A cooperative fiber with its own stack.
 *
 * Lifecycle: constructed with a body function; resume() switches into it;
 * the body calls Fiber::yield() to switch back to the resumer. When the
 * body returns, the fiber becomes finished() and further resumes panic.
 */
class Fiber
{
  public:
    using Body = std::function<void()>;

    /**
     * @param body function executed on the fiber
     * @param stack_bytes fiber stack size (default 256 KiB)
     */
    explicit Fiber(Body body, std::size_t stack_bytes = 256 * 1024);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the calling context into this fiber. Returns when the
     * fiber yields or its body returns.
     * @pre !finished() and not currently running
     */
    void resume();

    /** True once the body function has returned. */
    bool finished() const { return finished_; }

    /** True while the fiber is the running context. */
    bool running() const { return running_; }

    /**
     * Switch from the running fiber back to its resumer.
     * @pre called from inside a fiber body
     */
    static void yield();

    /** The fiber currently executing, or nullptr in scheduler context. */
    static Fiber *current();

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    Body body;
    std::unique_ptr<char[]> stack;
    ucontext_t context;
    ucontext_t returnContext;
    /**
     * ThreadSanitizer's shadow context for this fiber and for the
     * resumer we switch back to (TSan fiber API). Null in non-TSan
     * builds; without these annotations TSan misreads every ucontext
     * stack switch as one thread racing itself.
     */
    void *tsanFiber = nullptr;
    void *tsanReturnFiber = nullptr;
    bool started = false;
    bool finished_ = false;
    bool running_ = false;
};

} // namespace swsm

#endif // SWSM_FIBER_FIBER_HH
