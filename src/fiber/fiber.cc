#include "fiber.hh"

#include <cstdint>

#include "sim/log.hh"

// ThreadSanitizer needs to be told about user-level context switches
// (the fiber API); otherwise the ucontext swaps below look like a
// single thread racing against its own stack.
#if defined(__SANITIZE_THREAD__)
#define SWSM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SWSM_TSAN_FIBERS 1
#endif
#endif

#ifdef SWSM_TSAN_FIBERS
extern "C" {
void *__tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void *fiber);
void __tsan_switch_to_fiber(void *fiber, unsigned flags);
void *__tsan_get_current_fiber(void);
}
#endif

namespace swsm
{

namespace
{
thread_local Fiber *current_fiber = nullptr;

inline void *
tsanCreateFiber()
{
#ifdef SWSM_TSAN_FIBERS
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

inline void
tsanDestroyFiber(void *fiber)
{
#ifdef SWSM_TSAN_FIBERS
    if (fiber)
        __tsan_destroy_fiber(fiber);
#else
    (void)fiber;
#endif
}

inline void *
tsanCurrentFiber()
{
#ifdef SWSM_TSAN_FIBERS
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

/** Announce the switch; must run immediately before the swapcontext. */
inline void
tsanSwitchTo(void *fiber)
{
#ifdef SWSM_TSAN_FIBERS
    __tsan_switch_to_fiber(fiber, 0);
#else
    (void)fiber;
#endif
}

} // namespace

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body(std::move(body)), stack(new char[stack_bytes])
{
    if (getcontext(&context) != 0)
        SWSM_PANIC("getcontext failed");
    context.uc_stack.ss_sp = stack.get();
    context.uc_stack.ss_size = stack_bytes;
    context.uc_link = nullptr;

    // makecontext only passes int-sized arguments portably; split the
    // object pointer into two 32-bit halves.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    unsigned hi = static_cast<unsigned>(self >> 32);
    unsigned lo = static_cast<unsigned>(self & 0xffffffffu);
    makecontext(&context, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, hi, lo);
    tsanFiber = tsanCreateFiber();
}

Fiber::~Fiber()
{
    if (running_)
        SWSM_PANIC("destroying a running fiber");
    tsanDestroyFiber(tsanFiber);
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->run();
}

void
Fiber::run()
{
    body();
    finished_ = true;
    running_ = false;
    Fiber *prev = current_fiber;
    current_fiber = nullptr;
    // Final switch back to the resumer; never returns here.
    tsanSwitchTo(prev->tsanReturnFiber);
    swapcontext(&prev->context, &prev->returnContext);
    SWSM_PANIC("resumed a finished fiber body");
}

void
Fiber::resume()
{
    if (finished_)
        SWSM_PANIC("resume() on a finished fiber");
    if (running_)
        SWSM_PANIC("resume() on the running fiber");
    Fiber *prev = current_fiber;
    current_fiber = this;
    running_ = true;
    started = true;
    tsanReturnFiber = tsanCurrentFiber();
    tsanSwitchTo(tsanFiber);
    swapcontext(&returnContext, &context);
    current_fiber = prev;
}

void
Fiber::yield()
{
    Fiber *self = current_fiber;
    if (!self)
        SWSM_PANIC("Fiber::yield() outside any fiber");
    self->running_ = false;
    tsanSwitchTo(self->tsanReturnFiber);
    swapcontext(&self->context, &self->returnContext);
    self->running_ = true;
}

Fiber *
Fiber::current()
{
    return current_fiber;
}

} // namespace swsm
