/**
 * @file
 * Measured parallelism budget: how many worker processes, sweep jobs
 * and per-simulation event-kernel threads one machine should run.
 *
 * The sweep stack has three multiplicative parallelism knobs —
 * worker *processes* (the sweep server's --workers fan-out), sweep
 * *jobs* (TaskPool threads running whole experiments) and
 * *sim-threads* (partitions inside one simulation, sim/pdes.hh). The
 * legacy rule composed only the last two, statically:
 * min(SWSM_SIM_THREADS, hardware threads / jobs). This module replaces
 * it with one allocator that sees all three knobs plus the grid size,
 * so a two-item grid on a 16-core host runs 2 jobs x 8 sim-threads
 * instead of 16 idle jobs x 1, and worker processes are fed enough
 * queueing jobs to stay busy.
 *
 * Rules (computeBudget):
 *  - Explicit flags are always authoritative (never overridden).
 *  - The active runner count is workers when worker processes are in
 *    play, else jobs; auto jobs are clamped to the grid size (no point
 *    spawning more runners than experiments) and raised to at least
 *    the worker count (each queued job needs a submitting slot).
 *  - Auto sim-threads get the leftover cores: hardware / runners,
 *    capped by SWSM_SIM_THREADS when that is set, by the engine's
 *    partition limit always, and forced to 1 by SWSM_PDES=0.
 *
 * SWSM_BUDGET=static restores the legacy composition (auto
 * sim-threads stay 1 unless SWSM_SIM_THREADS is set, jobs are not
 * grid-clamped); SWSM_BUDGET=measured (or unset) selects the
 * allocator. Anything else warns and uses the default.
 */

#ifndef SWSM_HARNESS_BUDGET_HH
#define SWSM_HARNESS_BUDGET_HH

namespace swsm
{

/** Upper bound on --workers (worker processes per server). */
constexpr int maxWorkerProcs = 256;

/** What the caller knows and what it already decided. */
struct BudgetRequest
{
    /** Host threads; 0 = measure (hardware_concurrency, min 1). */
    int hardwareThreads = 0;
    /** Experiments runnable concurrently; 0 = unknown (assume many). */
    int gridItems = 0;
    /** Requested sweep jobs; 0 = auto (hardware threads). */
    int jobs = 0;
    /** True when --jobs was given explicitly (never overridden). */
    bool jobsExplicit = false;
    /**
     * Requested per-simulation threads; 0 = auto (SWSM_SIM_THREADS if
     * set, else the leftover-core share).
     */
    int simThreads = 0;
    /** True when --sim-threads was given explicitly. */
    bool simThreadsExplicit = false;
    /** Requested worker processes (server fan-out); 0 = none. */
    int workers = 0;
    /** True to pick the worker count from the measurement instead. */
    bool workersAuto = false;
};

/** The allocation: workers x jobs x simThreads. */
struct Budget
{
    int workers = 0;
    int jobs = 1;
    int simThreads = 1;
};

/** True when SWSM_BUDGET selects the legacy static rule. */
bool budgetIsStatic();

/** hardware_concurrency with a floor of 1 (it may report 0). */
int measuredHardwareThreads();

/** Allocate workers/jobs/simThreads for @p req (see file comment). */
Budget computeBudget(const BudgetRequest &req);

} // namespace swsm

#endif // SWSM_HARNESS_BUDGET_HH
