/**
 * @file
 * Fixed-size worker thread pool with task dependencies, built for the
 * parallel sweep engine (harness/parallel_sweep.hh).
 *
 * Tasks are submitted up front with optional dependencies on earlier
 * tasks; run() then executes the whole graph and blocks until it
 * drains. Ready tasks are dispatched in submission order (the lowest
 * ready id first), so a 1-worker pool executes tasks in exactly the
 * order they were submitted — the legacy serial behaviour — without
 * spawning any threads. With N workers, tasks must be independent of
 * each other except through the declared dependencies; each task runs
 * entirely on one worker thread.
 */

#ifndef SWSM_HARNESS_TASK_POOL_HH
#define SWSM_HARNESS_TASK_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

namespace swsm
{

/** A one-shot dependency-aware task graph executor. */
class TaskPool
{
  public:
    using TaskId = std::size_t;

    /** @param workers worker count; <= 1 means run inline in run(). */
    explicit TaskPool(int workers);

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * Add a task. @p deps must name previously submitted tasks; the
     * task becomes ready only once they have all completed.
     * @return the new task's id (submission order)
     */
    TaskId submit(std::function<void()> fn,
                  const std::vector<TaskId> &deps = {});

    /** Number of submitted tasks. */
    std::size_t size() const { return tasks.size(); }

    /**
     * Execute every submitted task, honouring dependencies; blocks
     * until all have completed. If any task threw, the first exception
     * (in task-id order) is rethrown after the graph drains; dependent
     * tasks still run.
     *
     * The pool is one-shot: run() may only be called once.
     */
    void run();

  private:
    struct Task
    {
        std::function<void()> fn;
        std::vector<TaskId> dependents;
        std::size_t unmetDeps = 0;
    };

    void workerLoop();
    void finish(TaskId id);

    const int workers;
    std::vector<Task> tasks;
    bool ran = false;

    std::mutex mu;
    std::condition_variable cv;
    /** Min-heap on task id: dispatch in submission order. */
    std::priority_queue<TaskId, std::vector<TaskId>,
                        std::greater<TaskId>>
        ready;
    std::size_t completed = 0;
    std::vector<std::exception_ptr> errors;
};

} // namespace swsm

#endif // SWSM_HARNESS_TASK_POOL_HH
