#include "task_pool.hh"

#include <algorithm>
#include <thread>

#include "sim/log.hh"

namespace swsm
{

TaskPool::TaskPool(int workers) : workers(std::max(workers, 1)) {}

TaskPool::TaskId
TaskPool::submit(std::function<void()> fn, const std::vector<TaskId> &deps)
{
    if (ran)
        SWSM_PANIC("TaskPool::submit after run()");
    const TaskId id = tasks.size();
    tasks.push_back(Task{std::move(fn), {}, 0});
    for (const TaskId dep : deps) {
        if (dep >= id)
            SWSM_PANIC("task %zu depends on not-yet-submitted task %zu",
                       id, dep);
        tasks[dep].dependents.push_back(id);
        ++tasks[id].unmetDeps;
    }
    return id;
}

void
TaskPool::run()
{
    if (ran)
        SWSM_PANIC("TaskPool::run called twice");
    ran = true;
    errors.assign(tasks.size(), nullptr);

    if (workers <= 1 || tasks.size() <= 1) {
        // Serial mode: execute inline in submission order (which always
        // satisfies dependencies, since deps reference earlier ids).
        // No threads are spawned, so this path behaves exactly like the
        // legacy serial runner.
        for (TaskId id = 0; id < tasks.size(); ++id) {
            try {
                tasks[id].fn();
            } catch (...) {
                errors[id] = std::current_exception();
            }
            tasks[id].fn = nullptr;
        }
    } else {
        for (TaskId id = 0; id < tasks.size(); ++id) {
            if (tasks[id].unmetDeps == 0)
                ready.push(id);
        }
        const int n =
            static_cast<int>(std::min<std::size_t>(workers, tasks.size()));
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (int i = 0; i < n; ++i)
            pool.emplace_back([this] { workerLoop(); });
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
TaskPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    while (completed < tasks.size()) {
        if (ready.empty()) {
            cv.wait(lock, [this] {
                return !ready.empty() || completed == tasks.size();
            });
            continue;
        }
        const TaskId id = ready.top();
        ready.pop();
        lock.unlock();
        try {
            tasks[id].fn();
        } catch (...) {
            errors[id] = std::current_exception();
        }
        tasks[id].fn = nullptr;
        lock.lock();
        finish(id);
    }
    // Wake any peers still parked in wait() so they can observe
    // completion and exit.
    cv.notify_all();
}

/** Mark @p id complete and release its dependents. Caller holds mu. */
void
TaskPool::finish(TaskId id)
{
    ++completed;
    bool freed = false;
    for (const TaskId dep : tasks[id].dependents) {
        if (--tasks[dep].unmetDeps == 0) {
            ready.push(dep);
            freed = true;
        }
    }
    if (freed || completed == tasks.size())
        cv.notify_all();
}

} // namespace swsm
