#include "bench_report.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/log.hh"

namespace swsm
{

namespace
{

const char *
sizeClassName(SizeClass size)
{
    switch (size) {
      case SizeClass::Tiny:
        return "tiny";
      case SizeClass::Small:
        return "small";
      case SizeClass::Medium:
        return "medium";
    }
    return "unknown";
}

/** Minimal JSON string escaping (keys here are plain ASCII anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

} // namespace

BenchReport::BenchReport(std::string name, const SweepOptions *opts)
    : name(std::move(name)), start(std::chrono::steady_clock::now())
{
    if (opts) {
        haveOpts = true;
        jobs = opts->jobs;
        numProcs = opts->numProcs;
        sizeName = sizeClassName(opts->size);
    }
}

void
BenchReport::add(const std::string &key, const ExperimentResult &r)
{
    entries.push_back(Entry{key, r.workload, r.protocol, r.config,
                            r.parallelCycles, r.sequentialCycles,
                            r.verified, r.hostSeconds});
}

void
BenchReport::addBaseline(const std::string &app, Cycles seq)
{
    baselines.emplace_back(app, seq);
}

void
BenchReport::addAll(const SweepRunner &runner)
{
    runner.forEachBaseline(
        [this](const std::string &app, Cycles seq) {
            addBaseline(app, seq);
        });
    runner.forEachResult(
        [this](const std::string &key, const ExperimentResult &r) {
            add(key, r);
        });
}

void
BenchReport::addAll(const ParallelSweepRunner &runner)
{
    addAll(static_cast<const SweepRunner &>(runner));
    runner.forEachCustom(
        [this](const std::string &key, const ExperimentResult &r) {
            add(key, r);
        });
}

bool
BenchReport::write()
{
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::string path = "BENCH_" + name + ".json";
    if (const char *dir = std::getenv("SWSM_BENCH_DIR"))
        path = std::string(dir) + "/" + path;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        SWSM_WARN("cannot write %s", path.c_str());
        return false;
    }

    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", jsonEscape(name).c_str());
    if (haveOpts) {
        std::fprintf(f, "  \"jobs\": %d,\n", jobs);
        std::fprintf(f, "  \"numProcs\": %d,\n", numProcs);
        std::fprintf(f, "  \"size\": \"%s\",\n", sizeName.c_str());
    }
    std::fprintf(f, "  \"hostSeconds\": %.6f,\n", wall);

    std::fprintf(f, "  \"baselines\": [");
    for (std::size_t i = 0; i < baselines.size(); ++i) {
        std::fprintf(f, "%s\n    {\"app\": \"%s\", \"simCycles\": %llu}",
                     i ? "," : "", jsonEscape(baselines[i].first).c_str(),
                     static_cast<unsigned long long>(baselines[i].second));
    }
    std::fprintf(f, "%s],\n", baselines.empty() ? "" : "\n  ");

    std::fprintf(f, "  \"experiments\": [");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        const double speedup = e.simCycles
            ? static_cast<double>(e.seqCycles) /
                static_cast<double>(e.simCycles)
            : 0.0;
        std::fprintf(
            f,
            "%s\n    {\"key\": \"%s\", \"workload\": \"%s\", "
            "\"protocol\": \"%s\", \"config\": \"%s\", "
            "\"simCycles\": %llu, \"seqCycles\": %llu, "
            "\"speedup\": %.4f, \"verified\": %s, "
            "\"hostSeconds\": %.6f}",
            i ? "," : "", jsonEscape(e.key).c_str(),
            jsonEscape(e.workload).c_str(), jsonEscape(e.protocol).c_str(),
            jsonEscape(e.config).c_str(),
            static_cast<unsigned long long>(e.simCycles),
            static_cast<unsigned long long>(e.seqCycles), speedup,
            e.verified ? "true" : "false", e.hostSeconds);
    }
    std::fprintf(f, "%s]\n}\n", entries.empty() ? "" : "\n  ");

    std::fclose(f);
    return true;
}

} // namespace swsm
