#include "bench_report.hh"

#include <cstdio>
#include <cstdlib>

#include "obs/json_writer.hh"
#include "sim/log.hh"

namespace swsm
{

namespace
{

void
writeSnapshot(JsonWriter &w, const MetricsSnapshot &m)
{
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : m.counters)
        w.member(name, v);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, v] : m.gauges)
        w.member(name, v);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : m.histograms) {
        w.key(name);
        w.beginObject();
        w.member("total", h.total);
        w.key("buckets");
        w.beginArray();
        for (const std::uint64_t count : h.buckets)
            w.value(count);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        SWSM_WARN("cannot write %s", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        SWSM_WARN("short write to %s", path.c_str());
    return ok;
}

} // namespace

BenchReport::BenchReport(std::string name, const SweepOptions *opts)
    : name(std::move(name)), start(std::chrono::steady_clock::now())
{
    if (opts) {
        haveOpts = true;
        jobs = opts->jobs;
        simThreads = opts->effectiveSimThreads();
        numProcs = opts->numProcs;
        sizeName = sizeClassName(opts->size);
        tracePath = opts->tracePath;
    }
}

void
BenchReport::add(const std::string &key, const ExperimentResult &r)
{
    entries.push_back(Entry{key, r.workload, r.protocol, r.config,
                            r.parallelCycles, r.sequentialCycles,
                            r.verified, r.hostSeconds, r.stats.metrics,
                            r.trace});
}

void
BenchReport::addBaseline(const std::string &app, Cycles seq)
{
    baselines.emplace_back(app, seq);
}

void
BenchReport::addAll(const SweepRunner &runner)
{
    runner.forEachBaseline(
        [this](const std::string &app, Cycles seq) {
            addBaseline(app, seq);
        });
    runner.forEachResult(
        [this](const std::string &key, const ExperimentResult &r) {
            add(key, r);
        });
}

void
BenchReport::addAll(const ParallelSweepRunner &runner)
{
    addAll(static_cast<const SweepRunner &>(runner));
    runner.forEachCustom(
        [this](const std::string &key, const ExperimentResult &r) {
            add(key, r);
        });
}

std::string
BenchReport::render(double wall_seconds) const
{
    JsonWriter w(2);
    w.beginObject();
    w.member("bench", name);
    if (haveOpts) {
        w.member("jobs", jobs);
        w.member("simThreads", simThreads);
        w.member("numProcs", numProcs);
        w.member("size", sizeName);
    }
    w.member("hostSeconds", wall_seconds);

    w.key("baselines");
    w.beginArray();
    for (const auto &[app, seq] : baselines) {
        w.beginObject();
        w.member("app", app);
        w.member("simCycles", static_cast<std::uint64_t>(seq));
        w.endObject();
    }
    w.endArray();

    w.key("experiments");
    w.beginArray();
    for (const Entry &e : entries) {
        const double speedup = e.simCycles
            ? static_cast<double>(e.seqCycles) /
                static_cast<double>(e.simCycles)
            : 0.0;
        w.beginObject();
        w.member("key", e.key);
        w.member("workload", e.workload);
        w.member("protocol", e.protocol);
        w.member("config", e.config);
        w.member("simCycles", static_cast<std::uint64_t>(e.simCycles));
        w.member("seqCycles", static_cast<std::uint64_t>(e.seqCycles));
        w.member("speedup", speedup);
        w.member("verified", e.verified);
        w.member("hostSeconds", e.hostSeconds);
        if (!e.metrics.empty()) {
            w.key("metrics");
            writeSnapshot(w, e.metrics);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

bool
BenchReport::write()
{
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::string path = "BENCH_" + name + ".json";
    if (const char *dir = std::getenv("SWSM_BENCH_DIR"))
        path = std::string(dir) + "/" + path;

    bool ok = writeFile(path, render(wall));

    if (!tracePath.empty()) {
        std::vector<TraceProcess> processes;
        processes.reserve(entries.size());
        for (const Entry &e : entries) {
            if (e.trace && !e.trace->events.empty())
                processes.push_back(TraceProcess{e.key, e.trace.get()});
        }
        if (!writeChromeTrace(tracePath, processes)) {
            SWSM_WARN("cannot write trace %s", tracePath.c_str());
            ok = false;
        }
    }
    return ok;
}

} // namespace swsm
