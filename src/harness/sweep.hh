/**
 * @file
 * Sweep driver shared by the table/figure benchmark binaries.
 *
 * Runs (workload x configuration) grids with cached sequential
 * baselines, simple command-line options, and the paper's configuration
 * naming (comm set A/H/B/W/X x protocol set O/H/B; SC runs protocol
 * cost variants are meaningless and always use O with its fixed simple
 * handler cost, as in the paper).
 *
 * SweepRunner's caches are thread-safe so the parallel sweep engine
 * (harness/parallel_sweep.hh) can fill them from worker threads; each
 * individual simulation still runs confined to a single thread.
 */

#ifndef SWSM_HARNESS_SWEEP_HH
#define SWSM_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"
#include "sim/env.hh"

namespace swsm
{

/**
 * Worker count used when --jobs is not given: the SWSM_JOBS
 * environment variable if set (invalid values warn and are ignored),
 * otherwise the hardware concurrency.
 */
int defaultJobs();

/** Largest cluster size the option parser accepts (clamped above). */
constexpr int maxProcs = 4096;
/** Largest worker count the option parser accepts (clamped above). */
constexpr int maxJobs = 1024;

/** Lower-case size-class name ("tiny", ..., "paper"). */
const char *sizeClassName(SizeClass size);

/** Parse a size-class name; false (out untouched) on unknown names. */
bool parseSizeClass(std::string_view name, SizeClass &out);

/** Options shared by the bench binaries. */
struct SweepOptions
{
    SizeClass size = SizeClass::Small;
    int numProcs = 16;
    /** Workload names to run (empty = whole registry). */
    std::vector<std::string> apps;
    /** Include the halfway configurations (the "--full" grid). */
    bool full = false;
    /** Worker threads for the parallel sweep engine (1 = serial). */
    int jobs = defaultJobs();
    /**
     * Worker threads *inside* each simulation (the parallel event
     * kernel, sim/pdes.hh). Orthogonal to jobs, which runs whole
     * experiments concurrently; see effectiveSimThreads() for how the
     * two knobs share the machine.
     */
    int simThreads = defaultSimThreads();
    /** True when --sim-threads was given (wins over the budget rule). */
    bool simThreadsExplicit = false;
    /** Chrome trace_event output path (empty = tracing off). */
    std::string tracePath;

    /**
     * Parse --quick/--medium/--size=CLASS, --procs=N, --apps=a,b,c,
     * --full, --jobs=N, --sim-threads=N, --trace=FILE.
     * @return false (after printing usage) on unknown or invalid
     *         arguments
     */
    bool parse(int argc, char **argv);

    /** Apps to run: the selection or the whole registry. */
    std::vector<AppInfo> selectedApps() const;

    /**
     * The per-simulation thread count experiments actually use. An
     * explicit --sim-threads=N is authoritative. Otherwise the measured
     * budget allocator (harness/budget.hh) hands each job its
     * leftover-core share, capped by SWSM_SIM_THREADS when that is set;
     * SWSM_BUDGET=static restores the legacy
     * min(SWSM_SIM_THREADS, hardware threads / jobs) rule.
     */
    int effectiveSimThreads() const;
};

/**
 * Runs experiments with per-app cached sequential baselines.
 *
 * All public methods are thread-safe; cache misses compute the
 * experiment on the calling thread. Returned references stay valid for
 * the runner's lifetime (map nodes are stable).
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &opts) : opts(opts) {}

    /** Sequential baseline cycles for @p app (cached). */
    Cycles baseline(const AppInfo &app);

    /**
     * Run @p app under protocol @p kind with comm/proto set letters.
     * For SC the proto letter is forced to 'O' (fixed simple handlers).
     * Results are cached by (app, protocol, config).
     */
    const ExperimentResult &run(const AppInfo &app, ProtocolKind kind,
                                char comm_set, char proto_set);

    /** Run the Ideal (algorithmic limit) configuration. */
    const ExperimentResult &runIdeal(const AppInfo &app);

    const SweepOptions &options() const { return opts; }

    /**
     * Cache key for a (app, protocol, config) run (SC collapses onto
     * proto set 'O'). Public because the sweep server's shared-memory
     * memo cache and its BENCH report assembly key on the same strings
     * as the in-process cache (serve/server.hh).
     */
    static std::string resultKey(const AppInfo &app, ProtocolKind kind,
                                 char comm_set, char proto_set);
    /** Cache key for the Ideal run. */
    static std::string idealKey(const AppInfo &app);

    /** Visit every cached result in key order (for reports). */
    void forEachResult(
        const std::function<void(const std::string &key,
                                 const ExperimentResult &r)> &fn) const;

    /** Visit every cached baseline in app-name order. */
    void forEachBaseline(
        const std::function<void(const std::string &app, Cycles seq)> &fn)
        const;

  protected:
    /** True if @p key is already cached. */
    bool cached(const std::string &key) const;
    /** True if @p app's baseline is already cached. */
    bool baselineCached(const std::string &app) const;

  private:
    const ExperimentResult &runWithKey(const std::string &key,
                                       const AppInfo &app,
                                       const ExperimentConfig &cfg);

    SweepOptions opts;
    mutable std::mutex mu;
    std::map<std::string, Cycles> baselines;
    std::map<std::string, ExperimentResult> cache;
};

/** The paper's main Figure 3 configuration list (comm, proto) pairs. */
std::vector<std::pair<char, char>> figure3Configs(bool full);

/**
 * One experiment of a named grid: either the Ideal run for @p app or a
 * (protocol, comm set, proto set) configuration.
 */
struct GridItem
{
    AppInfo app;
    bool ideal = false;
    ProtocolKind kind = ProtocolKind::Hlrc;
    char commSet = 'A';
    char protoSet = 'O';
};

/**
 * The full Figure 3 experiment grid for @p opts (apps x Ideal +
 * {HLRC, SC} x configurations, SC restricted to the O/B cost sets as
 * in the paper). Shared by bench_fig3 and the sweep server so a grid
 * served from the memo cache is the exact experiment set the batch
 * binary runs.
 */
std::vector<GridItem> figure3Grid(const SweepOptions &opts);

} // namespace swsm

#endif // SWSM_HARNESS_SWEEP_HH
