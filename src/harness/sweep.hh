/**
 * @file
 * Sweep driver shared by the table/figure benchmark binaries.
 *
 * Runs (workload x configuration) grids with cached sequential
 * baselines, simple command-line options, and the paper's configuration
 * naming (comm set A/H/B/W/X x protocol set O/H/B; SC runs protocol
 * cost variants are meaningless and always use O with its fixed simple
 * handler cost, as in the paper).
 */

#ifndef SWSM_HARNESS_SWEEP_HH
#define SWSM_HARNESS_SWEEP_HH

#include <map>
#include <string>
#include <vector>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"

namespace swsm
{

/** Options shared by the bench binaries. */
struct SweepOptions
{
    SizeClass size = SizeClass::Small;
    int numProcs = 16;
    /** Workload names to run (empty = whole registry). */
    std::vector<std::string> apps;
    /** Include the halfway configurations (the "--full" grid). */
    bool full = false;

    /**
     * Parse --quick/--medium, --procs=N, --apps=a,b,c, --full.
     * @return false (after printing usage) on unknown arguments
     */
    bool parse(int argc, char **argv);

    /** Apps to run: the selection or the whole registry. */
    std::vector<AppInfo> selectedApps() const;
};

/** Runs experiments with per-app cached sequential baselines. */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &opts) : opts(opts) {}

    /** Sequential baseline cycles for @p app (cached). */
    Cycles baseline(const AppInfo &app);

    /**
     * Run @p app under protocol @p kind with comm/proto set letters.
     * For SC the proto letter is forced to 'O' (fixed simple handlers).
     * Results are cached by (app, protocol, config).
     */
    const ExperimentResult &run(const AppInfo &app, ProtocolKind kind,
                                char comm_set, char proto_set);

    /** Run the Ideal (algorithmic limit) configuration. */
    const ExperimentResult &runIdeal(const AppInfo &app);

    const SweepOptions &options() const { return opts; }

  private:
    SweepOptions opts;
    std::map<std::string, Cycles> baselines;
    std::map<std::string, ExperimentResult> cache;
};

/** The paper's main Figure 3 configuration list (comm, proto) pairs. */
std::vector<std::pair<char, char>> figure3Configs(bool full);

} // namespace swsm

#endif // SWSM_HARNESS_SWEEP_HH
