#include "parallel_sweep.hh"

#include "harness/task_pool.hh"
#include "sim/log.hh"

namespace swsm
{

void
ParallelSweepRunner::planItem(const AppInfo &app, const std::string &key,
                              std::function<void(Cycles)> body)
{
    if (!plannedKeys.insert(key).second)
        return;
    planned.push_back(PlannedItem{app, key, std::move(body)});
}

void
ParallelSweepRunner::plan(const AppInfo &app, ProtocolKind kind,
                          char comm_set, char proto_set)
{
    const std::string key = resultKey(app, kind, comm_set, proto_set);
    if (cached(key))
        return;
    planItem(app, key, [this, app, kind, comm_set, proto_set](Cycles) {
        run(app, kind, comm_set, proto_set);
    });
}

void
ParallelSweepRunner::planIdeal(const AppInfo &app)
{
    const std::string key = idealKey(app);
    if (cached(key))
        return;
    planItem(app, key, [this, app](Cycles) { runIdeal(app); });
}

void
ParallelSweepRunner::planBaseline(const AppInfo &app)
{
    planItem(app, app.name + "/baseline", nullptr);
}

void
ParallelSweepRunner::planCustom(const AppInfo &app, const std::string &key,
                                std::function<ExperimentResult(Cycles)> fn)
{
    {
        std::lock_guard<std::mutex> lock(customMu);
        if (customCache.find(key) != customCache.end())
            return;
    }
    planItem(app, key, [this, key, fn = std::move(fn)](Cycles seq) {
        ExperimentResult r = fn(seq);
        std::lock_guard<std::mutex> lock(customMu);
        customCache.emplace(key, std::move(r));
    });
}

void
ParallelSweepRunner::runPlanned()
{
    TaskPool pool(options().jobs);

    // One baseline task per distinct app, submitted at first mention so
    // serial (jobs=1) execution computes each app's baseline right
    // before that app's first experiment — the legacy order.
    std::map<std::string, TaskPool::TaskId> baselineTask;
    for (const PlannedItem &item : planned) {
        if (baselineTask.find(item.app.name) != baselineTask.end())
            continue;
        if (baselineCached(item.app.name))
            continue;
        const AppInfo app = item.app;
        baselineTask.emplace(app.name,
                             pool.submit([this, app] { baseline(app); }));
    }

    for (PlannedItem &item : planned) {
        if (!item.body)
            continue;
        std::vector<TaskPool::TaskId> deps;
        auto it = baselineTask.find(item.app.name);
        if (it != baselineTask.end())
            deps.push_back(it->second);
        const AppInfo app = item.app;
        pool.submit(
            [this, app, body = std::move(item.body)] {
                body(baseline(app));
            },
            deps);
    }

    planned.clear();
    plannedKeys.clear();
    pool.run();
}

const ExperimentResult &
ParallelSweepRunner::custom(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(customMu);
    auto it = customCache.find(key);
    if (it == customCache.end())
        SWSM_FATAL("custom experiment '%s' was not planned/run before "
                   "being read",
                   key.c_str());
    return it->second;
}

void
ParallelSweepRunner::forEachCustom(
    const std::function<void(const std::string &, const ExperimentResult &)>
        &fn) const
{
    std::lock_guard<std::mutex> lock(customMu);
    for (const auto &[key, r] : customCache)
        fn(key, r);
}

} // namespace swsm
