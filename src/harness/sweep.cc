#include "sweep.hh"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "harness/budget.hh"
#include "sim/env.hh"
#include "sim/log.hh"
#include "sim/pdes.hh"

namespace swsm
{

const char *
sizeClassName(SizeClass size)
{
    switch (size) {
      case SizeClass::Tiny:
        return "tiny";
      case SizeClass::Small:
        return "small";
      case SizeClass::Medium:
        return "medium";
      case SizeClass::Paper:
        return "paper";
    }
    return "unknown";
}

bool
parseSizeClass(std::string_view name, SizeClass &out)
{
    if (name == "tiny") {
        out = SizeClass::Tiny;
    } else if (name == "small") {
        out = SizeClass::Small;
    } else if (name == "medium") {
        out = SizeClass::Medium;
    } else if (name == "paper") {
        out = SizeClass::Paper;
    } else {
        return false;
    }
    return true;
}

int
defaultJobs()
{
    // 0 is below the minimum, so it doubles as the "unset" sentinel.
    const int n = envBoundedInt("SWSM_JOBS", 1, maxJobs, 0);
    if (n > 0)
        return n;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

bool
SweepOptions::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            size = SizeClass::Tiny;
        } else if (arg == "--medium") {
            size = SizeClass::Medium;
        } else if (arg.rfind("--size=", 0) == 0) {
            const std::string name = arg.substr(7);
            if (!parseSizeClass(name, size)) {
                std::fprintf(stderr,
                             "--size needs tiny|small|medium|paper, got "
                             "\"%s\"\n",
                             name.c_str());
                return false;
            }
        } else if (arg == "--full") {
            full = true;
        } else if (arg.rfind("--procs=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(8), 1, maxProcs, numProcs)) {
                std::fprintf(stderr,
                             "--procs needs an integer in [1, %d], got "
                             "\"%s\"\n",
                             maxProcs, arg.c_str() + 8);
                return false;
            }
        } else if (arg.rfind("--jobs=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(7), 1, maxJobs, jobs)) {
                std::fprintf(stderr,
                             "--jobs needs an integer in [1, %d], got "
                             "\"%s\"\n",
                             maxJobs, arg.c_str() + 7);
                return false;
            }
        } else if (arg.rfind("--sim-threads=", 0) == 0) {
            if (!parseBoundedInt(arg.substr(14), 1,
                                 PdesEngine::maxPartitions, simThreads)) {
                std::fprintf(stderr,
                             "--sim-threads needs an integer in [1, %d], "
                             "got \"%s\"\n",
                             PdesEngine::maxPartitions,
                             arg.c_str() + 14);
                return false;
            }
            simThreadsExplicit = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            tracePath = arg.substr(8);
            if (tracePath.empty()) {
                std::fprintf(stderr, "--trace needs a file path\n");
                return false;
            }
        } else if (arg.rfind("--apps=", 0) == 0) {
            apps.clear();
            std::string list = arg.substr(7);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                apps.push_back(list.substr(
                    pos, comma == std::string::npos ? comma : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick|--medium|--size=CLASS] "
                         "[--full] [--procs=N] [--apps=a,b,...] "
                         "[--jobs=N] [--sim-threads=N] [--trace=FILE]\n"
                         "  --size=CLASS  problem size: tiny, small, "
                         "medium or paper (the paper's published "
                         "sizes); --quick and --medium are shorthands\n"
                         "  --jobs=N      worker threads for the sweep "
                         "(default: SWSM_JOBS or hardware concurrency)\n"
                         "  --sim-threads=N  worker threads inside each "
                         "simulation (parallel event kernel; results "
                         "are bit-identical to serial; default: the "
                         "measured per-job core share, capped by "
                         "SWSM_SIM_THREADS; SWSM_BUDGET=static keeps "
                         "the legacy rule)\n"
                         "  --trace=FILE  write a Chrome trace_event "
                         "JSON of every experiment (chrome://tracing)\n",
                         argv[0]);
            return false;
        }
    }
    return true;
}

int
SweepOptions::effectiveSimThreads() const
{
    // The jobs knob is already resolved (flag, SWSM_JOBS or hardware),
    // so only the sim-thread share is left to allocate.
    BudgetRequest req;
    req.jobs = jobs;
    req.jobsExplicit = true;
    req.simThreads = simThreads;
    req.simThreadsExplicit = simThreadsExplicit;
    return computeBudget(req).simThreads;
}

std::vector<AppInfo>
SweepOptions::selectedApps() const
{
    if (apps.empty())
        return appRegistry();
    std::vector<AppInfo> out;
    for (const std::string &name : apps)
        out.push_back(findApp(name));
    return out;
}

Cycles
SweepRunner::baseline(const AppInfo &app)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = baselines.find(app.name);
        if (it != baselines.end())
            return it->second;
    }
    const Cycles seq = runSequentialBaseline(app.factory, opts.size);
    std::lock_guard<std::mutex> lock(mu);
    return baselines.emplace(app.name, seq).first->second;
}

std::string
SweepRunner::resultKey(const AppInfo &app, ProtocolKind kind,
                       char comm_set, char proto_set)
{
    if (kind == ProtocolKind::Sc)
        proto_set = 'O'; // SC handlers are fixed; no protocol variants
    return app.name + "/" + protocolKindName(kind) + "/" + comm_set +
           proto_set;
}

std::string
SweepRunner::idealKey(const AppInfo &app)
{
    return app.name + "/ideal";
}

bool
SweepRunner::cached(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    return cache.find(key) != cache.end();
}

bool
SweepRunner::baselineCached(const std::string &app) const
{
    std::lock_guard<std::mutex> lock(mu);
    return baselines.find(app) != baselines.end();
}

const ExperimentResult &
SweepRunner::runWithKey(const std::string &key, const AppInfo &app,
                        const ExperimentConfig &cfg)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    ExperimentResult r =
        runExperiment(app.factory, opts.size, cfg, baseline(app));
    if (!r.verified)
        SWSM_WARN("%s failed verification under %s", key.c_str(),
                  cfg.name().c_str());
    // If another thread raced us here, emplace keeps its (identical,
    // deterministic) result and ours is discarded.
    std::lock_guard<std::mutex> lock(mu);
    return cache.emplace(key, std::move(r)).first->second;
}

const ExperimentResult &
SweepRunner::run(const AppInfo &app, ProtocolKind kind, char comm_set,
                 char proto_set)
{
    if (kind == ProtocolKind::Sc)
        proto_set = 'O';
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.commSet = comm_set;
    cfg.protoSet = proto_set;
    cfg.numProcs = opts.numProcs;
    cfg.blockBytes = app.scBlockBytes;
    cfg.trace = !opts.tracePath.empty();
    cfg.simThreads = opts.effectiveSimThreads();
    return runWithKey(resultKey(app, kind, comm_set, proto_set), app, cfg);
}

const ExperimentResult &
SweepRunner::runIdeal(const AppInfo &app)
{
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Ideal;
    cfg.numProcs = opts.numProcs;
    cfg.trace = !opts.tracePath.empty();
    cfg.simThreads = opts.effectiveSimThreads();
    return runWithKey(idealKey(app), app, cfg);
}

void
SweepRunner::forEachResult(
    const std::function<void(const std::string &, const ExperimentResult &)>
        &fn) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[key, r] : cache)
        fn(key, r);
}

void
SweepRunner::forEachBaseline(
    const std::function<void(const std::string &, Cycles)> &fn) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[app, seq] : baselines)
        fn(app, seq);
}

std::vector<std::pair<char, char>>
figure3Configs(bool full)
{
    // Order follows the paper's bar arrangement: better-than-best down
    // to worse, with the base (AO) emphasized in the middle.
    std::vector<std::pair<char, char>> configs = {
        {'X', 'B'}, {'B', 'B'}, {'B', 'O'}, {'A', 'B'},
        {'A', 'O'}, {'W', 'O'},
    };
    if (full) {
        configs.push_back({'A', 'H'});
        configs.push_back({'H', 'O'});
        configs.push_back({'H', 'B'});
        configs.push_back({'B', 'H'});
        configs.push_back({'H', 'H'});
    }
    return configs;
}

std::vector<GridItem>
figure3Grid(const SweepOptions &opts)
{
    std::vector<GridItem> grid;
    const auto configs = figure3Configs(opts.full);
    for (const AppInfo &app : opts.selectedApps()) {
        grid.push_back(GridItem{app, true, ProtocolKind::Ideal, 0, 0});
        for (const ProtocolKind kind :
             {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
            for (const auto &[c, p] : configs) {
                if (kind == ProtocolKind::Sc && p != 'O' && p != 'B')
                    continue;
                grid.push_back(GridItem{app, false, kind, c, p});
            }
        }
    }
    return grid;
}

} // namespace swsm
