#include "sweep.hh"

#include <cstdio>
#include <cstring>

#include "sim/log.hh"

namespace swsm
{

bool
SweepOptions::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            size = SizeClass::Tiny;
        } else if (arg == "--medium") {
            size = SizeClass::Medium;
        } else if (arg == "--full") {
            full = true;
        } else if (arg.rfind("--procs=", 0) == 0) {
            numProcs = std::atoi(arg.c_str() + 8);
        } else if (arg.rfind("--apps=", 0) == 0) {
            apps.clear();
            std::string list = arg.substr(7);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                apps.push_back(list.substr(
                    pos, comma == std::string::npos ? comma : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick|--medium] [--full] "
                         "[--procs=N] [--apps=a,b,...]\n",
                         argv[0]);
            return false;
        }
    }
    return true;
}

std::vector<AppInfo>
SweepOptions::selectedApps() const
{
    if (apps.empty())
        return appRegistry();
    std::vector<AppInfo> out;
    for (const std::string &name : apps)
        out.push_back(findApp(name));
    return out;
}

Cycles
SweepRunner::baseline(const AppInfo &app)
{
    auto it = baselines.find(app.name);
    if (it != baselines.end())
        return it->second;
    const Cycles seq = runSequentialBaseline(app.factory, opts.size);
    baselines.emplace(app.name, seq);
    return seq;
}

const ExperimentResult &
SweepRunner::run(const AppInfo &app, ProtocolKind kind, char comm_set,
                 char proto_set)
{
    if (kind == ProtocolKind::Sc)
        proto_set = 'O'; // SC handlers are fixed; no protocol variants
    const std::string key = app.name + "/" +
        protocolKindName(kind) + "/" + comm_set + proto_set;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.commSet = comm_set;
    cfg.protoSet = proto_set;
    cfg.numProcs = opts.numProcs;
    cfg.blockBytes = app.scBlockBytes;
    ExperimentResult r =
        runExperiment(app.factory, opts.size, cfg, baseline(app));
    if (!r.verified)
        SWSM_WARN("%s failed verification under %s", key.c_str(),
                  cfg.name().c_str());
    return cache.emplace(key, std::move(r)).first->second;
}

const ExperimentResult &
SweepRunner::runIdeal(const AppInfo &app)
{
    const std::string key = app.name + "/ideal";
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Ideal;
    cfg.numProcs = opts.numProcs;
    ExperimentResult r =
        runExperiment(app.factory, opts.size, cfg, baseline(app));
    return cache.emplace(key, std::move(r)).first->second;
}

std::vector<std::pair<char, char>>
figure3Configs(bool full)
{
    // Order follows the paper's bar arrangement: better-than-best down
    // to worse, with the base (AO) emphasized in the middle.
    std::vector<std::pair<char, char>> configs = {
        {'X', 'B'}, {'B', 'B'}, {'B', 'O'}, {'A', 'B'},
        {'A', 'O'}, {'W', 'O'},
    };
    if (full) {
        configs.push_back({'A', 'H'});
        configs.push_back({'H', 'O'});
        configs.push_back({'H', 'B'});
        configs.push_back({'B', 'H'});
        configs.push_back({'H', 'H'});
    }
    return configs;
}

} // namespace swsm
