/**
 * @file
 * Machine-readable wall-clock benchmark emitter.
 *
 * Every bench binary writes a BENCH_<name>.json next to its table
 * output: per-experiment simulated cycles and host wall-clock seconds
 * plus the total elapsed host time, so the simulator's performance
 * trajectory across PRs is diffable without parsing the human tables.
 *
 * The output directory defaults to the current working directory and
 * can be redirected with the SWSM_BENCH_DIR environment variable.
 */

#ifndef SWSM_HARNESS_BENCH_REPORT_HH
#define SWSM_HARNESS_BENCH_REPORT_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace swsm
{

/** Collects per-experiment metrics and writes BENCH_<name>.json. */
class BenchReport
{
  public:
    /**
     * @param name bench short name ("fig3", "table4", ...)
     * @param opts sweep options, if the bench uses them (records jobs,
     *        size and processor count in the report header)
     */
    explicit BenchReport(std::string name,
                         const SweepOptions *opts = nullptr);

    /** Record one experiment under @p key. */
    void add(const std::string &key, const ExperimentResult &r);

    /** Record a sequential baseline. */
    void addBaseline(const std::string &app, Cycles seq);

    /** Record everything cached in @p runner (key order). */
    void addAll(const SweepRunner &runner);

    /** Record cached grid + custom experiments (key order). */
    void addAll(const ParallelSweepRunner &runner);

    /**
     * Render the BENCH-schema JSON document for everything recorded so
     * far, with @p wall_seconds as the top-level hostSeconds field.
     * Deterministic: identical entries render to identical bytes,
     * which the sweep server's cache-hit replays rely on.
     */
    std::string render(double wall_seconds) const;

    /**
     * Write BENCH_<name>.json — and, when the sweep options carried a
     * --trace path, the merged Chrome trace of every recorded
     * experiment (one pid per experiment, in add() order). Total host
     * seconds covers construction to this call.
     * @return false (with a warning) if a file cannot be written
     */
    bool write();

  private:
    struct Entry
    {
        std::string key;
        std::string workload;
        std::string protocol;
        std::string config;
        Cycles simCycles;
        Cycles seqCycles;
        bool verified;
        double hostSeconds;
        MetricsSnapshot metrics;
        std::shared_ptr<const TraceBuffer> trace;
    };

    std::string name;
    bool haveOpts = false;
    int jobs = 1;
    int simThreads = 1;
    int numProcs = 0;
    std::string sizeName;
    std::string tracePath;
    std::chrono::steady_clock::time_point start;
    std::vector<Entry> entries;
    std::vector<std::pair<std::string, Cycles>> baselines;
};

} // namespace swsm

#endif // SWSM_HARNESS_BENCH_REPORT_HH
