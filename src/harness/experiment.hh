/**
 * @file
 * Experiment driver: runs one workload on one machine configuration and
 * reports speedups against the sequential baseline.
 *
 * Configuration naming follows the paper: a communication set letter
 * (A achievable, H halfway, B best, W worse, X better-than-best) paired
 * with a protocol cost set letter (O original, H halfway, B best) —
 * "AO" is the base system; "Ideal" is the algorithmic limit.
 */

#ifndef SWSM_HARNESS_EXPERIMENT_HH
#define SWSM_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>

#include "apps/workload.hh"
#include "machine/machine_params.hh"
#include "machine/run_stats.hh"
#include "obs/trace.hh"

namespace swsm
{

/** One experiment's machine settings. */
struct ExperimentConfig
{
    /** Protocol under test (Hlrc or Sc; Ideal for the limit bars). */
    ProtocolKind protocol = ProtocolKind::Hlrc;
    /** Communication set letter: A, H, B, W or X. */
    char commSet = 'A';
    /** Protocol cost set letter: O, H or B. */
    char protoSet = 'O';
    /** Cluster size. */
    int numProcs = 16;
    /** SC block granularity (per-application best). */
    std::uint32_t blockBytes = 64;
    /** Optional per-access instrumentation cost for SC. */
    Cycles accessCheckCycles = 0;
    /** Record an event trace (see MachineParams::trace). */
    bool trace = false;
    /**
     * Worker threads for the parallel event kernel inside this run
     * (see MachineParams::simThreads; bit-identical results).
     */
    int simThreads = defaultSimThreads();

    /** Two-letter name ("AO", "BB", ...) or "Ideal". */
    std::string name() const;

    /** Expand into full machine parameters. */
    MachineParams machineParams() const;
};

/** Result of one timed run plus its baseline. */
struct ExperimentResult
{
    std::string workload;
    std::string config;
    std::string protocol;
    Cycles parallelCycles = 0;
    Cycles sequentialCycles = 0;
    bool verified = false;
    /** Host wall-clock seconds spent simulating this experiment. */
    double hostSeconds = 0.0;
    RunStats stats;
    /** Recorded events (empty buffer unless the config asked to trace). */
    std::shared_ptr<const TraceBuffer> trace;

    double
    speedup() const
    {
        return parallelCycles
            ? static_cast<double>(sequentialCycles) /
                  static_cast<double>(parallelCycles)
            : 0.0;
    }
};

/**
 * Run @p factory's workload under @p config; measures the parallel run
 * and verifies the output.
 * @param seq_cycles sequential baseline (from runSequentialBaseline),
 *        stored into the result for speedup computation.
 */
ExperimentResult runExperiment(const WorkloadFactory &factory,
                               SizeClass size,
                               const ExperimentConfig &config,
                               Cycles seq_cycles);

/**
 * Run @p factory's workload on fully custom machine parameters (for
 * ablations and per-parameter sensitivity sweeps that step outside the
 * paper's named sets). @p config_name labels the result.
 */
ExperimentResult runExperiment(const WorkloadFactory &factory,
                               SizeClass size, const MachineParams &mp,
                               const std::string &config_name,
                               Cycles seq_cycles);

/**
 * Run the workload on a 1-processor Ideal machine: the best sequential
 * version all speedups are measured against.
 */
Cycles runSequentialBaseline(const WorkloadFactory &factory,
                             SizeClass size);

} // namespace swsm

#endif // SWSM_HARNESS_EXPERIMENT_HH
