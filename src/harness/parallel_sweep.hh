/**
 * @file
 * Parallel sweep engine: fills a SweepRunner's result caches using a
 * fixed-size worker thread pool, then lets the caller read results (and
 * print tables) in exactly the order it would have with the serial
 * runner.
 *
 * Usage is two-phase:
 *
 *   ParallelSweepRunner runner(opts);
 *   for (...) runner.plan(app, kind, c, p);   // enumerate the grid
 *   runner.runPlanned();                       // execute on opts.jobs
 *   for (...) runner.run(app, kind, c, p);    // cache hits; print
 *
 * Determinism: each experiment is an isolated simulation — its own
 * EventQueue, Cluster and fiber stacks, all confined to the one worker
 * thread that runs it — so results are bitwise identical regardless of
 * job count, and the ordered read-back phase makes the printed output
 * byte-identical to the serial runner's. With --jobs=1 runPlanned()
 * executes inline in plan order without spawning threads.
 *
 * Dependencies: an app's cached sequential baseline must exist before
 * its parallel configurations run (they need it for speedups, and
 * computing it once under the task graph avoids duplicated work), so
 * every planned experiment depends on its app's baseline task. Configs
 * of app X start as soon as X's baseline completes, even while app Y's
 * baseline is still running.
 */

#ifndef SWSM_HARNESS_PARALLEL_SWEEP_HH
#define SWSM_HARNESS_PARALLEL_SWEEP_HH

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace swsm
{

/** SweepRunner plus a plan/execute phase running on a thread pool. */
class ParallelSweepRunner : public SweepRunner
{
  public:
    using SweepRunner::SweepRunner;

    /** Plan one (app, protocol, config) experiment. */
    void plan(const AppInfo &app, ProtocolKind kind, char comm_set,
              char proto_set);

    /** Plan the Ideal (algorithmic limit) run for @p app. */
    void planIdeal(const AppInfo &app);

    /** Plan just the sequential baseline for @p app. */
    void planBaseline(const AppInfo &app);

    /**
     * Plan an arbitrary experiment (custom machine parameters) keyed by
     * @p key; @p fn receives the app's sequential baseline cycles and
     * runs after that baseline is available. Retrieve the result with
     * custom(key) after runPlanned().
     */
    void planCustom(const AppInfo &app, const std::string &key,
                    std::function<ExperimentResult(Cycles seq)> fn);

    /**
     * Execute every planned experiment on options().jobs workers and
     * block until done. May be called repeatedly (plan/run/plan/run);
     * already-cached work is skipped.
     */
    void runPlanned();

    /** Result of a planCustom() experiment (after runPlanned()). */
    const ExperimentResult &custom(const std::string &key) const;

    /** Visit every custom result in key order (for reports). */
    void forEachCustom(
        const std::function<void(const std::string &key,
                                 const ExperimentResult &r)> &fn) const;

  private:
    struct PlannedItem
    {
        AppInfo app;
        std::string key;
        /** Null for plain baseline items. */
        std::function<void(Cycles seq)> body;
    };

    void planItem(const AppInfo &app, const std::string &key,
                  std::function<void(Cycles)> body);

    std::vector<PlannedItem> planned;
    /** Keys planned since the last runPlanned() (dedupe). */
    std::set<std::string> plannedKeys;
    mutable std::mutex customMu;
    std::map<std::string, ExperimentResult> customCache;
};

} // namespace swsm

#endif // SWSM_HARNESS_PARALLEL_SWEEP_HH
