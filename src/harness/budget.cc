#include "budget.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "harness/sweep.hh"
#include "sim/env.hh"
#include "sim/log.hh"
#include "sim/pdes.hh"

namespace swsm
{

bool
budgetIsStatic()
{
    const char *raw = std::getenv("SWSM_BUDGET");
    if (!raw || !*raw)
        return false;
    if (std::strcmp(raw, "static") == 0)
        return true;
    if (std::strcmp(raw, "measured") == 0)
        return false;
    static bool warned = false;
    if (!warned) {
        warned = true;
        SWSM_WARN("SWSM_BUDGET=\"%s\" is not \"measured\" or "
                  "\"static\"; using measured",
                  raw);
    }
    return false;
}

int
measuredHardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

namespace
{

/**
 * The per-simulation thread count once the runner count is known.
 * SWSM_PDES=0 forces serial; an explicit request is clamped only to
 * the engine limit; otherwise the leftover-core share applies, capped
 * by SWSM_SIM_THREADS when set (static mode: no share, the legacy
 * min(SWSM_SIM_THREADS, hardware / runners) with a serial default).
 */
int
allocateSimThreads(const BudgetRequest &req, int hw, int runners)
{
    if (req.simThreadsExplicit)
        return std::clamp(req.simThreads, 1, PdesEngine::maxPartitions);
    if (!envFlag("SWSM_PDES", true))
        return 1;
    const int share = std::max(1, hw / std::max(1, runners));
    // 0 doubles as the "unset" sentinel (below the minimum of 1).
    const int env = envBoundedInt("SWSM_SIM_THREADS", 1,
                                  PdesEngine::maxPartitions, 0);
    if (budgetIsStatic()) {
        // Legacy rule: serial unless the environment asks, then budget
        // the ask against the sweep-level runners.
        return env <= 1 ? 1 : std::max(1, std::min(env, share));
    }
    const int picked = env > 0 ? std::min(env, share) : share;
    return std::clamp(picked, 1, PdesEngine::maxPartitions);
}

} // namespace

Budget
computeBudget(const BudgetRequest &req)
{
    Budget out;
    const int hw = req.hardwareThreads > 0 ? req.hardwareThreads
                                           : measuredHardwareThreads();
    // "Unknown grid" means "at least as wide as the machine".
    const int demand = req.gridItems > 0 ? req.gridItems : hw;

    if (req.workersAuto)
        out.workers = std::clamp(std::min(hw, demand), 1, maxWorkerProcs);
    else
        out.workers = std::max(0, std::min(req.workers, maxWorkerProcs));

    const int askedJobs = std::min(req.jobs > 0 ? req.jobs : hw, maxJobs);
    if (req.jobsExplicit || budgetIsStatic()) {
        out.jobs = std::max(1, askedJobs);
    } else {
        out.jobs = std::max(1, std::min(askedJobs, demand));
        // Every in-flight worker job needs a submitting slot.
        if (out.workers > 0)
            out.jobs = std::max(out.jobs, std::min(out.workers, maxJobs));
    }

    const int runners = out.workers > 0 ? out.workers : out.jobs;
    out.simThreads = allocateSimThreads(req, hw, runners);
    return out;
}

} // namespace swsm
