#include "experiment.hh"

#include <chrono>

#include "sim/log.hh"

namespace swsm
{

std::string
ExperimentConfig::name() const
{
    if (protocol == ProtocolKind::Ideal)
        return "Ideal";
    return std::string(1, commSet) + std::string(1, protoSet);
}

MachineParams
ExperimentConfig::machineParams() const
{
    MachineParams mp;
    mp.numProcs = numProcs;
    mp.protocol = protocol;
    mp.comm = CommParams::fromName(commSet);
    mp.proto = ProtoParams::fromName(protoSet);
    mp.blockBytes = blockBytes;
    mp.accessCheckCycles = accessCheckCycles;
    mp.trace = trace;
    mp.simThreads = simThreads;
    return mp;
}

ExperimentResult
runExperiment(const WorkloadFactory &factory, SizeClass size,
              const ExperimentConfig &config, Cycles seq_cycles)
{
    return runExperiment(factory, size, config.machineParams(),
                         config.name(), seq_cycles);
}

ExperimentResult
runExperiment(const WorkloadFactory &factory, SizeClass size,
              const MachineParams &mp, const std::string &config_name,
              Cycles seq_cycles)
{
    const auto host_start = std::chrono::steady_clock::now();
    auto workload = factory(size);
    Cluster cluster(mp);
    workload->setup(cluster);
    cluster.run([&](Thread &t) { workload->body(t); });

    ExperimentResult r;
    r.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    r.workload = workload->name();
    r.config = config_name;
    r.protocol = protocolKindName(mp.protocol);
    r.parallelCycles = cluster.stats().totalCycles;
    r.sequentialCycles = seq_cycles;
    r.verified = workload->verify(cluster);
    r.stats = cluster.stats();
    r.trace = cluster.takeTrace();
    if (!r.verified)
        SWSM_WARN("%s failed verification under %s/%s",
                  r.workload.c_str(), r.protocol.c_str(),
                  r.config.c_str());
    return r;
}

Cycles
runSequentialBaseline(const WorkloadFactory &factory, SizeClass size)
{
    auto workload = factory(size);
    MachineParams mp;
    mp.numProcs = 1;
    mp.protocol = ProtocolKind::Ideal;
    Cluster cluster(mp);
    workload->setup(cluster);
    cluster.run([&](Thread &t) { workload->body(t); });
    if (!workload->verify(cluster))
        SWSM_WARN("%s failed verification in the sequential baseline",
                  workload->name());
    return cluster.stats().totalCycles;
}

} // namespace swsm
