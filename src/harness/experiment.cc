#include "experiment.hh"

#include "sim/log.hh"

namespace swsm
{

std::string
ExperimentConfig::name() const
{
    if (protocol == ProtocolKind::Ideal)
        return "Ideal";
    return std::string(1, commSet) + std::string(1, protoSet);
}

MachineParams
ExperimentConfig::machineParams() const
{
    MachineParams mp;
    mp.numProcs = numProcs;
    mp.protocol = protocol;
    mp.comm = CommParams::fromName(commSet);
    mp.proto = ProtoParams::fromName(protoSet);
    mp.blockBytes = blockBytes;
    mp.accessCheckCycles = accessCheckCycles;
    return mp;
}

ExperimentResult
runExperiment(const WorkloadFactory &factory, SizeClass size,
              const ExperimentConfig &config, Cycles seq_cycles)
{
    auto workload = factory(size);
    Cluster cluster(config.machineParams());
    workload->setup(cluster);
    cluster.run([&](Thread &t) { workload->body(t); });

    ExperimentResult r;
    r.workload = workload->name();
    r.config = config.name();
    r.protocol = protocolKindName(config.protocol);
    r.parallelCycles = cluster.stats().totalCycles;
    r.sequentialCycles = seq_cycles;
    r.verified = workload->verify(cluster);
    r.stats = cluster.stats();
    if (!r.verified)
        SWSM_WARN("%s failed verification under %s/%s",
                  r.workload.c_str(), r.protocol.c_str(),
                  r.config.c_str());
    return r;
}

Cycles
runSequentialBaseline(const WorkloadFactory &factory, SizeClass size)
{
    auto workload = factory(size);
    MachineParams mp;
    mp.numProcs = 1;
    mp.protocol = ProtocolKind::Ideal;
    Cluster cluster(mp);
    workload->setup(cluster);
    cluster.run([&](Thread &t) { workload->body(t); });
    if (!workload->verify(cluster))
        SWSM_WARN("%s failed verification in the sequential baseline",
                  workload->name());
    return cluster.stats().totalCycles;
}

} // namespace swsm
