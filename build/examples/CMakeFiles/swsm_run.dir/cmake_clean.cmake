file(REMOVE_RECURSE
  "CMakeFiles/swsm_run.dir/swsm_run.cpp.o"
  "CMakeFiles/swsm_run.dir/swsm_run.cpp.o.d"
  "swsm_run"
  "swsm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
