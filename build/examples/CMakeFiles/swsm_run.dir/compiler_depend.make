# Empty compiler generated dependencies file for swsm_run.
# This may be replaced when dependencies are built.
