# Empty compiler generated dependencies file for protocol_compare.
# This may be replaced when dependencies are built.
