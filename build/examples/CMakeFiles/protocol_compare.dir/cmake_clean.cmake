file(REMOVE_RECURSE
  "CMakeFiles/protocol_compare.dir/protocol_compare.cpp.o"
  "CMakeFiles/protocol_compare.dir/protocol_compare.cpp.o.d"
  "protocol_compare"
  "protocol_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
