# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
