file(REMOVE_RECURSE
  "CMakeFiles/bench_synergy.dir/bench_synergy.cc.o"
  "CMakeFiles/bench_synergy.dir/bench_synergy.cc.o.d"
  "bench_synergy"
  "bench_synergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
