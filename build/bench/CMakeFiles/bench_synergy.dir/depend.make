# Empty dependencies file for bench_synergy.
# This may be replaced when dependencies are built.
