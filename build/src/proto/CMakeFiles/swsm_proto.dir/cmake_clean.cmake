file(REMOVE_RECURSE
  "CMakeFiles/swsm_proto.dir/address_space.cc.o"
  "CMakeFiles/swsm_proto.dir/address_space.cc.o.d"
  "CMakeFiles/swsm_proto.dir/hlrc/hlrc.cc.o"
  "CMakeFiles/swsm_proto.dir/hlrc/hlrc.cc.o.d"
  "CMakeFiles/swsm_proto.dir/ideal.cc.o"
  "CMakeFiles/swsm_proto.dir/ideal.cc.o.d"
  "CMakeFiles/swsm_proto.dir/proto_params.cc.o"
  "CMakeFiles/swsm_proto.dir/proto_params.cc.o.d"
  "CMakeFiles/swsm_proto.dir/protocol.cc.o"
  "CMakeFiles/swsm_proto.dir/protocol.cc.o.d"
  "CMakeFiles/swsm_proto.dir/sc/sc.cc.o"
  "CMakeFiles/swsm_proto.dir/sc/sc.cc.o.d"
  "libswsm_proto.a"
  "libswsm_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
