file(REMOVE_RECURSE
  "libswsm_proto.a"
)
