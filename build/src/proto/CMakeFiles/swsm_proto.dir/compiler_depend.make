# Empty compiler generated dependencies file for swsm_proto.
# This may be replaced when dependencies are built.
