
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/address_space.cc" "src/proto/CMakeFiles/swsm_proto.dir/address_space.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/address_space.cc.o.d"
  "/root/repo/src/proto/hlrc/hlrc.cc" "src/proto/CMakeFiles/swsm_proto.dir/hlrc/hlrc.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/hlrc/hlrc.cc.o.d"
  "/root/repo/src/proto/ideal.cc" "src/proto/CMakeFiles/swsm_proto.dir/ideal.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/ideal.cc.o.d"
  "/root/repo/src/proto/proto_params.cc" "src/proto/CMakeFiles/swsm_proto.dir/proto_params.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/proto_params.cc.o.d"
  "/root/repo/src/proto/protocol.cc" "src/proto/CMakeFiles/swsm_proto.dir/protocol.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/protocol.cc.o.d"
  "/root/repo/src/proto/sc/sc.cc" "src/proto/CMakeFiles/swsm_proto.dir/sc/sc.cc.o" "gcc" "src/proto/CMakeFiles/swsm_proto.dir/sc/sc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/swsm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swsm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
