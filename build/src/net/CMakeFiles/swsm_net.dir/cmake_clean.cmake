file(REMOVE_RECURSE
  "CMakeFiles/swsm_net.dir/comm_params.cc.o"
  "CMakeFiles/swsm_net.dir/comm_params.cc.o.d"
  "CMakeFiles/swsm_net.dir/network.cc.o"
  "CMakeFiles/swsm_net.dir/network.cc.o.d"
  "libswsm_net.a"
  "libswsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
