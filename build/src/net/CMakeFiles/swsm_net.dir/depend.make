# Empty dependencies file for swsm_net.
# This may be replaced when dependencies are built.
