file(REMOVE_RECURSE
  "libswsm_net.a"
)
