file(REMOVE_RECURSE
  "libswsm_harness.a"
)
