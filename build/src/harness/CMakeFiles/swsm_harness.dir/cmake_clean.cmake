file(REMOVE_RECURSE
  "CMakeFiles/swsm_harness.dir/experiment.cc.o"
  "CMakeFiles/swsm_harness.dir/experiment.cc.o.d"
  "CMakeFiles/swsm_harness.dir/sweep.cc.o"
  "CMakeFiles/swsm_harness.dir/sweep.cc.o.d"
  "libswsm_harness.a"
  "libswsm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
