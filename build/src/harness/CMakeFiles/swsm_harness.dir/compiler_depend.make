# Empty compiler generated dependencies file for swsm_harness.
# This may be replaced when dependencies are built.
