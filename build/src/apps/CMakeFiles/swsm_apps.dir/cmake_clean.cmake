file(REMOVE_RECURSE
  "CMakeFiles/swsm_apps.dir/app_registry.cc.o"
  "CMakeFiles/swsm_apps.dir/app_registry.cc.o.d"
  "CMakeFiles/swsm_apps.dir/app_util.cc.o"
  "CMakeFiles/swsm_apps.dir/app_util.cc.o.d"
  "CMakeFiles/swsm_apps.dir/barnes.cc.o"
  "CMakeFiles/swsm_apps.dir/barnes.cc.o.d"
  "CMakeFiles/swsm_apps.dir/fft.cc.o"
  "CMakeFiles/swsm_apps.dir/fft.cc.o.d"
  "CMakeFiles/swsm_apps.dir/lu.cc.o"
  "CMakeFiles/swsm_apps.dir/lu.cc.o.d"
  "CMakeFiles/swsm_apps.dir/ocean.cc.o"
  "CMakeFiles/swsm_apps.dir/ocean.cc.o.d"
  "CMakeFiles/swsm_apps.dir/radix.cc.o"
  "CMakeFiles/swsm_apps.dir/radix.cc.o.d"
  "CMakeFiles/swsm_apps.dir/raytrace.cc.o"
  "CMakeFiles/swsm_apps.dir/raytrace.cc.o.d"
  "CMakeFiles/swsm_apps.dir/volrend.cc.o"
  "CMakeFiles/swsm_apps.dir/volrend.cc.o.d"
  "CMakeFiles/swsm_apps.dir/water.cc.o"
  "CMakeFiles/swsm_apps.dir/water.cc.o.d"
  "libswsm_apps.a"
  "libswsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
