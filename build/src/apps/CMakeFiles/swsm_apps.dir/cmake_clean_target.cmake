file(REMOVE_RECURSE
  "libswsm_apps.a"
)
