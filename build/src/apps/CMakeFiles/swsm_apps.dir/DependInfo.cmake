
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_registry.cc" "src/apps/CMakeFiles/swsm_apps.dir/app_registry.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/app_registry.cc.o.d"
  "/root/repo/src/apps/app_util.cc" "src/apps/CMakeFiles/swsm_apps.dir/app_util.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/app_util.cc.o.d"
  "/root/repo/src/apps/barnes.cc" "src/apps/CMakeFiles/swsm_apps.dir/barnes.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/barnes.cc.o.d"
  "/root/repo/src/apps/fft.cc" "src/apps/CMakeFiles/swsm_apps.dir/fft.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/fft.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/apps/CMakeFiles/swsm_apps.dir/lu.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/lu.cc.o.d"
  "/root/repo/src/apps/ocean.cc" "src/apps/CMakeFiles/swsm_apps.dir/ocean.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/ocean.cc.o.d"
  "/root/repo/src/apps/radix.cc" "src/apps/CMakeFiles/swsm_apps.dir/radix.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/radix.cc.o.d"
  "/root/repo/src/apps/raytrace.cc" "src/apps/CMakeFiles/swsm_apps.dir/raytrace.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/raytrace.cc.o.d"
  "/root/repo/src/apps/volrend.cc" "src/apps/CMakeFiles/swsm_apps.dir/volrend.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/volrend.cc.o.d"
  "/root/repo/src/apps/water.cc" "src/apps/CMakeFiles/swsm_apps.dir/water.cc.o" "gcc" "src/apps/CMakeFiles/swsm_apps.dir/water.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/swsm_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/swsm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/swsm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/swsm_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swsm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
