# Empty compiler generated dependencies file for swsm_apps.
# This may be replaced when dependencies are built.
