file(REMOVE_RECURSE
  "CMakeFiles/swsm_sim.dir/event_queue.cc.o"
  "CMakeFiles/swsm_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/swsm_sim.dir/log.cc.o"
  "CMakeFiles/swsm_sim.dir/log.cc.o.d"
  "CMakeFiles/swsm_sim.dir/rng.cc.o"
  "CMakeFiles/swsm_sim.dir/rng.cc.o.d"
  "CMakeFiles/swsm_sim.dir/stats.cc.o"
  "CMakeFiles/swsm_sim.dir/stats.cc.o.d"
  "CMakeFiles/swsm_sim.dir/types.cc.o"
  "CMakeFiles/swsm_sim.dir/types.cc.o.d"
  "libswsm_sim.a"
  "libswsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
