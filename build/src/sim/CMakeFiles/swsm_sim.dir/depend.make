# Empty dependencies file for swsm_sim.
# This may be replaced when dependencies are built.
