file(REMOVE_RECURSE
  "libswsm_sim.a"
)
