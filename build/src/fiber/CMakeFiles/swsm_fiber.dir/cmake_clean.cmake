file(REMOVE_RECURSE
  "CMakeFiles/swsm_fiber.dir/fiber.cc.o"
  "CMakeFiles/swsm_fiber.dir/fiber.cc.o.d"
  "libswsm_fiber.a"
  "libswsm_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
