file(REMOVE_RECURSE
  "libswsm_fiber.a"
)
