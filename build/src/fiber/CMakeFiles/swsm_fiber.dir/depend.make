# Empty dependencies file for swsm_fiber.
# This may be replaced when dependencies are built.
