file(REMOVE_RECURSE
  "CMakeFiles/swsm_mem.dir/cache_model.cc.o"
  "CMakeFiles/swsm_mem.dir/cache_model.cc.o.d"
  "libswsm_mem.a"
  "libswsm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
