file(REMOVE_RECURSE
  "libswsm_mem.a"
)
