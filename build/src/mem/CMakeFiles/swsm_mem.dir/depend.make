# Empty dependencies file for swsm_mem.
# This may be replaced when dependencies are built.
