file(REMOVE_RECURSE
  "libswsm_comm.a"
)
