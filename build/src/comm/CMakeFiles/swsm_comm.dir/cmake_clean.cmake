file(REMOVE_RECURSE
  "CMakeFiles/swsm_comm.dir/msg_layer.cc.o"
  "CMakeFiles/swsm_comm.dir/msg_layer.cc.o.d"
  "libswsm_comm.a"
  "libswsm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
