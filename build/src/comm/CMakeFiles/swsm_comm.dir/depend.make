# Empty dependencies file for swsm_comm.
# This may be replaced when dependencies are built.
