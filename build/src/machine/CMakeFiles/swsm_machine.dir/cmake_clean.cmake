file(REMOVE_RECURSE
  "CMakeFiles/swsm_machine.dir/cluster.cc.o"
  "CMakeFiles/swsm_machine.dir/cluster.cc.o.d"
  "CMakeFiles/swsm_machine.dir/node.cc.o"
  "CMakeFiles/swsm_machine.dir/node.cc.o.d"
  "CMakeFiles/swsm_machine.dir/run_stats.cc.o"
  "CMakeFiles/swsm_machine.dir/run_stats.cc.o.d"
  "CMakeFiles/swsm_machine.dir/thread.cc.o"
  "CMakeFiles/swsm_machine.dir/thread.cc.o.d"
  "libswsm_machine.a"
  "libswsm_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swsm_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
