# Empty compiler generated dependencies file for swsm_machine.
# This may be replaced when dependencies are built.
