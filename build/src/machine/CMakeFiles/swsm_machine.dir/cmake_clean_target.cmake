file(REMOVE_RECURSE
  "libswsm_machine.a"
)
