#!/usr/bin/env python3
"""Compare two BENCH_*.json reports for semantic equality.

Everything must match except host-timing fields (hostSeconds), the
worker counts (jobs, simThreads), the machine.fastpath_* effectiveness
counters, the mem.simd_* kernel telemetry and the parallel event
kernel's sim.pdes_* bookkeeping (plus the pending-event high-water
mark), which legitimately differ between runs of the same sweep (the
fast path, the SIMD dispatch level and the parallel kernel change how
the simulation executes on the host, never what anything costs in the
simulation). Used by CI to check that a parallel sweep (--jobs=N), a
partitioned run (--sim-threads=N), a SWSM_FASTPATH=0 run or a
SWSM_SIMD=0 run produces exactly the metrics of the serial/default
one.

hostSeconds fields may be plain numbers, {"min": ..., "median": ...}
objects from repeated measurements, or (schema 3) an object of named
sections each carrying {"min", "median"}; --host-seconds sums the
minima.

Usage: bench_diff.py A.json B.json
       bench_diff.py --host-seconds A.json B.json
Exit status: 0 when equivalent, 1 with a difference report otherwise.
With --host-seconds, prints a host-time comparison of the two reports
and always exits 0 (wall-clock ratios are machine-dependent and must
never gate CI).
"""

import json
import sys

IGNORED_KEYS = {
    "hostSeconds",
    "jobs",
    "simThreads",
    "machine.fastpath_hits",
    "machine.fastpath_misses",
    "machine.fastpath_installs",
    "machine.fastpath_invalidations",
    "sim.max_pending_events",
}

IGNORED_PREFIXES = ("sim.pdes_", "mem.simd_")


def ignored(key):
    return key in IGNORED_KEYS or key.startswith(IGNORED_PREFIXES)


def strip(value):
    """Recursively drop ignored keys from dicts."""
    if isinstance(value, dict):
        return {k: strip(v) for k, v in value.items() if not ignored(k)}
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def describe(a, b, path="$"):
    """Yield human-readable difference lines between two values."""
    if type(a) is not type(b):
        yield f"{path}: type {type(a).__name__} != {type(b).__name__}"
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                yield f"{path}.{key}: only in second file"
            elif key not in b:
                yield f"{path}.{key}: only in first file"
            else:
                yield from describe(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            yield from describe(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} != {b!r}"


def host_seconds_value(v):
    """One hostSeconds value: a number, a {"min", "median"} object, or
    (schema 3) an object of named sections each shaped like the
    above. Returns the sum of the minima."""
    if isinstance(v, (int, float)) and not isinstance(v, bool):
        return v
    if isinstance(v, dict):
        if isinstance(v.get("min"), (int, float)):
            return v["min"]
        return sum(host_seconds_value(s)
                   for s in v.values() if isinstance(s, dict))
    return 0.0


def host_seconds(value):
    """Sum every hostSeconds field in a report, recursively."""
    total = 0.0
    if isinstance(value, dict):
        for k, v in value.items():
            if k == "hostSeconds":
                total += host_seconds_value(v)
            else:
                total += host_seconds(v)
    elif isinstance(value, list):
        for v in value:
            total += host_seconds(v)
    return total


def report_host_seconds(path_a, path_b):
    """Print a host-time comparison of two reports (informational)."""
    with open(path_a) as f:
        a = host_seconds(json.load(f))
    with open(path_b) as f:
        b = host_seconds(json.load(f))
    print(f"{path_a}: {a:.3f} host seconds")
    print(f"{path_b}: {b:.3f} host seconds")
    if a > 0 and b > 0:
        print(f"ratio (first/second): {a / b:.2f}x")
    else:
        print("ratio: n/a (a report recorded no host time)")
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--host-seconds":
        return report_host_seconds(argv[2], argv[3])
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        a = strip(json.load(f))
    with open(argv[2]) as f:
        b = strip(json.load(f))
    if a == b:
        print(f"{argv[1]} and {argv[2]} are equivalent")
        return 0
    print(f"{argv[1]} and {argv[2]} differ:", file=sys.stderr)
    for i, line in enumerate(describe(a, b)):
        if i >= 50:
            print("  ... (truncated)", file=sys.stderr)
            break
        print(f"  {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
