#!/usr/bin/env python3
"""Compare two BENCH_*.json reports for semantic equality.

Everything must match except host-timing fields (hostSeconds), the
worker counts (jobs, simThreads), the machine.fastpath_* effectiveness
counters, the machine.saver_* speculation-checkpoint telemetry
(snapshot bytes, pages copied, restore counts), the mem.simd_* kernel
telemetry, the parallel event kernel's sim.pdes_* bookkeeping (plus
the pending-event high-water mark) and BENCH_pdes.json's speculation
telemetry (pdesSpeculated, pdesRollbacks, pdesCommits) and host
speedup ratio (speedupVsSerial, derived from hostSeconds), which
legitimately differ between runs of the same sweep (the fast path,
the SIMD dispatch level and the parallel kernel change how the
simulation executes on the host, never what anything costs in the
simulation). BENCH_pdes.json's deterministic window-shape fields
(pdesWindows, pdesWindowWidened) stay compared: per cell they depend
only on simulation state, so two runs of the same sweep must
reproduce them exactly. Used by CI to check that a parallel sweep (--jobs=N), a
partitioned run (--sim-threads=N), a SWSM_FASTPATH=0 run, a
SWSM_SIMD=0 run or a sweep-server replay produces exactly the metrics
of the serial/default one.

hostSeconds fields may be plain numbers, {"min": ..., "median": ...}
objects from repeated measurements, or (schema 3) an object of named
sections each carrying {"min", "median"}; --host-seconds sums the
minima. Schema-3 sections present in only one report are incomparable:
they are excluded from the ratio and listed, never a failure.

Usage: bench_diff.py A.json B.json
       bench_diff.py --host-seconds A.json B.json
       bench_diff.py --from-shm NAME --size SIZE --procs N
                     [--bench NAME] [--dir DIR] [--out FILE]
       bench_diff.py --merge SHARD.json... [--out FILE]
       bench_diff.py --selftest
Exit status: 0 when equivalent, 1 with a difference report otherwise.
With --host-seconds, prints a host-time comparison of the two reports
and always exits 0 (wall-clock ratios are machine-dependent and must
never gate CI).

--from-shm renders the sweep server's shared-memory memo segment
(src/serve/shm_cache.hh; the byte layout is mirrored below and guarded
by a C++ static_assert) as a BENCH-schema JSON document, filtered to
one size/procs tier, so a segment left behind by swsm_serve can be
compared against a batch or server report with the normal mode.

--merge combines BENCH reports produced by shard peers (swsm_serve
--tcp plus the shard verb, src/serve/shard.hh) into the one report a
single process would have written: headers must agree, baselines and
experiments are unioned (sorted by app / key, so the result does not
depend on shard count or order), and entries appearing in more than
one shard must agree on every deterministic field — hostSeconds, which
legitimately differs per host, is min-summed instead (the fastest
host's measurement per entry; the top-level value is their sum).
Disagreement on any compared field is an error, exit status 1.
"""

import json
import os
import struct
import sys

IGNORED_KEYS = {
    "hostSeconds",
    "jobs",
    "simThreads",
    "machine.fastpath_hits",
    "machine.fastpath_misses",
    "machine.fastpath_installs",
    "machine.fastpath_invalidations",
    "sim.max_pending_events",
    # BENCH_pdes.json speculation telemetry: how much the bounded-
    # optimism kernel guessed and re-executed, never what anything
    # cost. The deterministic window-shape fields next to them
    # (pdesWindows, pdesWindowWidened) ARE compared: for a fixed
    # cell (config x threads x window policy) they depend only on
    # simulation state.
    "pdesSpeculated",
    "pdesRollbacks",
    "pdesCommits",
    # Derived from hostSeconds (wall-clock ratio vs the serial cell),
    # so just as host-dependent as hostSeconds itself.
    "speedupVsSerial",
}

# machine.saver_* is the machine-level checkpoint traffic behind the
# speculation (machine/pdes_saver.hh): saves, restores, snapshot bytes,
# pages copied. Like sim.pdes_*, it describes how the host executed
# the run, never what anything cost in the simulation.
IGNORED_PREFIXES = ("sim.pdes_", "mem.simd_", "machine.saver_")


def ignored(key):
    return key in IGNORED_KEYS or key.startswith(IGNORED_PREFIXES)


def strip(value):
    """Recursively drop ignored keys from dicts."""
    if isinstance(value, dict):
        return {k: strip(v) for k, v in value.items() if not ignored(k)}
    if isinstance(value, list):
        return [strip(v) for v in value]
    return value


def describe(a, b, path="$"):
    """Yield human-readable difference lines between two values."""
    if type(a) is not type(b):
        yield f"{path}: type {type(a).__name__} != {type(b).__name__}"
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                yield f"{path}.{key}: only in second file"
            elif key not in b:
                yield f"{path}.{key}: only in first file"
            else:
                yield from describe(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            yield from describe(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} != {b!r}"


def host_seconds_value(v):
    """One hostSeconds value: a number, a {"min", "median"} object, or
    (schema 3) an object of named sections each shaped like the
    above. Returns the sum of the minima."""
    if isinstance(v, (int, float)) and not isinstance(v, bool):
        return v
    if isinstance(v, dict):
        if isinstance(v.get("min"), (int, float)):
            return v["min"]
        return sum(host_seconds_value(s)
                   for s in v.values() if isinstance(s, dict))
    return 0.0


def host_seconds_sections(value, sections=None):
    """Per-section host seconds of a report: schema-3 named sections
    accumulate under their names, every other hostSeconds shape under
    "" (the unsectioned total)."""
    if sections is None:
        sections = {}
    if isinstance(value, dict):
        for k, v in value.items():
            if k != "hostSeconds":
                host_seconds_sections(v, sections)
                continue
            if isinstance(v, dict) and not isinstance(
                    v.get("min"), (int, float)):
                for name, s in v.items():
                    if isinstance(s, dict):
                        sections[name] = (sections.get(name, 0.0) +
                                          host_seconds_value(s))
            else:
                sections[""] = sections.get("", 0.0) + \
                    host_seconds_value(v)
    elif isinstance(value, list):
        for v in value:
            host_seconds_sections(v, sections)
    return sections


def host_seconds(value):
    """Sum every hostSeconds field in a report, recursively."""
    return sum(host_seconds_sections(value).values())


def compare_host_sections(a, b):
    """Split two section maps into (comparable total a, total b,
    incomparable section names). A section present in only one report
    cannot contribute to a ratio and must be reported, not summed."""
    sa = host_seconds_sections(a)
    sb = host_seconds_sections(b)
    common = set(sa) & set(sb)
    only = sorted((set(sa) ^ set(sb)) - common)
    return (sum(sa[k] for k in common), sum(sb[k] for k in common), only)


def report_host_seconds(path_a, path_b):
    """Print a host-time comparison of two reports (informational)."""
    with open(path_a) as f:
        a = json.load(f)
    with open(path_b) as f:
        b = json.load(f)
    ca, cb, incomparable = compare_host_sections(a, b)
    print(f"{path_a}: {host_seconds(a):.3f} host seconds")
    print(f"{path_b}: {host_seconds(b):.3f} host seconds")
    for name in incomparable:
        label = name or "(unsectioned)"
        print(f"section {label!r}: present in only one report; "
              "excluded from the ratio")
    if ca > 0 and cb > 0:
        print(f"ratio (first/second, comparable sections): "
              f"{ca / cb:.2f}x")
    else:
        print("ratio: n/a (no comparable host time)")
    return 0


# ---------------------------------------------------------------------------
# Shared-memory memo segment reader (mirrors src/serve/shm_cache.hh and
# src/serve/result_codec.hh; those headers are the layout of record).

SEGMENT_MAGIC = b"SWSMMEMO"
HEADER_BYTES = 128
SLOT_BYTES = 64
HEADER_FMT = "<8sIIIIQQQQQQQ"  # magic, layout, schema, slots, rsvd,
#                                arenaBytes, arenaUsed, seq, hits,
#                                misses, inserts, evictions
SLOT_FMT = "<IIQQQIIQQQ"  # state, keyLen, keyHash, keyOff, valOff,
#                           valLen, pad, checksum, seq, pad2
RESULT_MAGIC = b"SWR1"
BASELINE_MAGIC = b"SWB1"


def fnv1a64(data, seed=0xcbf29ce484222325):
    h = seed
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def shm_dir():
    env = os.environ.get("SWSM_SHM_DIR")
    if env:
        return env
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return "/tmp"


def g10(x):
    """Round-trip a float through the %.10g rendering the C++ JSON
    writer uses, so decoded values compare equal to emitted ones."""
    return float("%.10g" % x)


class BlobReader:
    def __init__(self, blob):
        self.blob = blob
        self.off = 0

    def take(self, fmt):
        vals = struct.unpack_from(fmt, self.blob, self.off)
        self.off += struct.calcsize(fmt)
        return vals if len(vals) > 1 else vals[0]

    def string(self):
        n = self.take("<I")
        s = self.blob[self.off:self.off + n].decode()
        self.off += n
        return s


def decode_result(blob):
    """Decode a result blob into a BENCH experiment entry skeleton."""
    if blob[:4] != RESULT_MAGIC:
        return None
    r = BlobReader(blob)
    r.off = 4
    out = {}
    out["workload"] = r.string()
    out["config"] = r.string()
    out["protocol"] = r.string()
    out["simCycles"] = r.take("<Q")
    out["seqCycles"] = r.take("<Q")
    out["verified"] = r.take("<B") != 0
    out["hostSeconds"] = g10(r.take("<d"))
    counters = {}
    for _ in range(r.take("<I")):
        name = r.string()
        counters[name] = r.take("<Q")
    gauges = {}
    for _ in range(r.take("<I")):
        name = r.string()
        gauges[name] = g10(r.take("<d"))
    histograms = {}
    for _ in range(r.take("<I")):
        name = r.string()
        total = r.take("<Q")
        buckets = [r.take("<Q") for _ in range(r.take("<I"))]
        histograms[name] = {"total": total, "buckets": buckets}
    if counters or gauges or histograms:
        out["metrics"] = {"counters": counters, "gauges": gauges,
                          "histograms": histograms}
    return out


def decode_baseline(blob):
    if blob[:4] != BASELINE_MAGIC or len(blob) != 12:
        return None
    return struct.unpack_from("<Q", blob, 4)[0]


def read_segment(path):
    """Yield (key, value) pairs of every checksum-valid entry."""
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < HEADER_BYTES:
        raise SystemExit(f"{path}: too short for a memo segment")
    (magic, layout, _schema, slots, _rsvd, _arena_bytes, _used, _seq,
     _hits, _misses, _inserts, _evictions) = struct.unpack_from(
         HEADER_FMT, data, 0)
    if magic != SEGMENT_MAGIC:
        raise SystemExit(f"{path}: bad segment magic")
    if layout != 1:
        raise SystemExit(f"{path}: unknown segment layout {layout}")
    for i in range(slots):
        (state, key_len, _hash, key_off, val_off, val_len, _pad,
         checksum, _slot_seq, _pad2) = struct.unpack_from(
             SLOT_FMT, data, HEADER_BYTES + i * SLOT_BYTES)
        if state != 2:
            continue
        if key_off + key_len > len(data) or val_off + val_len > len(data):
            continue
        key = data[key_off:key_off + key_len]
        value = data[val_off:val_off + val_len]
        if fnv1a64(value, fnv1a64(key)) != checksum:
            continue
        yield key.decode(), value


def render_from_shm(name, size, procs, bench, directory):
    """Render one size/procs tier of a memo segment as a BENCH doc."""
    path = os.path.join(directory or shm_dir(), name)
    result_prefix = f"{size}/p{procs}/"
    baseline_prefix = f"{size}/baseline/"
    baselines = {}
    experiments = {}
    for key, value in read_segment(path):
        if key.startswith(baseline_prefix):
            seq = decode_baseline(value)
            if seq is not None:
                baselines[key[len(baseline_prefix):]] = seq
        elif key.startswith(result_prefix):
            entry = decode_result(value)
            if entry is not None:
                experiments[key[len(result_prefix):]] = entry
    doc = {
        "bench": bench,
        "numProcs": procs,
        "size": size,
        "hostSeconds": g10(sum(e["hostSeconds"]
                               for e in experiments.values())),
        "baselines": [{"app": app, "simCycles": cycles}
                      for app, cycles in sorted(baselines.items())],
        "experiments": [],
    }
    for key, entry in sorted(experiments.items()):
        sim = entry["simCycles"]
        speedup = entry["seqCycles"] / sim if sim else 0.0
        ordered = {"key": key,
                   "workload": entry["workload"],
                   "protocol": entry["protocol"],
                   "config": entry["config"],
                   "simCycles": sim,
                   "seqCycles": entry["seqCycles"],
                   "speedup": g10(speedup),
                   "verified": entry["verified"],
                   "hostSeconds": entry["hostSeconds"]}
        if "metrics" in entry:
            ordered["metrics"] = entry["metrics"]
        doc["experiments"].append(ordered)
    return doc


# ---------------------------------------------------------------------------
# Shard-report merging (coordinator side of src/serve/shard.hh, for
# shards collected as files rather than over TCP).

MERGE_SPLIT_KEYS = ("hostSeconds", "baselines", "experiments")


def merge_shards(shards):
    """Merge shard BENCH docs into the single-process report.

    The merge is order- and count-invariant: headers must agree,
    baselines and experiments are unioned in sorted order, and an entry
    present in several shards must agree on every field bench_diff
    compares (strip()); its hostSeconds is min-summed — each entry
    keeps the fastest host's measurement and the top-level value is
    the sum of those minima. Raises ValueError on disagreement.
    """
    if not shards:
        raise ValueError("no shards to merge")

    def header_of(doc):
        return {k: v for k, v in doc.items() if k not in MERGE_SPLIT_KEYS}

    header = header_of(shards[0])
    baselines = {}
    experiments = {}
    for doc in shards:
        if header_of(doc) != header:
            raise ValueError(
                "shards disagree on the report header: "
                f"{header_of(doc)!r} != {header!r}")
        for entry in doc.get("baselines", []):
            app = entry.get("app")
            if app in baselines and baselines[app] != entry:
                raise ValueError(f"shards disagree on baseline {app!r}")
            baselines[app] = entry
        for entry in doc.get("experiments", []):
            key = entry.get("key")
            if key not in experiments:
                experiments[key] = entry
                continue
            held = experiments[key]
            if strip(held) != strip(entry):
                diff = "; ".join(describe(strip(held), strip(entry)))
                raise ValueError(
                    f"shards disagree on experiment {key!r}: {diff}")
            if (host_seconds_value(entry.get("hostSeconds", 0.0)) <
                    host_seconds_value(held.get("hostSeconds", 0.0))):
                experiments[key] = entry

    # Rebuild in the first shard's key order so a report split into
    # shards and merged back is byte-identical to the original.
    merged = {}
    for k, v in shards[0].items():
        if k == "hostSeconds":
            merged[k] = g10(sum(
                host_seconds_value(e.get("hostSeconds", 0.0))
                for e in experiments.values()))
        elif k == "baselines":
            merged[k] = [baselines[a] for a in sorted(baselines)]
        elif k == "experiments":
            merged[k] = [experiments[key] for key in sorted(experiments)]
        else:
            merged[k] = v
    return merged


# ---------------------------------------------------------------------------
# Selftest (run by CI; no simulator binaries needed).

def _selftest_sections():
    a = {"hostSeconds": {"build": {"min": 1.0, "median": 2.0},
                         "run": {"min": 3.0, "median": 4.0}}}
    b = {"hostSeconds": {"build": {"min": 2.0, "median": 2.5}}}
    ca, cb, only = compare_host_sections(a, b)
    assert ca == 1.0 and cb == 2.0, (ca, cb)
    assert only == ["run"], only
    # Identical section sets: nothing incomparable, everything summed.
    ca, cb, only = compare_host_sections(a, a)
    assert ca == cb == 4.0 and only == [], (ca, cb, only)
    # Mixed schemas: plain numbers live in the unsectioned bucket and
    # never collide with schema-3 sections.
    c = {"hostSeconds": 5.0}
    ca, cb, only = compare_host_sections(a, c)
    assert ca == 0.0 and cb == 0.0, (ca, cb)
    assert only == ["", "build", "run"], only
    assert host_seconds(a) == 4.0 and host_seconds(c) == 5.0


def _selftest_segment(tmpdir):
    """Build a synthetic segment byte-for-byte and decode it back."""
    def enc_str(s):
        return struct.pack("<I", len(s)) + s.encode()

    result = (RESULT_MAGIC + enc_str("fft") + enc_str("AO") +
              enc_str("hlrc") + struct.pack("<QQBd", 1000, 4000, 1, 0.5) +
              struct.pack("<I", 1) + enc_str("net.bytes") +
              struct.pack("<Q", 77) +
              struct.pack("<I", 0) +
              struct.pack("<I", 1) + enc_str("net.lat") +
              struct.pack("<QI", 3, 2) + struct.pack("<QQ", 1, 2))
    baseline = BASELINE_MAGIC + struct.pack("<Q", 4000)

    slots = 4
    arena = b""
    entries = []
    for key, value in [("tiny/p8/fft/hlrc/AO", result),
                       ("tiny/baseline/fft", baseline)]:
        key_b = key.encode()
        key_off = HEADER_BYTES + slots * SLOT_BYTES + len(arena)
        arena += key_b + value
        entries.append((key_b, value, key_off))

    header = struct.pack(HEADER_FMT, SEGMENT_MAGIC, 1, 1, slots, 0,
                         1 << 16, len(arena), len(entries), 0, 0,
                         len(entries), 0)
    header += b"\0" * (HEADER_BYTES - len(header))
    slot_bytes = b""
    for i, (key_b, value, key_off) in enumerate(entries):
        slot_bytes += struct.pack(
            SLOT_FMT, 2, len(key_b), fnv1a64(key_b), key_off,
            key_off + len(key_b), len(value), 0,
            fnv1a64(value, fnv1a64(key_b)), i + 1, 0)
    slot_bytes += b"\0" * ((slots - len(entries)) * SLOT_BYTES)

    path = os.path.join(tmpdir, "selftest_segment")
    with open(path, "wb") as f:
        f.write(header + slot_bytes + arena)

    doc = render_from_shm("selftest_segment", "tiny", 8, "fig3", tmpdir)
    assert doc["baselines"] == [{"app": "fft", "simCycles": 4000}], doc
    assert len(doc["experiments"]) == 1, doc
    e = doc["experiments"][0]
    assert e["key"] == "fft/hlrc/AO" and e["simCycles"] == 1000
    assert e["speedup"] == 4.0 and e["verified"] is True
    assert e["metrics"]["counters"] == {"net.bytes": 77}
    assert e["metrics"]["histograms"] == {
        "net.lat": {"total": 3, "buckets": [1, 2]}}

    # A flipped value byte must fail the checksum and drop the entry.
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as f:
        f.write(blob)
    doc = render_from_shm("selftest_segment", "tiny", 8, "fig3", tmpdir)
    assert doc["baselines"] == [], doc


def _selftest_ignored():
    """strip() must drop exactly the host-execution telemetry and keep
    the deterministic fields it sits next to."""
    entry = {"pdesWindows": 10, "pdesWindowWidened": 2,
             "pdesSpeculated": 7, "pdesRollbacks": 1, "pdesCommits": 6,
             "machine.saver_saves": 5, "machine.saver_restores": 1,
             "machine.saver_snapshot_bytes": 4096,
             "machine.saver_pages_copied": 3,
             "machine.fastpath_hits": 9, "sim.pdes_windows": 10,
             "net.bytes": 77, "hostSeconds": 1.5,
             "speedupVsSerial": 0.83}
    stripped = strip(entry)
    assert stripped == {"pdesWindows": 10, "pdesWindowWidened": 2,
                        "net.bytes": 77}, stripped


def selftest():
    import tempfile
    _selftest_sections()
    _selftest_ignored()
    with tempfile.TemporaryDirectory() as tmpdir:
        _selftest_segment(tmpdir)
    print("bench_diff selftest ok")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) == 4 and argv[1] == "--host-seconds":
        return report_host_seconds(argv[2], argv[3])
    if len(argv) >= 2 and argv[1] == "--from-shm":
        args = {"--size": "small", "--procs": "16", "--bench": "fig3",
                "--dir": "", "--out": ""}
        rest = argv[2:]
        if not rest or rest[0].startswith("--"):
            print("--from-shm needs a segment name", file=sys.stderr)
            return 2
        name = rest[0]
        i = 1
        while i < len(rest):
            if rest[i] in args and i + 1 < len(rest):
                args[rest[i]] = rest[i + 1]
                i += 2
            else:
                print(f"bad --from-shm argument {rest[i]!r}",
                      file=sys.stderr)
                return 2
        doc = render_from_shm(name, args["--size"], int(args["--procs"]),
                              args["--bench"], args["--dir"])
        text = json.dumps(doc, indent=2) + "\n"
        if args["--out"]:
            with open(args["--out"], "w") as f:
                f.write(text)
        else:
            sys.stdout.write(text)
        return 0
    if len(argv) >= 2 and argv[1] == "--merge":
        rest = argv[2:]
        out_path = ""
        if "--out" in rest:
            i = rest.index("--out")
            if i + 1 >= len(rest):
                print("--out needs a file name", file=sys.stderr)
                return 2
            out_path = rest[i + 1]
            rest = rest[:i] + rest[i + 2:]
        if not rest:
            print("--merge needs at least one shard report",
                  file=sys.stderr)
            return 2
        shards = []
        for path in rest:
            with open(path) as f:
                shards.append(json.load(f))
        try:
            doc = merge_shards(shards)
        except ValueError as e:
            print(f"merge failed: {e}", file=sys.stderr)
            return 1
        text = json.dumps(doc, indent=2) + "\n"
        if out_path:
            with open(out_path, "w") as f:
                f.write(text)
        else:
            sys.stdout.write(text)
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        a = strip(json.load(f))
    with open(argv[2]) as f:
        b = strip(json.load(f))
    if a == b:
        print(f"{argv[1]} and {argv[2]} are equivalent")
        return 0
    print(f"{argv[1]} and {argv[2]} differ:", file=sys.stderr)
    for i, line in enumerate(describe(a, b)):
        if i >= 50:
            print("  ... (truncated)", file=sys.stderr)
            break
        print(f"  {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
