#!/usr/bin/env python3
"""Self-test for bench_diff.py (run by ctest as bench_diff_selftest).

Uses only the standard library's unittest so it runs anywhere a Python
interpreter exists. Covers the strip/describe helpers directly and the
main() entry point end-to-end through temp files.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff


def write_json(directory, name, value):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(value, f)
    return path


REPORT = {
    "schema": 1,
    "hostSeconds": 12.5,
    "jobs": 8,
    "rows": [
        {"app": "barnes", "protocol": "hlrc", "cycles": 123456},
        {"app": "radix", "protocol": "sc", "cycles": 654321},
    ],
}


class StripTest(unittest.TestCase):
    def test_drops_ignored_keys_at_top_level(self):
        stripped = bench_diff.strip(REPORT)
        self.assertNotIn("hostSeconds", stripped)
        self.assertNotIn("jobs", stripped)
        self.assertIn("rows", stripped)

    def test_drops_ignored_keys_nested_in_lists(self):
        value = {"rows": [{"cycles": 1, "hostSeconds": 9.0}]}
        self.assertEqual(
            bench_diff.strip(value), {"rows": [{"cycles": 1}]}
        )

    def test_drops_fastpath_effectiveness_counters(self):
        value = {
            "counters": {
                "machine.fastpath_hits": 100,
                "machine.fastpath_misses": 5,
                "machine.fastpath_installs": 7,
                "machine.fastpath_invalidations": 3,
                "proto.diffs_created": 2,
            }
        }
        self.assertEqual(
            bench_diff.strip(value),
            {"counters": {"proto.diffs_created": 2}},
        )

    def test_drops_parallel_kernel_bookkeeping(self):
        value = {
            "simThreads": 4,
            "counters": {
                "sim.pdes_partitions": 4,
                "sim.pdes_windows": 1234,
                "sim.pdes_mailbox_events": 99,
                "sim.max_pending_events": 4096,
                "sim.events_run": 1000,
            },
        }
        self.assertEqual(
            bench_diff.strip(value),
            {"counters": {"sim.events_run": 1000}},
        )

    def test_leaves_scalars_alone(self):
        self.assertEqual(bench_diff.strip(42), 42)
        self.assertEqual(bench_diff.strip("jobs"), "jobs")


class DescribeTest(unittest.TestCase):
    def test_equal_values_yield_nothing(self):
        self.assertEqual(list(bench_diff.describe(REPORT, REPORT)), [])

    def test_scalar_mismatch_names_the_path(self):
        a = {"rows": [{"cycles": 1}]}
        b = {"rows": [{"cycles": 2}]}
        lines = list(bench_diff.describe(a, b))
        self.assertEqual(lines, ["$.rows[0].cycles: 1 != 2"])

    def test_missing_key_is_reported_for_both_sides(self):
        lines = list(bench_diff.describe({"a": 1}, {"b": 1}))
        self.assertIn("$.a: only in first file", lines)
        self.assertIn("$.b: only in second file", lines)

    def test_type_mismatch_stops_recursion(self):
        lines = list(bench_diff.describe({"a": 1}, {"a": "1"}))
        self.assertEqual(lines, ["$.a: type int != str"])

    def test_list_length_mismatch(self):
        lines = list(bench_diff.describe([1], [1, 2]))
        self.assertEqual(lines, ["$: length 1 != 2"])


class MainTest(unittest.TestCase):
    def run_main(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            status = bench_diff.main(["bench_diff.py", *argv])
        return status, out.getvalue(), err.getvalue()

    def test_equivalent_reports_exit_zero(self):
        with tempfile.TemporaryDirectory() as d:
            serial = dict(REPORT)
            parallel = dict(REPORT, hostSeconds=3.1, jobs=1)
            a = write_json(d, "a.json", serial)
            b = write_json(d, "b.json", parallel)
            status, out, _ = self.run_main(a, b)
        self.assertEqual(status, 0)
        self.assertIn("equivalent", out)

    def test_differing_metrics_exit_one_with_report(self):
        with tempfile.TemporaryDirectory() as d:
            changed = json.loads(json.dumps(REPORT))
            changed["rows"][0]["cycles"] += 1
            a = write_json(d, "a.json", REPORT)
            b = write_json(d, "b.json", changed)
            status, _, err = self.run_main(a, b)
        self.assertEqual(status, 1)
        self.assertIn("$.rows[0].cycles", err)

    def test_bad_usage_exits_two(self):
        status, _, err = self.run_main("only-one-file.json")
        self.assertEqual(status, 2)
        self.assertIn("Usage", err)

    def test_host_seconds_mode_reports_and_exits_zero(self):
        with tempfile.TemporaryDirectory() as d:
            slow = dict(REPORT, hostSeconds=10.0)
            fast = dict(REPORT, hostSeconds=4.0)
            a = write_json(d, "a.json", slow)
            b = write_json(d, "b.json", fast)
            status, out, _ = self.run_main("--host-seconds", a, b)
        self.assertEqual(status, 0)
        self.assertIn("10.000 host seconds", out)
        self.assertIn("4.000 host seconds", out)
        self.assertIn("2.50x", out)

    def test_host_seconds_mode_sums_nested_fields(self):
        value = {
            "hostSeconds": 1.0,
            "rows": [{"hostSeconds": 2.0}, {"hostSeconds": 3.5}],
        }
        self.assertEqual(bench_diff.host_seconds(value), 6.5)

    def test_host_seconds_sums_min_of_repeated_measurements(self):
        value = {
            "hostSeconds": {"min": 2.0, "median": 3.0},
            "runs": [{"hostSeconds": {"min": 0.5, "median": 0.75}}],
        }
        self.assertEqual(bench_diff.host_seconds(value), 2.5)

    def test_host_seconds_ignores_malformed_dicts(self):
        value = {"hostSeconds": {"median": 3.0}}
        self.assertEqual(bench_diff.host_seconds(value), 0.0)

    def test_host_seconds_sums_schema3_sections(self):
        value = {
            "hostSeconds": {
                "access": {"min": 1.0, "median": 1.5},
                "diff_scan": {"min": 0.25, "median": 0.5},
                "events": {"min": 2.0, "median": 2.0},
            }
        }
        self.assertEqual(bench_diff.host_seconds(value), 3.25)

    def test_strip_drops_simd_kernel_telemetry(self):
        value = {
            "counters": {
                "mem.simd_level": 1,
                "mem.simd_diff_scan_bytes": 4096,
                "mem.simd_twin_copy_calls": 7,
                "proto.pool_page_reuses": 12,
                "proto.diffs_created": 2,
            }
        }
        self.assertEqual(
            bench_diff.strip(value),
            {
                "counters": {
                    "proto.pool_page_reuses": 12,
                    "proto.diffs_created": 2,
                }
            },
        )

    def test_strip_drops_speculation_keeps_window_shape(self):
        value = {
            "pdesWindows": 9283,
            "pdesWindowWidened": 27720,
            "pdesSpeculated": 55,
            "pdesRollbacks": 3,
        }
        self.assertEqual(
            bench_diff.strip(value),
            {"pdesWindows": 9283, "pdesWindowWidened": 27720},
        )

    def test_speculation_telemetry_divergence_is_equivalent(self):
        base = {
            "bench": "pdes",
            "runs": [{"simulatedCycles": 777, "pdesWindows": 100,
                      "pdesSpeculated": 0, "pdesRollbacks": 0}],
        }
        changed = json.loads(json.dumps(base))
        changed["runs"][0]["pdesSpeculated"] = 64
        changed["runs"][0]["pdesRollbacks"] = 2
        with tempfile.TemporaryDirectory() as d:
            a = write_json(d, "a.json", base)
            b = write_json(d, "b.json", changed)
            status, out, _ = self.run_main(a, b)
        self.assertEqual(status, 0)
        self.assertIn("equivalent", out)

    def test_window_shape_divergence_is_a_difference(self):
        base = {
            "bench": "pdes",
            "runs": [{"simulatedCycles": 777, "pdesWindows": 100,
                      "pdesWindowWidened": 40}],
        }
        changed = json.loads(json.dumps(base))
        changed["runs"][0]["pdesWindows"] = 99
        with tempfile.TemporaryDirectory() as d:
            a = write_json(d, "a.json", base)
            b = write_json(d, "b.json", changed)
            status, _, err = self.run_main(a, b)
        self.assertEqual(status, 1)
        self.assertIn("$.runs[0].pdesWindows", err)

    def test_equivalence_ignores_dict_host_seconds(self):
        with tempfile.TemporaryDirectory() as d:
            serial = dict(REPORT,
                          hostSeconds={"min": 9.0, "median": 9.5},
                          simThreads=1)
            parallel = dict(REPORT,
                            hostSeconds={"min": 3.0, "median": 3.2},
                            simThreads=4)
            a = write_json(d, "a.json", serial)
            b = write_json(d, "b.json", parallel)
            status, out, _ = self.run_main(a, b)
        self.assertEqual(status, 0)
        self.assertIn("equivalent", out)

    def test_host_seconds_mode_handles_missing_fields(self):
        with tempfile.TemporaryDirectory() as d:
            a = write_json(d, "a.json", {"rows": []})
            b = write_json(d, "b.json", {"rows": []})
            status, out, _ = self.run_main("--host-seconds", a, b)
        self.assertEqual(status, 0)
        self.assertIn("n/a", out)


class HostSectionTest(unittest.TestCase):
    """Schema-3 sections present in only one report are incomparable
    and must be excluded from the ratio, not silently summed (the old
    behavior raised KeyError-shaped surprises or skewed the ratio)."""

    A = {
        "hostSeconds": {
            "access": {"min": 1.0, "median": 1.5},
            "events": {"min": 2.0, "median": 2.5},
        }
    }
    B = {"hostSeconds": {"access": {"min": 0.5, "median": 0.75}}}

    def test_compare_splits_incomparable_sections(self):
        ca, cb, only = bench_diff.compare_host_sections(self.A, self.B)
        self.assertEqual(only, ["events"])
        self.assertEqual(ca, 1.0)  # comparable side only
        self.assertEqual(cb, 0.5)

    def test_identical_section_sets_have_nothing_incomparable(self):
        ca, cb, only = bench_diff.compare_host_sections(self.A, self.A)
        self.assertEqual(only, [])
        self.assertEqual(ca, cb)

    def test_host_seconds_mode_reports_excluded_sections(self):
        out, err = io.StringIO(), io.StringIO()
        with tempfile.TemporaryDirectory() as d:
            a = write_json(d, "a.json", self.A)
            b = write_json(d, "b.json", self.B)
            with redirect_stdout(out), redirect_stderr(err):
                status = bench_diff.main(
                    ["bench_diff.py", "--host-seconds", a, b]
                )
        self.assertEqual(status, 0)
        self.assertIn("excluded from the ratio", out.getvalue())
        self.assertIn("'events'", out.getvalue())
        # The ratio uses only the comparable sections: 1.0 / 0.5.
        self.assertIn("2.00x", out.getvalue())


def bench_doc():
    """A small single-process BENCH document, shaped like the server's
    grid output (top-level hostSeconds = sum of the entries')."""
    experiments = [
        {"key": "fft/hlrc/AO", "workload": "fft", "simCycles": 1000,
         "seqCycles": 4000, "hostSeconds": 0.25,
         "metrics": {"counters": {"net.bytes": 77}}},
        {"key": "fft/ideal", "workload": "fft", "simCycles": 800,
         "seqCycles": 4000, "hostSeconds": 0.125,
         "metrics": {"counters": {"net.bytes": 0}}},
        {"key": "lu/hlrc/AO", "workload": "lu", "simCycles": 2000,
         "seqCycles": 6000, "hostSeconds": 0.5,
         "metrics": {"counters": {"net.bytes": 42}}},
        {"key": "lu/sc/AO", "workload": "lu", "simCycles": 2500,
         "seqCycles": 6000, "hostSeconds": 0.0625,
         "metrics": {"counters": {"net.bytes": 99}}},
    ]
    return {
        "bench": "fig3",
        "jobs": 1,
        "simThreads": 1,
        "numProcs": 4,
        "size": "tiny",
        "hostSeconds": bench_diff.g10(
            sum(e["hostSeconds"] for e in experiments)),
        "baselines": [{"app": "fft", "simCycles": 4000},
                      {"app": "lu", "simCycles": 6000}],
        "experiments": experiments,
    }


def split_doc(doc, shards, host_scale=None):
    """Split a BENCH doc into shard docs the way shard peers produce
    them: experiments partitioned round-robin, baselines duplicated
    into every shard that has one of the app's experiments."""
    out = []
    for i in range(shards):
        exps = [json.loads(json.dumps(e))
                for j, e in enumerate(doc["experiments"])
                if j % shards == i]
        if host_scale is not None:
            for e in exps:
                e["hostSeconds"] = e["hostSeconds"] * host_scale(i)
        apps = {e["workload"] for e in exps}
        shard = {k: v for k, v in doc.items()
                 if k not in ("baselines", "experiments", "hostSeconds")}
        shard["hostSeconds"] = bench_diff.g10(
            sum(bench_diff.host_seconds_value(e["hostSeconds"])
                for e in exps))
        shard["baselines"] = [b for b in doc["baselines"]
                              if b["app"] in apps]
        shard["experiments"] = exps
        out.append(shard)
    return out


class MergeShardsTest(unittest.TestCase):
    """The shard-merge contract: merging the pieces of a report gives
    back exactly the single-process report, independent of shard count
    and order; shards disagreeing on a deterministic field is an
    error, disagreeing on host timing is min-summed."""

    def test_single_shard_merge_is_identity(self):
        doc = bench_doc()
        text = json.dumps(doc, indent=2)
        merged = bench_diff.merge_shards([json.loads(text)])
        self.assertEqual(json.dumps(merged, indent=2), text)

    def test_merge_is_byte_identical_across_shard_counts_and_order(self):
        doc = bench_doc()
        text = json.dumps(doc, indent=2)
        for shards in (2, 3, 4):
            pieces = split_doc(doc, shards)
            merged = bench_diff.merge_shards(pieces)
            self.assertEqual(json.dumps(merged, indent=2), text,
                             f"{shards} shards")
            flipped = bench_diff.merge_shards(list(reversed(pieces)))
            self.assertEqual(json.dumps(flipped, indent=2), text,
                             f"{shards} shards, reversed")

    def test_duplicate_entries_min_sum_host_seconds(self):
        doc = bench_doc()
        # Both shards carry the full grid (e.g. two full local runs);
        # shard 1 was slower on every entry.
        a, = split_doc(doc, 1)
        b, = split_doc(doc, 1, host_scale=lambda i: 3.0)
        merged = bench_diff.merge_shards([b, a])
        self.assertEqual(json.dumps(merged, indent=2),
                         json.dumps(doc, indent=2))
        # Entry-wise minima: mixed winners still sum per entry.
        b["experiments"][0]["hostSeconds"] = 0.001
        merged = bench_diff.merge_shards([a, b])
        self.assertEqual(merged["experiments"][0]["hostSeconds"], 0.001)
        expected = 0.001 + sum(e["hostSeconds"]
                               for e in doc["experiments"][1:])
        self.assertEqual(merged["hostSeconds"], bench_diff.g10(expected))

    def test_schema3_section_host_seconds_min_sum_by_total(self):
        doc = bench_doc()
        for e in doc["experiments"]:
            e["hostSeconds"] = {
                "access": {"min": e["hostSeconds"], "median": 1.0},
                "events": {"min": 0.5, "median": 1.0},
            }
        doc["hostSeconds"] = bench_diff.g10(sum(
            bench_diff.host_seconds_value(e["hostSeconds"])
            for e in doc["experiments"]))
        text = json.dumps(doc, indent=2)
        merged = bench_diff.merge_shards(split_doc(doc, 2))
        self.assertEqual(json.dumps(merged, indent=2), text)

    def test_shards_disagreeing_on_counters_is_an_error(self):
        doc = bench_doc()
        a, b = split_doc(doc, 2)
        # Give b a copy of one of a's entries with a diverged counter.
        rogue = json.loads(json.dumps(a["experiments"][0]))
        rogue["metrics"]["counters"]["net.bytes"] += 1
        b["experiments"].append(rogue)
        with self.assertRaises(ValueError) as ctx:
            bench_diff.merge_shards([a, b])
        self.assertIn("disagree on experiment", str(ctx.exception))
        self.assertIn("net.bytes", str(ctx.exception))

    def test_shards_disagreeing_on_baselines_or_header_is_an_error(self):
        doc = bench_doc()
        a, b = split_doc(doc, 2)
        b["baselines"] = [{"app": "fft", "simCycles": 4001}]
        with self.assertRaises(ValueError) as ctx:
            bench_diff.merge_shards([a, b])
        self.assertIn("disagree on baseline", str(ctx.exception))

        a, b = split_doc(doc, 2)
        b["numProcs"] = 8
        with self.assertRaises(ValueError) as ctx:
            bench_diff.merge_shards([a, b])
        self.assertIn("header", str(ctx.exception))

    def test_host_timing_divergence_on_duplicates_is_not_an_error(self):
        doc = bench_doc()
        a, = split_doc(doc, 1)
        b, = split_doc(doc, 1, host_scale=lambda i: 7.0)
        b["hostSeconds"] = a["hostSeconds"]  # header must still agree
        merged = bench_diff.merge_shards([a, b])
        self.assertEqual(json.dumps(merged, indent=2),
                         json.dumps(doc, indent=2))

    def test_empty_shard_list_is_an_error(self):
        with self.assertRaises(ValueError):
            bench_diff.merge_shards([])


class MergeCliTest(unittest.TestCase):
    def run_main(self, *argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            status = bench_diff.main(["bench_diff.py", *argv])
        return status, out.getvalue(), err.getvalue()

    def test_merge_writes_the_single_process_report(self):
        doc = bench_doc()
        with tempfile.TemporaryDirectory() as d:
            paths = [write_json(d, f"shard{i}.json", s)
                     for i, s in enumerate(split_doc(doc, 2))]
            out_path = os.path.join(d, "merged.json")
            status, _, err = self.run_main(
                "--merge", *paths, "--out", out_path)
            self.assertEqual(status, 0, err)
            with open(out_path) as f:
                self.assertEqual(f.read(),
                                 json.dumps(doc, indent=2) + "\n")

    def test_merge_disagreement_exits_one(self):
        doc = bench_doc()
        a, b = split_doc(doc, 2)
        rogue = json.loads(json.dumps(a["experiments"][0]))
        rogue["simCycles"] += 1
        b["experiments"].append(rogue)
        with tempfile.TemporaryDirectory() as d:
            pa = write_json(d, "a.json", a)
            pb = write_json(d, "b.json", b)
            status, _, err = self.run_main("--merge", pa, pb)
        self.assertEqual(status, 1)
        self.assertIn("merge failed", err)

    def test_merge_without_inputs_exits_two(self):
        status, _, err = self.run_main("--merge")
        self.assertEqual(status, 2)
        self.assertIn("at least one shard", err)


class SelftestTest(unittest.TestCase):
    def test_builtin_selftest_passes(self):
        """Runs the section checks plus the synthetic shared-memory
        segment round-trip (layout mirror of serve/shm_cache.hh)."""
        out = io.StringIO()
        with redirect_stdout(out):
            status = bench_diff.main(["bench_diff.py", "--selftest"])
        self.assertEqual(status, 0)
        self.assertIn("selftest ok", out.getvalue())


if __name__ == "__main__":
    unittest.main()
