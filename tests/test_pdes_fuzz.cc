/**
 * @file
 * Parallel-schedule fuzz tier (ctest label: fuzz-pdes).
 *
 * Two seeded sweeps, both asserting the parallel event kernel's core
 * contract — bit-equivalence with the serial kernel — across the new
 * axes of this engine: per-destination lookahead matrices, asymmetric
 * (island) topologies, and bounded-optimism speculation.
 *
 *  - Kernel tier: random event graphs over random asymmetric
 *    slot-to-slot lookahead matrices, run serially and under
 *    {2, 4} partitions x optimism {0, 8} with a real state saver, so
 *    speculation commits *and* rollbacks are exercised on arbitrary
 *    schedules. Per-slot mutation order and hash chains must match the
 *    serial run exactly.
 *  - Cluster tier: full machine runs (real protocol, network, fibers)
 *    whose shape comes from check::pdesMachineForSeed — randomized
 *    timing plus island geometry — swept over sim-thread counts, the
 *    legacy global-minimum window policy, and optimism {0, 4, 8}
 *    backed by the machine-level state saver (machine/pdes_saver.hh),
 *    so full-machine speculation commits and rollbacks are fuzzed.
 *    Every counter except the engine's and the saver's own bookkeeping
 *    (and, under speculation, the host-side fast-path telemetry that
 *    rollback invalidations legitimately shift) must be identical to
 *    serial.
 *
 * Every failure message carries the seed and axis values, so a red run
 * is replayable with
 *
 *   SWSM_PDES_FUZZ_SEEDS=1 SWSM_PDES_FUZZ_BASE=<seed> test_pdes_fuzz
 *
 * Seed counts default to 20 (kernel) / 6 (cluster) per protocol and
 * scale with SWSM_PDES_FUZZ_SEEDS for soak runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hh"
#include "check/fuzz.hh"
#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"
#include "sim/rng.hh"

namespace swsm
{
namespace
{

std::uint64_t
envCount(const char *name, std::uint64_t def)
{
    const char *env = std::getenv(name);
    if (env) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0 && v <= 1000000)
            return static_cast<std::uint64_t>(v);
    }
    return def;
}

std::uint64_t
baseSeed()
{
    return envCount("SWSM_PDES_FUZZ_BASE", 1);
}

// ---------------------------------------------------------------------
// Kernel tier: random event graphs under random lookahead matrices.
// ---------------------------------------------------------------------

/** Per-slot state the fuzz events mutate; order-sensitive per slot. */
struct GraphState
{
    explicit GraphState(std::size_t slots) : cells(slots), order(slots) {}

    void
    touch(std::uint32_t slot, Cycles when)
    {
        cells[slot] = cells[slot] * 6364136223846793005ULL +
                      (static_cast<std::uint64_t>(when) ^ slot) + 1;
        order[slot].push_back(when);
    }

    bool
    operator==(const GraphState &other) const
    {
        return cells == other.cells && order == other.order;
    }

    std::vector<std::uint64_t> cells;
    std::vector<std::vector<Cycles>> order;
};

/** One seeded event graph: shared by the serial and parallel runs. */
struct Graph
{
    std::uint32_t numSlots = 0;
    /** Slot-to-slot minimum cross-schedule gap, row-major. */
    std::vector<Cycles> lookahead;

    Cycles
    edge(std::uint32_t from, std::uint32_t to) const
    {
        return lookahead[static_cast<std::size_t>(from) * numSlots + to];
    }
};

Graph
graphForSeed(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
    Graph g;
    static constexpr std::uint32_t slot_counts[] = {4, 5, 8};
    g.numSlots = slot_counts[rng.nextBounded(3)];
    g.lookahead.assign(
        static_cast<std::size_t>(g.numSlots) * g.numSlots, 0);
    for (std::uint32_t i = 0; i < g.numSlots; ++i) {
        for (std::uint32_t j = 0; j < g.numSlots; ++j) {
            if (i != j) {
                g.lookahead[static_cast<std::size_t>(i) * g.numSlots +
                            j] = 20 + rng.nextBounded(2000);
            }
        }
    }
    return g;
}

/** Everything one graph run touches; events hold a pointer to this. */
struct GraphRun
{
    EventQueue eq;
    Graph graph;
    GraphState state;

    explicit GraphRun(const Graph &g) : graph(g), state(g.numSlots) {}
};

/**
 * Execute one fuzz event: mutate the slot's cell, then schedule 0-2
 * children derived deterministically from the event's own stream, so
 * serial and parallel runs build the same graph. Cross-slot children
 * respect the slot-level lookahead matrix, which lower-bounds every
 * partition-level edge the engine derives from it.
 */
void
runEvent(GraphRun *run, std::uint32_t slot, Cycles when, int depth,
         std::uint64_t stream)
{
    run->state.touch(slot, when);
    if (depth >= 5)
        return;
    Rng rng(stream);
    const std::uint64_t children = rng.nextBounded(3);
    for (std::uint64_t c = 0; c < children; ++c) {
        const auto dst =
            static_cast<std::uint32_t>(rng.nextBounded(run->graph.numSlots));
        const Cycles gap = dst == slot ? 1 : run->graph.edge(slot, dst);
        const Cycles child_when = when + gap + rng.nextBounded(300);
        const std::uint64_t child_stream =
            stream * 0x9e3779b97f4a7c15ULL + c + 1;
        const int child_depth = depth + 1;
        run->eq.scheduleTo(dst, child_when,
                           [run, dst, child_when, child_depth,
                            child_stream] {
                               runEvent(run, dst, child_when,
                                        child_depth, child_stream);
                           });
    }
}

void
seedGraph(GraphRun &run, std::uint64_t seed)
{
    run.eq.setNumSlots(run.graph.numSlots);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x94d049bb133111ebULL);
    for (std::uint32_t slot = 0; slot < run.graph.numSlots; ++slot) {
        const std::uint64_t roots = 1 + rng.nextBounded(2);
        for (std::uint64_t r = 0; r < roots; ++r) {
            const Cycles when = rng.nextBounded(500);
            const std::uint64_t stream =
                (seed << 8) ^ (slot * 131u) ^ r;
            GraphRun *rp = &run;
            run.eq.scheduleTo(slot, when, [rp, slot, when, stream] {
                runEvent(rp, slot, when, 0, stream);
            });
        }
    }
}

/** Checkpoints the slots each partition owns (real saver, so the
 *  parallel runs genuinely speculate and roll back). */
class GraphSaver : public PdesStateSaver
{
  public:
    GraphSaver(GraphState &state, std::vector<int> partition_of,
               int partitions)
        : state_(state), partitionOf_(std::move(partition_of)),
          saved_(partitions)
    {}

    void
    save(int partition) override
    {
        auto &snap = saved_[partition];
        snap.clear();
        for (std::uint32_t s = 0; s < partitionOf_.size(); ++s) {
            if (partitionOf_[s] == partition) {
                snap.push_back(Snap{s, state_.cells[s],
                                    state_.order[s].size()});
            }
        }
    }

    void
    restore(int partition) override
    {
        for (const Snap &sn : saved_[partition]) {
            state_.cells[sn.slot] = sn.cell;
            state_.order[sn.slot].resize(sn.orderLen);
        }
    }

    void discard(int partition) override { saved_[partition].clear(); }

  private:
    struct Snap
    {
        std::uint32_t slot;
        std::uint64_t cell;
        std::size_t orderLen;
    };

    GraphState &state_;
    std::vector<int> partitionOf_;
    std::vector<std::vector<Snap>> saved_;
};

TEST(PdesFuzz, KernelGraphsAreBitEquivalentAcrossPartitionsAndOptimism)
{
    const std::uint64_t seeds = envCount("SWSM_PDES_FUZZ_SEEDS", 20);
    std::uint64_t total_speculated = 0;
    std::uint64_t total_rollbacks = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = baseSeed() + i;
        const Graph graph = graphForSeed(seed);

        GraphRun serial(graph);
        seedGraph(serial, seed);
        const std::uint64_t serial_events = serial.eq.run();

        for (const int partitions : {2, 4}) {
            std::vector<int> partition_of(graph.numSlots);
            for (std::uint32_t s = 0; s < graph.numSlots; ++s) {
                partition_of[s] = static_cast<int>(
                    static_cast<std::uint64_t>(s) * partitions /
                    graph.numSlots);
            }
            PdesConfig base;
            base.lookahead.assign(
                static_cast<std::size_t>(partitions) * partitions,
                PdesEngine::noEvent);
            for (std::uint32_t a = 0; a < graph.numSlots; ++a) {
                for (std::uint32_t b = 0; b < graph.numSlots; ++b) {
                    if (a == b || partition_of[a] == partition_of[b])
                        continue;
                    auto &entry =
                        base.lookahead[static_cast<std::size_t>(
                                           partition_of[a]) *
                                           partitions +
                                       partition_of[b]];
                    entry = std::min(entry, graph.edge(a, b));
                }
            }
            for (const int optimism : {0, 8}) {
                GraphRun par(graph);
                seedGraph(par, seed);
                GraphSaver saver(par.state, partition_of, partitions);
                PdesConfig config = base;
                config.optimism = optimism;
                config.saver = &saver;
                PdesEngine engine(par.eq, partition_of, partitions,
                                  std::move(config));
                const std::uint64_t events = engine.run();
                engine.checkDrained();
                total_speculated += engine.stats().speculated;
                total_rollbacks += engine.stats().rollbacks;
                const std::string label =
                    "seed=" + std::to_string(seed) +
                    " partitions=" + std::to_string(partitions) +
                    " optimism=" + std::to_string(optimism) +
                    " (replay: SWSM_PDES_FUZZ_SEEDS=1 "
                    "SWSM_PDES_FUZZ_BASE=" +
                    std::to_string(seed) + " test_pdes_fuzz)";
                EXPECT_EQ(events, serial_events) << label;
                EXPECT_TRUE(par.state == serial.state) << label;
                if (optimism == 0) {
                    EXPECT_EQ(engine.stats().speculated, 0u) << label;
                }
            }
        }
    }
    // The sweep must actually exercise speculation, or the optimism
    // axis is vacuous. (Rollbacks depend on the seeds; with the
    // default 20 both paths fire.)
    EXPECT_GT(total_speculated, 0u);
    if (seeds >= 20) {
        EXPECT_GT(total_rollbacks, 0u)
            << "no seed produced a straggler or stalled commit";
    }
}

// ---------------------------------------------------------------------
// Cluster tier: full machine runs over fuzzed island topologies.
// ---------------------------------------------------------------------

/** Lock-serialized counters plus falsely-shared writes: cross-node
 *  traffic in both the lock-home and page-home patterns. */
std::function<void(Thread &)>
clusterKernel(Cluster &c)
{
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    auto a = std::make_shared<SharedArray<std::uint64_t>>(
        SharedArray<std::uint64_t>::homedAt(c, 96, 0));
    for (int i = 0; i < 96; ++i)
        a->init(c, i, 0);
    return [lock, bar, a](Thread &t) {
        for (int round = 0; round < 2; ++round) {
            t.acquire(lock);
            a->put(t, 0, a->get(t, 0) + 1);
            t.release(lock);
            for (int j = 0; j < 4; ++j)
                a->put(t, 8 + t.id() * 4 + j,
                       static_cast<std::uint64_t>(round * 100 +
                                                  t.id() * 4 + j));
            t.barrier(bar);
            std::uint64_t sum = 0;
            for (int i = 0; i < 8 + 4 * t.nprocs(); ++i)
                sum += a->get(t, i);
            (void)sum;
            t.barrier(bar);
        }
    };
}

struct ClusterResult
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::uint64_t speculated = 0;
    std::uint64_t rollbacks = 0;
};

/** Host-side telemetry that legitimately differs once a run
 *  speculates: the saver's own traffic, and the fast-path counters
 *  (a rollback invalidates the partition's fast-path entries, so
 *  re-execution re-installs and re-misses). */
bool
hostSideCounter(const std::string &name)
{
    return name.rfind("machine.saver_", 0) == 0 ||
           name.rfind("machine.fastpath_", 0) == 0;
}

ClusterResult
runCluster(MachineParams mp)
{
    Cluster c(mp);
    auto body = clusterKernel(c);
    c.run(body);
    ClusterResult r;
    r.total = c.stats().totalCycles;
    r.finish = c.stats().finishTimes;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        if (name == "sim.pdes_speculated")
            r.speculated = value;
        if (name == "sim.pdes_rollbacks")
            r.rollbacks = value;
        if (name.rfind("sim.pdes_", 0) == 0 ||
            name == "sim.max_pending_events")
            continue;
        r.counters.emplace_back(name, value);
    }
    return r;
}

void
fuzzCluster(ProtocolKind protocol)
{
    const std::uint64_t seeds = envCount("SWSM_PDES_FUZZ_SEEDS", 6);
    std::uint64_t total_speculated = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = baseSeed() + i;
        MachineParams mp = check::pdesMachineForSeed(protocol, seed);

        mp.simThreads = 1;
        const ClusterResult serial = runCluster(mp);

        struct Axis
        {
            int threads;
            bool perDest;
            int optimism;
        };
        static constexpr Axis axes[] = {
            {2, true, 0},
            {4, true, 0},
            {4, false, 0}, // legacy global-minimum windows
            {2, true, 8},  // machine-level speculation (pdes_saver.hh)
            {4, true, 4},
            {4, true, 8},
        };
        for (const Axis &axis : axes) {
            mp.simThreads = axis.threads;
            mp.pdesPerDest = axis.perDest;
            mp.pdesOptimism = axis.optimism;
            const ClusterResult par = runCluster(mp);
            total_speculated += par.speculated;
            const std::string label =
                std::string(protocolKindName(protocol)) +
                " seed=" + std::to_string(seed) +
                " threads=" + std::to_string(axis.threads) +
                " perDest=" + std::to_string(axis.perDest) +
                " optimism=" + std::to_string(axis.optimism) +
                " (replay: SWSM_PDES_FUZZ_SEEDS=1 "
                "SWSM_PDES_FUZZ_BASE=" +
                std::to_string(seed) + " test_pdes_fuzz)";
            if (axis.optimism == 0) {
                EXPECT_EQ(par.speculated, 0u) << label;
            }
            EXPECT_EQ(par.total, serial.total) << label;
            EXPECT_EQ(par.finish, serial.finish) << label;
            ASSERT_EQ(par.counters.size(), serial.counters.size())
                << label;
            for (std::size_t k = 0; k < par.counters.size(); ++k) {
                if (axis.optimism > 0 &&
                    hostSideCounter(serial.counters[k].first))
                    continue;
                EXPECT_EQ(par.counters[k], serial.counters[k])
                    << "counter " << serial.counters[k].first << " "
                    << label;
            }
        }
        if (::testing::Test::HasFailure())
            break; // one seed's axes are enough to diagnose
    }
    // The optimism axes must actually speculate somewhere in the
    // sweep, or the machine-saver coverage is vacuous.
    EXPECT_GT(total_speculated, 0u);
}

TEST(PdesFuzz, ClusterTopologiesScBitEquivalent)
{
    fuzzCluster(ProtocolKind::Sc);
}

TEST(PdesFuzz, ClusterTopologiesHlrcBitEquivalent)
{
    fuzzCluster(ProtocolKind::Hlrc);
}

} // namespace
} // namespace swsm
