/**
 * @file
 * Unit tests for the measured parallelism budget (harness/budget.hh):
 * explicit flags stay authoritative, auto jobs clamp to the grid, auto
 * sim-threads get the leftover-core share, and SWSM_BUDGET=static
 * restores the legacy SWSM_SIM_THREADS x jobs composition.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/budget.hh"
#include "harness/sweep.hh"
#include "sim/pdes.hh"

namespace swsm
{
namespace
{

/** Pins the env knobs the allocator reads; restores them on scope exit. */
class BudgetEnv
{
  public:
    BudgetEnv()
    {
        save("SWSM_BUDGET");
        save("SWSM_SIM_THREADS");
        save("SWSM_PDES");
        ::unsetenv("SWSM_BUDGET");
        ::unsetenv("SWSM_SIM_THREADS");
        ::unsetenv("SWSM_PDES");
    }

    ~BudgetEnv()
    {
        for (const auto &[name, value] : saved_) {
            if (value.second)
                ::setenv(name.c_str(), value.first.c_str(), 1);
            else
                ::unsetenv(name.c_str());
        }
    }

    void set(const char *name, const char *value)
    {
        ::setenv(name, value, 1);
    }

  private:
    void save(const char *name)
    {
        const char *v = std::getenv(name);
        saved_.emplace_back(name,
                            std::make_pair(v ? std::string(v) : "",
                                           v != nullptr));
    }

    std::vector<std::pair<std::string, std::pair<std::string, bool>>>
        saved_;
};

BudgetRequest
request(int hw, int grid)
{
    BudgetRequest req;
    req.hardwareThreads = hw;
    req.gridItems = grid;
    return req;
}

TEST(BudgetTest, AutoSimThreadsTakeLeftoverCores)
{
    BudgetEnv env;
    BudgetRequest req = request(16, 2);
    req.jobs = 2;
    req.jobsExplicit = true;
    const Budget b = computeBudget(req);
    EXPECT_EQ(b.jobs, 2);
    EXPECT_EQ(b.simThreads, 8); // 16 cores / 2 jobs
}

TEST(BudgetTest, SimThreadShareIsCappedByEnvAndEngine)
{
    BudgetEnv env;
    env.set("SWSM_SIM_THREADS", "3");
    BudgetRequest req = request(16, 2);
    req.jobs = 2;
    req.jobsExplicit = true;
    EXPECT_EQ(computeBudget(req).simThreads, 3);

    ::unsetenv("SWSM_SIM_THREADS");
    req = request(256, 1);
    req.jobs = 1;
    req.jobsExplicit = true;
    EXPECT_EQ(computeBudget(req).simThreads, PdesEngine::maxPartitions);
}

TEST(BudgetTest, ExplicitSimThreadsWin)
{
    BudgetEnv env;
    env.set("SWSM_SIM_THREADS", "2");
    BudgetRequest req = request(4, 8);
    req.jobs = 4;
    req.jobsExplicit = true;
    req.simThreads = 6;
    req.simThreadsExplicit = true;
    EXPECT_EQ(computeBudget(req).simThreads, 6);
}

TEST(BudgetTest, PdesKillSwitchForcesSerial)
{
    BudgetEnv env;
    env.set("SWSM_PDES", "0");
    BudgetRequest req = request(16, 1);
    req.jobs = 1;
    req.jobsExplicit = true;
    EXPECT_EQ(computeBudget(req).simThreads, 1);
}

TEST(BudgetTest, AutoJobsClampToGridAndFeedWorkers)
{
    BudgetEnv env;
    // Two-item grid on a 16-way host: no point in 16 runner slots.
    EXPECT_EQ(computeBudget(request(16, 2)).jobs, 2);
    // Worker processes need at least one submitting job slot each.
    BudgetRequest req = request(16, 2);
    req.workers = 4;
    const Budget b = computeBudget(req);
    EXPECT_EQ(b.workers, 4);
    EXPECT_GE(b.jobs, 4);
    // With workers active they are the runner population.
    EXPECT_EQ(b.simThreads, 4); // 16 cores / 4 workers
}

TEST(BudgetTest, WorkersAutoMatchesCoresAndGrid)
{
    BudgetEnv env;
    BudgetRequest req = request(8, 3);
    req.workersAuto = true;
    EXPECT_EQ(computeBudget(req).workers, 3);
    req = request(8, 100);
    req.workersAuto = true;
    EXPECT_EQ(computeBudget(req).workers, 8);
}

TEST(BudgetTest, ExplicitJobsAreNeverGridClamped)
{
    BudgetEnv env;
    BudgetRequest req = request(16, 2);
    req.jobs = 12;
    req.jobsExplicit = true;
    EXPECT_EQ(computeBudget(req).jobs, 12);
}

TEST(BudgetTest, StaticModeKeepsLegacyRule)
{
    BudgetEnv env;
    env.set("SWSM_BUDGET", "static");
    EXPECT_TRUE(budgetIsStatic());

    // Legacy default: serial sim unless SWSM_SIM_THREADS asks.
    BudgetRequest req = request(16, 2);
    req.jobs = 2;
    req.jobsExplicit = true;
    EXPECT_EQ(computeBudget(req).simThreads, 1);

    env.set("SWSM_SIM_THREADS", "8");
    EXPECT_EQ(computeBudget(req).simThreads, 8);

    // Legacy oversubscription guard: min(env, hw / jobs).
    req.jobs = 8;
    EXPECT_EQ(computeBudget(req).simThreads, 2);

    // And jobs are not grid-clamped in static mode.
    BudgetRequest autoJobs = request(16, 2);
    EXPECT_EQ(computeBudget(autoJobs).jobs, 16);
}

TEST(BudgetTest, UnknownModeFallsBackToMeasured)
{
    BudgetEnv env;
    env.set("SWSM_BUDGET", "bogus");
    EXPECT_FALSE(budgetIsStatic());
}

TEST(BudgetTest, SweepOptionsRouteThroughBudget)
{
    BudgetEnv env;
    SweepOptions opts;
    opts.jobs = 1;
    opts.simThreads = 1;
    opts.simThreadsExplicit = false;
    // With one job the whole machine is this run's share (clamped to
    // the engine limit); the exact value depends on the host.
    const int eff = opts.effectiveSimThreads();
    EXPECT_GE(eff, 1);
    EXPECT_LE(eff, PdesEngine::maxPartitions);
    EXPECT_EQ(eff, std::min(measuredHardwareThreads(),
                            PdesEngine::maxPartitions));

    opts.simThreads = 5;
    opts.simThreadsExplicit = true;
    EXPECT_EQ(opts.effectiveSimThreads(), 5);
}

TEST(BudgetTest, MeasuredHardwareThreadsHasFloorOfOne)
{
    EXPECT_GE(measuredHardwareThreads(), 1);
}

} // namespace
} // namespace swsm
