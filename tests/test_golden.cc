/**
 * @file
 * Golden-number regression tests (ctest label: golden).
 *
 * Locks in the bench_fig3 protocol-ordering claims recorded in
 * EXPERIMENTS.md so a future change that silently flips a headline
 * conclusion fails CI instead of shipping:
 *
 *  - barnes-spatial is the HLRC-only win: HLRC beats SC at AO;
 *  - at BO the paper's ordering appears everywhere: SC beats HLRC for
 *    Barnes, Volrend and Radix.
 *
 * Orderings are compared on parallel cycles of the same app at the
 * same size, so no sequential baseline is needed and the assertions
 * are robust to baseline-cost changes. Sizes are the smallest at which
 * each recorded ordering is stable (radix inverts at Tiny, so it runs
 * Small).
 */

#include <gtest/gtest.h>

#include "apps/app_registry.hh"
#include "harness/experiment.hh"

namespace swsm
{
namespace
{

Cycles
parallelCycles(const char *name, SizeClass size, ProtocolKind kind,
               char comm_set, char proto_set)
{
    const AppInfo &app = findApp(name);
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.commSet = comm_set;
    // SC handlers are simple and fixed; the paper never varies them.
    cfg.protoSet = kind == ProtocolKind::Sc ? 'O' : proto_set;
    cfg.numProcs = 16;
    cfg.blockBytes = app.scBlockBytes;
    const ExperimentResult r =
        runExperiment(app.factory, size, cfg, /*seq_cycles=*/1);
    EXPECT_TRUE(r.verified) << name << " failed output verification";
    return r.parallelCycles;
}

TEST(GoldenFig3, BarnesSpatialHlrcBeatsScAtAO)
{
    const Cycles hlrc = parallelCycles("barnes-spatial", SizeClass::Tiny,
                                       ProtocolKind::Hlrc, 'A', 'O');
    const Cycles sc = parallelCycles("barnes-spatial", SizeClass::Tiny,
                                     ProtocolKind::Sc, 'A', 'O');
    EXPECT_LT(hlrc, sc)
        << "EXPERIMENTS.md: barnes-spatial is the one version where "
           "HLRC beats SC decisively at AO";
}

TEST(GoldenFig3, ScBeatsHlrcAtBOForBarnes)
{
    const Cycles sc = parallelCycles("barnes", SizeClass::Tiny,
                                     ProtocolKind::Sc, 'B', 'O');
    const Cycles hlrc = parallelCycles("barnes", SizeClass::Tiny,
                                       ProtocolKind::Hlrc, 'B', 'O');
    EXPECT_LT(sc, hlrc)
        << "EXPERIMENTS.md: at BO the paper's ordering appears "
           "everywhere (Barnes 8.4 vs 3.0)";
}

TEST(GoldenFig3, ScBeatsHlrcAtBOForVolrend)
{
    const Cycles sc = parallelCycles("volrend", SizeClass::Tiny,
                                     ProtocolKind::Sc, 'B', 'O');
    const Cycles hlrc = parallelCycles("volrend", SizeClass::Tiny,
                                       ProtocolKind::Hlrc, 'B', 'O');
    EXPECT_LT(sc, hlrc)
        << "EXPERIMENTS.md: at BO the paper's ordering appears "
           "everywhere (Volrend 5.4 vs 2.1)";
}

TEST(GoldenFig3, ScBeatsHlrcAtBOForRadix)
{
    const Cycles sc = parallelCycles("radix", SizeClass::Small,
                                     ProtocolKind::Sc, 'B', 'O');
    const Cycles hlrc = parallelCycles("radix", SizeClass::Small,
                                       ProtocolKind::Hlrc, 'B', 'O');
    EXPECT_LT(sc, hlrc)
        << "EXPERIMENTS.md: at BO the paper's ordering appears "
           "everywhere (Radix 1.3 vs 0.3)";
}

} // namespace
} // namespace swsm
