/**
 * @file
 * Unit tests for communication parameters, FCFS resources and the
 * endpoint-contention network model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "net/comm_params.hh"
#include "sim/log.hh"
#include "net/fcfs_resource.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace swsm
{
namespace
{

TEST(CommParams, NamedSetsMatchPaperStructure)
{
    const CommParams a = CommParams::achievable();
    const CommParams b = CommParams::best();
    const CommParams h = CommParams::halfway();
    const CommParams w = CommParams::worse();
    const CommParams x = CommParams::betterThanBest();

    EXPECT_GT(a.hostOverhead, 0u);
    EXPECT_EQ(b.hostOverhead, 0u);
    EXPECT_EQ(b.niOccupancyPerPacket, 0u);
    EXPECT_EQ(b.handlingCost, 0u);
    EXPECT_GT(b.ioBusBytesPerCycle, a.ioBusBytesPerCycle);
    EXPECT_EQ(h.hostOverhead, a.hostOverhead / 2);
    EXPECT_EQ(w.hostOverhead, 2 * a.hostOverhead);
    EXPECT_LT(w.ioBusBytesPerCycle, a.ioBusBytesPerCycle);
    EXPECT_EQ(x.linkLatency, 0u);
    EXPECT_GT(x.ioBusBytesPerCycle, b.ioBusBytesPerCycle);
}

TEST(CommParams, FromNameRoundTrips)
{
    EXPECT_EQ(CommParams::fromName('A').hostOverhead,
              CommParams::achievable().hostOverhead);
    EXPECT_EQ(CommParams::fromName('B').handlingCost, 0u);
    EXPECT_THROW(CommParams::fromName('Z'), FatalError);
}

TEST(CommParams, InterpolateEndpoints)
{
    const CommParams a = CommParams::achievable();
    const CommParams b = CommParams::best();
    EXPECT_EQ(a.interpolate(b, 0.0).hostOverhead, a.hostOverhead);
    EXPECT_EQ(a.interpolate(b, 1.0).hostOverhead, 0u);
    EXPECT_EQ(a.interpolate(b, 0.5).hostOverhead, a.hostOverhead / 2);
}

TEST(FcfsResource, NoContentionPassesThrough)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(100, 10), 110u);
    EXPECT_EQ(r.acquire(200, 10), 210u);
    EXPECT_EQ(r.queueingDelay().max(), 0.0);
}

TEST(FcfsResource, ContentionSerializes)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(100, 50), 150u);
    EXPECT_EQ(r.acquire(100, 50), 200u); // queued behind the first
    EXPECT_EQ(r.acquire(120, 50), 250u);
    EXPECT_EQ(r.totalBusyCycles().value(), 150u);
    EXPECT_EQ(r.totalUses().value(), 3u);
}

TEST(FcfsResource, ZeroDurationIsFree)
{
    FcfsResource r;
    EXPECT_EQ(r.acquire(5, 0), 5u);
    EXPECT_EQ(r.acquire(5, 0), 5u);
}

TEST(FcfsResource, SameCycleRequestsFromDifferentNodesAreDeterministic)
{
    // Requests landing on a shared resource in the same cycle must
    // acquire it in a deterministic order. The event queue breaks the
    // when-tie by scheduling stamp, which is slot-major: node 0's
    // request runs first no matter what order the nodes were seeded in.
    auto run = [] {
        EventQueue eq;
        eq.setNumSlots(4);
        FcfsResource r;
        std::vector<int> order;
        std::vector<Cycles> done(4);
        // Seed each node's slot in reverse; each node then requests the
        // resource at the same cycle, stamped from its own slot.
        for (int n = 3; n >= 0; --n) {
            eq.scheduleTo(static_cast<std::uint32_t>(n), 50, [&, n] {
                eq.schedule(100, [&, n] {
                    order.push_back(n);
                    done[n] = r.acquire(eq.now(), 10);
                });
            });
        }
        eq.run();
        return std::make_pair(order, done);
    };
    const auto [order, done] = run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(done[n], 110u + 10u * static_cast<Cycles>(n));
    EXPECT_EQ(run(), std::make_pair(order, done)); // stable across runs
}

class NetworkTest : public ::testing::Test
{
  protected:
    /** Expected uncontended one-packet latency under @p p. */
    static Cycles
    onePacketLatency(const CommParams &p, std::uint32_t bytes)
    {
        const auto xfer = [](std::uint32_t n, double bw) {
            return static_cast<Cycles>(
                std::ceil(static_cast<double>(n) / bw));
        };
        return xfer(bytes, p.ioBusBytesPerCycle) +
               p.niOccupancyPerPacket + p.linkLatency +
               xfer(bytes, p.linkBytesPerCycle) +
               p.niOccupancyPerPacket + xfer(bytes, p.ioBusBytesPerCycle);
    }
};

TEST_F(NetworkTest, UncontendedLatencyMatchesModel)
{
    EventQueue eq;
    const CommParams p = CommParams::achievable();
    Network net(eq, 4, p);
    Cycles delivered = 0;
    net.send(0, 1, 64, 1000, [&](Cycles t) { delivered = t; });
    eq.run();
    EXPECT_EQ(delivered, 1000 + onePacketLatency(p, 64));
}

TEST_F(NetworkTest, BestParametersLeaveOnlyWireTime)
{
    EventQueue eq;
    const CommParams p = CommParams::best();
    Network net(eq, 2, p);
    Cycles delivered = 0;
    net.send(0, 1, 64, 0, [&](Cycles t) { delivered = t; });
    eq.run();
    EXPECT_EQ(delivered, onePacketLatency(p, 64));
    EXPECT_GT(delivered, 0u); // bandwidth and link latency remain
}

TEST_F(NetworkTest, LargeMessageSplitsIntoPackets)
{
    EventQueue eq;
    CommParams p = CommParams::achievable();
    Network net(eq, 2, p);
    Cycles delivered = 0;
    // 3 packets of <= 4096 bytes; pipelining means the total is less
    // than 3x the single-packet latency but more than 1x.
    net.send(0, 1, 3 * 4096, 0, [&](Cycles t) { delivered = t; });
    eq.run();
    const Cycles one = onePacketLatency(p, 4096);
    EXPECT_GT(delivered, one);
    EXPECT_LT(delivered, 3 * one);
}

TEST_F(NetworkTest, SameChannelIsFifo)
{
    EventQueue eq;
    CommParams p = CommParams::achievable();
    Network net(eq, 2, p);
    std::vector<int> order;
    net.send(0, 1, 4096, 0, [&](Cycles) { order.push_back(1); });
    net.send(0, 1, 16, 0, [&](Cycles) { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(NetworkTest, SelfSendSkipsNic)
{
    EventQueue eq;
    Network net(eq, 2, CommParams::achievable());
    Cycles delivered = 0;
    net.send(1, 1, 4096, 77, [&](Cycles t) { delivered = t; });
    eq.run();
    EXPECT_EQ(delivered, 77u);
    EXPECT_EQ(net.nic(1).niProc.totalUses().value(), 0u);
}

TEST_F(NetworkTest, EndpointContentionDelaysSecondSender)
{
    EventQueue eq;
    const CommParams p = CommParams::achievable();
    Network net(eq, 3, p);
    Cycles t1 = 0, t2 = 0;
    // Two senders to the same destination: the receiver NI/IO serialize.
    net.send(0, 2, 4096, 0, [&](Cycles t) { t1 = t; });
    net.send(1, 2, 4096, 0, [&](Cycles t) { t2 = t; });
    eq.run();
    EXPECT_GT(std::max(t1, t2),
              onePacketLatency(p, 4096)); // someone got delayed
    EXPECT_GT(net.nic(2).ioBus.queueingDelay().max(), 0.0);
}

TEST_F(NetworkTest, DistinctPairsDoNotInterfere)
{
    EventQueue eq;
    const CommParams p = CommParams::achievable();
    Network net(eq, 4, p);
    Cycles t1 = 0, t2 = 0;
    net.send(0, 1, 256, 0, [&](Cycles t) { t1 = t; });
    net.send(2, 3, 256, 0, [&](Cycles t) { t2 = t; });
    eq.run();
    EXPECT_EQ(t1, onePacketLatency(p, 256));
    EXPECT_EQ(t2, onePacketLatency(p, 256));
}

TEST_F(NetworkTest, MessageAndByteCounters)
{
    EventQueue eq;
    Network net(eq, 2, CommParams::best());
    net.send(0, 1, 100, 0, [](Cycles) {});
    net.send(0, 1, 200, 0, [](Cycles) {});
    eq.run();
    EXPECT_EQ(net.messagesSent().value(), 2u);
    EXPECT_EQ(net.bytesSent().value(), 300u);
}

TEST_F(NetworkTest, InvalidNodesPanic)
{
    EventQueue eq;
    Network net(eq, 2, CommParams::best());
    EXPECT_DEATH(net.send(0, 5, 10, 0, [](Cycles) {}), "invalid");
}

} // namespace
} // namespace swsm
