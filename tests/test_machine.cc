/**
 * @file
 * Integration tests of the machine layer: cluster runs, the thread API,
 * time-bucket accounting, and cross-protocol data movement.
 */

#include <gtest/gtest.h>

#include "apps/fft.hh"
#include "harness/experiment.hh"
#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"

namespace swsm
{
namespace
{

MachineParams
smallMachine(ProtocolKind kind, int procs = 4)
{
    MachineParams mp;
    mp.numProcs = procs;
    mp.protocol = kind;
    return mp;
}

TEST(Cluster, RunsTrivialBodies)
{
    for (auto kind :
         {ProtocolKind::Ideal, ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(smallMachine(kind));
        int ran = 0;
        c.run([&](Thread &t) {
            t.compute(100);
            ++ran;
        });
        EXPECT_EQ(ran, 4) << protocolKindName(kind);
        EXPECT_GE(c.stats().totalCycles, 100u);
    }
}

TEST(Cluster, ComputeChargesBusyTime)
{
    Cluster c(smallMachine(ProtocolKind::Ideal, 2));
    c.run([&](Thread &t) { t.compute(12345); });
    for (const auto &buckets : c.stats().perProc)
        EXPECT_EQ(buckets[static_cast<int>(TimeBucket::Busy)], 12345u);
}

TEST(Cluster, BarrierSynchronizesAllThreads)
{
    for (auto kind :
         {ProtocolKind::Ideal, ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(smallMachine(kind));
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> flags(c, 4);
        for (int i = 0; i < 4; ++i)
            flags.init(c, i, 0);
        bool ok = true;
        c.run([&](Thread &t) {
            // Stagger arrivals, set a flag, cross, check all flags.
            t.compute(1000 * (t.id() + 1));
            flags.put(t, t.id(), 1);
            t.barrier(bar);
            for (int i = 0; i < t.nprocs(); ++i) {
                if (flags.get(t, i) != 1)
                    ok = false;
            }
            t.barrier(bar);
        });
        EXPECT_TRUE(ok) << protocolKindName(kind);
    }
}

TEST(Cluster, LockProvidesMutualExclusion)
{
    for (auto kind :
         {ProtocolKind::Ideal, ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(smallMachine(kind));
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> counter(c, 1);
        counter.init(c, 0, 0);
        constexpr int iters = 25;
        c.run([&](Thread &t) {
            for (int i = 0; i < iters; ++i) {
                t.acquire(lock);
                const auto v = counter.get(t, 0);
                t.compute(50); // widen the race window
                counter.put(t, 0, v + 1);
                t.release(lock);
            }
            t.barrier(bar);
        });
        EXPECT_EQ(counter.peek(c, 0),
                  static_cast<std::uint64_t>(4 * iters))
            << protocolKindName(kind);
    }
}

TEST(Cluster, ProducerConsumerThroughLock)
{
    for (auto kind : {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(smallMachine(kind, 2));
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> data(c, 64);
        for (int i = 0; i < 64; ++i)
            data.init(c, i, 0);
        std::uint64_t seen = 0;
        c.run([&](Thread &t) {
            if (t.id() == 0) {
                t.acquire(lock);
                for (int i = 0; i < 64; ++i)
                    data.put(t, i, 1000 + i);
                t.release(lock);
            }
            t.barrier(bar);
            if (t.id() == 1) {
                t.acquire(lock);
                for (int i = 0; i < 64; ++i)
                    seen += data.get(t, i);
                t.release(lock);
            }
            t.barrier(bar);
        });
        std::uint64_t expect = 0;
        for (int i = 0; i < 64; ++i)
            expect += 1000 + i;
        EXPECT_EQ(seen, expect) << protocolKindName(kind);
    }
}

TEST(Cluster, BucketsSumToFinishTime)
{
    for (auto kind : {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        Cluster c(smallMachine(kind));
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> a(c, 1024);
        for (int i = 0; i < 1024; ++i)
            a.init(c, i, i);
        c.run([&](Thread &t) {
            std::uint64_t sum = 0;
            for (int i = t.id(); i < 1024; i += t.nprocs())
                sum += a.get(t, i);
            a.put(t, t.id(), sum);
            t.barrier(bar);
        });
        const RunStats &s = c.stats();
        for (std::size_t pr = 0; pr < s.perProc.size(); ++pr) {
            Cycles total = 0;
            for (int b = 0; b < numTimeBuckets; ++b)
                total += s.perProc[pr][b];
            EXPECT_EQ(total, s.finishTimes[pr])
                << protocolKindName(kind) << " proc " << pr;
        }
    }
}

TEST(Cluster, RunTwicePanics)
{
    Cluster c(smallMachine(ProtocolKind::Ideal, 1));
    c.run([](Thread &) {});
    EXPECT_THROW(c.run([](Thread &) {}), FatalError);
}

TEST(Cluster, SeededRngIsPerThreadDeterministic)
{
    std::vector<std::uint64_t> first;
    for (int rep = 0; rep < 2; ++rep) {
        Cluster c(smallMachine(ProtocolKind::Ideal));
        std::vector<std::uint64_t> vals(4);
        c.run([&](Thread &t) { vals[t.id()] = t.rng().next64(); });
        if (rep == 0) {
            first = vals;
            EXPECT_NE(vals[0], vals[1]);
        } else {
            EXPECT_EQ(vals, first);
        }
    }
}

TEST(Experiment, FftVerifiesOnAllProtocols)
{
    const WorkloadFactory factory = [](SizeClass s) {
        return std::make_unique<FftWorkload>(s);
    };
    const Cycles seq = runSequentialBaseline(factory, SizeClass::Tiny);
    EXPECT_GT(seq, 0u);

    for (auto kind : {ProtocolKind::Hlrc, ProtocolKind::Sc}) {
        ExperimentConfig cfg;
        cfg.protocol = kind;
        cfg.numProcs = 4;
        cfg.blockBytes = kind == ProtocolKind::Sc ? 4096 : 64;
        const ExperimentResult r =
            runExperiment(factory, SizeClass::Tiny, cfg, seq);
        EXPECT_TRUE(r.verified) << protocolKindName(kind);
        EXPECT_GT(r.speedup(), 0.0);
    }
}

TEST(Cluster, InterruptHandlingCostsMoreThanPolling)
{
    // The paper chose polling because interrupt dispatch dominates the
    // communication architecture when used; the interrupt-mode
    // extension must reproduce that ordering.
    auto run_with = [](Cycles interrupt_cost) {
        MachineParams mp = smallMachine(ProtocolKind::Hlrc, 4);
        mp.comm.interruptCost = interrupt_cost;
        Cluster c(mp);
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> a(c, 2048);
        c.run([&](Thread &t) {
            for (int round = 0; round < 3; ++round) {
                for (int i = t.id(); i < 2048; i += t.nprocs())
                    a.put(t, i, round + i);
                t.barrier(bar);
            }
        });
        return c.stats().totalCycles;
    };
    const Cycles polled = run_with(0);
    const Cycles interrupt = run_with(20000); // ~100 us per request
    EXPECT_GT(interrupt, polled + polled / 10);
}

TEST(Experiment, IdealBeatsRealProtocols)
{
    const WorkloadFactory factory = [](SizeClass s) {
        return std::make_unique<FftWorkload>(s);
    };
    const Cycles seq = runSequentialBaseline(factory, SizeClass::Tiny);

    ExperimentConfig ideal;
    ideal.protocol = ProtocolKind::Ideal;
    ideal.numProcs = 4;
    const auto ri = runExperiment(factory, SizeClass::Tiny, ideal, seq);

    ExperimentConfig hlrc;
    hlrc.protocol = ProtocolKind::Hlrc;
    hlrc.numProcs = 4;
    const auto rh = runExperiment(factory, SizeClass::Tiny, hlrc, seq);

    EXPECT_TRUE(ri.verified);
    EXPECT_TRUE(rh.verified);
    EXPECT_GT(ri.speedup(), rh.speedup());
}

} // namespace
} // namespace swsm
