/**
 * @file
 * Protocol-level unit tests: HLRC diff/twin/notice machinery and SC
 * directory behaviour, observed through small targeted programs and
 * the protocols' event counters.
 */

#include <gtest/gtest.h>

#include "machine/cluster.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "proto/proto_params.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

MachineParams
machine(ProtocolKind kind, int procs, std::uint32_t block_bytes = 64)
{
    MachineParams mp;
    mp.numProcs = procs;
    mp.protocol = kind;
    mp.blockBytes = block_bytes;
    return mp;
}

// ---------------------------------------------------------------- HLRC

TEST(Hlrc, ReleaseFlushesDiffToHome)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    // One page homed at node 1, written by node 0 under a lock.
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 1);
    for (int i = 0; i < 512; ++i)
        a.init(c, i, 0);
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            t.acquire(lock);
            for (int i = 0; i < 10; ++i)
                a.put(t, i, 100 + i);
            t.release(lock);
        }
        t.barrier(bar);
    });
    // Non-home writer must have produced exactly one twin and one diff
    // with 10 changed 32-bit words (the written values 100..109 fit in
    // the low word of each 64-bit element; the zero high words compare
    // equal against the twin and drop out of the diff).
    const ProtoStats &s = c.protocol().stats();
    EXPECT_EQ(s.twinsCreated.value(), 1u);
    EXPECT_EQ(s.diffsCreated.value(), 1u);
    EXPECT_EQ(s.diffWordsWritten.value(), 10u);
    EXPECT_EQ(s.diffsApplied.value(), 1u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.peek(c, i), 100u + i);
}

TEST(Hlrc, HomeWritesNeedNoTwinOrDiff)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 0);
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            for (int i = 0; i < 100; ++i)
                a.put(t, i, i);
        }
        t.barrier(bar);
    });
    const ProtoStats &s = c.protocol().stats();
    EXPECT_EQ(s.twinsCreated.value(), 0u);
    EXPECT_EQ(s.diffsCreated.value(), 0u);
    EXPECT_EQ(a.peek(c, 50), 50u);
}

TEST(Hlrc, ReadFaultFetchesWholePageOnce)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 0); // one page
    for (int i = 0; i < 512; ++i)
        a.init(c, i, 7 * i);
    std::uint64_t sum = 0;
    c.run([&](Thread &t) {
        if (t.id() == 1) {
            for (int i = 0; i < 512; ++i)
                sum += a.get(t, i);
        }
        t.barrier(bar);
    });
    EXPECT_EQ(c.protocol().stats().pageFetches.value(), 1u);
    std::uint64_t expect = 0;
    for (int i = 0; i < 512; ++i)
        expect += 7u * i;
    EXPECT_EQ(sum, expect);
}

TEST(Hlrc, WriteNoticesInvalidateStaleCopies)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 0);
    a.init(c, 0, 1);
    std::uint64_t first = 0, second = 0;
    c.run([&](Thread &t) {
        if (t.id() == 1) {
            t.acquire(lock);
            first = a.get(t, 0); // caches the page
            t.release(lock);
        }
        t.barrier(bar);
        if (t.id() == 0) {
            t.acquire(lock);
            a.put(t, 0, 2);
            t.release(lock);
        }
        t.barrier(bar);
        if (t.id() == 1) {
            t.acquire(lock); // notices arrive with the barrier/lock
            second = a.get(t, 0);
            t.release(lock);
        }
        t.barrier(bar);
    });
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(second, 2u);
    EXPECT_GE(c.protocol().stats().invalidations.value(), 1u);
}

TEST(Hlrc, FalseSharingWritersMergeAtHome)
{
    // Two nodes write disjoint halves of the same page concurrently
    // (between the same barriers): the multiple-writer diffs must merge.
    Cluster c(machine(ProtocolKind::Hlrc, 3));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 2);
    for (int i = 0; i < 512; ++i)
        a.init(c, i, 0);
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            for (int i = 0; i < 256; ++i)
                a.put(t, i, 1000 + i);
        } else if (t.id() == 1) {
            for (int i = 256; i < 512; ++i)
                a.put(t, i, 2000 + i);
        }
        t.barrier(bar);
    });
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(a.peek(c, i), 1000u + i);
    for (int i = 256; i < 512; ++i)
        EXPECT_EQ(a.peek(c, i), 2000u + i);
    EXPECT_EQ(c.protocol().stats().diffsCreated.value(), 2u);
}

TEST(Hlrc, LockTokenCachesAtLastHolder)
{
    Cluster c(machine(ProtocolKind::Hlrc, 2));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    c.run([&](Thread &t) {
        if (t.id() == 1) {
            for (int i = 0; i < 10; ++i) {
                t.acquire(lock);
                t.compute(10);
                t.release(lock);
            }
        }
        t.barrier(bar);
    });
    // Only the first acquire goes remote; reacquisition hits the
    // cached token.
    EXPECT_EQ(c.protocol().stats().lockRequests.value(), 1u);
}

TEST(Hlrc, BarrierCarriesNoticesWithoutLocks)
{
    // Producer/consumer with only barriers: notices must still arrive.
    Cluster c(machine(ProtocolKind::Hlrc, 4));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 3);
    a.init(c, 0, 0);
    std::vector<std::uint64_t> seen(4, 0);
    c.run([&](Thread &t) {
        for (int round = 1; round <= 3; ++round) {
            if (t.id() == round % 4)
                a.put(t, 0, round);
            t.barrier(bar);
            seen[t.id()] = a.get(t, 0);
            t.barrier(bar);
        }
    });
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(seen[i], 3u);
}

TEST(Hlrc, ProtocolTimeRespondsToDiffCost)
{
    // The same program under O vs B protocol costs: protocol buckets
    // must shrink to (nearly) zero with idealized costs.
    auto run_with = [](const ProtoParams &pp) {
        MachineParams mp = machine(ProtocolKind::Hlrc, 2);
        mp.proto = pp;
        Cluster c(mp);
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> a =
            SharedArray<std::uint64_t>::homedAt(c, 512, 1);
        c.run([&](Thread &t) {
            for (int round = 0; round < 5; ++round) {
                if (t.id() == 0) {
                    t.acquire(lock);
                    for (int i = 0; i < 64; ++i)
                        a.put(t, i, round * 64 + i);
                    t.release(lock);
                }
                t.barrier(bar);
            }
        });
        Cycles proto = 0;
        for (const auto &buckets : c.stats().perProc) {
            for (int b = 0; b < numTimeBuckets; ++b)
                if (isProtoBucket(static_cast<TimeBucket>(b)))
                    proto += buckets[b];
        }
        return proto;
    };
    const Cycles original = run_with(ProtoParams::original());
    const Cycles best = run_with(ProtoParams::best());
    // The protocol buckets also hold the host send overheads of
    // protocol messages (a communication-layer cost), so they do not
    // reach zero at B; the protocol-operation share must still shrink
    // severalfold.
    EXPECT_GT(original, 3 * best);
}

// ------------------------------------------------------------------ SC

TEST(Sc, ReadSharingNeedsNoInvalidation)
{
    Cluster c(machine(ProtocolKind::Sc, 4));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 8, 0);
    a.init(c, 0, 42);
    c.run([&](Thread &t) {
        for (int round = 0; round < 3; ++round) {
            EXPECT_EQ(a.get(t, 0), 42u);
            t.barrier(bar);
        }
    });
    EXPECT_EQ(c.protocol().stats().invalidations.value(), 0u);
}

TEST(Sc, WriteInvalidatesAllSharers)
{
    Cluster c(machine(ProtocolKind::Sc, 4));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 8, 0);
    a.init(c, 0, 1);
    std::vector<std::uint64_t> seen(4);
    c.run([&](Thread &t) {
        a.get(t, 0); // everyone becomes a sharer
        t.barrier(bar);
        if (t.id() == 3)
            a.put(t, 0, 2);
        t.barrier(bar);
        seen[t.id()] = a.get(t, 0);
        t.barrier(bar);
    });
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(seen[i], 2u);
    // Nodes 1 and 2 were invalidated (node 0 is the home and node 3
    // the writer).
    EXPECT_GE(c.protocol().stats().invalidations.value(), 2u);
}

TEST(Sc, OwnershipMigratesThroughRecall)
{
    Cluster c(machine(ProtocolKind::Sc, 3));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 8, 0);
    a.init(c, 0, 0);
    c.run([&](Thread &t) {
        for (int round = 0; round < 6; ++round) {
            if (round % 3 == t.id())
                a.put(t, 0, a.get(t, 0) + 1);
            t.barrier(bar);
        }
    });
    EXPECT_EQ(a.peek(c, 0), 6u);
}

TEST(Sc, GranularityControlsFetchCount)
{
    // Reading 4 KB sequentially: at 64 B granularity ~64 fetches, at
    // 4 KB granularity exactly 1.
    auto fetches = [](std::uint32_t block_bytes) {
        Cluster c(machine(ProtocolKind::Sc, 2, block_bytes));
        const BarrierId bar = c.allocBarrier();
        SharedArray<std::uint64_t> a =
            SharedArray<std::uint64_t>::homedAt(c, 512, 0);
        c.run([&](Thread &t) {
            if (t.id() == 1) {
                for (int i = 0; i < 512; ++i)
                    a.get(t, i);
            }
            t.barrier(bar);
        });
        return c.protocol().stats().pageFetches.value();
    };
    EXPECT_EQ(fetches(4096), 1u);
    EXPECT_EQ(fetches(64), 64u);
}

TEST(Sc, HomeFastPathAvoidsMessages)
{
    Cluster c(machine(ProtocolKind::Sc, 2));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 512, 0);
    c.run([&](Thread &t) {
        if (t.id() == 0) {
            for (int i = 0; i < 512; ++i)
                a.put(t, i, i);
        }
        t.barrier(bar);
    });
    // Home writes with an idle directory take no protocol messages;
    // only the barrier communicates.
    EXPECT_EQ(c.protocol().stats().pageFetches.value(), 0u);
}

TEST(Sc, StoreBoundToGrantSurvivesStealing)
{
    // Heavy write contention on one block: every increment must land
    // even with grants being stolen immediately (install-time stores).
    Cluster c(machine(ProtocolKind::Sc, 8));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 8, 0);
    a.init(c, 0, 0);
    c.run([&](Thread &t) {
        for (int i = 0; i < 20; ++i) {
            t.acquire(lock);
            a.put(t, 0, a.get(t, 0) + 1);
            t.release(lock);
        }
        t.barrier(bar);
    });
    EXPECT_EQ(a.peek(c, 0), 160u);
}

// ------------------------------------------------- cross-protocol P

struct RandomProgramCase
{
    ProtocolKind kind;
    int procs;
    std::uint64_t seed;
};

void
PrintTo(const RandomProgramCase &c, std::ostream *os)
{
    *os << protocolKindName(c.kind) << "/p" << c.procs << "/s" << c.seed;
}

/**
 * Property test: a randomized data-race-free program (lock-protected
 * random read-modify-writes plus barrier-separated phases) must leave
 * memory in a state equal to replaying the same logical operations
 * sequentially — on every protocol, processor count and seed.
 */
class RandomDrfProgram
    : public ::testing::TestWithParam<RandomProgramCase>
{
};

TEST_P(RandomDrfProgram, MatchesSequentialOracle)
{
    const auto &param = GetParam();
    constexpr int cells = 64;
    constexpr int rounds = 3;
    constexpr int ops_per_round = 25;

    MachineParams mp = machine(param.kind, param.procs);
    mp.seed = param.seed;
    Cluster c(mp);
    const BarrierId bar = c.allocBarrier();
    std::vector<LockId> locks(8);
    for (auto &l : locks)
        l = c.allocLock();
    SharedArray<std::uint64_t> a(c, cells);
    for (int i = 0; i < cells; ++i)
        a.init(c, i, 0);

    // Pre-generate each thread's operation list so the oracle can
    // replay it. Every cell is protected by locks[cell % 8].
    struct Op
    {
        int cell;
        std::uint64_t delta;
    };
    std::vector<std::vector<std::vector<Op>>> plan(
        rounds,
        std::vector<std::vector<Op>>(param.procs));
    Rng plan_rng(param.seed * 77 + 5);
    for (int r = 0; r < rounds; ++r) {
        for (int p = 0; p < param.procs; ++p) {
            for (int o = 0; o < ops_per_round; ++o) {
                plan[r][p].push_back(
                    Op{static_cast<int>(plan_rng.nextBounded(cells)),
                       plan_rng.nextBounded(1000)});
            }
        }
    }

    c.run([&](Thread &t) {
        for (int r = 0; r < rounds; ++r) {
            for (const Op &op : plan[r][t.id()]) {
                t.acquire(locks[op.cell % 8]);
                a.put(t, op.cell, a.get(t, op.cell) + op.delta);
                t.release(locks[op.cell % 8]);
            }
            t.barrier(bar);
        }
    });

    std::vector<std::uint64_t> oracle(cells, 0);
    for (int r = 0; r < rounds; ++r)
        for (int p = 0; p < param.procs; ++p)
            for (const Op &op : plan[r][p])
                oracle[op.cell] += op.delta;
    for (int i = 0; i < cells; ++i)
        EXPECT_EQ(a.peek(c, i), oracle[i]) << "cell " << i;
}

std::vector<RandomProgramCase>
randomCases()
{
    std::vector<RandomProgramCase> cases;
    for (auto kind :
         {ProtocolKind::Hlrc, ProtocolKind::Sc, ProtocolKind::Ideal}) {
        for (int procs : {2, 5, 16}) {
            for (std::uint64_t seed : {1ull, 2ull, 3ull})
                cases.push_back({kind, procs, seed});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDrfProgram, ::testing::ValuesIn(randomCases()),
    [](const ::testing::TestParamInfo<RandomProgramCase> &info) {
        return std::string(protocolKindName(info.param.kind)) + "_p" +
               std::to_string(info.param.procs) + "_s" +
               std::to_string(info.param.seed);
    });

// --------------------------------------------------------------- Ideal

TEST(Ideal, SharedAccessesMoveRealBytesWithNoMessages)
{
    Cluster c(machine(ProtocolKind::Ideal, 4));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 256, 0);
    std::uint64_t sums[4] = {};
    c.run([&](Thread &t) {
        // Each thread publishes a quarter; everyone sums after the
        // barrier. The ideal protocol is a plain memcpy to the single
        // backing store, so no protocol or network traffic may appear.
        for (int i = t.id() * 64; i < (t.id() + 1) * 64; ++i)
            a.put(t, i, 3u * i + 1);
        t.barrier(bar);
        for (int i = 0; i < 256; ++i)
            sums[t.id()] += a.get(t, i);
    });
    std::uint64_t expect = 0;
    for (int i = 0; i < 256; ++i)
        expect += 3u * i + 1;
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(sums[p], expect) << "thread " << p;
    const ProtoStats &s = c.protocol().stats();
    EXPECT_EQ(s.protoMsgs.value(), 0u);
    EXPECT_EQ(s.readFaults.value(), 0u);
    EXPECT_EQ(s.writeFaults.value(), 0u);
    EXPECT_EQ(c.stats().netMessages, 0u);
}

TEST(Ideal, LockMutualExclusionCountsExactly)
{
    constexpr int procs = 4, iters = 25;
    Cluster c(machine(ProtocolKind::Ideal, procs));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> counter =
        SharedArray<std::uint64_t>::homedAt(c, 1, 0);
    counter.init(c, 0, 0);
    c.run([&](Thread &t) {
        for (int i = 0; i < iters; ++i) {
            t.acquire(lock);
            counter.put(t, 0, counter.get(t, 0) + 1);
            t.release(lock);
            t.compute(10 + t.rng().nextBounded(50));
        }
        t.barrier(bar);
    });
    EXPECT_EQ(counter.peek(c, 0),
              static_cast<std::uint64_t>(procs) * iters);
    const ProtoStats &s = c.protocol().stats();
    EXPECT_EQ(s.lockRequests.value(),
              static_cast<std::uint64_t>(procs) * iters);
    EXPECT_EQ(c.stats().netMessages, 0u);
}

TEST(Ideal, BarrierEpisodesSeparatePhases)
{
    constexpr int procs = 3, phases = 5;
    Cluster c(machine(ProtocolKind::Ideal, procs));
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> slots =
        SharedArray<std::uint64_t>::homedAt(c, procs, 0);
    std::string error;
    c.run([&](Thread &t) {
        for (int ph = 0; ph < phases; ++ph) {
            slots.put(t, t.id(), 100u * ph + t.id());
            t.barrier(bar);
            for (int j = 0; j < procs; ++j) {
                if (slots.get(t, j) != 100u * ph + j && error.empty())
                    error = "stale slot read after barrier";
            }
            t.barrier(bar);
        }
    });
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(c.protocol().stats().barrierEpisodes.value(),
              static_cast<std::uint64_t>(2 * phases));
}

TEST(Ideal, UniprocessorRunsSequentially)
{
    // The 1-proc Ideal machine is the sequential baseline: every
    // operation must work with no peers and leave clean final state.
    Cluster c(machine(ProtocolKind::Ideal, 1));
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint64_t> a =
        SharedArray<std::uint64_t>::homedAt(c, 16, 0);
    c.run([&](Thread &t) {
        t.acquire(lock);
        for (int i = 0; i < 16; ++i)
            a.put(t, i, 2u * i);
        t.release(lock);
        t.barrier(bar);
    });
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.peek(c, i), 2u * i);
    EXPECT_EQ(c.stats().netMessages, 0u);
}

} // namespace
} // namespace swsm
