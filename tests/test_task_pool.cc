/**
 * @file
 * Unit tests for the parallel sweep engine's task graph executor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/task_pool.hh"

namespace swsm
{
namespace
{

TEST(TaskPool, SerialModeRunsInSubmissionOrder)
{
    TaskPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(TaskPool, EmptyPoolRuns)
{
    TaskPool pool(4);
    pool.run();
    EXPECT_EQ(pool.size(), 0u);
}

TEST(TaskPool, AllTasksExecuteExactlyOnce)
{
    TaskPool pool(4);
    constexpr int n = 200;
    std::atomic<int> runs{0};
    std::mutex mu;
    std::set<int> seen;
    for (int i = 0; i < n; ++i)
        pool.submit([&, i] {
            runs.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            seen.insert(i);
        });
    pool.run();
    EXPECT_EQ(runs.load(), n);
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

TEST(TaskPool, DependenciesRunBeforeDependents)
{
    TaskPool pool(4);
    std::atomic<bool> base_done{false};
    std::vector<TaskPool::TaskId> deps;
    deps.push_back(pool.submit([&] { base_done = true; }));
    std::atomic<int> violations{0};
    for (int i = 0; i < 32; ++i)
        pool.submit(
            [&] {
                if (!base_done.load())
                    violations.fetch_add(1);
            },
            deps);
    pool.run();
    EXPECT_EQ(violations.load(), 0);
}

TEST(TaskPool, ChainedDependenciesOrder)
{
    TaskPool pool(4);
    std::vector<int> order;
    std::mutex mu;
    auto record = [&](int v) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(v);
    };
    const auto a = pool.submit([&] { record(0); });
    const auto b = pool.submit([&] { record(1); }, {a});
    pool.submit([&] { record(2); }, {a, b});
    pool.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskPool, FirstExceptionRethrownAfterDrain)
{
    TaskPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([] { throw std::runtime_error("boom"); });
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.run(), std::runtime_error);
    // Other tasks still completed despite the failure.
    EXPECT_EQ(ran.load(), 2);
}

TEST(TaskPool, SerialModeExceptionPropagates)
{
    TaskPool pool(1);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::logic_error("first"); });
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.run(), std::logic_error);
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPool, ManyWorkersFewTasks)
{
    TaskPool pool(16);
    std::atomic<int> runs{0};
    pool.submit([&] { runs.fetch_add(1); });
    pool.run();
    EXPECT_EQ(runs.load(), 1);
}

TEST(TaskPool, DiamondDependencyGraph)
{
    // Diamond: a before b and c, both before d.
    TaskPool pool(4);
    std::atomic<int> stage{0};
    const auto a = pool.submit([&] { EXPECT_EQ(stage.fetch_add(1), 0); });
    const auto b = pool.submit([&] { stage.fetch_add(1); }, {a});
    const auto c = pool.submit([&] { stage.fetch_add(1); }, {a});
    pool.submit([&] { EXPECT_EQ(stage.load(), 3); }, {b, c});
    pool.run();
    EXPECT_EQ(stage.load(), 3);
}

} // namespace
} // namespace swsm
