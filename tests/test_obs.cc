/**
 * @file
 * Observability layer tests: JSON writer escaping, metrics registry,
 * BENCH/trace round trips through a minimal JSON parser, registry
 * totals against the legacy RunStats counters, trace determinism
 * across sweep worker counts, and option parsing.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app_registry.hh"
#include "harness/bench_report.hh"
#include "harness/parallel_sweep.hh"
#include "obs/json_writer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace swsm
{
namespace
{

// -----------------------------------------------------------------
// A minimal recursive-descent JSON parser, enough to round-trip what
// the writer emits (objects, arrays, strings with every escape the
// writer produces, numbers, booleans, null).
// -----------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key " + key);
        return it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing data");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    next()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (next()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    void
    parseLiteral(std::string_view lit)
    {
        if (s.substr(pos, lit.size()) != lit)
            fail("bad literal");
        pos += lit.size();
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (s[pos] == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            ++pos;
        if (pos == start)
            fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(std::string(s.substr(start, pos - start)));
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (next() != '"') {
            char c = s[pos++];
            if (c != '\\') {
                v.string.push_back(c);
                continue;
            }
            switch (next()) {
              case '"':
                v.string.push_back('"');
                break;
              case '\\':
                v.string.push_back('\\');
                break;
              case '/':
                v.string.push_back('/');
                break;
              case 'n':
                v.string.push_back('\n');
                break;
              case 't':
                v.string.push_back('\t');
                break;
              case 'r':
                v.string.push_back('\r');
                break;
              case 'b':
                v.string.push_back('\b');
                break;
              case 'f':
                v.string.push_back('\f');
                break;
              case 'u': {
                ++pos;
                if (pos + 4 > s.size())
                    fail("bad \\u escape");
                const unsigned code = static_cast<unsigned>(std::stoul(
                    std::string(s.substr(pos, 4)), nullptr, 16));
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported by test");
                v.string.push_back(static_cast<char>(code));
                pos += 3; // the ++pos below eats the 4th digit
                break;
              }
              default:
                fail("bad escape");
            }
            ++pos;
        }
        ++pos; // closing quote
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return v;
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return v;
        while (true) {
            skipWs();
            JsonValue key = parseString();
            skipWs();
            expect(':');
            v.object.emplace(key.string, parseValue());
            skipWs();
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    std::string_view s;
    std::size_t pos = 0;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempDir()
{
    return ::testing::TempDir();
}

// -----------------------------------------------------------------
// JsonWriter
// -----------------------------------------------------------------

TEST(JsonWriter, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
    EXPECT_EQ(JsonWriter::escape("a\rb"), "a\\rb");
    EXPECT_EQ(JsonWriter::escape("a\bb"), "a\\bb");
    EXPECT_EQ(JsonWriter::escape("a\fb"), "a\\fb");
    EXPECT_EQ(JsonWriter::escape(std::string_view("a\x01"
                                                  "b",
                                                  3)),
              "a\\u0001b");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x1f", 1)), "\\u001f");
}

TEST(JsonWriter, NothingIsSilentlyDropped)
{
    // The old fprintf emitter dropped control characters entirely;
    // every input byte must survive a round trip now.
    std::string nasty;
    for (int c = 1; c < 0x21; ++c)
        nasty.push_back(static_cast<char>(c));
    nasty += "\"\\end";
    JsonWriter w;
    w.beginObject();
    w.member("k", std::string_view(nasty));
    w.endObject();
    const JsonValue v = JsonParser(w.str()).parse();
    EXPECT_EQ(v.at("k").string, nasty);
}

TEST(JsonWriter, StructureAndTypes)
{
    JsonWriter w(2);
    w.beginObject();
    w.member("u64", std::uint64_t(1) << 53);
    w.member("neg", std::int64_t(-7));
    w.member("flag", true);
    w.member("pi", 3.25);
    w.key("list");
    w.beginArray();
    w.value("x");
    w.nullValue();
    w.endArray();
    w.endObject();

    const JsonValue v = JsonParser(w.str()).parse();
    EXPECT_EQ(v.at("u64").number, 9007199254740992.0);
    EXPECT_EQ(v.at("neg").number, -7.0);
    EXPECT_TRUE(v.at("flag").boolean);
    EXPECT_EQ(v.at("pi").number, 3.25);
    ASSERT_EQ(v.at("list").array.size(), 2u);
    EXPECT_EQ(v.at("list").array[0].string, "x");
    EXPECT_EQ(v.at("list").array[1].kind, JsonValue::Kind::Null);
}

// -----------------------------------------------------------------
// Metrics registry
// -----------------------------------------------------------------

TEST(MetricsRegistry, SnapshotSortsAndReadsProviders)
{
    MetricsRegistry reg;
    std::uint64_t live = 1;
    reg.addCounter("b.two", [&live] { return live * 2; });
    reg.addCounter("a.one", [&live] { return live; });
    reg.addGauge("g", [] { return 0.5; });
    reg.addHistogram("h", [] {
        HistogramData h;
        h.total = 3;
        h.buckets = {1, 2, 0, 0};
        return h;
    });

    live = 21;
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a.one");
    EXPECT_EQ(snap.counter("a.one"), 21u);
    EXPECT_EQ(snap.counter("b.two"), 42u);
    EXPECT_EQ(snap.counter("missing"), 0u);
    EXPECT_EQ(snap.gauge("g"), 0.5);
    ASSERT_NE(snap.histogram("h"), nullptr);
    EXPECT_EQ(snap.histogram("h")->buckets.size(), 2u) << "trailing "
                                                          "zeros trimmed";
    EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsRegistry, DuplicateNamesThrow)
{
    MetricsRegistry reg;
    reg.addCounter("dup", [] { return 0u; });
    EXPECT_THROW(reg.addCounter("dup", [] { return 1u; }),
                 std::logic_error);
    EXPECT_THROW(reg.addGauge("dup", [] { return 0.0; }),
                 std::logic_error);
}

// -----------------------------------------------------------------
// Registry totals vs the legacy RunStats counters
// -----------------------------------------------------------------

TEST(RegistryVsLegacy, CountersMatchRunStats)
{
    const AppInfo &app = findApp("lu");
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Hlrc;
    cfg.numProcs = 4;
    const ExperimentResult r =
        runExperiment(app.factory, SizeClass::Tiny, cfg, 0);
    ASSERT_TRUE(r.verified);

    const MetricsSnapshot &m = r.stats.metrics;
    EXPECT_FALSE(m.empty());
    EXPECT_EQ(m.counter("proto.read_faults"), r.stats.readFaults);
    EXPECT_EQ(m.counter("proto.write_faults"), r.stats.writeFaults);
    EXPECT_EQ(m.counter("proto.page_fetches"), r.stats.pageFetches);
    EXPECT_EQ(m.counter("proto.diffs_created"), r.stats.diffsCreated);
    EXPECT_EQ(m.counter("proto.invalidations"), r.stats.invalidations);
    EXPECT_EQ(m.counter("proto.lock_requests"), r.stats.lockRequests);
    EXPECT_EQ(m.counter("proto.handlers_run"), r.stats.handlersRun);
    EXPECT_EQ(m.counter("net.messages"), r.stats.netMessages);
    EXPECT_EQ(m.counter("net.bytes"), r.stats.netBytes);
    EXPECT_EQ(m.counter("sim.total_cycles"), r.stats.totalCycles);

    // Figure 4 time buckets: registry values equal the per-proc sums.
    std::uint64_t all = 0;
    for (int b = 0; b < numTimeBuckets; ++b) {
        const auto bucket = static_cast<TimeBucket>(b);
        const std::string name =
            std::string("time.") + timeBucketName(bucket);
        EXPECT_EQ(m.counter(name), r.stats.sumBucket(bucket)) << name;
        all += r.stats.sumBucket(bucket);
    }
    EXPECT_EQ(m.counter("time.total"), all);

    // Kernel stats exist and are self-consistent.
    EXPECT_GT(m.counter("sim.events_run"), 0u);
    EXPECT_GE(m.counter("sim.events_scheduled"),
              m.counter("sim.events_run"));
    EXPECT_GT(m.counter("sim.max_pending_events"), 0u);

    // Resource histograms: one occupancy sample per use.
    const HistogramData *occ = m.histogram("net.ni.occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->total, m.counter("net.ni.uses"));
}

// -----------------------------------------------------------------
// BenchReport round trip (nasty strings included)
// -----------------------------------------------------------------

TEST(BenchReport, RoundTripsThroughParser)
{
    const std::string dir = tempDir();
    ASSERT_EQ(setenv("SWSM_BENCH_DIR", dir.c_str(), 1), 0);

    ExperimentResult r;
    r.workload = "name \"quoted\" back\\slash\nnewline\ttab";
    r.protocol = "hlrc";
    r.config = "AO";
    r.parallelCycles = 123456789;
    r.sequentialCycles = 987654321;
    r.verified = true;
    r.hostSeconds = 0.25;
    r.stats.metrics.counters.emplace_back("proto.read_faults", 7);
    HistogramData h;
    h.total = 2;
    h.buckets = {0, 2};
    r.stats.metrics.histograms.emplace_back("net.ni.occupancy", h);

    BenchReport report("obs_test");
    report.addBaseline("app\x01with control", 42);
    report.add("key/with\"specials\\", r);
    ASSERT_TRUE(report.write());
    unsetenv("SWSM_BENCH_DIR");

    const std::string text = readFile(dir + "/BENCH_obs_test.json");
    const JsonValue doc = JsonParser(text).parse();
    EXPECT_EQ(doc.at("bench").string, "obs_test");
    ASSERT_EQ(doc.at("baselines").array.size(), 1u);
    EXPECT_EQ(doc.at("baselines").array[0].at("app").string,
              "app\x01with control");
    ASSERT_EQ(doc.at("experiments").array.size(), 1u);
    const JsonValue &e = doc.at("experiments").array[0];
    EXPECT_EQ(e.at("key").string, "key/with\"specials\\");
    EXPECT_EQ(e.at("workload").string, r.workload);
    EXPECT_EQ(e.at("simCycles").number, 123456789.0);
    EXPECT_TRUE(e.at("verified").boolean);
    EXPECT_EQ(
        e.at("metrics").at("counters").at("proto.read_faults").number,
        7.0);
    const JsonValue &hist =
        e.at("metrics").at("histograms").at("net.ni.occupancy");
    EXPECT_EQ(hist.at("total").number, 2.0);
    ASSERT_EQ(hist.at("buckets").array.size(), 2u);
    EXPECT_EQ(hist.at("buckets").array[1].number, 2.0);

    std::remove((dir + "/BENCH_obs_test.json").c_str());
}

// -----------------------------------------------------------------
// Trace output
// -----------------------------------------------------------------

TEST(Trace, ChromeTraceIsValidJsonWithExpectedEvents)
{
    const AppInfo &app = findApp("lu");
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Hlrc;
    cfg.numProcs = 4;
    cfg.trace = true;
    const ExperimentResult r =
        runExperiment(app.factory, SizeClass::Tiny, cfg, 0);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_FALSE(r.trace->events.empty());

    const std::string path = tempDir() + "/obs_trace_test.json";
    ASSERT_TRUE(writeChromeTrace(path, "lu/hlrc/AO", *r.trace));
    const JsonValue doc = JsonParser(readFile(path)).parse();
    const std::vector<JsonValue> &events = doc.at("traceEvents").array;
    ASSERT_GT(events.size(), 1u);
    EXPECT_EQ(events[0].at("ph").string, "M");
    EXPECT_EQ(events[0].at("args").at("name").string, "lu/hlrc/AO");

    bool saw_net = false, saw_proto = false, saw_wait = false;
    for (std::size_t i = 1; i < events.size(); ++i) {
        const JsonValue &e = events[i];
        const std::string cat = e.at("cat").string;
        saw_net |= cat == "net";
        saw_proto |= cat == "proto";
        saw_wait |= cat == "wait";
        const std::string ph = e.at("ph").string;
        EXPECT_TRUE(ph == "X" || ph == "i") << ph;
        EXPECT_GE(e.at("tid").number, 0.0);
        EXPECT_LT(e.at("tid").number, 4.0);
    }
    EXPECT_TRUE(saw_net);
    EXPECT_TRUE(saw_proto);
    EXPECT_TRUE(saw_wait);
    std::remove(path.c_str());
}

TEST(Trace, DisabledByDefault)
{
    const AppInfo &app = findApp("lu");
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::Hlrc;
    cfg.numProcs = 4;
    const ExperimentResult r =
        runExperiment(app.factory, SizeClass::Tiny, cfg, 0);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_TRUE(r.trace->events.empty());
}

TEST(Trace, SerialAndParallelSweepsProduceIdenticalBytes)
{
    const AppInfo &lu = findApp("lu");
    auto runSweep = [&](int jobs) {
        SweepOptions opts;
        opts.size = SizeClass::Tiny;
        opts.numProcs = 4;
        opts.jobs = jobs;
        opts.tracePath = "unused"; // turns tracing on in the runner
        ParallelSweepRunner runner(opts);
        runner.plan(lu, ProtocolKind::Hlrc, 'A', 'O');
        runner.plan(lu, ProtocolKind::Sc, 'A', 'O');
        runner.runPlanned();
        std::vector<TraceProcess> processes;
        std::vector<std::shared_ptr<const TraceBuffer>> keep;
        runner.forEachResult(
            [&](const std::string &key, const ExperimentResult &r) {
                keep.push_back(r.trace);
                processes.push_back(TraceProcess{key, r.trace.get()});
            });
        const std::string path = tempDir() + "/obs_trace_j" +
            std::to_string(jobs) + ".json";
        EXPECT_TRUE(writeChromeTrace(path, processes));
        std::string text = readFile(path);
        std::remove(path.c_str());
        return text;
    };

    const std::string serial = runSweep(1);
    const std::string parallel = runSweep(2);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Still valid JSON with one process per experiment.
    const JsonValue doc = JsonParser(serial).parse();
    int metadata = 0;
    for (const JsonValue &e : doc.at("traceEvents").array)
        metadata += e.at("ph").string == "M";
    EXPECT_EQ(metadata, 2);
}

// -----------------------------------------------------------------
// Option parsing
// -----------------------------------------------------------------

TEST(ParseBoundedInt, RejectsGarbageAndClamps)
{
    int out = -1;
    EXPECT_FALSE(parseBoundedInt("", 1, 100, out));
    EXPECT_FALSE(parseBoundedInt("abc", 1, 100, out));
    EXPECT_FALSE(parseBoundedInt("12x", 1, 100, out));
    EXPECT_FALSE(parseBoundedInt("0", 1, 100, out));
    EXPECT_FALSE(parseBoundedInt("-3", 1, 100, out));
    EXPECT_FALSE(parseBoundedInt(" 4", 1, 100, out));
    EXPECT_EQ(out, -1) << "failed parses must not touch the output";
    EXPECT_TRUE(parseBoundedInt("4", 1, 100, out));
    EXPECT_EQ(out, 4);
    EXPECT_TRUE(parseBoundedInt("100000", 1, 100, out));
    EXPECT_EQ(out, 100) << "values above max clamp";
}

TEST(SweepOptionsParse, RejectsInvalidNumbers)
{
    auto tryParse = [](std::vector<std::string> args,
                       SweepOptions *out = nullptr) {
        std::vector<char *> argv;
        static char prog[] = "bench";
        argv.push_back(prog);
        for (std::string &a : args)
            argv.push_back(a.data());
        SweepOptions opts;
        const bool ok =
            opts.parse(static_cast<int>(argv.size()), argv.data());
        if (out)
            *out = opts;
        return ok;
    };

    EXPECT_FALSE(tryParse({"--jobs=abc"}));
    EXPECT_FALSE(tryParse({"--jobs=0"}));
    EXPECT_FALSE(tryParse({"--jobs=-2"}));
    EXPECT_FALSE(tryParse({"--procs=-3"}));
    EXPECT_FALSE(tryParse({"--procs=16banana"}));
    EXPECT_FALSE(tryParse({"--trace="}));
    EXPECT_FALSE(tryParse({"--bogus"}));

    SweepOptions opts;
    EXPECT_TRUE(tryParse(
        {"--quick", "--procs=8", "--jobs=3", "--trace=t.json"}, &opts));
    EXPECT_EQ(opts.size, SizeClass::Tiny);
    EXPECT_EQ(opts.numProcs, 8);
    EXPECT_EQ(opts.jobs, 3);
    EXPECT_EQ(opts.tracePath, "t.json");
}

} // namespace
} // namespace swsm
