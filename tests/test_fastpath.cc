/**
 * @file
 * Fast-path correctness: the per-thread access TLB, the page-buffer
 * pool and the chunked diff scan, plus the property the whole overhaul
 * hangs on — a simulation runs bit-identically with the fast path on
 * and off (same cycles, same protocol and network counters), across
 * protocols and geometries.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/cluster.hh"
#include "machine/fast_path.hh"
#include "machine/shared_array.hh"
#include "machine/thread.hh"
#include "proto/hlrc/diff.hh"
#include "proto/page_buffer_pool.hh"
#include "sim/log.hh"

namespace swsm
{
namespace
{

// ------------------------------------------------------------ FastPath

TEST(FastPath, MissesUntilInstalledThenHits)
{
    FastPath fp;
    fp.configure(12, false);
    std::uint8_t page[4096] = {};
    EXPECT_EQ(fp.lookup(0x1000, 4, false), nullptr);
    fp.install(0x1000, 0x2000, page, false);
    FastPath::Entry *e = fp.lookup(0x1000, 4, false);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->data, page);
    EXPECT_EQ(fp.hits(), 1u);
    EXPECT_EQ(fp.misses(), 1u);
    EXPECT_EQ(fp.installs(), 1u);
}

TEST(FastPath, WritableGatingAndLimits)
{
    FastPath fp;
    fp.configure(12, false);
    std::uint8_t page[4096] = {};
    fp.install(0x1000, 0x2000, page, false);
    // Read anywhere in range, but never write through a read-only
    // entry, and never let an access cross the entry's limit.
    EXPECT_NE(fp.lookup(0x1ffc, 4, false), nullptr);
    EXPECT_EQ(fp.lookup(0x1000, 4, true), nullptr);
    EXPECT_EQ(fp.lookup(0x1ffe, 4, false), nullptr);
    EXPECT_EQ(fp.lookup(0x0fff, 4, false), nullptr);
    fp.install(0x1000, 0x2000, page, true);
    EXPECT_NE(fp.lookup(0x1000, 4, true), nullptr);
}

TEST(FastPath, SlotCollisionEvicts)
{
    FastPath fp;
    fp.configure(12, false);
    std::uint8_t a[4096] = {}, b[4096] = {};
    // Pages 0 and numSlots map to the same direct-mapped slot.
    const GlobalAddr second = FastPath::numSlots * GlobalAddr{4096};
    fp.install(0, 4096, a, false);
    fp.install(second, second + 4096, b, false);
    EXPECT_EQ(fp.lookup(0, 4, false), nullptr);
    EXPECT_NE(fp.lookup(second, 4, false), nullptr);
}

TEST(FastPath, InvalidateRangeDropsOverlappingEntries)
{
    FastPath fp;
    fp.configure(12, false);
    std::uint8_t a[4096] = {}, b[4096] = {};
    fp.install(0x1000, 0x2000, a, false);
    fp.install(0x3000, 0x4000, b, false);
    fp.invalidateRange(0x1000, 0x2000);
    EXPECT_EQ(fp.lookup(0x1000, 4, false), nullptr);
    EXPECT_NE(fp.lookup(0x3000, 4, false), nullptr);
    EXPECT_EQ(fp.invalidations(), 1u);
    fp.invalidateAll();
    EXPECT_EQ(fp.lookup(0x3000, 4, false), nullptr);
}

TEST(FastPath, GlobalEntryCoversEverySlot)
{
    FastPath fp;
    fp.configure(12, true);
    std::vector<std::uint8_t> store(1 << 21);
    fp.installGlobal(0, store.size(), store.data(), true);
    // Addresses in pages that map to different slots all hit, and a
    // range lookup sees the full extent as one chunk.
    FastPath::Entry *e = fp.lookup(123 * 4096 + 5, 1, true);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->base, 0u);
    EXPECT_EQ(e->limit, store.size());
    EXPECT_NE(fp.lookup(500 * 4096, 8, false), nullptr);
}

TEST(FastPath, DirtyBitsMarksExactChunkSpan)
{
    // 64-byte chunks (shift 6): a 4-byte write in chunk 2 marks only
    // bit 2; a write straddling chunks 1..3 marks bits 1, 2 and 3.
    EXPECT_EQ(FastPath::dirtyBits(130, 4, 6), std::uint64_t{1} << 2);
    EXPECT_EQ(FastPath::dirtyBits(64, 129, 6), std::uint64_t{0b1110});
    EXPECT_EQ(FastPath::dirtyBits(0, 1, 6), std::uint64_t{1});
    // Whole-page write marks all 64 chunks.
    EXPECT_EQ(FastPath::dirtyBits(0, 4096, 6), ~std::uint64_t{0});
}

TEST(FastPath, WritesThroughEntryFeedTheDirtyMask)
{
    FastPath fp;
    fp.configure(12, false);
    std::uint8_t page[4096] = {};
    std::uint64_t mask = 0;
    fp.install(0x1000, 0x2000, page, true, &mask, 6);
    FastPath::Entry *e = fp.lookup(0x1000 + 200, 4, true);
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(e->dirtyMask, &mask);
    *e->dirtyMask |= FastPath::dirtyBits(200, 4, e->chunkShift);
    EXPECT_EQ(mask, std::uint64_t{1} << 3);
}

// ----------------------------------------------------- PageBufferPool

TEST(PageBufferPool, ReusesReleasedPageBuffers)
{
    PageBufferPool pool;
    PageBufferPool::Bytes b = pool.acquirePage();
    b.resize(4096);
    const std::uint8_t *heap = b.data();
    pool.releasePage(std::move(b));
    EXPECT_EQ(pool.freePages(), 1u);
    PageBufferPool::Bytes b2 = pool.acquirePage();
    EXPECT_TRUE(b2.empty());
    EXPECT_GE(b2.capacity(), 4096u);
    b2.resize(4096);
    EXPECT_EQ(b2.data(), heap); // same heap buffer came back
    EXPECT_EQ(pool.pageAllocs(), 1u);
    EXPECT_EQ(pool.pageReuses(), 1u);
}

TEST(PageBufferPool, ReusesReleasedWordVectors)
{
    PageBufferPool pool;
    PageBufferPool::DiffWords w = pool.acquireWords();
    w.emplace_back(1, 2);
    pool.releaseWords(std::move(w));
    PageBufferPool::DiffWords w2 = pool.acquireWords();
    EXPECT_TRUE(w2.empty());
    EXPECT_GE(w2.capacity(), 1u);
    EXPECT_EQ(pool.wordAllocs(), 1u);
    EXPECT_EQ(pool.wordReuses(), 1u);
    EXPECT_EQ(pool.freeWordVectors(), 0u);
}

// ------------------------------------------------------- Diff kernels

TEST(DiffScan, ChunkedMatchesFullScanOnRandomPages)
{
    const std::uint32_t page_bytes = 4096;
    const std::uint32_t shift = hlrcdiff::chunkShift(page_bytes);
    ASSERT_EQ(shift, 6u);
    std::vector<std::uint8_t> twin(page_bytes), cur(page_bytes);
    std::uint64_t lcg = 88172645463325252ULL;
    auto next = [&lcg] {
        lcg ^= lcg << 13;
        lcg ^= lcg >> 7;
        lcg ^= lcg << 17;
        return lcg;
    };
    for (int trial = 0; trial < 50; ++trial) {
        for (auto &byte : twin)
            byte = static_cast<std::uint8_t>(next());
        cur = twin;
        // Flip a few words; mark exactly the chunks they fall in.
        std::uint64_t dirty = 0;
        const int flips = static_cast<int>(next() % 20);
        for (int f = 0; f < flips; ++f) {
            const std::uint32_t off =
                static_cast<std::uint32_t>(next() % (page_bytes / 4)) * 4;
            cur[off] ^= 0xff;
            dirty |= FastPath::dirtyBits(off, 4, shift);
        }
        hlrcdiff::DiffWords full, chunked;
        hlrcdiff::scanFull(cur.data(), twin.data(), page_bytes, full);
        hlrcdiff::scanChunks(cur.data(), twin.data(), page_bytes, shift,
                             dirty, chunked);
        EXPECT_EQ(full, chunked) << "trial " << trial;
        EXPECT_TRUE(hlrcdiff::cleanChunksMatch(
            cur.data(), twin.data(), page_bytes, shift, dirty));
    }
}

TEST(DiffScan, SmallPageUsesMinimumChunk)
{
    // 256-byte page: shift clamps to 3 (8-byte chunks, 32 of them).
    const std::uint32_t page_bytes = 256;
    const std::uint32_t shift = hlrcdiff::chunkShift(page_bytes);
    EXPECT_EQ(shift, 3u);
    std::vector<std::uint8_t> twin(page_bytes, 0), cur(page_bytes, 0);
    cur[page_bytes - 4] = 1;
    hlrcdiff::DiffWords full, chunked;
    hlrcdiff::scanFull(cur.data(), twin.data(), page_bytes, full);
    hlrcdiff::scanChunks(cur.data(), twin.data(), page_bytes, shift,
                         FastPath::dirtyBits(page_bytes - 4, 4, shift),
                         chunked);
    EXPECT_EQ(full, chunked);
    ASSERT_EQ(full.size(), 1u);
    EXPECT_EQ(full[0].first, (page_bytes - 4) / 4);
}

// ------------------------------------------------- On/off equivalence

/** Everything a run produces that the fast path must not change. */
struct RunResult
{
    Cycles total = 0;
    std::vector<Cycles> finish;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** A kernel sets up shared state on the cluster, then returns the
 *  SPMD body. */
using Kernel =
    std::function<std::function<void(Thread &)>(Cluster &)>;

RunResult
runKernel(ProtocolKind kind, bool fast_path, std::uint32_t page_bytes,
          std::uint32_t block_bytes, const Kernel &kernel)
{
    MachineParams mp;
    mp.numProcs = 4;
    mp.protocol = kind;
    mp.pageBytes = page_bytes;
    mp.blockBytes = block_bytes;
    mp.fastPath = fast_path;
    Cluster c(mp);
    auto body = kernel(c);
    c.run(body);

    RunResult r;
    r.total = c.stats().totalCycles;
    r.finish = c.stats().finishTimes;
    for (const auto &[name, value] : c.stats().metrics.counters) {
        // machine.fastpath_* and mem.simd_* are the legitimate
        // differences: host-side telemetry of the access fast path and
        // the SIMD diff/twin kernels (the chunk-skipping scan visits
        // fewer bytes than the full sweep).
        if (name.rfind("machine.fastpath_", 0) == 0 ||
            name.rfind("mem.simd_", 0) == 0)
            continue;
        r.counters.emplace_back(name, value);
    }
    return r;
}

void
expectEquivalent(ProtocolKind kind, std::uint32_t page_bytes,
                 std::uint32_t block_bytes, const Kernel &kernel)
{
    const RunResult on =
        runKernel(kind, true, page_bytes, block_bytes, kernel);
    const RunResult off =
        runKernel(kind, false, page_bytes, block_bytes, kernel);
    EXPECT_EQ(on.total, off.total);
    EXPECT_EQ(on.finish, off.finish);
    ASSERT_EQ(on.counters.size(), off.counters.size());
    for (std::size_t i = 0; i < on.counters.size(); ++i) {
        EXPECT_EQ(on.counters[i], off.counters[i])
            << "counter " << on.counters[i].first;
    }
}

/** Lock-serialized read-modify-writes plus private slots: exercises
 *  single-reference hits, twins, diffs and notice invalidations. */
Kernel
lockCounterKernel()
{
    return [](Cluster &c) {
        const LockId lock = c.allocLock();
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint32_t>>(
            SharedArray<std::uint32_t>::homedAt(c, 64, 0));
        for (int i = 0; i < 64; ++i)
            a->init(c, i, 0);
        return [lock, bar, a](Thread &t) {
            for (int round = 0; round < 4; ++round) {
                t.acquire(lock);
                a->put(t, 0, a->get(t, 0) + 1);
                a->put(t, 1 + t.id(), a->get(t, 1 + t.id()) + 3);
                t.release(lock);
                t.compute(57);
            }
            t.barrier(bar);
            std::uint32_t sum = 0;
            for (int i = 0; i < 64; ++i)
                sum += a->get(t, i);
            if (sum != 4u * t.nprocs() + 12u * t.nprocs())
                SWSM_PANIC("lock counter kernel read %u", sum);
            t.barrier(bar);
        };
    };
}

/** Barrier epochs of falsely-shared writes: exercises early flushes,
 *  multi-writer diffs and repeated twin create/discard cycles. */
Kernel
falseSharingKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint64_t>>(
            SharedArray<std::uint64_t>::homedAt(c, 128, 1));
        for (int i = 0; i < 128; ++i)
            a->init(c, i, 0);
        return [bar, a](Thread &t) {
            for (int epoch = 1; epoch <= 3; ++epoch) {
                for (int j = 0; j < 8; ++j)
                    a->put(t, t.id() * 8 + j,
                           static_cast<std::uint64_t>(epoch * 100 +
                                                      t.id() * 8 + j));
                t.barrier(bar);
                std::uint64_t sum = 0;
                for (int i = 0; i < 8 * t.nprocs(); ++i)
                    sum += a->get(t, i);
                (void)sum;
                t.barrier(bar);
            }
        };
    };
}

/** Unaligned bulk copies crossing page and block boundaries:
 *  exercises the range fast path and its slow-path handoff. */
Kernel
bulkRangeKernel()
{
    return [](Cluster &c) {
        const BarrierId bar = c.allocBarrier();
        auto a = std::make_shared<SharedArray<std::uint8_t>>(
            SharedArray<std::uint8_t>::homedAt(c, 3 * 4096, 0));
        for (int i = 0; i < 3 * 4096; ++i)
            a->init(c, i, static_cast<std::uint8_t>(i));
        return [bar, a](Thread &t) {
            std::vector<std::uint8_t> buf(2500);
            const GlobalAddr base = a->base() + 17 + t.id() * 2600;
            t.readBytes(base, buf.data(), buf.size());
            for (auto &byte : buf)
                byte = static_cast<std::uint8_t>(byte + 1 + t.id());
            t.barrier(bar);
            if (t.id() == 0)
                t.writeBytes(a->base() + 100, buf.data(), buf.size());
            t.barrier(bar);
            std::vector<std::uint8_t> check(300);
            t.readBytes(a->base() + 4000, check.data(), check.size());
            t.barrier(bar);
        };
    };
}

struct Geometry
{
    std::uint32_t pageBytes;
    std::uint32_t blockBytes;
};

const Geometry geometries[] = {{4096, 64}, {1024, 32}};

TEST(FastPathEquivalence, HlrcBitIdenticalOnOff)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Hlrc, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

TEST(FastPathEquivalence, ScBitIdenticalOnOff)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Sc, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

TEST(FastPathEquivalence, IdealBitIdenticalOnOff)
{
    for (const Geometry &g : geometries) {
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         lockCounterKernel());
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         falseSharingKernel());
        expectEquivalent(ProtocolKind::Ideal, g.pageBytes, g.blockBytes,
                         bulkRangeKernel());
    }
}

TEST(FastPathEquivalence, ScWithAccessCheckCostStaysEquivalent)
{
    // A nonzero access-check charge disables SC installs entirely;
    // the fast path must still be a no-op, not a divergence.
    auto run = [](bool fast_path) {
        MachineParams mp;
        mp.numProcs = 4;
        mp.protocol = ProtocolKind::Sc;
        mp.accessCheckCycles = 3;
        mp.fastPath = fast_path;
        Cluster c(mp);
        auto body = lockCounterKernel()(c);
        c.run(body);
        return c.stats().totalCycles;
    };
    EXPECT_EQ(run(true), run(false));
}

// ----------------------------------------- Diff exactness across epochs

TEST(FastPathDiff, SingleWordWritesProduceSingleWordDiffs)
{
    // Across several lock epochs, each non-home write interval must
    // diff exactly the words written — proving the dirty-chunk bitmap
    // is cleared with the twin and never under- or over-reports.
    MachineParams mp;
    mp.numProcs = 2;
    mp.protocol = ProtocolKind::Hlrc;
    Cluster c(mp);
    const LockId lock = c.allocLock();
    const BarrierId bar = c.allocBarrier();
    SharedArray<std::uint32_t> a =
        SharedArray<std::uint32_t>::homedAt(c, 1024, 0);
    for (int i = 0; i < 1024; ++i)
        a.init(c, i, 0);
    c.run([&](Thread &t) {
        if (t.id() == 1) {
            for (int epoch = 0; epoch < 5; ++epoch) {
                t.acquire(lock);
                a.put(t, 100 * epoch,
                      static_cast<std::uint32_t>(1000 + epoch));
                t.release(lock);
            }
        }
        t.barrier(bar);
    });
    const ProtoStats &s = c.protocol().stats();
    EXPECT_EQ(s.diffsCreated.value(), 5u);
    EXPECT_EQ(s.diffWordsWritten.value(), 5u);
    EXPECT_EQ(s.twinsCreated.value(), 5u);
    for (int epoch = 0; epoch < 5; ++epoch)
        EXPECT_EQ(a.peek(c, 100 * epoch), 1000u + epoch);
}

} // namespace
} // namespace swsm
